#!/usr/bin/env python3
"""Write your own workload model and evaluate it under DLP.

Demonstrates the extension path a downstream user takes: subclass
``repro.workloads.Workload``, describe your kernel's memory structure as
per-warp address streams, and reuse the whole experiment stack
(profiling, policy comparison) unchanged.

The example models a sparse matrix-vector multiply (SpMV): row-pointer
reads, streaming column-index/value reads, and gathers into the dense
vector x — whose hot entries are exactly what line protection preserves.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.analysis import RD_LABELS, stacked_percent_rows
from repro.core import make_policy
from repro.experiments.cachesim import profile_reuse
from repro.experiments.runner import harness_config
from repro.gpu import GpuSimulator, Kernel, compute, load, store
from repro.workloads import Workload, WorkloadMeta

LINE = 128

_PC_ROWPTR = 0x9000
_PC_COLVAL = 0x9008
_PC_XVEC = 0x9010
_PC_Y = 0x9018


class SpMV(Workload):
    """CSR SpMV with a locality-banded sparsity pattern."""

    meta = WorkloadMeta(
        name="Sparse Matrix-Vector Multiply",
        abbr="SPMV",
        suite="custom",
        paper_type="CI",
        paper_input="n/a",
        scaled_input="3072 rows, 16 nnz/row, banded columns",
    )

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.rows = int(3072 * scale)
        self.nnz_per_row = 16
        self.warps_per_cta = 8

    def build_kernels(self):
        n = self.rows
        rowptr = self.addr.region("rowptr", (n + 1) * 4)
        colval = self.addr.region("colval", n * self.nnz_per_row * 8)
        xvec = self.addr.region("x", n * 4)
        yvec = self.addr.region("y", n * 4)
        gen = self.rng.generator
        num_ctas = max(1, n // 32 // self.warps_per_cta)

        def trace(cta: int, w: int):
            row_block = (cta * self.warps_per_cta + w) * 32
            yield load(_PC_ROWPTR, self.coalesced(rowptr + row_block * 4))
            yield compute(2)
            for step in range(self.nnz_per_row // 4):
                nz = (row_block * self.nnz_per_row + step * 128)
                # stream of column indices + values
                yield load(_PC_COLVAL, self.coalesced(colval + nz * 8, 8))
                yield compute(2)
                # gather from x: banded columns near the row index
                cols = (row_block + gen.integers(-256, 257, size=32)) % n
                yield load(_PC_XVEC, xvec + cols.astype(np.int64) * 4)
                yield compute(3)
            yield store(_PC_Y, self.coalesced(yvec + row_block * 4))

        return [Kernel("spmv_csr", num_ctas, self.warps_per_cta, trace)]


def main() -> None:
    workload = SpMV()
    config = harness_config()

    profiler = profile_reuse(workload, config)
    print(stacked_percent_rows(
        ["SPMV"], [profiler.overall_fractions()], RD_LABELS,
        title="SpMV reuse-distance distribution",
    ))
    ratio = workload.static_stats()["mem_access_ratio"]
    print(f"memory access ratio: {100 * ratio:.2f}% "
          f"({'CI' if ratio >= 0.01 else 'CS'})\n")

    for policy_name in ("baseline", "stall_bypass", "global_protection", "dlp"):
        sim = GpuSimulator(
            workload.kernels(), config, lambda p=policy_name: make_policy(p)
        )
        r = sim.run()
        print(f"{policy_name:18s} cycles={r.cycles:7d} ipc={r.ipc:7.2f} "
              f"hit_rate={r.l1d.hit_rate:.3f} bypasses={r.l1d.bypasses}")


if __name__ == "__main__":
    main()
