#!/usr/bin/env python3
"""Compare all four cache-management schemes (plus the 32 KB cache) on
one of the paper's Cache Insufficient benchmarks.

This reproduces one application's column of the paper's Figures 10-13:
normalized IPC, L1D traffic, evictions, hit rate and interconnect
traffic for Similarity Score (Mars), the doc-pair workload whose partner
sweep thrashes a 16 KB cache.

Run:  python examples/policy_comparison.py [APP]
"""

import sys

from repro.analysis import ascii_table
from repro.experiments.runner import (
    FIG10_SCHEMES,
    SCHEME_LABELS,
    harness_config,
    run_workload,
)


def main(app: str = "SS") -> None:
    config = harness_config()
    print(f"Simulating {app} under {len(FIG10_SCHEMES)} schemes "
          f"({config.num_sms} SMs, Table 1 per-SM machine)...\n")

    results = {}
    for scheme in FIG10_SCHEMES:
        results[scheme] = run_workload(app, scheme, config)

    base = results["baseline"]
    rows = []
    for scheme in FIG10_SCHEMES:
        r = results[scheme]
        rows.append((
            SCHEME_LABELS[scheme],
            f"{r.ipc / base.ipc:.3f}",
            f"{r.l1d.serviced_accesses / base.l1d.serviced_accesses:.3f}",
            f"{r.l1d.evictions_total / max(base.l1d.evictions_total, 1):.3f}",
            f"{r.l1d.hit_rate:.3f}",
            f"{r.interconnect['total_bytes'] / base.interconnect['total_bytes']:.3f}",
        ))

    print(ascii_table(
        ["Scheme", "IPC", "L1D traffic", "Evictions", "Hit rate", "Icnt bytes"],
        rows,
        title=f"{app}: normalized to the 16KB baseline (Figs. 10-13 column)",
    ))

    dlp = results["dlp"]
    print(f"\nDLP internals: {dlp.policy}")


if __name__ == "__main__":
    main(sys.argv[1].upper() if len(sys.argv) > 1 else "SS")
