#!/usr/bin/env python3
"""Quickstart: simulate a small kernel under the baseline and DLP caches.

Builds a deliberately cache-hostile kernel (every warp loops over a
private 8-line buffer; together the buffers overflow the 16 KB L1D),
runs it on the modelled GPU under the baseline LRU policy and under
Dynamic Line Protection, and prints what changed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GPUConfig, GpuSimulator, make_policy
from repro.analysis.reuse import rd_of_sequence
from repro.cache.tagarray import CacheGeometry
from repro.gpu import Kernel, compute, load

LINE = 128


def loop_buffer_trace(cta: int, warp: int):
    """Each warp re-reads a private 8-line buffer 30 times; with 48 warps
    resident per SM that is ~3x the L1D - the thrashing regime DLP fixes."""
    base = (cta * 64 + warp) * 1_000_000
    for _ in range(30):
        for j in range(8):
            yield compute(2)
            yield load(0x10 + j * 8, np.full(32, base + j * LINE, dtype=np.int64))


def main() -> None:
    # --- the paper's Fig. 2 worked example -----------------------------
    rds = rd_of_sequence([0, 1, 2, 0], CacheGeometry(num_sets=1, assoc=2))
    print("Fig. 2 warm-up: accesses Addr0 Addr1 Addr2 Addr0 on a 2-way set")
    print(f"  -> reuse distance of the second Addr0 access: {rds[-1]} "
          "(> associativity, so LRU misses)\n")

    # --- run the kernel under two policies ------------------------------
    kernel = Kernel("loop_buffers", num_ctas=8, warps_per_cta=8,
                    trace_fn=loop_buffer_trace)
    config = GPUConfig().scaled(2)   # Table 1 machine, two SMs for speed

    results = {}
    for policy_name in ("baseline", "dlp"):
        sim = GpuSimulator(kernel, config, lambda p=policy_name: make_policy(p))
        results[policy_name] = sim.run()

    base, dlp = results["baseline"], results["dlp"]
    print(f"{'':24s}{'baseline':>12s}{'DLP':>12s}")
    rows = [
        ("cycles", base.cycles, dlp.cycles),
        ("IPC", f"{base.ipc:.1f}", f"{dlp.ipc:.1f}"),
        ("L1D hit rate", f"{base.l1d.hit_rate:.3f}", f"{dlp.l1d.hit_rate:.3f}"),
        ("L1D hits", base.l1d.hits_total, dlp.l1d.hits_total),
        ("L1D evictions", base.l1d.evictions_total, dlp.l1d.evictions_total),
        ("bypassed accesses", base.l1d.bypasses, dlp.l1d.bypasses),
        ("pipeline stall cycles", base.ldst_stall_cycles, dlp.ldst_stall_cycles),
    ]
    for name, b, d in rows:
        print(f"{name:24s}{str(b):>12s}{str(d):>12s}")

    speedup = base.cycles / dlp.cycles
    print(f"\nDLP speedup over baseline: {speedup:.2f}x")
    print(f"PD updates taken: {dlp.policy}")


if __name__ == "__main__":
    main()
