#!/usr/bin/env python3
"""Reuse-distance analysis of a benchmark, the paper's Section 3 study.

For a chosen Table 2 application this prints:

* its overall reuse-distance distribution (one bar of Fig. 3);
* its per-memory-instruction RDDs (the Fig. 7 analysis that motivates
  per-instruction protection distances);
* its reuse-data miss rate at 16/32/64 KB (one group of Fig. 4);
* its memory-access ratio and CS/CI classification (Fig. 6 / Table 2).

Run:  python examples/reuse_analysis.py [APP]     (default: BFS)
"""

import sys

from repro.analysis import (
    RD_LABELS,
    classify_workload,
    stacked_percent_rows,
)
from repro.experiments.cachesim import capacity_sweep, profile_reuse
from repro.experiments.runner import harness_config
from repro.workloads import make_workload


def main(app: str = "BFS") -> None:
    config = harness_config()
    workload = make_workload(app)

    print(f"Profiling {app} ({workload.meta.name}, {workload.meta.suite})...")
    print(f"  paper input: {workload.meta.paper_input}; "
          f"model: {workload.meta.scaled_input}\n")

    profiler = profile_reuse(workload, config)
    print(stacked_percent_rows(
        [app], [profiler.overall_fractions()], RD_LABELS,
        title="Reuse Distance Distribution (Fig. 3 bar)",
    ))
    print(f"  accesses={profiler.accesses}  reuses={profiler.reuses}  "
          f"compulsory={profiler.compulsory}\n")

    per_pc = sorted(profiler.pc_fractions().items())
    print(stacked_percent_rows(
        [f"insn{i + 1}" for i in range(len(per_pc))],
        [fracs for _, fracs in per_pc],
        RD_LABELS,
        title="Per-instruction RDDs (Fig. 7 analysis)",
    ))

    print("\nReuse-data miss rate vs capacity (Fig. 4 group):")
    sweep = capacity_sweep(workload, (16, 32, 64), config)
    for kb in (16, 32, 64):
        rate = sweep[kb]["reuse_miss_rate"]
        print(f"  {kb:2d}KB: {100 * rate:5.1f}%")

    c = classify_workload(app)
    print(f"\nMemory access ratio: {100 * c.mem_access_ratio:.2f}% "
          f"-> {c.predicted_type} (paper says {c.paper_type})")


if __name__ == "__main__":
    main(sys.argv[1].upper() if len(sys.argv) > 1 else "BFS")
