#!/usr/bin/env python3
"""Watch DLP's Protection Distances adapt at runtime (Fig. 9 dynamics).

Attaches a :class:`repro.analysis.telemetry.PdTracker` to each SM's DLP
policy while a Cache Insufficient workload runs, then prints the PD
trajectory: the increase path engages while the VTA reports lost reuse,
and the per-instruction PDs settle where protection pays.

Run:  python examples/pd_dynamics.py [APP]      (default: SS)
"""

import sys

from repro.analysis.telemetry import PdTracker
from repro.core import make_policy
from repro.experiments.runner import harness_config
from repro.gpu import GpuSimulator
from repro.workloads import make_workload


def main(app: str = "SS") -> None:
    config = harness_config(2)
    workload = make_workload(app)

    trackers = []

    def policy_factory():
        policy = make_policy("dlp")
        trackers.append(PdTracker.attach_to(policy))
        return policy

    print(f"Running {app} under DLP with PD telemetry...\n")
    sim = GpuSimulator(workload.kernels(), config, policy_factory)
    result = sim.run()

    tracker = trackers[0]  # SM0's trajectory
    print(tracker.render())

    print(f"\nSM0 sample paths: {tracker.path_counts()}")
    converged = tracker.converged_pds()
    if converged:
        print("converged PDs (last 5 samples, per instruction ID):")
        for insn_id, pd in sorted(converged.items()):
            if pd > 0:
                print(f"  insn {insn_id:3d}: PD ~ {pd:.1f}")
    print(f"\nrun summary: cycles={result.cycles}  ipc={result.ipc:.1f}  "
          f"hit_rate={result.l1d.hit_rate:.3f}  bypasses={result.l1d.bypasses}")


if __name__ == "__main__":
    main(sys.argv[1].upper() if len(sys.argv) > 1 else "SS")
