"""Bench: packed fast engine vs. reference, per access.

The fast engine's contract is "bit-identical, >=5x faster per access".
This bench replays the same captured streams through both engines under
every scheme, asserts the results identical and the speedup floor, and
writes ``benchmarks/BENCH_fastsim.json`` with the measured numbers.

Per-scheme per-access cost is the honest unit here: the reference
engine's cost scales with policy complexity (hook dispatch, PL decay
object walks), the fast engine's barely does.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import bench_once

from repro.analysis import ascii_table
from repro.experiments.runner import harness_config
from repro.trace import capture_records
from repro.trace.replay import replay_records
from repro.workloads import make_workload

APPS = ("BT", "KM")
SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")
NUM_SMS = 2
SCALE = 0.5

#: The acceptance floor: the packed engine must beat the reference by
#: at least this per-access factor on every (app, scheme) cell.
MIN_SPEEDUP = 5.0

BENCH_JSON = Path(__file__).parent / "BENCH_fastsim.json"


def _time_replay(records, config, scheme, engine):
    t0 = time.perf_counter()
    result = replay_records(iter(records), config, scheme, engine=engine)
    return time.perf_counter() - t0, result


def collect():
    config = harness_config(NUM_SMS)
    out = {}
    for app in APPS:
        records = capture_records(make_workload(app, SCALE), config)
        # warm both code paths once so neither engine pays first-call
        # bytecode/alloc costs inside the timed region
        for engine in ("reference", "fast"):
            replay_records(iter(records), config, "dlp", engine=engine)
        cells = {}
        for scheme in SCHEMES:
            ref_s, ref = _time_replay(records, config, scheme, "reference")
            fast_s, fast = _time_replay(records, config, scheme, "fast")
            assert fast.to_dict() == ref.to_dict(), \
                f"{app}/{scheme}: engines diverged"
            cells[scheme] = {
                "reference_s": round(ref_s, 4),
                "fast_s": round(fast_s, 4),
                "reference_us_per_access": round(
                    ref_s / len(records) * 1e6, 3),
                "fast_us_per_access": round(
                    fast_s / len(records) * 1e6, 3),
                "speedup": round(ref_s / fast_s, 2),
            }
        out[app] = {"records": len(records), "schemes": cells}
    return out


def test_fastsim_speedup(benchmark, show):
    data = bench_once(benchmark, collect)
    payload = {
        "schemes": list(SCHEMES),
        "num_sms": NUM_SMS,
        "scale": SCALE,
        "min_speedup": MIN_SPEEDUP,
        "apps": data,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    rows = [
        (app, scheme, str(d["records"]),
         f"{cell['reference_us_per_access']:.2f}",
         f"{cell['fast_us_per_access']:.2f}",
         f"{cell['speedup']:.1f}x")
        for app, d in data.items()
        for scheme, cell in d["schemes"].items()
    ]
    show(ascii_table(
        ["App", "Scheme", "Records", "ref us/acc", "fast us/acc", "speedup"],
        rows,
        title="Packed engine vs. reference (bit-identical replays)",
    ))
    for app, d in data.items():
        for scheme, cell in d["schemes"].items():
            assert cell["speedup"] >= MIN_SPEEDUP, (
                f"{app}/{scheme}: {cell['speedup']:.2f}x is below the "
                f"{MIN_SPEEDUP:.0f}x floor"
            )
