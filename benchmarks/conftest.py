"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures and prints
the rows/series the paper reports.  Timing-simulation cells are memoised
process-wide (see ``repro.experiments.runner.run_cell``), so the whole
harness simulates each (application, scheme) pair exactly once even
though several figures consume the same sweep.

Run with::

    pytest benchmarks/ --benchmark-only -s

(the ``-s`` keeps the printed tables visible).
"""

from __future__ import annotations

from functools import lru_cache

import pytest


def bench_once(benchmark, fn):
    """Record one timed execution (figure generation is deterministic;
    re-running it five times would just quintuple harness wall-clock)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def show():
    """Print a rendered table/figure underneath the bench output."""

    def _show(text: str) -> None:
        print("\n" + text + "\n")

    return _show


@lru_cache(maxsize=None)
def fig3_cached():
    from repro.experiments.figures import fig3_data

    return fig3_data()


@lru_cache(maxsize=None)
def fig4_cached():
    from repro.experiments.figures import fig4_data

    return fig4_data()


@lru_cache(maxsize=None)
def fig7_cached():
    from repro.experiments.figures import fig7_data

    return fig7_data()
