"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures and prints
the rows/series the paper reports.  Timing-simulation cells resolve
through the sweep executor against a shared on-disk result store
(default ``benchmarks/.store``; override with ``$REPRO_STORE``, set
``REPRO_JOBS`` for parallel simulation of cold cells), so the whole
harness simulates each (application, scheme) pair exactly once — and a
*re*-run of the harness against a warm store simulates nothing at all.

Run with::

    pytest benchmarks/ --benchmark-only -s

(the ``-s`` keeps the printed tables visible).
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.experiments import runner


def pytest_configure(config):
    """Point the shared runner at the harness's warm store."""
    store_dir = os.environ.get(
        "REPRO_STORE", str(Path(__file__).parent / ".store")
    )
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    runner.configure(store=store_dir, jobs=jobs)


def bench_once(benchmark, fn):
    """Record one timed execution (figure generation is deterministic;
    re-running it five times would just quintuple harness wall-clock)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def show():
    """Print a rendered table/figure underneath the bench output."""

    def _show(text: str) -> None:
        print("\n" + text + "\n")

    return _show


@lru_cache(maxsize=None)
def fig3_cached():
    from repro.experiments.figures import fig3_data

    return fig3_data()


@lru_cache(maxsize=None)
def fig4_cached():
    from repro.experiments.figures import fig4_data

    return fig4_data()


@lru_cache(maxsize=None)
def fig7_cached():
    from repro.experiments.figures import fig7_data

    return fig7_data()
