"""Ablation: protected-set bypass on/off.

Section 4.1.1: when every line in a set is protected, DLP bypasses the
request.  Without the bypass, a fully-protected set *stalls* the memory
pipeline until PLs decay — protection alone can even hurt.  This bench
quantifies how much of DLP's win comes from the bypass path.
"""

from conftest import bench_once

from repro.analysis import ascii_table
from repro.experiments.runner import harness_config, run_workload

APPS = ("SS", "CFD", "SR2K")


def collect():
    config = harness_config()
    rows = []
    for app in APPS:
        base = run_workload(app, "baseline", config).cycles
        with_bypass = run_workload(app, "dlp", config, bypass_enabled=True)
        without = run_workload(app, "dlp", config, bypass_enabled=False)
        rows.append(
            (app,
             f"{base / with_bypass.cycles:.3f}",
             f"{base / without.cycles:.3f}",
             f"{without.ldst_stall_cycles - with_bypass.ldst_stall_cycles:+d}")
        )
    return rows


def test_ablation_bypass(benchmark, show):
    rows = bench_once(benchmark, collect)
    show(ascii_table(
        ["App", "DLP (bypass on)", "DLP (bypass off)", "extra stall cycles"],
        rows,
        title="Ablation: protected-set bypass",
    ))
    for app, with_b, without_b, _ in rows:
        # the bypass path must never hurt, and it should matter somewhere
        assert float(with_b) >= 0.98 * float(without_b), app
    assert any(float(r[1]) > float(r[2]) + 0.01 for r in rows), (
        "bypass made no difference anywhere"
    )
