"""Fig. 11: normalized L1D traffic (a) and evictions (b).

Paper shape (Section 6.2): all three bypassing schemes cut CI traffic,
DLP the most aggressively (paper: 47.5% of baseline traffic, 20.7% of
baseline evictions, vs 71.6%/56.5% for Stall-Bypass); eviction
reductions are deeper than traffic reductions under DLP.
"""

from conftest import bench_once

from repro.experiments.figures import fig11a_data, fig11b_data, render_policy_figure
from repro.workloads import CI_APPS


def test_fig11a_l1d_traffic(benchmark, show):
    per_app, means, labels = bench_once(benchmark, fig11a_data)
    show(render_policy_figure((per_app, means, labels), "Fig. 11a: normalized L1D traffic"))

    ci = means["CI"]
    assert ci["DLP"] < 0.95, f"DLP CI traffic {ci['DLP']:.3f}"
    assert ci["DLP"] <= ci["16KB(Baseline)"]
    # DLP bypasses more aggressively than Global-Protection on average
    assert ci["DLP"] <= 1.02 * ci["Global-Protection"]


def test_fig11b_l1d_evictions(benchmark, show):
    per_app, means, labels = bench_once(benchmark, fig11b_data)
    show(render_policy_figure((per_app, means, labels), "Fig. 11b: normalized L1D evictions"))

    ci = means["CI"]
    assert ci["DLP"] < 0.85, f"DLP CI evictions {ci['DLP']:.3f}"
    # protection retains lines: eviction cut is deeper than the traffic cut
    traffic_ci = fig11a_data()[1]["CI"]
    assert ci["DLP"] <= traffic_ci["DLP"] + 0.05

    # per-app: DLP never inflates evictions dramatically on CI apps
    for app in CI_APPS:
        assert per_app[app]["DLP"] < 1.2, f"{app} evictions grew under DLP"
