"""Ablation: sampling period (the paper picks 200 accesses empirically).

Sweeps the DLP sample limit around the paper's choice on a protection-
responsive CI application.  Too-short windows produce noisy hit counts;
too-long windows adapt slowly — 200 should sit in the flat, good region.
"""

from conftest import bench_once

from repro.analysis import ascii_table
from repro.experiments.runner import harness_config, run_workload

PERIODS = (50, 100, 200, 400, 800)
APP = "SS"


def collect():
    config = harness_config()
    base = run_workload(APP, "baseline", config).cycles
    rows = []
    for period in PERIODS:
        r = run_workload(APP, "dlp", config, sample_limit=period)
        rows.append((str(period), f"{base / r.cycles:.3f}", f"{r.l1d.hit_rate:.3f}"))
    return rows


def test_ablation_sample_period(benchmark, show):
    rows = bench_once(benchmark, collect)
    show(ascii_table(
        ["Sample limit (accesses)", "Speedup vs baseline", "L1D hit rate"],
        rows,
        title=f"Ablation: DLP sampling period on {APP}",
    ))
    by_period = {int(r[0]): float(r[1]) for r in rows}
    best = max(by_period.values())
    # the paper's 200 must be within 10% of the best setting in the sweep
    assert by_period[200] >= 0.9 * best
    # and protection must be profitable at the paper's setting
    assert by_period[200] > 1.0
