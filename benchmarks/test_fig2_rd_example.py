"""Fig. 2: reuse-distance counting example (RD of Addr 0 is 3)."""

from conftest import bench_once

from repro.experiments.figures import fig2_data, render_fig2


def test_fig2_rd_example(benchmark, show):
    data = bench_once(benchmark, fig2_data)
    show(render_fig2())
    assert data["rds"] == [None, None, None, 3]
