"""Fig. 7: per-memory-instruction RDDs of BFS.

Paper shape: the static loads of BFS have wildly different RDDs — some
instructions' reuses concentrate short, others in the 9~64 range — which
is the motivation for per-instruction protection distances.
"""

from conftest import bench_once, fig7_cached

from repro.experiments.figures import render_fig7


def test_fig7_bfs_insn_rdd(benchmark, show):
    data = bench_once(benchmark, fig7_cached)
    show(render_fig7(data))

    # BFS has ~9 static memory instructions with observed reuse
    assert len(data) >= 5

    active = {k: v for k, v in data.items() if sum(v) > 0}
    assert len(active) >= 4

    # diversity: at least one short-dominated and one long-leaning PC
    short_heavy = [k for k, v in active.items() if v[0] > 0.5]
    long_leaning = [k for k, v in active.items() if v[2] + v[3] > 0.4]
    assert short_heavy, "no short-RD instruction found"
    assert long_leaning, "no middle/long-RD instruction found"

    # the distributions genuinely differ across instructions (max spread
    # of the short-range fraction above 40 percentage points)
    short_fracs = [v[0] for v in active.values()]
    assert max(short_fracs) - min(short_fracs) > 0.4
