"""Fig. 13: normalized interconnect traffic.

Paper shape (Section 6.4): for CI applications the protection schemes
reduce interconnect traffic (paper: -11.5% DLP vs -6.2% Stall-Bypass on
their machine, diluted there by the other L1 caches sharing the network
— our model carries only L1D traffic, so reductions can run larger);
for CS applications the impact is negligible.
"""

from conftest import bench_once

from repro.experiments.figures import fig13_data, render_policy_figure


def test_fig13_interconnect(benchmark, show):
    per_app, means, labels = bench_once(benchmark, fig13_data)
    show(render_policy_figure((per_app, means, labels), "Fig. 13: normalized interconnect traffic"))

    ci = means["CI"]
    cs = means["CS"]

    # DLP cuts CI interconnect traffic vs baseline
    assert ci["DLP"] < 1.0, f"DLP CI icnt traffic {ci['DLP']:.3f}"
    # and does at least as well as Stall-Bypass
    assert ci["DLP"] <= 1.02 * ci["Stall-Bypass"]

    # CS applications: negligible impact for the protection schemes
    assert 0.9 < cs["DLP"] < 1.1
    assert 0.9 < cs["Global-Protection"] < 1.1
