"""Ablation: Victim Tag Array associativity (and with it Nasc).

The paper sets the VTA associativity equal to the cache associativity
(4) and uses it as the Nasc step size in the Fig. 9 computation.  A
smaller VTA observes fewer long-distance reuses (protection engages
less); a larger one costs more storage for diminishing returns.
"""

from conftest import bench_once

from repro.analysis import ascii_table
from repro.core.overhead import compute_overhead
from repro.experiments.runner import harness_config, run_workload

VTA_ASSOCS = (1, 2, 4, 8)
APP = "SS"


def collect():
    config = harness_config()
    base = run_workload(APP, "baseline", config).cycles
    rows = []
    for assoc in VTA_ASSOCS:
        r = run_workload(APP, "dlp", config, vta_assoc=assoc)
        cost = compute_overhead(vta_assoc=assoc).total_extra_bytes
        rows.append(
            (str(assoc), f"{base / r.cycles:.3f}",
             f"{r.policy.get('vta_hits', 0):.0f}", f"{cost} B")
        )
    return rows


def test_ablation_vta(benchmark, show):
    rows = bench_once(benchmark, collect)
    show(ascii_table(
        ["VTA assoc (=Nasc)", "Speedup", "VTA hits", "DLP storage"],
        rows,
        title=f"Ablation: VTA associativity on {APP}",
    ))
    by_assoc = {int(r[0]): float(r[1]) for r in rows}
    hits = {int(r[0]): float(r[2]) for r in rows}
    # a deeper VTA observes at least as much reuse
    assert hits[4] > hits[1]
    # the paper's choice must be profitable
    assert by_assoc[4] > 1.0
