"""Bench: service economics — cold simulation vs. warm store hits.

The serving layer's pitch is that a result is simulated once, ever:
the first request pays full simulation latency, every identical
request after it — concurrent (coalesced onto the in-flight run) or
later (served from the store) — pays only request overhead.  This
bench measures all three against a live in-process server, asserts the
exactly-once accounting on the service counters (never wall clock),
and writes ``benchmarks/BENCH_serve_latency.json``.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from conftest import bench_once

from repro.analysis import ascii_table
from repro.serve.protocol import cell_request
from repro.serve.server import ServerThread

APP = "MM"
SCHEME = "dlp"
NUM_SMS = 1
SCALE = 0.25
FANOUT = 3

BENCH_JSON = Path(__file__).parent / "BENCH_serve_latency.json"


def collect(tmp_root: Path):
    body = cell_request(APP, SCHEME, sms=NUM_SMS, scale=SCALE)
    with ServerThread(workers=2, store=tmp_root / "store") as srv:
        client = srv.client()

        t0 = time.perf_counter()
        client.run(body, timeout=300)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        client.run(body, timeout=300)
        warm_s = time.perf_counter() - t0

        # a distinct cold cell, requested by FANOUT concurrent clients:
        # everyone waits on the one in-flight simulation
        shared = cell_request(APP, "baseline", sms=NUM_SMS, scale=SCALE)
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=FANOUT) as pool:
            docs = list(pool.map(
                lambda _i: srv.client().run(shared, timeout=300),
                range(FANOUT),
            ))
        coalesced_s = time.perf_counter() - t0

        metrics = client.metrics()

    # exactly-once accounting, on counters
    assert metrics["cells"]["simulated"] == 2, metrics["cells"]
    assert metrics["store"]["hits"] + metrics["cells"]["coalesced"] >= FANOUT
    payloads = [d["results"][0]["result"] for d in docs]
    assert all(p == payloads[0] for p in payloads)

    return {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "coalesced_fanout_s": round(coalesced_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "counters": {
            "simulated": metrics["cells"]["simulated"],
            "coalesced": metrics["cells"]["coalesced"],
            "store_hits": metrics["store"]["hits"],
        },
    }


def test_serve_latency_economics(benchmark, show, tmp_path):
    data = bench_once(benchmark, lambda: collect(tmp_path))
    payload = {
        "app": APP,
        "scheme": SCHEME,
        "num_sms": NUM_SMS,
        "scale": SCALE,
        "fanout": FANOUT,
        **data,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    show(ascii_table(
        ["request", "latency (s)"],
        [
            ("cold (simulates)", f"{data['cold_s']:.3f}"),
            ("warm (store hit)", f"{data['warm_s']:.3f}"),
            (f"{FANOUT} concurrent cold (1 sim)",
             f"{data['coalesced_fanout_s']:.3f}"),
        ],
        title=(f"Service latency, {APP}/{SCHEME}: warm is "
               f"{data['warm_speedup']:.0f}x faster than cold"),
    ))
    # the claim is structural (a warm hit never simulates), so the win
    # must be wide, not timing noise; and fanning out N cold requests
    # must cost ~one simulation, not N
    assert data["warm_speedup"] > 2, data
    assert data["coalesced_fanout_s"] < FANOUT * data["cold_s"], data
