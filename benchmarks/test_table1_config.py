"""Table 1: the GPU configuration used in the experiments."""

from conftest import bench_once

from repro.experiments.figures import render_table1, table1_data


def test_table1_config(benchmark, show):
    rows = bench_once(benchmark, table1_data)
    assert len(rows) == 12
    show(render_table1())
    # spot-check the paper's values
    values = dict(rows)
    assert values["Number of Cores"] == "16"
    assert values["L1D cache"] == "16KB, 32sets, 4-ways, Hash index"
    assert values["Memory Bandwidth"] == "177.4 GB/s"
