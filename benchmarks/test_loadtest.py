"""Bench: cluster serving capacity under a 1000-client zipfian load.

The cluster acceptance run: one thousand concurrent closed-loop
clients against a self-hosted 4-worker :class:`ClusterScheduler`, a
zipfian hot/cold mix over 24 distinct cells with a 10% tier-0 predict
fraction.  The SLO gate is asserted (zero failures, p99 bound,
nonzero coalescing) and the full report is committed as
``benchmarks/BENCH_loadtest.json`` — the measured capacity numbers
quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import bench_once

from repro.analysis import ascii_table
from repro.loadtest import LoadTestConfig, MixConfig, SloConfig, run_loadtest

CLIENTS = 1000
WORKERS = 4
POPULATION = 24
PREDICT_FRACTION = 0.10
SCALE = 0.1

#: The committed service-level objectives.  p99 is bounded by the cold
#: simulation tail (a cold cell at this scale simulates in ~0.2-0.5 s;
#: queueing behind the whole cold set on 4 workers stays well under
#: this), coalescing must actually happen under a zipfian mix, and no
#: request may fail.
SLO = SloConfig(p99_s=30.0, min_coalescing_rate=0.05, max_failures=0)

BENCH_JSON = Path(__file__).parent / "BENCH_loadtest.json"


def collect():
    config = LoadTestConfig(
        clients=CLIENTS,
        mix=MixConfig(population=POPULATION,
                      predict_fraction=PREDICT_FRACTION, scale=SCALE),
        slo=SLO,
        workers=WORKERS,
        ramp_seconds=2.0,
    )
    report = run_loadtest(config)
    assert report.passed, report.violations
    assert report.completed == CLIENTS
    assert report.predict_answers > 0          # tier-0 path exercised
    return report


def test_cluster_loadtest_slo(benchmark, show):
    report = bench_once(benchmark, collect)
    doc = report.to_dict()
    payload = {
        "population": POPULATION,
        "zipf_exponent": MixConfig().zipf_exponent,
        "predict_fraction": PREDICT_FRACTION,
        "scale": SCALE,
        "slo": {
            "p99_s": SLO.p99_s,
            "min_coalescing_rate": SLO.min_coalescing_rate,
            "max_failures": SLO.max_failures,
        },
        **doc,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    lat = doc["latency_s"]
    show(ascii_table(
        ["metric", "value"],
        [
            ("clients / workers", f"{CLIENTS} / {WORKERS}"),
            ("completed / failed",
             f"{report.completed} / {report.failed}"),
            ("throughput", f"{doc['throughput_rps']} req/s"),
            ("latency p50 / p99", f"{lat['p50']} / {lat['p99']} s"),
            ("coalescing rate", f"{doc['coalescing_rate']}"),
            ("store-hit rate", f"{doc['store_hit_rate']}"),
            ("hot rate", f"{doc['hot_rate']}"),
            ("predict answers", str(report.predict_answers)),
        ],
        title=(f"Cluster loadtest: {CLIENTS} clients vs {WORKERS} "
               f"workers — SLOs held"),
    ))
    # the structural claims behind the SLOs: a zipfian mix must be
    # served mostly hot, and everything completed exactly once
    assert report.hot_rate > 0.5, doc
    assert report.worker_restarts == 0, doc
