"""Section 4.3: DLP hardware overhead — the paper's exact numbers."""

from conftest import bench_once

from repro.core.overhead import compute_overhead
from repro.experiments.figures import render_overhead


def test_overhead_table(benchmark, show):
    report = bench_once(benchmark, compute_overhead)
    show(render_overhead())
    assert report.tda_extension_bytes == 176
    assert report.vta_bytes == 624
    assert report.pdpt_bytes == 464
    assert report.total_extra_bytes == 1264
    assert round(100 * report.overhead_fraction, 2) == 7.48
