"""Ablation: per-instruction PDs (DLP) vs one global PD (GP).

The paper's core claim is that instruction-level protection distances
accommodate diverse reuse patterns better than PDP's single PD.  This
bench isolates the comparison on the CI applications whose PCs have the
most heterogeneous reuse (KM: stream + hot table; SS: hot own-vector +
cyclic partners; MM: short A reuse + spread B reuse).
"""

from conftest import bench_once

from repro.analysis import ascii_table, geometric_mean
from repro.experiments.runner import run_cell

APPS = ("KM", "SS", "MM", "CFD")


def collect():
    rows = []
    for app in APPS:
        base = run_cell(app, "baseline").cycles
        gp = base / run_cell(app, "global_protection").cycles
        dlp = base / run_cell(app, "dlp").cycles
        rows.append((app, f"{gp:.3f}", f"{dlp:.3f}"))
    return rows


def test_ablation_pd_granularity(benchmark, show):
    rows = bench_once(benchmark, collect)
    show(ascii_table(
        ["App", "Global-Protection", "DLP (per-insn)"],
        rows,
        title="Ablation: PD granularity (speedup over baseline)",
    ))
    gp_mean = geometric_mean([float(r[1]) for r in rows])
    dlp_mean = geometric_mean([float(r[2]) for r in rows])
    # per-instruction PDs must not lose to the global PD on these apps
    assert dlp_mean >= 0.98 * gp_mean
