"""Fig. 6: memory access ratios, sorted, with the 1% CS/CI threshold."""

from conftest import bench_once

from repro.experiments.figures import fig6_data, render_fig6


def test_fig6_memratio(benchmark, show):
    data = bench_once(benchmark, fig6_data)
    show(render_fig6(data))
    assert len(data) == 18

    # the ratio-based classification must reproduce Table 2 exactly
    for c in data:
        assert c.matches_paper, f"{c.abbr}: predicted {c.predicted_type}"

    # sorted order puts every CS app before every CI app (threshold 1%)
    types = [c.paper_type for c in data]
    assert types == ["CS"] * 9 + ["CI"] * 9

    # STR has the highest ratio in the paper's Fig. 6
    assert data[-1].abbr in ("STR", "BFS")
