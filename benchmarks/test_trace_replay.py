"""Bench: 4-policy sweep economics — full simulation vs. trace replay.

The replay engine's pitch is "1 capture + 4 replays instead of 4 full
simulations".  This bench times both paths on two workloads, asserts the
capture/replay accounting on counters (never wall clock), and writes
``benchmarks/BENCH_trace_replay.json`` with the measured numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import bench_once

from repro.analysis import ascii_table
from repro.experiments.runner import harness_config, run_workload
from repro.trace import RECORDER_STATS, capture_records, replay_records
from repro.workloads import make_workload

APPS = ("BFS", "KM")
SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")
NUM_SMS = 2
SCALE = 0.5

BENCH_JSON = Path(__file__).parent / "BENCH_trace_replay.json"


def collect():
    config = harness_config(NUM_SMS)
    out = {}
    for app in APPS:
        t0 = time.perf_counter()
        for scheme in SCHEMES:
            run_workload(app, scheme, config, scale=SCALE)
        full_sim = time.perf_counter() - t0

        RECORDER_STATS.reset()
        t0 = time.perf_counter()
        records = capture_records(make_workload(app, SCALE), config)
        record_s = time.perf_counter() - t0
        assert RECORDER_STATS.captures == 1  # one capture...

        t0 = time.perf_counter()
        for scheme in SCHEMES:
            replay_records(records, config, scheme)
        replay_s = time.perf_counter() - t0
        assert RECORDER_STATS.captures == 1  # ...and replay never re-records

        out[app] = {
            "records": len(records),
            "full_sim_s": round(full_sim, 4),
            "record_s": round(record_s, 4),
            "replay_s": round(replay_s, 4),
            "record_plus_replay_s": round(record_s + replay_s, 4),
            "speedup": round(full_sim / (record_s + replay_s), 2),
        }
    return out


def test_trace_replay_economics(benchmark, show):
    data = bench_once(benchmark, collect)
    payload = {
        "schemes": list(SCHEMES),
        "num_sms": NUM_SMS,
        "scale": SCALE,
        "apps": data,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    show(ascii_table(
        ["App", "Records", "4x full sim (s)", "record+4x replay (s)",
         "speedup"],
        [
            (app, str(d["records"]), f"{d['full_sim_s']:.3f}",
             f"{d['record_plus_replay_s']:.3f}", f"{d['speedup']:.1f}x")
            for app, d in data.items()
        ],
        title="Trace replay vs. full simulation (4-policy sweep)",
    ))
    for app, d in data.items():
        # the claim is structural (front-end skipped), so replay must
        # win by a wide margin, not a timing-noise one
        assert d["speedup"] > 1.5, (app, d)
