"""Bench: analytical prediction tier vs. the exact fast-replay tier.

The predictor's pitch is "a whole app x scheme grid for the cost of one
profiling pass per app, and marginal cells for microseconds".  This
bench runs the full 18-app x 4-policy paper grid analytically, times
the exact fast-engine replay of the same cells, asserts the >=100x
warm-cell speedup the serve tier-0 depends on, and writes
``benchmarks/BENCH_predict.json`` with the measured speedups and the
grid-wide miss-rate error.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import bench_once

from repro.analysis import ascii_table
from repro.experiments.runner import harness_config
from repro.predict import PredictSweepExecutor
from repro.trace import capture_records, replay_records
from repro.workloads import ALL_APPS, make_workload

SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")
NUM_SMS = 2
SCALE = 0.25
SPEEDUP_FLOOR = 100.0   # warm analytical cell vs. exact replay cell

BENCH_JSON = Path(__file__).parent / "BENCH_predict.json"


def collect():
    config = harness_config(NUM_SMS)
    apps = list(ALL_APPS)
    cells = len(apps) * len(SCHEMES)

    # Cold sweep: every stream profiled once, then predicted per scheme.
    executor = PredictSweepExecutor(config=config)
    t0 = time.perf_counter()
    grid = executor.run_sweep(apps, SCHEMES, num_sms=NUM_SMS, scale=SCALE)
    cold_s = time.perf_counter() - t0
    assert executor.stats.profiled == len(apps)
    assert executor.stats.predicted == cells

    # Fresh model evaluation with profiles cached (a *new* cell for an
    # already-profiled stream): clear only the prediction memo.
    executor._predictions.clear()
    t0 = time.perf_counter()
    executor.run_sweep(apps, SCHEMES, num_sms=NUM_SMS, scale=SCALE)
    model_s = time.perf_counter() - t0
    model_cell_s = model_s / cells
    assert executor.stats.prediction_hits == 0

    # Warm sweep: prediction memo hot — the serve tier-0 steady state.
    t0 = time.perf_counter()
    executor.run_sweep(apps, SCHEMES, num_sms=NUM_SMS, scale=SCALE)
    warm_s = time.perf_counter() - t0
    warm_cell_s = warm_s / cells
    assert executor.stats.prediction_hits == cells

    # Exact tier: one capture per app, one fast replay per cell.
    errs = []
    exact_replay_s = 0.0
    for app in apps:
        records = [tuple(r) for r in
                   capture_records(make_workload(app, SCALE), config)]
        for scheme in SCHEMES:
            t0 = time.perf_counter()
            result = replay_records(iter(records), config, scheme,
                                    engine="fast")
            exact_replay_s += time.perf_counter() - t0
            exact_miss = 1.0 - result.l1d.hit_rate
            errs.append(abs(grid[app][scheme].miss_rate - exact_miss))
    exact_cell_s = exact_replay_s / cells

    return {
        "apps": len(apps),
        "schemes": list(SCHEMES),
        "cells": cells,
        "num_sms": NUM_SMS,
        "scale": SCALE,
        "cold_sweep_s": round(cold_s, 4),
        "model_sweep_s": round(model_s, 4),
        "model_cell_us": round(model_cell_s * 1e6, 2),
        "warm_sweep_s": round(warm_s, 4),
        "warm_cell_us": round(warm_cell_s * 1e6, 2),
        "exact_replay_cell_s": round(exact_cell_s, 4),
        "model_speedup": round(exact_cell_s / model_cell_s, 1),
        "warm_speedup": round(exact_cell_s / warm_cell_s, 1),
        "cold_speedup": round(exact_replay_s / cold_s, 1),
        "mean_abs_err": round(sum(errs) / len(errs), 6),
        "max_abs_err": round(max(errs), 6),
    }


def test_predict_speedup_and_accuracy(benchmark, show):
    data = bench_once(benchmark, collect)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
    show(ascii_table(
        ["Tier", "Per cell", "Grid (72 cells)"],
        [
            ("exact fast replay", f"{data['exact_replay_cell_s']:.4f} s",
             f"{data['exact_replay_cell_s'] * data['cells']:.2f} s"),
            ("predict (cold)", "-", f"{data['cold_sweep_s']:.2f} s"),
            ("predict (model eval)", f"{data['model_cell_us']:.0f} us",
             f"{data['model_sweep_s']:.4f} s"),
            ("predict (warm memo)", f"{data['warm_cell_us']:.0f} us",
             f"{data['warm_sweep_s']:.4f} s"),
        ],
        title=(f"Analytical tier: {data['warm_speedup']:.0f}x per warm "
               f"cell, grid mean |err| {data['mean_abs_err']:.4f} "
               f"(max {data['max_abs_err']:.4f})"),
    ))
    # The serve tier-0 contract: a warm analytical answer must be at
    # least two orders of magnitude cheaper than the exact engine.
    assert data["warm_speedup"] >= SPEEDUP_FLOOR, data
    # And the answers must stay inside the committed envelope's bounds.
    assert data["mean_abs_err"] <= 0.02, data
    assert data["max_abs_err"] <= 0.12, data
