"""Fig. 10: IPC of baseline / Stall-Bypass / Global-Protection / DLP /
32KB, normalized to the 16 KB baseline, with CS and CI geomeans.

Paper shape to reproduce (Section 6.1): for CI applications DLP clearly
beats the baseline and sits at or above Global-Protection, which in turn
beats Stall-Bypass; doubling the cache to 32 KB is comparable to (a bit
above) DLP.  For CS applications every scheme stays near 1.0.
"""

from conftest import bench_once

from repro.experiments.figures import fig10_data, render_policy_figure


def test_fig10_ipc_policies(benchmark, show):
    per_app, means, labels = bench_once(benchmark, fig10_data)
    show(render_policy_figure((per_app, means, labels), "Fig. 10: normalized IPC"))

    ci = means["CI"]
    cs = means["CS"]

    # CI ordering: DLP > Stall-Bypass and DLP >= ~Global-Protection
    assert ci["DLP"] > 1.05, f"DLP CI geomean {ci['DLP']:.3f}"
    assert ci["DLP"] > ci["Stall-Bypass"]
    assert ci["DLP"] >= 0.97 * ci["Global-Protection"]
    assert ci["Global-Protection"] > 1.0

    # 32KB is the upper reference, DLP within reach of it
    assert ci["32KB"] >= ci["DLP"]

    # CS applications: protection schemes are safe (within a few %)
    assert cs["DLP"] > 0.95
    assert cs["Global-Protection"] > 0.95

    # every CI app: DLP never loses more than a whisker vs baseline
    from repro.workloads import CI_APPS
    for app in CI_APPS:
        assert per_app[app]["DLP"] > 0.95, f"{app} regressed under DLP"
