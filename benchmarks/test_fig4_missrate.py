"""Fig. 4: reuse-data miss rate at 16/32/64 KB (compulsory excluded).

Paper shape: the reuse-data miss rate drops for most applications as
associativity grows; apps whose RDs cluster entirely in the short or
long extremes (HG, STEN, SC, BP) barely move.
"""

from conftest import bench_once, fig4_cached

from repro.experiments.figures import CAPACITIES_KB, render_fig4
from repro.workloads import CI_APPS


def test_fig4_missrate(benchmark, show):
    data = bench_once(benchmark, fig4_cached)
    show(render_fig4(data))
    assert len(data) == 18

    # capacity monotonicity for every application
    for app, rates in data.items():
        assert rates[16] >= rates[32] >= rates[64], f"{app} not monotone"

    # CI applications must be meaningfully capacity-starved at 16 KB
    starved = [app for app in CI_APPS if data[app][16] > 0.2]
    assert len(starved) >= 6, f"too few capacity-starved CI apps: {starved}"

    # and a larger cache must visibly help at least half of the CI group
    helped = [
        app for app in CI_APPS if data[app][16] - data[app][64] > 0.1
    ]
    assert len(helped) >= 5, f"64KB helps too few CI apps: {helped}"
