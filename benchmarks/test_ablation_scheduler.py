"""Ablation: warp scheduler sensitivity (GTO vs loose round robin).

The paper fixes GTO (Table 1).  DLP's benefit should not depend on the
scheduler: LRR spreads warps more evenly (different interleave, longer
per-warp reuse gaps), but protection still converts VTA-visible misses
into hits.
"""

import dataclasses

from conftest import bench_once

from repro.analysis import ascii_table
from repro.core import make_policy
from repro.experiments.runner import harness_config
from repro.gpu import GpuSimulator
from repro.workloads import make_workload

APPS = ("SS", "CFD")


def collect():
    rows = []
    for scheduler in ("gto", "lrr"):
        config = dataclasses.replace(harness_config(), scheduler=scheduler)
        for app in APPS:
            workload = make_workload(app)
            cycles = {}
            for policy in ("baseline", "dlp"):
                sim = GpuSimulator(
                    workload.kernels(), config, lambda p=policy: make_policy(p)
                )
                cycles[policy] = sim.run().cycles
            rows.append(
                (scheduler.upper(), app,
                 f"{cycles['baseline'] / cycles['dlp']:.3f}")
            )
    return rows


def test_ablation_scheduler(benchmark, show):
    rows = bench_once(benchmark, collect)
    show(ascii_table(
        ["Scheduler", "App", "DLP speedup"],
        rows,
        title="Ablation: scheduler sensitivity of DLP",
    ))
    # DLP must be profitable under both schedulers on these apps
    for scheduler, app, speedup in rows:
        assert float(speedup) > 0.98, f"{app} under {scheduler}"
    gto = [float(r[2]) for r in rows if r[0] == "GTO"]
    assert max(gto) > 1.05, "DLP should clearly win somewhere under GTO"
