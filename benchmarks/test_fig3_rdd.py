"""Fig. 3: Reuse Distance Distribution of the 18 applications.

Paper shape to reproduce: RDDs vary widely across applications; SC/BP
concentrate in the short ranges while streaming apps like HG sit in the
long range; MM spreads across all four ranges.
"""

from conftest import bench_once, fig3_cached

from repro.experiments.figures import render_fig3


def test_fig3_rdd(benchmark, show):
    data = bench_once(benchmark, fig3_cached)
    show(render_fig3(data))
    assert len(data) == 18
    for app, fracs in data.items():
        assert abs(sum(fracs) - 1.0) < 1e-9, f"{app} fractions don't sum to 1"

    # shape checks against the paper's Fig. 3
    assert data["SC"][0] > 0.5, "SC should be dominated by RD 1~4"
    assert data["BP"][0] > 0.4, "BP should be short-RD heavy"
    assert data["STEN"][3] > 0.9, "STEN reuses should sit in RD >65"
    assert data["HG"][2] + data["HG"][3] > 0.5, "HG reuses should skew long"
    # MM: spread across ranges (no single range above ~80%)
    assert max(data["MM"]) < 0.8, "MM RDD should be spread across ranges"
