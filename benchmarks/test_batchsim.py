"""Bench: the whole ablation grid in one batch pass.

The batch engine's contract is "the 17-cell ablation grid for the
wall-clock of a couple of fastsim cells".  The unit of comparison is a
*sweep cell*: read + decode + replay of one recorded trace, exactly
what ``repro sweep --replay`` and ``repro trace replay`` pay per cell.
Solo fastsim pays the scalar per-record decode for every cell; the
batch engine decodes once (vectorized), partitions once, and advances
every lane through the shared stream — lanes with provably identical
trajectories (baseline vs stall_bypass, replay-inert knobs) share one
kernel run outright.

This bench replays the full 17-cell grid both ways on BFS (the
workload's hit/miss mix is representative; see BENCH_trace_replay),
asserts every lane bit-identical to its solo fast replay, asserts the
wall-clock budget, and writes ``benchmarks/BENCH_batchsim.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import bench_once

from repro.analysis import ascii_table
from repro.batchsim.engine import replay_batch
from repro.experiments.runner import harness_config
from repro.trace.format import TraceReader
from repro.trace.record import record_workload
from repro.trace.replay import replay_trace
from repro.workloads import make_workload

APP = "BFS"
NUM_SMS = 2
SCALE = 1.0

#: The full differential ablation grid (tests/batchsim mirrors this).
ABLATIONS = [
    ("baseline", {}),
    ("stall_bypass", {}),
    ("global_protection", {}),
    ("global_protection", {"nasc": 0}),
    ("global_protection", {"bypass_enabled": False}),
    ("global_protection", {"vta_assoc": 2}),
    ("global_protection", {"pd_bits": 2}),
    ("dlp", {}),
    ("dlp", {"pd_bits": 2}),
    ("dlp", {"pd_bits": 6}),
    ("dlp", {"vta_assoc": 2}),
    ("dlp", {"vta_assoc": 8}),
    ("dlp", {"nasc": 0}),
    ("dlp", {"nasc": 3}),
    ("dlp", {"bypass_enabled": False}),
    ("dlp", {"sample_limit": 50}),
    ("dlp", {"insn_sample_limit": 500}),
]

#: Acceptance: the whole grid must cost at most this many single-cell
#: fastsim wall-clocks.
MAX_GRID_RATIO = 3.0

BENCH_JSON = Path(__file__).parent / "BENCH_batchsim.json"


def collect(trace_path):
    config = harness_config(NUM_SMS)
    reader = TraceReader(trace_path)
    # warm both code paths (bytecode, kernel codegen, numpy imports)
    replay_trace(TraceReader(trace_path), "dlp", config, engine="fast")
    replay_batch(TraceReader(trace_path), ABLATIONS[:2], config)

    def timed(fn, repeats=3):
        """Median-of-N wall clock (single-shot replay timings jitter)."""
        times, value = [], None
        for _ in range(repeats):
            t0 = time.perf_counter()
            value = fn()
            times.append(time.perf_counter() - t0)
        times.sort()
        return times[len(times) // 2], value

    cell_s, _ = timed(lambda: replay_trace(
        TraceReader(trace_path), "dlp", config, engine="fast"))
    batch_s, batched = timed(lambda: replay_batch(
        TraceReader(trace_path), ABLATIONS, config))

    t0 = time.perf_counter()
    serial = [
        replay_trace(TraceReader(trace_path), scheme, config,
                     engine="fast", **kwargs)
        for scheme, kwargs in ABLATIONS
    ]
    serial_s = time.perf_counter() - t0

    identical = all(
        a.to_dict() == b.to_dict() for a, b in zip(batched, serial)
    )
    return {
        "records": reader.total_records,
        "cells": len(ABLATIONS),
        "fast_cell_s": round(cell_s, 4),
        "batch_grid_s": round(batch_s, 4),
        "serial_grid_s": round(serial_s, 4),
        "grid_ratio": round(batch_s / cell_s, 2),
        "grid_speedup": round(serial_s / batch_s, 2),
        "identical": identical,
    }


def test_batchsim_grid_economics(benchmark, show, tmp_path):
    trace_path = tmp_path / "bfs.rptr"
    record_workload(make_workload(APP, SCALE),
                    harness_config(NUM_SMS), trace_path)
    data = bench_once(benchmark, lambda: collect(trace_path))
    payload = {
        "app": APP,
        "num_sms": NUM_SMS,
        "scale": SCALE,
        "max_grid_ratio": MAX_GRID_RATIO,
        **data,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    show(ascii_table(
        ["metric", "value"],
        [
            ("trace records", str(data["records"])),
            ("grid cells", str(data["cells"])),
            ("one fastsim cell", f"{data['fast_cell_s']:.3f} s"),
            ("batch grid (17 lanes)", f"{data['batch_grid_s']:.3f} s"),
            ("serial grid (17 cells)", f"{data['serial_grid_s']:.3f} s"),
            ("grid / cell ratio", f"{data['grid_ratio']:.2f}x "
                                  f"(budget {MAX_GRID_RATIO:.0f}x)"),
            ("batch vs serial", f"{data['grid_speedup']:.2f}x"),
            ("bit-identical", str(data["identical"])),
        ],
        title=f"17-cell ablation grid, one pass ({APP} scale {SCALE})",
    ))
    assert data["identical"], "batch lanes diverged from solo fastsim"
    assert data["grid_ratio"] <= MAX_GRID_RATIO, (
        f"17-cell grid cost {data['grid_ratio']:.2f}x one fastsim cell, "
        f"budget is {MAX_GRID_RATIO:.0f}x"
    )
