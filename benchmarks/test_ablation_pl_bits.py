"""Ablation: Protected Life field width (the paper uses 4 bits).

A wider PL field lets protection span longer reuse distances at extra
per-line storage; a narrower one saturates too early to protect the
9~64 range at all.
"""

from conftest import bench_once

from repro.analysis import ascii_table
from repro.core.overhead import compute_overhead
from repro.experiments.runner import harness_config, run_workload

PL_BITS = (2, 3, 4, 6)
APP = "SR2K"


def collect():
    config = harness_config()
    base = run_workload(APP, "baseline", config).cycles
    rows = []
    for bits in PL_BITS:
        r = run_workload(APP, "dlp", config, pd_bits=bits)
        cost = compute_overhead(pl_bits=bits, pd_bits=bits).total_extra_bytes
        rows.append((str(bits), f"{base / r.cycles:.3f}",
                     f"{r.l1d.hit_rate:.3f}", f"{cost} B"))
    return rows


def test_ablation_pl_bits(benchmark, show):
    rows = bench_once(benchmark, collect)
    show(ascii_table(
        ["PL bits", "Speedup", "L1D hit rate", "DLP storage"],
        rows,
        title=f"Ablation: Protected Life width on {APP}",
    ))
    by_bits = {int(r[0]): float(r[1]) for r in rows}
    # 4 bits must capture most of the achievable benefit
    best = max(by_bits.values())
    assert by_bits[4] >= 0.9 * best
    assert by_bits[4] > 1.0
