"""Fig. 12: L1D hit rate (a) and normalized number of hits (b).

Paper shape (Section 6.3): DLP's hit *rate* on CI applications is
consistently at or above every other scheme (even where its raw hit
count drops, e.g. PVR), because bypassed accesses don't count against
the rate and protected lines collect more reuse.
"""

from conftest import bench_once

from repro.experiments.figures import fig12a_data, fig12b_data, render_policy_figure
from repro.workloads import CI_APPS


def test_fig12a_hit_rate(benchmark, show):
    per_app, _, labels = bench_once(benchmark, fig12a_data)
    show(render_policy_figure((per_app, {}, labels), "Fig. 12a: L1D hit rate"))

    better_or_equal = sum(
        per_app[app]["DLP"] >= per_app[app]["16KB(Baseline)"] - 0.02
        for app in CI_APPS
    )
    assert better_or_equal >= 7, "DLP hit rate should rarely drop on CI apps"

    strictly_better = sum(
        per_app[app]["DLP"] > per_app[app]["16KB(Baseline)"] + 0.01
        for app in CI_APPS
    )
    assert strictly_better >= 3, "DLP should raise the hit rate on several CI apps"


def test_fig12b_hit_count(benchmark, show):
    per_app, means, labels = bench_once(benchmark, fig12b_data)
    show(render_policy_figure((per_app, means, labels), "Fig. 12b: normalized L1D hits"))

    ci = means["CI"]
    # protection schemes retain at least as many hits as the baseline on
    # the CI geomean (Stall-Bypass may lose some)
    assert ci["DLP"] > 0.9
    assert ci["Global-Protection"] > 0.9
