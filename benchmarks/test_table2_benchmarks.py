"""Table 2: the benchmark applications and their CS/CI classes."""

from conftest import bench_once

from repro.experiments.figures import render_table2, table2_data


def test_table2_benchmarks(benchmark, show):
    rows = bench_once(benchmark, table2_data)
    assert len(rows) == 18
    show(render_table2())
    types = [r[3] for r in rows]
    assert types.count("CS") == 9
    assert types.count("CI") == 9
