"""Fig. 5: IPC at 16/32/64 KB L1D, normalized to 16 KB.

Paper shape: several CI applications speed up markedly with larger
caches, while low-memory-ratio CS applications (e.g. HS, NW) barely
react because memory is a small fraction of their execution.
"""

from conftest import bench_once

from repro.analysis import geometric_mean
from repro.experiments.figures import fig5_data, render_fig5
from repro.workloads import CI_APPS, CS_APPS


def test_fig5_ipc_size(benchmark, show):
    data = bench_once(benchmark, fig5_data)
    show(render_fig5(data))
    assert len(data) == 18

    ci_64 = geometric_mean([data[a]["64KB"] for a in CI_APPS])
    cs_64 = geometric_mean([data[a]["64KB"] for a in CS_APPS])

    # CI applications benefit from capacity far more than CS ones
    assert ci_64 > 1.10, f"CI apps gained only {ci_64:.3f} at 64KB"
    assert ci_64 > cs_64

    # CS applications stay within a narrow band of the baseline
    for app in CS_APPS:
        assert 0.9 < data[app]["64KB"] < 1.25, f"{app} moved too much"

    # capacity is (weakly) monotone on the CI geomean
    ci_32 = geometric_mean([data[a]["32KB"] for a in CI_APPS])
    assert ci_64 >= 0.98 * ci_32
