"""GPUConfig — Table 1 parameters and variants."""

import pytest

from repro.gpu.config import BASELINE_CONFIG, GPUConfig, L1DConfig


class TestTable1Defaults:
    def test_core_counts(self):
        cfg = GPUConfig()
        assert cfg.num_sms == 16
        assert cfg.warp_size == 32
        assert cfg.max_warps_per_sm == 48
        assert cfg.schedulers_per_sm == 2
        assert cfg.scheduler == "gto"

    def test_l1d_is_16kb_4way_hash(self):
        l1 = GPUConfig().l1d
        assert l1.size_bytes == 16 * 1024
        assert l1.num_sets == 32
        assert l1.assoc == 4
        assert l1.index_fn == "hash"

    def test_l2_is_768kb(self):
        assert GPUConfig().l2_size_bytes == 768 * 1024

    def test_twelve_partitions(self):
        assert GPUConfig().num_partitions == 12

    def test_table1_rows_cover_every_parameter(self):
        rows = dict(GPUConfig().table1_rows())
        assert rows["Number of Cores"] == "16"
        assert rows["L1D cache"] == "16KB, 32sets, 4-ways, Hash index"
        assert rows["L2 cache"] == "768KB, 64sets, 8-ways, Linear index"
        assert rows["Memory Bandwidth"] == "177.4 GB/s"
        assert "GTO" in rows["Warp schedulers per core"]


class TestVariants:
    def test_capacity_variants(self):
        assert GPUConfig().with_l1d_size_kb(32).l1d.assoc == 8
        assert GPUConfig().with_l1d_size_kb(64).l1d.assoc == 16

    def test_unsupported_capacity_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig().with_l1d_size_kb(128)

    def test_with_l1d_replaces_fields(self):
        cfg = GPUConfig().with_l1d(mshr_entries=64)
        assert cfg.l1d.mshr_entries == 64
        assert cfg.l1d.num_sets == 32  # untouched

    def test_scaled_preserves_per_sm_bandwidth(self):
        scaled = GPUConfig().scaled(4)
        assert scaled.num_sms == 4
        assert scaled.num_partitions == 3  # 12 * 4/16
        assert scaled.l1d == GPUConfig().l1d

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            BASELINE_CONFIG.num_sms = 1  # type: ignore[misc]

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0)
        with pytest.raises(ValueError):
            GPUConfig(scheduler="fifo")
        with pytest.raises(ValueError):
            GPUConfig(num_partitions=0)

    def test_l2_geometry(self):
        geo = GPUConfig().l2_geometry()
        assert geo.num_sets == 64
        assert geo.assoc == 8
        assert geo.index_fn == "linear"
