"""Timing simulator: end-to-end execution, accounting and invariants."""

import numpy as np
import pytest

from repro.core import make_policy
from repro.gpu import GpuSimulator, Kernel, compute, load, store
from repro.gpu.simulator import DeadlockError


def run(kernels, config, policy="baseline", **kw):
    sim = GpuSimulator(kernels, config, lambda: make_policy(policy), **kw)
    return sim.run()


def compute_only(cta, w):
    yield compute(10)
    yield compute(10)


def one_load(cta, w):
    yield compute(2)
    yield load(0x100, np.arange(32) * 4 + (cta * 64 + w) * 4096)
    yield compute(2)


class TestBasicExecution:
    def test_compute_only_kernel_completes(self, tiny_config):
        result = run(Kernel("c", 2, 2, compute_only), tiny_config)
        # 2 CTAs x 2 warps x 20 warp-instructions x 32 threads
        assert result.thread_insns == 2 * 2 * 20 * 32
        assert result.cycles > 0
        assert result.ipc > 0

    def test_ipc_bounded_by_issue_width(self, tiny_config):
        result = run(Kernel("c", 2, 2, compute_only), tiny_config)
        max_ipc = tiny_config.schedulers_per_sm * tiny_config.warp_size
        assert result.ipc <= max_ipc + 1e-9

    def test_loads_reach_the_cache(self, tiny_config):
        result = run(Kernel("l", 2, 2, one_load), tiny_config)
        assert result.l1d.loads == 4
        assert result.l1d.misses == 4   # all cold
        assert result.l1d.fills == 4

    def test_memory_latency_costs_cycles(self, tiny_config):
        fast = run(Kernel("c", 1, 1, compute_only), tiny_config)
        slow = run(Kernel("l", 1, 1, one_load), tiny_config)
        assert slow.cycles > fast.cycles

    def test_stores_are_fire_and_forget(self, tiny_config):
        def trace(cta, w):
            yield store(0x10, np.arange(32) * 4)
            yield compute(1)

        result = run(Kernel("s", 1, 1, trace), tiny_config)
        assert result.l1d.stores == 1
        assert result.l1d.sent_writes == 1

    def test_interconnect_traffic_counted(self, tiny_config):
        result = run(Kernel("l", 2, 2, one_load), tiny_config)
        assert result.interconnect["request_packets"] == 4
        assert result.interconnect["response_packets"] == 4
        assert result.interconnect["total_bytes"] > 0

    def test_l2_and_dram_stats_propagate(self, tiny_config):
        result = run(Kernel("l", 2, 2, one_load), tiny_config)
        assert result.dram["reads"] == result.l2["dram_reads"]
        assert result.l2["reads"] == 4


class TestKernelSequencing:
    def test_kernels_run_in_order(self, tiny_config):
        calls = []

        def k1(cta, w):
            calls.append("k1")
            yield compute(1)

        def k2(cta, w):
            calls.append("k2")
            yield compute(1)

        run([Kernel("k1", 1, 1, k1), Kernel("k2", 1, 1, k2)], tiny_config)
        assert calls == ["k1", "k2"]

    def test_many_ctas_dispatch_in_waves(self, tiny_config):
        # 8 CTAs on one SM with 2 slots: requires slot recycling
        result = run(Kernel("c", 8, 2, compute_only), tiny_config)
        assert result.thread_insns == 8 * 2 * 20 * 32

    def test_empty_kernel_list_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            GpuSimulator([], tiny_config, lambda: make_policy("baseline"))


class TestMshrMergeTiming:
    def test_same_block_loads_merge(self, tiny_config):
        def trace(cta, w):
            yield load(0x10, np.full(32, 0x8000))
            yield compute(1)

        result = run(Kernel("m", 1, 2, trace), tiny_config)
        # one warp misses, the other merges (pending hit)
        assert result.l1d.misses == 1
        assert result.l1d.hit_reserved == 1
        assert result.l2["reads"] == 1


class TestSharing:
    def test_second_pass_hits(self, tiny_config):
        def trace(cta, w):
            yield load(0x10, np.full(32, 0x9000))
            yield compute(5)
            yield load(0x18, np.full(32, 0x9000))

        result = run(Kernel("h", 1, 1, trace), tiny_config)
        assert result.l1d.hits == 1


class TestTruncation:
    def test_max_cycles_truncates(self, tiny_config):
        def endless(cta, w):
            for i in range(10_000):
                yield compute(10)

        result = run(Kernel("e", 1, 1, endless), tiny_config, max_cycles=200)
        assert result.truncated
        assert result.cycles <= 201


class TestMemAccessRatio:
    def test_ratio_matches_definition(self, tiny_config):
        result = run(Kernel("l", 2, 2, one_load), tiny_config)
        assert result.mem_access_ratio == pytest.approx(
            result.l1d.accesses / result.thread_insns
        )

    def test_summary_keys(self, tiny_config):
        result = run(Kernel("l", 1, 1, one_load), tiny_config)
        summary = result.summary()
        for key in ("cycles", "ipc", "l1d_hit_rate", "icnt_bytes"):
            assert key in summary


class TestDeterminism:
    def test_same_run_same_results(self, tiny_config):
        r1 = run(Kernel("l", 2, 2, one_load), tiny_config)
        r2 = run(Kernel("l", 2, 2, one_load), tiny_config)
        assert r1.cycles == r2.cycles
        assert r1.l1d.as_dict() == r2.l1d.as_dict()
