"""Streaming multiprocessor: issue, CTA accounting, LD/ST integration."""

import numpy as np
import pytest

from repro.core.baseline import BaselinePolicy
from repro.gpu.config import GPUConfig, L1DConfig
from repro.gpu.isa import compute, load, store
from repro.gpu.kernel import Kernel
from repro.gpu.sm import StreamingMultiprocessor


class Harness:
    def __init__(self, config=None):
        self.config = config or GPUConfig(
            num_sms=1, num_partitions=1, max_warps_per_sm=8, max_ctas_per_sm=2,
            l1d=L1DConfig(num_sets=4, assoc=2, hit_latency=2),
        )
        self.now = 0
        self.events = []
        self.sent = []
        self.cta_done = 0
        self.sm = StreamingMultiprocessor(
            0, self.config, BaselinePolicy(), self.schedule,
            self.sent.append, lambda sm: self._on_done(),
        )

    def _on_done(self):
        self.cta_done += 1

    def schedule(self, delay, fn):
        self.events.append([self.now + delay, fn])

    def tick(self, cycles=1):
        for _ in range(cycles):
            for ev in sorted(self.events, key=lambda e: e[0]):
                if ev[0] <= self.now:
                    self.events.remove(ev)
                    ev[1]()
            self.sm.step(self.now)
            self.now += 1

    def run_to_idle(self, limit=10_000):
        while (not self.sm.is_idle or self.events) and self.now < limit:
            self.tick()
        assert self.now < limit, "SM did not go idle"


def kernel_of(trace_fn, ctas=1, warps=1):
    return Kernel("k", ctas, warps, trace_fn)


class TestComputeIssue:
    def test_counts_thread_instructions(self):
        h = Harness()

        def trace(cta, w):
            yield compute(3)
            yield compute(2)

        h.sm.add_cta(kernel_of(trace), 0, 0)
        h.run_to_idle()
        assert h.sm.thread_insns == 5 * 32
        assert h.sm.warp_insns == 5

    def test_cta_completion_callback(self):
        h = Harness()

        def trace(cta, w):
            yield compute(1)

        h.sm.add_cta(kernel_of(trace, warps=2), 0, 0)
        h.run_to_idle()
        assert h.cta_done == 1
        assert h.sm.active_warps == 0

    def test_empty_cta_completes_immediately(self):
        h = Harness()
        h.sm.add_cta(kernel_of(lambda c, w: iter([])), 0, 0)
        assert h.cta_done == 1


class TestCtaSlots:
    def test_free_slots_respects_warp_budget(self):
        h = Harness()
        # 8 warps max, CTA of 5 warps: only one fits
        assert h.sm.free_slots(5) == 1
        assert h.sm.free_slots(4) == 2
        assert h.sm.free_slots(3) == 2  # slot-limited

    def test_oversized_cta_rejected(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.sm.free_slots(9)

    def test_no_free_slot_raises_on_add(self):
        h = Harness()

        def trace(cta, w):
            yield compute(100)

        kernel = kernel_of(trace, ctas=3, warps=4)
        h.sm.add_cta(kernel, 0, 0)
        h.sm.add_cta(kernel, 1, 10)
        with pytest.raises(RuntimeError):
            h.sm.add_cta(kernel, 2, 20)


class TestMemoryIssue:
    def test_load_walks_through_l1d(self):
        h = Harness()

        def trace(cta, w):
            yield load(0x40, np.arange(32) * 4)
            yield compute(1)

        h.sm.add_cta(kernel_of(trace), 0, 0)
        h.tick(3)
        assert h.sm.l1d.stats.misses == 1
        # complete the fetch
        for waiter in h.sm.l1d.fill(h.sent[0].block_addr, h.now):
            h.sm.complete_request(waiter)
        h.run_to_idle()
        assert h.sm.thread_insns == 32 + 32

    def test_store_does_not_block_warp(self):
        h = Harness()

        def trace(cta, w):
            yield store(0x40, np.arange(32) * 4)
            yield compute(1)

        h.sm.add_cta(kernel_of(trace), 0, 0)
        h.run_to_idle()  # finishes without any fill
        assert h.sm.l1d.stats.stores == 1

    def test_divergent_load_generates_multiple_requests(self):
        h = Harness()

        def trace(cta, w):
            yield load(0x40, np.arange(4) * 128)  # 4 distinct lines

        h.sm.add_cta(kernel_of(trace), 0, 0)
        h.tick(8)
        assert h.sm.l1d.stats.misses == 4
        assert h.sm.ldst.stats.requests_sent == 4

    def test_instruction_notifications_reach_policy(self):
        h = Harness()
        seen = []
        h.sm.policy.notify_instructions = seen.append

        def trace(cta, w):
            yield compute(2)

        h.sm.add_cta(kernel_of(trace), 0, 0)
        h.run_to_idle()
        assert seen == [64]
