"""Warp-level instruction model."""

import numpy as np
import pytest

from repro.gpu.isa import ComputeOp, MemOp, compute, load, store, trace_stats
from repro.utils.hashing import hash_pc


class TestComputeOp:
    def test_count_stored(self):
        assert compute(5).count == 5

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            compute(0)

    def test_equality(self):
        assert compute(3) == compute(3)
        assert compute(3) != compute(4)


class TestMemOp:
    def test_load_and_store_flags(self):
        assert not load(0x10, [0]).is_write
        assert store(0x10, [0]).is_write

    def test_insn_id_precomputed(self):
        op = load(0x123, [0])
        assert op.insn_id == hash_pc(0x123)

    def test_active_lanes(self):
        assert load(0, np.arange(32)).active_lanes == 32
        assert load(0, [1, 2, 3]).active_lanes == 3

    def test_rejects_empty_lanes(self):
        with pytest.raises(ValueError):
            MemOp(False, 0, [])

    def test_repr_mentions_kind(self):
        assert "LD" in repr(load(0, [0]))
        assert "ST" in repr(store(0, [0]))


class TestTraceStats:
    def test_counts(self):
        ops = [compute(4), load(0x10, np.arange(32) * 4), store(0x18, [0, 4])]
        stats = trace_stats(ops)
        # 4*32 compute threads + 32 + 2 memory lanes
        assert stats["thread_instructions"] == 128 + 32 + 2
        assert stats["mem_ops"] == 2
        assert stats["distinct_pcs"] == 2

    def test_empty_trace(self):
        stats = trace_stats([])
        assert stats["thread_instructions"] == 0
        assert stats["mem_ops"] == 0
