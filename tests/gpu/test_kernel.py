"""Kernel/CTA abstractions."""

import pytest

from repro.gpu.isa import compute
from repro.gpu.kernel import Kernel, KernelSequence, as_kernel_list


def trace(cta, warp):
    yield compute(cta + warp + 1)


class TestKernel:
    def test_total_warps(self):
        k = Kernel("k", num_ctas=4, warps_per_cta=8, trace_fn=trace)
        assert k.total_warps == 32

    def test_warp_trace_parameterised(self):
        k = Kernel("k", 4, 8, trace)
        ops = list(k.warp_trace(2, 3))
        assert ops[0].count == 6

    def test_bounds_checked(self):
        k = Kernel("k", 2, 2, trace)
        with pytest.raises(IndexError):
            k.warp_trace(2, 0)
        with pytest.raises(IndexError):
            k.warp_trace(0, 2)

    def test_all_traces_covers_grid(self):
        k = Kernel("k", 3, 2, trace)
        assert len(list(k.all_traces())) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            Kernel("k", 0, 1, trace)
        with pytest.raises(ValueError):
            Kernel("k", 1, 0, trace)


class TestSequence:
    def test_total_warps_sums(self):
        seq = KernelSequence("s", [Kernel("a", 2, 2, trace), Kernel("b", 1, 4, trace)])
        assert seq.total_warps == 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KernelSequence("s", [])


class TestAsKernelList:
    def test_single_kernel(self):
        k = Kernel("k", 1, 1, trace)
        assert as_kernel_list(k) == [k]

    def test_sequence(self):
        ks = [Kernel("a", 1, 1, trace), Kernel("b", 1, 1, trace)]
        assert as_kernel_list(KernelSequence("s", ks)) == ks

    def test_plain_list(self):
        ks = [Kernel("a", 1, 1, trace)]
        assert as_kernel_list(ks) == ks
