"""Warp state machine."""

import pytest

from repro.gpu.isa import compute, load
from repro.gpu.warp import Warp


def make_warp(ops):
    return Warp(gid=0, cta_slot=0, age=0, trace=iter(ops))


class TestTraceWalk:
    def test_empty_trace_is_done_immediately(self):
        assert make_warp([]).done

    def test_peek_then_advance(self):
        w = make_warp([compute(2), compute(3)])
        assert w.peek().count == 2
        w.advance()
        assert w.peek().count == 3
        w.advance()
        assert w.done

    def test_advance_past_end_raises(self):
        w = make_warp([compute(1)])
        w.advance()
        with pytest.raises(RuntimeError):
            w.advance()


class TestMemoryWait:
    def test_wait_and_complete(self):
        w = make_warp([load(0, [0]), compute(1)])
        w.begin_memory_wait(3)
        assert not w.is_ready(100)
        assert not w.complete_request(5)
        assert not w.complete_request(6)
        assert w.complete_request(7)   # last one wakes the warp
        assert w.is_ready(7)
        assert w.ready_time == 7

    def test_spurious_completion_raises(self):
        w = make_warp([compute(1)])
        with pytest.raises(RuntimeError):
            w.complete_request(0)

    def test_zero_requests_rejected(self):
        w = make_warp([compute(1)])
        with pytest.raises(ValueError):
            w.begin_memory_wait(0)


class TestReadiness:
    def test_ready_time_gates(self):
        w = make_warp([compute(1)])
        w.ready_time = 10
        assert not w.is_ready(9)
        assert w.is_ready(10)

    def test_done_warp_never_ready(self):
        w = make_warp([])
        assert not w.is_ready(0)
