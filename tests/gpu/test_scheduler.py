"""GTO and LRR warp schedulers."""

import pytest

from repro.gpu.isa import compute
from repro.gpu.scheduler import GtoScheduler, LrrScheduler, make_scheduler
from repro.gpu.warp import Warp


def make_warp(gid, age, n_ops=5):
    return Warp(gid=gid, cta_slot=0, age=age, trace=iter([compute(1)] * n_ops))


class TestGto:
    def test_picks_oldest_first(self):
        sched = GtoScheduler()
        young = make_warp(1, age=10)
        old = make_warp(0, age=2)
        sched.add_warp(young)
        sched.add_warp(old)
        assert sched.pick(0) is old

    def test_greedy_sticks_to_last_warp(self):
        sched = GtoScheduler()
        a, b = make_warp(0, 0), make_warp(1, 1)
        sched.add_warp(a)
        sched.add_warp(b)
        picked = sched.pick(0)
        sched.consume(picked, 1, 0)
        sched.notify_ready(picked)  # becomes ready again next cycle
        assert sched.pick(1) is picked  # greedy: same warp, not the other

    def test_falls_back_when_greedy_warp_not_ready(self):
        sched = GtoScheduler()
        a, b = make_warp(0, 0), make_warp(1, 1)
        sched.add_warp(a)
        sched.add_warp(b)
        sched.consume(a, 1, 0)  # a issued, not re-notified (e.g. at memory)
        assert sched.pick(1) is b

    def test_busy_until_blocks_issue(self):
        sched = GtoScheduler()
        a = make_warp(0, 0)
        sched.add_warp(a)
        sched.consume(a, 5, 0)
        sched.notify_ready(a)
        assert sched.pick(3) is None       # busy until cycle 5
        assert sched.pick(5) is a

    def test_stale_heap_entries_skipped(self):
        sched = GtoScheduler()
        a, b = make_warp(0, 0), make_warp(1, 1)
        sched.add_warp(a)
        sched.add_warp(b)
        sched.consume(a, 1, 0)   # a's heap entry is now stale
        sched.last_warp = None   # disable greedy shortcut
        assert sched.pick(1) is b

    def test_remove_warp(self):
        sched = GtoScheduler()
        a = make_warp(0, 0)
        sched.add_warp(a)
        sched.remove_warp(a)
        assert sched.pick(0) is None
        assert sched.last_warp is None or sched.last_warp is not a

    def test_done_warp_not_renotified(self):
        sched = GtoScheduler()
        a = make_warp(0, 0, n_ops=1)
        sched.add_warp(a)
        a.advance()  # done
        sched.notify_ready(a)
        sched.last_warp = None
        assert sched.pick(0) is None

    def test_empty_scheduler(self):
        assert GtoScheduler().pick(0) is None


class TestLrr:
    def test_rotates_through_ready_warps(self):
        sched = LrrScheduler()
        warps = [make_warp(i, i) for i in range(3)]
        for w in warps:
            sched.add_warp(w)
        order = []
        for cycle in range(3):
            w = sched.pick(cycle)
            order.append(w.gid)
            sched.consume(w, 1, cycle)
            sched.notify_ready(w)
        assert order == [0, 1, 2]

    def test_skips_unready(self):
        sched = LrrScheduler()
        a, b = make_warp(0, 0), make_warp(1, 1)
        sched.add_warp(a)
        sched.add_warp(b)
        a.ready_time = 100
        assert sched.pick(0) is b


class TestFactory:
    def test_names(self):
        assert isinstance(make_scheduler("gto"), GtoScheduler)
        assert isinstance(make_scheduler("lrr"), LrrScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("random")
