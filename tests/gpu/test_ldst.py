"""LD/ST unit: request pacing and head-of-line blocking."""

import pytest

from repro.cache.l1d import L1DCache, MemAccess
from repro.cache.tagarray import CacheGeometry
from repro.core.baseline import BaselinePolicy
from repro.gpu.isa import load
from repro.gpu.ldst import LdStUnit, MemWork
from repro.gpu.warp import Warp


class Harness:
    def __init__(self, mshr_entries=2, queue_depth=2):
        self.completed = []
        self.events = []
        self.l1d = L1DCache(
            CacheGeometry(num_sets=2, assoc=2, index_fn="linear"),
            BaselinePolicy(),
            send_fn=lambda f: None,
            mshr_entries=mshr_entries,
            miss_queue_depth=8,
        )
        self.ldst = LdStUnit(
            self.l1d,
            hit_latency=3,
            queue_depth=queue_depth,
            schedule=lambda d, fn: self.events.append(fn),
            complete_request=self.completed.append,
        )

    def fire_events(self):
        while self.events:
            self.events.pop(0)()


def warp_with_load(gid=0):
    return Warp(gid=gid, cta_slot=0, age=gid, trace=iter([load(0, [0])]))


def work(warp, blocks, is_write=False):
    return MemWork(warp=warp, blocks=blocks, is_write=is_write, pc=0, insn_id=0)


class TestPacing:
    def test_one_request_per_step(self):
        h = Harness(mshr_entries=4)
        w = warp_with_load()
        h.ldst.enqueue(work(w, [0, 1, 2]))
        assert w.outstanding == 3
        h.ldst.step(0)
        assert h.ldst.stats.requests_sent == 1
        h.ldst.step(1)
        h.ldst.step(2)
        assert h.ldst.stats.requests_sent == 3
        assert not h.ldst.queue

    def test_fifo_across_warps(self):
        h = Harness()
        a, b = warp_with_load(0), warp_with_load(1)
        h.ldst.enqueue(work(a, [0]))
        h.ldst.enqueue(work(b, [1]))
        h.ldst.step(0)
        assert h.ldst.queue[0].warp is b

    def test_queue_depth_enforced(self):
        h = Harness(queue_depth=1)
        h.ldst.enqueue(work(warp_with_load(0), [0]))
        assert h.ldst.is_full
        with pytest.raises(RuntimeError):
            h.ldst.enqueue(work(warp_with_load(1), [1]))


class TestHeadOfLineBlocking:
    def test_stall_blocks_everything_behind(self):
        # MSHR of 2: two misses fill it; the third request stalls and the
        # fourth (a would-be hit) cannot proceed either
        h = Harness(mshr_entries=2, queue_depth=4)
        a = warp_with_load(0)
        h.ldst.enqueue(work(a, [0, 1, 2]))   # 3 distinct lines
        h.ldst.step(0)
        h.ldst.step(1)
        assert not h.ldst.step(2)            # MSHR full: stall
        assert h.ldst.stats.stall_cycles == 1
        assert not h.ldst.step(3)            # still blocked
        # a fill frees the MSHR; retry succeeds
        h.l1d.fill(0, 4)
        assert h.ldst.step(4)

    def test_hit_completion_scheduled_at_hit_latency(self):
        h = Harness()
        w = warp_with_load()
        # prefill line 0
        h.l1d.access(MemAccess(block_addr=0))
        h.l1d.fill(0, 0)
        h.ldst.enqueue(work(w, [0]))
        h.ldst.step(1)
        assert not h.completed
        h.fire_events()
        assert h.completed == [w]


class TestWrites:
    def test_write_work_does_not_wait(self):
        h = Harness()
        w = Warp(gid=0, cta_slot=0, age=0, trace=iter([load(0, [0])]))
        h.ldst.enqueue(work(w, [0], is_write=True))
        assert w.outstanding == 0
        h.ldst.step(0)
        assert h.l1d.stats.stores == 1

    def test_pending_requests_counts_remaining(self):
        h = Harness()
        h.ldst.enqueue(work(warp_with_load(), [0, 1, 2]))
        h.ldst.step(0)
        assert h.ldst.pending_requests() == 2
