"""Memory coalescing unit."""

import numpy as np
import pytest

from repro.gpu.coalescer import coalesce, coalesce_count


class TestCoalesce:
    def test_fully_coalesced_warp_is_one_request(self):
        addrs = np.arange(32) * 4  # 32 consecutive words, one line
        assert coalesce(addrs, 128) == [0]

    def test_straddling_two_lines(self):
        addrs = np.arange(32) * 4 + 64  # crosses a line boundary
        assert coalesce(addrs, 128) == [0, 1]

    def test_fully_divergent(self):
        addrs = np.arange(32) * 128  # one line per lane
        assert coalesce(addrs, 128) == list(range(32))

    def test_broadcast_is_one_request(self):
        assert coalesce(np.full(32, 4096), 128) == [32]

    def test_first_touch_order_preserved(self):
        addrs = np.array([512, 0, 512, 128])
        assert coalesce(addrs, 128) == [4, 0, 1]

    def test_python_list_input(self):
        assert coalesce([0, 4, 128, 4], 128) == [0, 1]

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            coalesce([0], 100)

    def test_line_size_parameter(self):
        addrs = np.arange(8) * 64
        assert len(coalesce(addrs, 64)) == 8
        assert len(coalesce(addrs, 512)) == 1


class TestCoalesceCount:
    def test_matches_coalesce_length(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            addrs = rng.integers(0, 1 << 20, size=32)
            assert coalesce_count(addrs) == len(coalesce(addrs))

    def test_list_input(self):
        assert coalesce_count([0, 4, 256]) == 2
