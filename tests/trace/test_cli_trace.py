"""CLI: ``repro trace ...`` verbs and ``repro sweep --replay``.

Warm-path assertions parse the printed counter lines — never wall
clock — mirroring tests/test_cli_sweep.py.
"""

from __future__ import annotations

import re

import pytest

from repro.cli import main


def trace_counters(out: str) -> dict:
    m = re.search(
        r"trace: recorded (\d+) traces, (\d+) trace hits; "
        r"replayed (\d+) cells, (\d+) store hits",
        out,
    )
    assert m, f"trace counter line missing from output:\n{out}"
    return {
        "recorded": int(m.group(1)),
        "trace_hits": int(m.group(2)),
        "replayed": int(m.group(3)),
        "store_hits": int(m.group(4)),
    }


@pytest.fixture
def recorded(tmp_path, capsys):
    path = tmp_path / "mm.rptr"
    rc = main(["trace", "record", "MM", "--out", str(path),
               "--sms", "1", "--scale", "0.1"])
    assert rc == 0
    capsys.readouterr()
    return path


class TestRecordInfo:
    def test_record_reports_count_and_path(self, tmp_path, capsys):
        path = tmp_path / "mm.rptr"
        assert main(["trace", "record", "MM", "--out", str(path),
                     "--sms", "1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert re.search(r"recorded \d+ records \(1 SMs\)", out)
        assert path.exists()

    def test_info_prints_header_fields(self, recorded, capsys):
        assert main(["trace", "info", str(recorded)]) == 0
        out = capsys.readouterr().out
        assert "total_records" in out
        assert "'abbr': 'MM'" in out
        assert "format_version" in out

    def test_unknown_app_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["trace", "record", "NOPE",
                   "--out", str(tmp_path / "x.rptr")])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err


class TestReplay:
    def test_replay_prints_all_four_schemes(self, recorded, capsys):
        assert main(["trace", "replay", str(recorded)]) == 0
        out = capsys.readouterr().out
        for label in ("16KB(Baseline)", "Stall-Bypass",
                      "Global-Protection", "DLP"):
            assert label in out

    def test_verify_passes_on_registry_trace(self, recorded, capsys):
        assert main(["trace", "replay", str(recorded), "--verify",
                     "--schemes", "baseline,dlp"]) == 0
        out = capsys.readouterr().out
        assert "verify baseline: identical" in out
        assert "verify dlp: identical" in out
        assert "replay identical to functional path" in out

    def test_verify_rejects_foreign_traces(self, tmp_path, capsys):
        src = tmp_path / "t.csv"
        src.write_text("0 1 0x400 R\n")
        assert main(["trace", "import", str(src),
                     str(tmp_path / "t.rptr")]) == 0
        rc = main(["trace", "replay", str(tmp_path / "t.rptr"), "--verify"])
        assert rc == 2
        assert "registry-recorded" in capsys.readouterr().err

    def test_unknown_scheme_is_a_clean_error(self, recorded, capsys):
        rc = main(["trace", "replay", str(recorded),
                   "--schemes", "bogus"])
        assert rc == 2
        assert "unknown scheme" in capsys.readouterr().err


class TestImport:
    def test_import_then_replay(self, tmp_path, capsys):
        src = tmp_path / "t.csv"
        src.write_text("".join(
            f"0, {i % 16}, 0x400, R\n" for i in range(128)
        ))
        assert main(["trace", "import", str(src),
                     str(tmp_path / "t.rptr")]) == 0
        out = capsys.readouterr().out
        assert "imported 128 records (1 SMs)" in out
        assert main(["trace", "replay", str(tmp_path / "t.rptr"),
                     "--schemes", "baseline"]) == 0


class TestReplaySweep:
    ARGS = ["sweep", "--apps", "MM", "--replay",
            "--sms", "1", "--scale", "0.1"]

    def test_cold_sweep_is_one_capture_four_replays(self, tmp_path, capsys):
        assert main(self.ARGS + ["--trace-dir", str(tmp_path / "tr"),
                                 "--store", str(tmp_path / "st")]) == 0
        c = trace_counters(capsys.readouterr().out)
        assert c["recorded"] == 1
        assert c["replayed"] == 4
        assert c["store_hits"] == 0

    def test_warm_sweep_resolves_from_store(self, tmp_path, capsys):
        extra = ["--trace-dir", str(tmp_path / "tr"),
                 "--store", str(tmp_path / "st")]
        assert main(self.ARGS + extra) == 0
        capsys.readouterr()
        assert main(self.ARGS + extra) == 0
        c = trace_counters(capsys.readouterr().out)
        assert c["recorded"] == 0
        assert c["replayed"] == 0
        assert c["store_hits"] == 4

    def test_shared_trace_dir_skips_recapture(self, tmp_path, capsys):
        trace_dir = ["--trace-dir", str(tmp_path / "tr")]
        assert main(self.ARGS + trace_dir) == 0
        capsys.readouterr()
        # no result store: replays rerun, the capture does not
        assert main(self.ARGS + trace_dir) == 0
        c = trace_counters(capsys.readouterr().out)
        assert c["recorded"] == 0
        assert c["trace_hits"] == 4
        assert c["replayed"] == 4
