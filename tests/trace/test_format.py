"""Binary trace format: round-trips, ordering, and corruption handling."""

from __future__ import annotations

import json
import struct

import pytest

from repro.trace.format import (
    FORMAT_VERSION,
    MAGIC,
    TraceFormatError,
    TraceReader,
    TraceRecord,
    TraceWriter,
    write_trace,
)


def roundtrip(tmp_path, records, num_sms, **kw):
    path = tmp_path / "t.rptr"
    write_trace(path, records, num_sms=num_sms, **kw)
    return TraceReader(path)


class TestRoundTrip:
    def test_empty_trace(self, tmp_path):
        reader = roundtrip(tmp_path, [], num_sms=3)
        assert len(reader) == 0
        assert reader.records_per_sm == [0, 0, 0]
        assert list(reader) == []
        assert list(reader.sm_stream(2)) == []

    def test_single_record_preserves_all_fields(self, tmp_path):
        rec = TraceRecord(0, block_addr=0x7FFF_FFFF_0, pc=0x400123,
                          is_write=True, warp_id=37)
        reader = roundtrip(tmp_path, [rec], num_sms=1)
        assert list(reader) == [rec]
        assert reader.total_records == 1

    def test_multi_sm_interleave_keeps_per_sm_order(self, tmp_path):
        # Written globally interleaved; read back grouped by SM with each
        # SM's own order intact — the only ordering the private L1Ds see.
        interleaved = [
            TraceRecord(0, 10, 0x400, False, 0),
            TraceRecord(1, 90, 0x400, False, 1),
            TraceRecord(0, 11, 0x404, True, 0),
            TraceRecord(1, 91, 0x404, False, 1),
            TraceRecord(0, 10, 0x408, False, 2),
            TraceRecord(1, 80, 0x408, True, 1),
        ]
        reader = roundtrip(tmp_path, interleaved, num_sms=2)
        assert list(reader.sm_stream(0)) == [
            r for r in interleaved if r.sm_id == 0
        ]
        assert list(reader.sm_stream(1)) == [
            r for r in interleaved if r.sm_id == 1
        ]
        # __iter__ concatenates in SM order
        assert list(reader) == (
            [r for r in interleaved if r.sm_id == 0]
            + [r for r in interleaved if r.sm_id == 1]
        )

    def test_non_monotonic_addresses_survive_delta_coding(self, tmp_path):
        records = [
            TraceRecord(0, addr, pc, bool(i % 2), i % 5)
            for i, (addr, pc) in enumerate(
                [(1000, 0x400), (3, 0x500), (2**40, 0x404), (0, 0x400)]
            )
        ]
        reader = roundtrip(tmp_path, records, num_sms=1)
        assert list(reader) == records

    def test_header_metadata_round_trips(self, tmp_path):
        reader = roundtrip(
            tmp_path, [TraceRecord(0, 1, 2, False, 0)], num_sms=1,
            meta={"abbr": "BFS", "scale": 0.5},
            stream={"seed": 7},
        )
        assert reader.meta["abbr"] == "BFS"
        assert reader.header["stream"]["seed"] == 7
        assert reader.line_size == 128


class TestWriterValidation:
    def test_rejects_out_of_range_sm(self, tmp_path):
        w = TraceWriter(tmp_path / "t.rptr", num_sms=2)
        with pytest.raises(ValueError, match="out of range"):
            w.append(2, 0, 0, False)

    def test_rejects_negative_fields(self, tmp_path):
        w = TraceWriter(tmp_path / "t.rptr", num_sms=1)
        with pytest.raises(ValueError, match="non-negative"):
            w.append(0, -1, 0, False)

    def test_rejects_zero_sms(self, tmp_path):
        with pytest.raises(ValueError, match="at least one SM"):
            TraceWriter(tmp_path / "t.rptr", num_sms=0)

    def test_error_inside_with_block_leaves_no_file(self, tmp_path):
        path = tmp_path / "t.rptr"
        with pytest.raises(RuntimeError, match="boom"):
            with TraceWriter(path, num_sms=1) as w:
                w.append(0, 1, 2, False)
                raise RuntimeError("boom")
        assert not path.exists()


class TestCorruption:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "t.rptr"
        path.write_bytes(b"PNG\x89 definitely not a trace")
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceReader(path)

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "t.rptr"
        header = json.dumps({"meta": {}, "stream": {"num_sms": 1},
                             "records_per_sm": [0],
                             "total_records": 0}).encode()
        path.write_bytes(
            MAGIC + struct.pack("<H", 99) + struct.pack("<I", len(header))
            + header
        )
        with pytest.raises(TraceFormatError, match="version 99 is newer"):
            TraceReader(path)

    def test_current_version_accepted(self, tmp_path):
        reader = roundtrip(tmp_path, [], num_sms=1)
        assert reader.version == FORMAT_VERSION

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.rptr"
        path.write_bytes(MAGIC + struct.pack("<H", FORMAT_VERSION) + b"\x01")
        with pytest.raises(TraceFormatError, match="truncated header"):
            TraceReader(path)

    def test_truncated_section_detected(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(
            path,
            [TraceRecord(0, i, 0x400, False, 0) for i in range(500)],
            num_sms=2,
        )
        full = path.read_bytes()
        path.write_bytes(full[:-10])  # chop the tail of the last section
        reader = TraceReader(path)    # header still parses...
        with pytest.raises(TraceFormatError, match="truncated trace"):
            list(reader)              # ...but record access fails loudly

    def test_corrupt_header_json(self, tmp_path):
        path = tmp_path / "t.rptr"
        header = b"{not json"
        path.write_bytes(
            MAGIC + struct.pack("<H", FORMAT_VERSION)
            + struct.pack("<I", len(header)) + header
        )
        with pytest.raises(TraceFormatError, match="corrupt header"):
            TraceReader(path)


class TestMetadataInspection:
    def test_info_never_touches_record_sections(self, tmp_path):
        """O(1) inspection: info() must work even when every record
        section has been destroyed (only the header is intact)."""
        path = tmp_path / "t.rptr"
        write_trace(
            path,
            [TraceRecord(0, i, 0x400, False, 0) for i in range(100)],
            num_sms=1,
            meta={"abbr": "MM"},
        )
        reader = TraceReader(path)
        body_offset = reader._body_offset
        data = path.read_bytes()
        path.write_bytes(data[:body_offset])  # drop all sections

        info = TraceReader(path).info()
        assert info["total_records"] == 100
        assert info["meta"]["abbr"] == "MM"
        assert info["records_per_sm"] == [100]


def doctor_header(path, mutate):
    """Rewrite the JSON header in place (space-padded to keep hdrlen)."""
    raw = path.read_bytes()
    hdrlen = struct.unpack("<I", raw[6:10])[0]
    header = json.loads(raw[10:10 + hdrlen])
    mutate(header)
    new = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    assert len(new) <= hdrlen, "doctored header grew past the original"
    path.write_bytes(raw[:10] + new.ljust(hdrlen) + raw[10 + hdrlen:])


class TestHeaderConsistency:
    """The per-SM record counts in the header must match the streams."""

    def _trace(self, tmp_path):
        path = tmp_path / "t.rptr"
        records = [
            TraceRecord(0, 0x100 + i, 0x40, False, i % 4) for i in range(8)
        ] + [TraceRecord(1, 0x900 + i, 0x44, bool(i % 2), 0) for i in range(5)]
        write_trace(path, records, num_sms=2)
        return path

    def test_undercounting_header_detected(self, tmp_path):
        path = self._trace(tmp_path)

        def cut(header):
            header["records_per_sm"][0] -= 2
            header["total_records"] -= 2

        doctor_header(path, cut)
        with pytest.raises(TraceFormatError, match="more than the 6 records"):
            list(TraceReader(path).sm_stream(0))

    def test_overcounting_header_detected(self, tmp_path):
        path = self._trace(tmp_path)

        def pad(header):
            header["records_per_sm"][1] += 3
            header["total_records"] += 3

        doctor_header(path, pad)
        with pytest.raises(TraceFormatError, match="mid-varint"):
            list(TraceReader(path).sm_stream(1))

    def test_honest_header_streams_clean(self, tmp_path):
        path = self._trace(tmp_path)
        reader = TraceReader(path)
        assert [len(list(reader.sm_stream(sm))) for sm in range(2)] == [8, 5]
