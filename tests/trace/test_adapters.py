"""Trace adapters: text import and trace-backed registry workloads."""

from __future__ import annotations

import pytest

from repro.experiments.runner import harness_config
from repro.trace import (
    TraceFormatError,
    TraceReader,
    import_text_trace,
    iter_text_records,
    record_app,
    replay_trace,
    replay_workload,
)
from repro.trace.format import TraceRecord
from repro.workloads import (
    ALL_APPS,
    make_workload,
    register_trace_workload,
    unregister_workload,
)
from tests.oracle import assert_results_identical


class TestTextParsing:
    def test_parses_all_field_styles(self):
        lines = [
            "sm_id, block_addr, pc, is_write, warp_id",  # header: dropped
            "0, 0x10, 0x400, R, 3",
            "1 32 1028 W",            # whitespace-separated, no warp_id
            "",                        # blank: skipped
            "# full-line comment",
            "0, 17, 0x404, LD, 1  # trailing comment",
            "1, 0x21, 0x408, 1, 2",
        ]
        records = list(iter_text_records(lines))
        assert records == [
            TraceRecord(0, 0x10, 0x400, False, 3),
            TraceRecord(1, 32, 1028, True, 0),
            TraceRecord(0, 17, 0x404, False, 1),
            TraceRecord(1, 0x21, 0x408, True, 2),
        ]

    def test_rejects_short_lines(self):
        with pytest.raises(TraceFormatError, match="at least 4 fields"):
            list(iter_text_records(["0 1 2"]))

    def test_rejects_unparseable_is_write(self):
        with pytest.raises(TraceFormatError, match="is_write"):
            list(iter_text_records(["0 1 2 maybe"]))

    def test_rejects_unparseable_ints(self):
        with pytest.raises(TraceFormatError, match="block_addr"):
            list(iter_text_records(["0 xyz 2 R"]))


class TestImport:
    def test_import_round_trip(self, tmp_path):
        src = tmp_path / "trace.csv"
        src.write_text(
            "0, 0x10, 0x400, R, 0\n"
            "1, 0x20, 0x400, W, 1\n"
            "0, 0x11, 0x404, LD\n"
        )
        reader = import_text_trace(src, tmp_path / "trace.rptr")
        assert reader.num_sms == 2  # inferred: max sm_id + 1
        assert reader.meta["source"] == "import"
        assert list(reader) == [
            TraceRecord(0, 0x10, 0x400, False, 0),
            TraceRecord(0, 0x11, 0x404, False, 0),
            TraceRecord(1, 0x20, 0x400, True, 1),
        ]

    def test_explicit_sms_must_cover_records(self, tmp_path):
        src = tmp_path / "trace.csv"
        src.write_text("3, 1, 2, R\n")
        with pytest.raises(TraceFormatError, match="num_sms=2"):
            import_text_trace(src, tmp_path / "t.rptr", num_sms=2)

    def test_empty_input_needs_explicit_sms(self, tmp_path):
        src = tmp_path / "empty.csv"
        src.write_text("# nothing here\n")
        with pytest.raises(TraceFormatError, match="no records"):
            import_text_trace(src, tmp_path / "t.rptr")
        reader = import_text_trace(src, tmp_path / "t.rptr", num_sms=1)
        assert reader.total_records == 0

    def test_imported_trace_replays(self, tmp_path):
        src = tmp_path / "trace.csv"
        src.write_text("".join(
            f"0, {16 + (i % 8)}, 0x400, R\n" for i in range(64)
        ))
        reader = import_text_trace(src, tmp_path / "t.rptr")
        result = replay_trace(reader, "baseline")
        assert result.l1d.accesses == 64
        assert result.l1d.hits_total > 0


class TestRegistryIntegration:
    @pytest.fixture
    def registered(self, tmp_path):
        """An MM capture registered as the trace-backed app XTRC."""
        config = harness_config(2)
        path = record_app("MM", tmp_path / "mm.rptr", config, scale=0.1)
        register_trace_workload("XTRC", path)
        yield path, config
        unregister_workload("XTRC")

    def test_registered_workload_is_first_class(self, registered):
        assert "XTRC" in ALL_APPS
        workload = make_workload("XTRC")
        assert workload.meta.abbr == "XTRC"
        assert workload.meta.suite == "imported"

    def test_registered_workload_replays_like_the_trace(self, registered):
        path, config = registered
        via_registry = replay_workload(
            make_workload("XTRC"), config, "baseline"
        )
        via_trace = replay_trace(path, "baseline", config)
        # warp ids are re-derived by the CTA mapping, but every
        # cache-visible counter must agree
        assert_results_identical(via_registry, via_trace,
                                 label="XTRC registry-vs-trace")

    def test_unregister_restores_registry(self, tmp_path):
        config = harness_config(1)
        path = record_app("HS", tmp_path / "hs.rptr", config, scale=0.1)
        before = list(ALL_APPS)
        register_trace_workload("XTMP", path)
        unregister_workload("XTMP")
        assert list(ALL_APPS) == before
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("XTMP")

    def test_collision_with_table2_rejected(self, tmp_path):
        config = harness_config(1)
        path = record_app("MM", tmp_path / "mm.rptr", config, scale=0.1)
        with pytest.raises(ValueError, match="already registered"):
            register_trace_workload("MM", path)

    def test_table2_apps_cannot_be_unregistered(self):
        with pytest.raises(ValueError, match="Table 2"):
            unregister_workload("BFS")

    def test_registration_validates_the_trace(self, tmp_path):
        bad = tmp_path / "bad.rptr"
        bad.write_bytes(b"not a trace at all")
        with pytest.raises(TraceFormatError):
            register_trace_workload("XBAD", bad)
        assert "XBAD" not in ALL_APPS
