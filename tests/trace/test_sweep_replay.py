"""Replay sweep accounting: 1 capture + N replays, asserted on counters.

This is the acceptance test for the record-once / replay-per-scheme
economics: a 4-policy sweep over one app must record exactly one trace
and run exactly four replays (cold), and a warm re-run must resolve
entirely from the result store — proven by store/recorder counters,
never wall clock.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import harness_config
from repro.experiments.store import ResultStore
from repro.trace import RECORDER_STATS, ReplaySweepExecutor, replay_workload
from repro.workloads import make_workload
from tests.oracle import assert_results_identical

SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")
SCALE = 0.1


class TestColdEconomics:
    @pytest.mark.parametrize("trace_mode", ["disk", "memory"])
    def test_four_policy_sweep_is_one_capture_four_replays(
        self, tmp_path, trace_mode
    ):
        RECORDER_STATS.reset()
        executor = ReplaySweepExecutor(
            trace_dir=tmp_path / "traces" if trace_mode == "disk" else None,
        )
        executor.run_sweep(["MM"], SCHEMES, num_sms=1, scale=SCALE)

        assert executor.stats.recorded == 1
        assert executor.stats.replayed == 4
        assert executor.stats.store_hits == 0
        assert executor.stats.trace_hits == 3  # schemes 2-4 reuse the trace
        assert RECORDER_STATS.captures == 1   # the stream ran exactly once

    def test_capacity_scheme_shares_the_app_trace(self, tmp_path):
        executor = ReplaySweepExecutor(trace_dir=tmp_path / "traces")
        executor.run_sweep(["MM"], list(SCHEMES) + ["32kb"],
                           num_sms=1, scale=SCALE)
        assert executor.stats.recorded == 1
        assert executor.stats.replayed == 5

    def test_traces_are_per_app(self, tmp_path):
        executor = ReplaySweepExecutor(trace_dir=tmp_path / "traces")
        executor.run_sweep(["MM", "HS"], SCHEMES, num_sms=1, scale=SCALE)
        assert executor.stats.recorded == 2
        assert executor.stats.replayed == 8
        assert len(executor.traces.ls()) == 2


class TestWarmEconomics:
    def test_warm_rerun_is_all_store_hits(self, tmp_path):
        store_dir, trace_dir = tmp_path / "store", tmp_path / "traces"
        cold = ReplaySweepExecutor(store=ResultStore(store_dir),
                                   trace_dir=trace_dir)
        cold_results = cold.run_sweep(["MM"], SCHEMES, num_sms=1, scale=SCALE)
        assert cold.stats.recorded == 1 and cold.stats.replayed == 4

        warm = ReplaySweepExecutor(store=ResultStore(store_dir),
                                   trace_dir=trace_dir)
        warm_results = warm.run_sweep(["MM"], SCHEMES, num_sms=1, scale=SCALE)
        assert warm.stats.store_hits == 4
        assert warm.stats.recorded == 0
        assert warm.stats.replayed == 0

        for scheme in SCHEMES:
            assert_results_identical(
                cold_results["MM"][scheme], warm_results["MM"][scheme],
                label=f"MM/{scheme} cold-vs-warm",
            )

    def test_shared_trace_dir_skips_recording(self, tmp_path):
        trace_dir = tmp_path / "traces"
        first = ReplaySweepExecutor(trace_dir=trace_dir)
        first.run_sweep(["MM"], SCHEMES, num_sms=1, scale=SCALE)

        # Fresh executor, fresh (empty) result store, same trace dir:
        # replays re-run but the capture does not.
        second = ReplaySweepExecutor(trace_dir=trace_dir)
        second.run_sweep(["MM"], SCHEMES, num_sms=1, scale=SCALE)
        assert second.stats.recorded == 0
        assert second.stats.trace_hits == 4
        assert second.stats.replayed == 4


class TestCorrectness:
    def test_sweep_results_match_direct_replay(self, tmp_path):
        config = harness_config(1)
        executor = ReplaySweepExecutor(trace_dir=tmp_path / "traces")
        results = executor.run_sweep(["HS"], SCHEMES, num_sms=1, scale=SCALE)
        for scheme in SCHEMES:
            direct = replay_workload(
                make_workload("HS", SCALE), config, scheme
            )
            assert_results_identical(
                results["HS"][scheme], direct, label=f"HS/{scheme}"
            )

    def test_replay_keys_never_collide_with_scheme_variants(self, tmp_path):
        executor = ReplaySweepExecutor(trace_dir=tmp_path / "traces")
        a = executor.run_cell("MM", "dlp", num_sms=1, scale=SCALE)
        b = executor.run_cell("MM", "dlp", num_sms=1, scale=SCALE,
                              sample_limit=50)
        # distinct policy kwargs -> distinct cells, both replayed
        assert executor.stats.replayed == 2
        assert a is not b
