"""Record → replay round trip: the subsystem's differential oracle.

The contract under test is the ISSUE's acceptance criterion: replaying a
recorded trace through a policy produces *bit-identical* SimResult cache
counters to driving that policy from the live functional stream the
trace was recorded from.  Comparison is via the canonical-JSON
fingerprint of ``tests.oracle`` — a dropped counter or an int silently
becoming a float fails loudly.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_simulator, harness_config
from repro.experiments.store import stream_fingerprint
from repro.trace import (
    RECORDER_STATS,
    TimingTapRecorder,
    TraceReader,
    capture_records,
    record_app,
    record_workload,
    replay_trace,
    replay_workload,
)
from repro.workloads import make_workload
from tests.oracle import assert_results_identical

APPS = ("MM", "HS", "BT")
SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")
SCALE = 0.1


@pytest.fixture(scope="module")
def config():
    return harness_config(2)


@pytest.fixture(scope="module")
def traces(tmp_path_factory, config):
    """One recorded trace per app (records once for the whole module)."""
    root = tmp_path_factory.mktemp("traces")
    out = {}
    for app in APPS:
        path = root / f"{app}.rptr"
        record_app(app, path, config, scale=SCALE)
        out[app] = path
    return out


class TestReplayOracle:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("app", APPS)
    def test_trace_replay_bit_identical_to_functional_path(
        self, traces, config, app, scheme
    ):
        from_trace = replay_trace(traces[app], scheme, config)
        live = replay_workload(make_workload(app, SCALE), config, scheme)
        assert_results_identical(from_trace, live, label=f"{app}/{scheme}")

    def test_capacity_schemes_share_the_same_trace(self, traces, config):
        # "32kb" only changes the replayed cache, never the stream.
        from_trace = replay_trace(traces["MM"], "32kb", config)
        live = replay_workload(make_workload("MM", SCALE), config, "32kb")
        assert_results_identical(from_trace, live, label="MM/32kb")

    def test_replay_counts_every_record(self, traces, config):
        reader = TraceReader(traces["MM"])
        result = replay_trace(reader, "baseline", config)
        assert result.l1d.accesses == reader.total_records

    def test_replay_has_no_timing(self, traces, config):
        result = replay_trace(traces["MM"], "baseline", config)
        assert result.cycles == 0
        assert result.ipc == 0.0


class TestRecorder:
    def test_header_identifies_the_capture(self, traces, config):
        reader = TraceReader(traces["HS"])
        assert reader.meta["source"] == "registry"
        assert reader.meta["abbr"] == "HS"
        assert reader.meta["scale"] == SCALE
        assert reader.header["stream"] == stream_fingerprint(
            "HS", config, scale=SCALE, seed=0
        )

    def test_capture_counters_increment(self, config, tmp_path):
        RECORDER_STATS.reset()
        records = capture_records(make_workload("MM", SCALE), config)
        assert RECORDER_STATS.captures == 1
        assert RECORDER_STATS.records == len(records) > 0
        record_workload(make_workload("MM", SCALE), config,
                        tmp_path / "mm.rptr")
        assert RECORDER_STATS.captures == 2
        assert RECORDER_STATS.records == 2 * len(records)

    def test_file_and_memory_capture_agree(self, traces, config):
        # the live capture is globally interleaved; the file groups by
        # SM — per-SM order (the cache-visible one) must be identical
        records = capture_records(make_workload("MM", SCALE), config)
        reader = TraceReader(traces["MM"])
        for sm in range(config.num_sms):
            assert [r for r in records if r.sm_id == sm] == list(
                reader.sm_stream(sm)
            )


class TestTimingTap:
    def test_tap_sees_every_completed_access(self, tmp_path):
        config = harness_config(1)
        sim = build_simulator("MM", "baseline", config, scale=SCALE)
        recorder = TimingTapRecorder(sim)
        result = sim.run()
        assert recorder.total_records == result.l1d.accesses > 0

        path = recorder.write(tmp_path / "mm_timing.rptr",
                              meta={"abbr": "MM"})
        reader = TraceReader(path)
        assert reader.meta["source"] == "timing_tap"
        assert reader.total_records == result.l1d.accesses
        # the timing stream replays cleanly through the replay engine
        replayed = replay_trace(reader, "baseline", config)
        assert replayed.l1d.accesses == result.l1d.accesses


class TestReplayHeaderGuard:
    """Replay cross-checks per-SM record counts against the header."""

    def test_engine_counts_match_header(self, traces, config):
        from repro.trace.replay import ReplayEngine, _resolve

        reader = TraceReader(traces["MM"])
        cfg, factory = _resolve("baseline", config)
        engine = ReplayEngine(cfg, factory)
        engine.run(iter(reader))
        assert engine.replayed_per_sm[: reader.num_sms] == reader.records_per_sm
        assert engine.replayed_records == reader.total_records

    def test_doctored_counts_rejected(self, traces, config, tmp_path):
        import shutil

        from repro.trace.format import TraceFormatError
        from tests.trace.test_format import doctor_header

        path = tmp_path / "doctored.rptr"
        shutil.copy(traces["MM"], path)

        def cut(header):
            header["records_per_sm"][0] -= 1
            header["total_records"] -= 1

        doctor_header(path, cut)
        with pytest.raises(TraceFormatError):
            replay_trace(str(path), "baseline", config)
