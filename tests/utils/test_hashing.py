"""Hash and set-index functions."""

import pytest

from repro.utils.hashing import fnv1a_32, hash_pc, linear_set_index, xor_set_index


class TestFnv1a:
    def test_deterministic(self):
        assert fnv1a_32(0x1234) == fnv1a_32(0x1234)

    def test_differs_for_nearby_inputs(self):
        assert fnv1a_32(0x1000) != fnv1a_32(0x1001)

    def test_32bit_range(self):
        for v in (0, 1, 0xFFFF_FFFF, 0x1234_5678_9ABC):
            assert 0 <= fnv1a_32(v) < (1 << 32)

    def test_zero_input(self):
        # zero still hashes one byte (the loop runs at least once)
        assert 0 <= fnv1a_32(0) < (1 << 32)


class TestHashPc:
    def test_folds_to_requested_width(self):
        for pc in range(0, 4096, 37):
            assert 0 <= hash_pc(pc, bits=7) < 128

    def test_deterministic(self):
        assert hash_pc(0xDEAD) == hash_pc(0xDEAD)

    def test_spreads_typical_pc_strides(self):
        # PCs in real traces step by 8; the 7-bit IDs should not collide
        # wholesale for a typical kernel's worth of instructions
        ids = {hash_pc(0x100 + 8 * i) for i in range(32)}
        assert len(ids) > 24

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            hash_pc(0x100, bits=0)


class TestSetIndex:
    def test_linear_is_modulo(self):
        assert linear_set_index(0x1234, 32) == 0x1234 % 32

    def test_xor_within_range(self):
        for addr in range(0, 100000, 997):
            assert 0 <= xor_set_index(addr, 32) < 32

    def test_xor_breaks_power_of_two_strides(self):
        # blocks spaced exactly num_sets apart map to one set linearly,
        # but the XOR hash spreads them
        blocks = [i * 32 for i in range(64)]
        linear = {linear_set_index(b, 32) for b in blocks}
        hashed = {xor_set_index(b, 32) for b in blocks}
        assert len(linear) == 1
        assert len(hashed) > 8

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            xor_set_index(0, 12)
        with pytest.raises(ValueError):
            linear_set_index(0, 12)

    def test_single_set(self):
        assert xor_set_index(12345, 1) == 0
