"""Saturating-counter behaviour (the PDPT/PL fields depend on it)."""

import pytest

from repro.utils.counters import SaturatingCounter, saturating_add, saturating_sub


class TestSaturatingAdd:
    def test_plain_addition(self):
        assert saturating_add(3, 2, 10) == 5

    def test_clamps_at_max(self):
        assert saturating_add(9, 5, 10) == 10

    def test_clamps_at_zero_on_negative_delta(self):
        assert saturating_add(2, -5, 10) == 0

    def test_exact_max(self):
        assert saturating_add(7, 3, 10) == 10


class TestSaturatingSub:
    def test_plain_subtraction(self):
        assert saturating_sub(5, 3) == 2

    def test_floors_at_zero(self):
        assert saturating_sub(2, 7) == 0

    def test_custom_floor(self):
        assert saturating_sub(5, 10, min_value=1) == 1


class TestSaturatingCounter:
    def test_max_value_from_bits(self):
        assert SaturatingCounter(bits=4).max_value == 15
        assert SaturatingCounter(bits=8).max_value == 255
        assert SaturatingCounter(bits=10).max_value == 1023

    def test_increment_saturates(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.increment()
        assert c.value == 3
        assert c.is_saturated()

    def test_decrement_floors(self):
        c = SaturatingCounter(bits=4, value=1)
        c.decrement()
        c.decrement()
        assert c.value == 0

    def test_set_clamps_both_ends(self):
        c = SaturatingCounter(bits=4)
        assert c.set(100) == 15
        assert c.set(-3) == 0

    def test_reset(self):
        c = SaturatingCounter(bits=4, value=9)
        c.reset()
        assert c.value == 0

    def test_int_conversion(self):
        assert int(SaturatingCounter(bits=4, value=7)) == 7

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, value=4)

    def test_increment_by_delta(self):
        c = SaturatingCounter(bits=4)
        c.increment(9)
        assert c.value == 9
        c.increment(9)
        assert c.value == 15
