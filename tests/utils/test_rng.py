"""Deterministic RNG used by the workload models."""

import numpy as np

from repro.utils.rng import DeterministicRng


class TestDeterministicRng:
    def test_same_key_same_stream(self):
        a = DeterministicRng("BFS").integers(0, 1000, 64)
        b = DeterministicRng("BFS").integers(0, 1000, 64)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = DeterministicRng("BFS").integers(0, 1000, 64)
        b = DeterministicRng("KM").integers(0, 1000, 64)
        assert not np.array_equal(a, b)

    def test_salt_changes_stream(self):
        a = DeterministicRng("BFS", salt=0).integers(0, 1000, 64)
        b = DeterministicRng("BFS", salt=1).integers(0, 1000, 64)
        assert not np.array_equal(a, b)

    def test_zipf_indices_in_range(self):
        idx = DeterministicRng("x").zipf_indices(100, 5000, 1.2)
        assert idx.min() >= 0
        assert idx.max() < 100

    def test_zipf_is_skewed(self):
        idx = DeterministicRng("x").zipf_indices(100, 20000, 1.2)
        counts = np.bincount(idx, minlength=100)
        # rank-0 item must be much more popular than the median item
        assert counts[0] > 4 * np.median(counts)

    def test_zipf_low_exponent_flatter(self):
        steep = DeterministicRng("x").zipf_indices(100, 20000, 1.5)
        flat = DeterministicRng("x", salt=1).zipf_indices(100, 20000, 0.3)
        top_steep = np.bincount(steep, minlength=100)[0]
        top_flat = np.bincount(flat, minlength=100)[0]
        assert top_steep > top_flat

    def test_permutation_covers_all(self):
        p = DeterministicRng("x").permutation(50)
        assert sorted(p.tolist()) == list(range(50))
