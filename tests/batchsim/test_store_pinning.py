"""Store identity: a batch sweep's store is byte-identical to serial.

The engine choice is an execution detail: it never enters trace keys or
replay-cell keys, and a batched sweep must leave the result store in
exactly the state a serial sweep would — same keys, same meta, same
canonical result payloads — so any engine's results warm any other's
cells.  The accounting differs only in how the counters add up (one
decode feeding N lanes).
"""

from __future__ import annotations

from repro.experiments.store import canonical_json
from repro.trace.sweep import ReplaySweepExecutor

from tests.oracle import assert_results_identical

APPS = ("MM",)
SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")
SWEEP = dict(num_sms=2, scale=0.4)


def store_image(store) -> dict:
    """Full observable store state: key -> (meta, canonical payload)."""
    return {
        key: (store._meta[key], canonical_json(result.to_dict()))
        for key, result in store._data.items()
    }


class TestStoreBytes:
    def test_batch_sweep_store_matches_serial(self):
        serial = ReplaySweepExecutor(engine="fast")
        serial.run_sweep(APPS, SCHEMES, **SWEEP)
        batch = ReplaySweepExecutor(engine="batch")
        batch.run_sweep(APPS, SCHEMES, **SWEEP)
        assert store_image(batch.store) == store_image(serial.store)

    def test_batch_sweep_store_matches_reference(self):
        serial = ReplaySweepExecutor()  # reference engine
        serial.run_sweep(APPS, SCHEMES, **SWEEP)
        batch = ReplaySweepExecutor(engine="batch")
        batch.run_sweep(APPS, SCHEMES, **SWEEP)
        assert store_image(batch.store) == store_image(serial.store)

    def test_policy_kwargs_still_split_cells(self):
        executor = ReplaySweepExecutor(engine="batch")
        executor.run_sweep(APPS, ("dlp",), **SWEEP)
        executor.run_sweep(APPS, ("dlp",), nasc=0, **SWEEP)
        assert len(executor.store) == 2  # kwargs are part of the key


class TestCrossEngineWarming:
    def test_batch_results_warm_the_fast_executor(self):
        batch = ReplaySweepExecutor(engine="batch")
        first = batch.run_sweep(APPS, SCHEMES, **SWEEP)
        fast = ReplaySweepExecutor(store=batch.store, engine="fast")
        second = fast.run_sweep(APPS, SCHEMES, **SWEEP)
        assert fast.stats.replayed == 0
        assert fast.stats.store_hits == len(APPS) * len(SCHEMES)
        for app in first:
            for scheme in SCHEMES:
                assert_results_identical(
                    first[app][scheme], second[app][scheme],
                    label=f"warm/{app}/{scheme}")

    def test_fast_results_warm_the_batch_executor(self):
        fast = ReplaySweepExecutor(engine="fast")
        fast.run_sweep(APPS, SCHEMES, **SWEEP)
        batch = ReplaySweepExecutor(store=fast.store, engine="batch")
        batch.run_sweep(APPS, SCHEMES, **SWEEP)
        assert batch.stats.replayed == 0
        assert batch.stats.store_hits == len(APPS) * len(SCHEMES)

    def test_partial_warming_batches_only_the_misses(self):
        """Cached cells resolve from the store; only the misses become
        lanes of the batch pass."""
        warm = ReplaySweepExecutor(engine="fast")
        warm.run_cell("MM", "dlp", **SWEEP)
        batch = ReplaySweepExecutor(store=warm.store, engine="batch")
        batch.run_sweep(APPS, SCHEMES, **SWEEP)
        assert batch.stats.store_hits == 1
        assert batch.stats.replayed == len(SCHEMES) - 1


class TestAccounting:
    def test_one_capture_n_lanes(self):
        executor = ReplaySweepExecutor(engine="batch")
        executor.run_sweep(APPS, SCHEMES, **SWEEP)
        stats = executor.stats.as_dict()
        # one trace captured, every scheme replayed as a lane of one
        # pass, nothing resolved from a cold store
        assert stats["recorded"] == len(APPS)
        assert stats["replayed"] == len(APPS) * len(SCHEMES)
        assert stats["store_hits"] == 0

    def test_repeat_sweep_is_all_store_hits(self):
        executor = ReplaySweepExecutor(engine="batch")
        executor.run_sweep(APPS, SCHEMES, **SWEEP)
        executor.run_sweep(APPS, SCHEMES, **SWEEP)
        assert executor.stats.replayed == len(APPS) * len(SCHEMES)
        assert executor.stats.store_hits == len(APPS) * len(SCHEMES)
