"""The batch engine is bit-identical to fastsim, lane for lane.

Every test replays the same stream through ``engine="fast"`` (itself
proven bit-identical to the reference engine) and through the batch
path — the single-lane ``--engine batch`` adapter or the multi-lane
:func:`~repro.batchsim.engine.replay_batch` front door — and requires
identical results via the canonical-JSON oracle.  The grid is the full
17-cell ablation matrix the fastsim differential suite uses, plus
adversarial synthetic streams (thrash, write storms, fuzzed mixes)
so the equivalence is not an artifact of the captured workloads.
"""

from __future__ import annotations

import pytest

from repro.batchsim.engine import replay_batch
from repro.gpu.config import GPUConfig
from repro.trace.format import TraceRecord
from repro.trace.record import capture_records, record_workload
from repro.trace.replay import replay_records, replay_trace
from repro.utils.rng import DeterministicRng
from repro.workloads import make_workload

from tests.oracle import assert_results_identical

#: The full ablation grid of the fastsim differential suite: all four
#: policies plus every knob the paper sweeps.
ABLATIONS = [
    ("baseline", {}),
    ("stall_bypass", {}),
    ("global_protection", {}),
    ("global_protection", {"nasc": 0}),
    ("global_protection", {"bypass_enabled": False}),
    ("global_protection", {"vta_assoc": 2}),
    ("global_protection", {"pd_bits": 2}),
    ("dlp", {}),
    ("dlp", {"pd_bits": 2}),
    ("dlp", {"pd_bits": 6}),
    ("dlp", {"vta_assoc": 2}),
    ("dlp", {"vta_assoc": 8}),
    ("dlp", {"nasc": 0}),
    ("dlp", {"nasc": 3}),
    ("dlp", {"bypass_enabled": False}),
    ("dlp", {"sample_limit": 50}),
    ("dlp", {"insn_sample_limit": 500}),
]


def _label(params) -> str:
    scheme, kwargs = params
    knobs = ",".join(f"{k}={v}" for k, v in kwargs.items()) or "default"
    return f"{scheme}[{knobs}]"


@pytest.fixture(scope="module")
def captured():
    """One recorded MM stream shared by every batch test."""
    config = GPUConfig().scaled(2)
    records = capture_records(make_workload("MM", 0.4), config)
    return config, records


# ----------------------------------------------------------------------
# adversarial synthetic streams
# ----------------------------------------------------------------------

def thrash_records(num_sms: int = 2, length: int = 900,
                   working_set: int = 200) -> list:
    """Cyclic reuse over a working set larger than the cache: every
    line dies before its reuse, so the VTA path and (without bypass)
    the stall-retry path dominate."""
    return [
        TraceRecord(sm_id=i % num_sms, block_addr=0x6000 + (i % working_set),
                    pc=0x700 + 8 * (i % 5), is_write=False)
        for i in range(length)
    ]


def write_storm_records(num_sms: int = 2, length: int = 600) -> list:
    """Write-heavy traffic over a small pool: exercises the
    write-through invalidate path and protected-line eviction credit."""
    rng = DeterministicRng("batchsim-write-storm")
    out = []
    for i in range(length):
        block = 0x3000 + int(rng.integers(0, 48))
        is_write = float(rng.random()) < 0.55
        out.append(TraceRecord(sm_id=i % num_sms, block_addr=block,
                               pc=0x500 + 16 * int(rng.integers(0, 4)),
                               is_write=is_write))
    return out


def fuzz_records(seed: int, num_sms: int = 2, length: int = 1200) -> list:
    """Random mixed-locality stream, deterministic per seed."""
    rng = DeterministicRng(f"batchsim-fuzz-{seed}")
    hot = [0x4000 + i for i in range(12)]
    out = []
    for _ in range(length):
        roll = float(rng.random())
        if roll < 0.35:
            block = hot[int(rng.integers(0, len(hot)))]
        else:
            block = 0x9000 + int(rng.integers(0, 4096))
        out.append(TraceRecord(
            sm_id=int(rng.integers(0, num_sms)),
            block_addr=block,
            pc=0x500 + 0x10 * int(rng.integers(0, 6)),
            is_write=bool(float(rng.random()) < 0.12),
        ))
    return out


ADVERSARIAL = {
    "thrash": thrash_records(),
    "write-storm": write_storm_records(),
    "fuzz-0": fuzz_records(0),
    "fuzz-1": fuzz_records(1),
    "fuzz-2": fuzz_records(2),
}


# ----------------------------------------------------------------------
# single-lane adapter (--engine batch)
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "scheme,kwargs", ABLATIONS, ids=map(_label, ABLATIONS))
def test_single_lane_identical(captured, scheme, kwargs):
    config, records = captured
    fast = replay_records(iter(records), config, scheme,
                          engine="fast", **kwargs)
    batch = replay_records(iter(records), config, scheme,
                           engine="batch", **kwargs)
    assert_results_identical(fast, batch, label=f"{scheme}/{kwargs}")


def test_trace_file_replay_identical(captured, tmp_path):
    """``repro trace replay --engine batch`` path: through a recorded
    trace file, decoded vectorized from the binary format."""
    config, _ = captured
    path = tmp_path / "mm.rptr"
    record_workload(make_workload("MM", 0.4), config, path)
    for scheme, kwargs in (("dlp", {}), ("global_protection", {"nasc": 0})):
        fast = replay_trace(path, scheme, config, engine="fast", **kwargs)
        batch = replay_trace(path, scheme, config, engine="batch", **kwargs)
        assert_results_identical(fast, batch, label=f"trace/{scheme}")


def test_unknown_engine_still_rejected(captured):
    config, records = captured
    with pytest.raises(ValueError, match="unknown engine"):
        replay_records(iter(records), config, "baseline", engine="turbo")


def test_warmed_cache_falls_back(captured):
    """The kernels require a fresh cache; a second run() on the same
    engine must fall back to the per-record path, not corrupt state."""
    from repro.batchsim.engine import BatchReplayEngine
    from repro.trace.replay import _resolve

    config, records = captured
    lane_config, factory = _resolve("dlp", config)
    engine = BatchReplayEngine(lane_config, factory)
    engine.run(iter(records))
    second = engine.run(iter(records))  # warmed: per-record fallback
    assert second.to_dict()  # completed without tripping the guard


# ----------------------------------------------------------------------
# multi-lane replay_batch
# ----------------------------------------------------------------------

def test_multi_lane_grid_identical(captured):
    """All 17 ablation cells through ONE replay_batch pass, each lane
    field-for-field identical to its solo fast replay — including the
    deduplicated lanes (baseline vs stall_bypass, insn_sample_limit)
    that are served by a state copy rather than a kernel run."""
    config, records = captured
    batched = replay_batch(records, ABLATIONS, config)
    assert len(batched) == len(ABLATIONS)
    for (scheme, kwargs), result in zip(ABLATIONS, batched):
        solo = replay_records(iter(records), config, scheme,
                              engine="fast", **kwargs)
        assert_results_identical(solo, result, label=_label((scheme, kwargs)))


@pytest.mark.parametrize("name", sorted(ADVERSARIAL))
def test_adversarial_streams_identical(name):
    config = GPUConfig().scaled(2)
    records = ADVERSARIAL[name]
    lanes = [
        ("baseline", {}),
        ("global_protection", {}),
        ("dlp", {}),
        ("dlp", {"bypass_enabled": False}),   # stall-retry path
        ("dlp", {"sample_limit": 50}),        # tight sampling windows
    ]
    batched = replay_batch(records, lanes, config)
    for (scheme, kwargs), result in zip(lanes, batched):
        solo = replay_records(iter(records), config, scheme,
                              engine="fast", **kwargs)
        assert_results_identical(
            solo, result, label=f"{name}/{_label((scheme, kwargs))}")


def test_lane_order_is_preserved(captured):
    config, records = captured
    lanes = [("dlp", {}), ("baseline", {}), ("dlp", {"nasc": 0})]
    batched = replay_batch(records, lanes, config)
    for (scheme, kwargs), result in zip(lanes, batched):
        solo = replay_records(iter(records), config, scheme,
                              engine="fast", **kwargs)
        assert_results_identical(solo, result, label=f"order/{scheme}")


def test_resized_lanes_share_the_pass(captured):
    """32kb/64kb lanes change the geometry, which partitions the same
    decoded columns differently — still bit-identical per lane."""
    config, records = captured
    lanes = [("baseline", {}), ("32kb", {}), ("64kb", {}), ("dlp", {})]
    batched = replay_batch(records, lanes, config)
    for (scheme, kwargs), result in zip(lanes, batched):
        solo = replay_records(iter(records), config, scheme,
                              engine="fast", **kwargs)
        assert_results_identical(solo, result, label=f"resize/{scheme}")


def test_more_sms_than_trace(captured, tmp_path):
    """config.num_sms may exceed the trace's SM count; extra columns
    pad empty, mirroring replay_trace."""
    config, _ = captured
    path = tmp_path / "mm2.rptr"
    record_workload(make_workload("MM", 0.4), config, path)
    from repro.trace.format import TraceReader

    wide = GPUConfig().scaled(4)
    reader = TraceReader(path)
    batched = replay_batch(reader, [("dlp", {})], wide)
    solo = replay_trace(TraceReader(path), "dlp", wide, engine="fast")
    assert_results_identical(solo, batched[0], label="padded-sms")


def test_sm_count_guard(captured, tmp_path):
    config, _ = captured
    path = tmp_path / "mm3.rptr"
    record_workload(make_workload("MM", 0.4), config, path)
    from repro.trace.format import TraceReader

    narrow = GPUConfig().scaled(1)
    with pytest.raises(ValueError, match="SM streams"):
        replay_batch(TraceReader(path), [("dlp", {})], narrow)


# ----------------------------------------------------------------------
# non-blocking lanes (NB_FILL_WINDOW ordering / lane isolation)
# ----------------------------------------------------------------------

class TestNonBlockingLanes:
    """NB lanes have no batch specialization; each one must run on a
    private engine whose fill windows never observe another lane's
    state (the NB fill-ordering audit)."""

    def test_nb_lanes_match_solo_runs(self, captured):
        config, records = captured
        nb_config = config.with_l1d(non_blocking=True)
        lanes = [("baseline", {}), ("global_protection", {}), ("dlp", {}),
                 ("dlp", {"nasc": 0})]
        batched = replay_batch(records, lanes, nb_config)
        for (scheme, kwargs), result in zip(lanes, batched):
            solo = replay_records(iter(records), nb_config, scheme,
                                  engine="fast", **kwargs)
            assert_results_identical(solo, result, label=f"nb/{scheme}")

    def test_nb_lane_isolation_under_duplicates(self, captured):
        """Two identical NB lanes in one batch: each must equal the
        solo run — any cross-lane fill-window leakage would desync the
        second lane from the first."""
        config, records = captured
        nb_config = config.with_l1d(non_blocking=True)
        lanes = [("dlp", {}), ("dlp", {})]
        first, second = replay_batch(records, lanes, nb_config)
        solo = replay_records(iter(records), nb_config, "dlp",
                              engine="fast")
        assert_results_identical(solo, first, label="nb-dup/first")
        assert_results_identical(solo, second, label="nb-dup/second")

    def test_mixed_blocking_and_nb_would_not_cross(self, captured):
        """Blocking lanes in the same replay_batch call as NB lanes
        (mixed per-lane configs cannot arise from one config today, but
        the NB fallback must not disturb blocking kernels sharing the
        decode)."""
        config, records = captured
        lanes = [("baseline", {}), ("dlp", {})]
        batched = replay_batch(records, lanes, config)
        for (scheme, kwargs), result in zip(lanes, batched):
            solo = replay_records(iter(records), config, scheme,
                                  engine="fast", **kwargs)
            assert_results_identical(solo, result, label=f"mixed/{scheme}")
