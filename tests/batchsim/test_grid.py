"""Grid expansion and the ``--grid`` frontier-map path."""

from __future__ import annotations

import pytest

from repro.batchsim.grid import (
    GridAxis,
    cell_label,
    expand_grid,
    parse_grid_axis,
)
from repro.trace.sweep import ReplaySweepExecutor

from tests.oracle import assert_results_identical


class TestParseGridAxis:
    def test_explicit_values(self):
        axis = parse_grid_axis("nasc=0,2,4")
        assert axis == GridAxis("nasc", (0, 2, 4))

    def test_float_values(self):
        axis = parse_grid_axis("scale=0.5,1.5")
        assert axis.values == (0.5, 1.5)

    def test_inclusive_range(self):
        assert parse_grid_axis("nasc=0:3").values == (0, 1, 2, 3)

    def test_stepped_range(self):
        assert parse_grid_axis("pd_bits=2:6:2").values == (2, 4, 6)

    @pytest.mark.parametrize("bad", [
        "nasc", "nasc=", "=1,2", "nasc=a,b", "nasc=1:2:0",
        "nasc=5:1", "nasc=1:2:3:4", "nasc=0.5:2", "2bad=1,2",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_grid_axis(bad)


class TestExpandGrid:
    def test_row_major_cross_product(self):
        cells = expand_grid([GridAxis("a", (1, 2)), GridAxis("b", (3, 4))])
        assert cells == [
            {"a": 1, "b": 3}, {"a": 1, "b": 4},
            {"a": 2, "b": 3}, {"a": 2, "b": 4},
        ]

    def test_empty_axes(self):
        assert expand_grid([]) == []

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            expand_grid([GridAxis("a", (1,)), GridAxis("a", (2,))])

    def test_labels_preserve_axis_order(self):
        cells = expand_grid([GridAxis("b", (1,)), GridAxis("a", (2,))])
        assert cell_label(cells[0]) == "b=1,a=2"


class TestRunGrid:
    AXES = [GridAxis("nasc", (0, 2)), GridAxis("pd_bits", (2, 4))]

    def test_grid_identical_across_engines(self):
        fast = ReplaySweepExecutor(engine="fast").run_grid(
            "MM", "dlp", self.AXES, num_sms=2, scale=0.4)
        batch = ReplaySweepExecutor(engine="batch").run_grid(
            "MM", "dlp", self.AXES, num_sms=2, scale=0.4)
        assert list(batch) == list(fast)
        for label in fast:
            assert_results_identical(
                fast[label], batch[label], label=f"grid/{label}")

    def test_grid_points_warm_incrementally(self):
        executor = ReplaySweepExecutor(engine="batch")
        executor.run_grid("MM", "dlp", self.AXES, num_sms=2, scale=0.4)
        assert executor.stats.replayed == 4
        executor.run_grid("MM", "dlp", self.AXES, num_sms=2, scale=0.4)
        assert executor.stats.store_hits == 4
        assert executor.stats.replayed == 4  # nothing re-run
