"""Reuse-distance profiler (Section 3.1 / Fig. 2 semantics)."""

import pytest

from repro.analysis.reuse import (
    RD_LABELS,
    RD_RANGES,
    RddHistogram,
    ReuseProfiler,
    bucket_of,
    rd_of_sequence,
)
from repro.cache.tagarray import CacheGeometry


def one_set():
    return CacheGeometry(num_sets=1, assoc=2)


class TestFig2Example:
    def test_paper_worked_example(self):
        """Addr0 Addr1 Addr2 Addr0 in a 2-way set: RD of Addr0 is 3."""
        rds = rd_of_sequence([0, 1, 2, 0], one_set())
        assert rds == [None, None, None, 3]

    def test_rd_exceeding_assoc_means_lru_miss(self):
        # RD 3 > associativity 2, so the paper's Fig. 2 access misses
        assert rd_of_sequence([0, 1, 2, 0], one_set())[-1] > 2

    def test_back_to_back_reuse_is_rd_1(self):
        assert rd_of_sequence([5, 5], one_set()) == [None, 1]


class TestBuckets:
    def test_ranges_match_paper_legend(self):
        assert RD_RANGES[0] == (1, 4)
        assert RD_RANGES[1] == (5, 8)
        assert RD_RANGES[2] == (9, 64)
        assert len(RD_LABELS) == 4

    @pytest.mark.parametrize("rd,bucket", [
        (1, 0), (4, 0), (5, 1), (8, 1), (9, 2), (64, 2), (65, 3), (10**6, 3),
    ])
    def test_bucket_boundaries(self, rd, bucket):
        assert bucket_of(rd) == bucket


class TestProfiler:
    def test_rds_are_per_set(self):
        # accesses to other sets must not inflate a line's RD
        geo = CacheGeometry(num_sets=2, assoc=2, index_fn="linear")
        p = ReuseProfiler(geo)
        p.observe(0)   # set 0
        p.observe(1)   # set 1 (does not count for block 0)
        p.observe(1)
        rd = p.observe(0)
        assert rd == 1

    def test_compulsory_counted_separately(self):
        p = ReuseProfiler(one_set())
        p.observe(0)
        p.observe(1)
        p.observe(0)
        assert p.compulsory == 2
        assert p.reuses == 1

    def test_per_pc_attribution_to_previous_toucher(self):
        p = ReuseProfiler(one_set())
        p.observe(0, pc=0xA)
        p.observe(0, pc=0xB)   # reuse attributed to 0xA
        p.observe(0, pc=0xC)   # reuse attributed to 0xB
        assert p.per_pc[0xA].total == 1
        assert p.per_pc[0xB].total == 1
        assert 0xC not in p.per_pc

    def test_fractions_sum_to_one(self):
        p = ReuseProfiler(one_set())
        for block in [0, 1, 0, 1, 0, 2, 0]:
            p.observe(block)
        assert sum(p.overall_fractions()) == pytest.approx(1.0)

    def test_empty_profile_fractions_are_zero(self):
        assert ReuseProfiler().overall_fractions() == [0.0] * 4

    def test_merge(self):
        a, b = ReuseProfiler(one_set()), ReuseProfiler(one_set())
        a.observe(0); a.observe(0)
        b.observe(1); b.observe(1); b.observe(1)
        a.merge(b)
        assert a.reuses == 3
        assert a.compulsory == 2
        assert a.accesses == 5


class TestHistogram:
    def test_merge_adds_counts(self):
        h1, h2 = RddHistogram(), RddHistogram()
        h1.add(1)
        h2.add(70)
        h1.merge(h2)
        assert h1.counts == [1, 0, 0, 1]

    def test_fractions(self):
        h = RddHistogram()
        for rd in (1, 2, 9):
            h.add(rd)
        assert h.fractions() == pytest.approx([2 / 3, 0, 1 / 3, 0])
