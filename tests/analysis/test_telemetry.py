"""PD telemetry tracker."""

import pytest

from repro.analysis.telemetry import PdTracker
from repro.cache.l1d import AccessOutcome, L1DCache, MemAccess
from repro.cache.tagarray import CacheGeometry
from repro.core import make_policy


def run_thrash(policy, cycles=20):
    cache = L1DCache(
        CacheGeometry(num_sets=4, assoc=2, index_fn="linear"),
        policy,
        send_fn=lambda f: None,
    )
    for rep in range(cycles):
        for b in range(12):  # 3 lines/set cyclic: the VTA-visible regime
            r = cache.access(MemAccess(block_addr=b, insn_id=1))
            if r.outcome is AccessOutcome.MISS:
                cache.drain_miss_queue(8)
                cache.fill(b, 0)
    return cache


class TestAttachment:
    def test_records_one_sample_per_window(self):
        policy = make_policy("dlp", sample_limit=40)
        tracker = PdTracker.attach_to(policy)
        run_thrash(policy)
        assert len(tracker.samples) == policy.sampler.samples_completed
        assert len(tracker.samples) > 0

    def test_detach_restores_policy(self):
        policy = make_policy("dlp", sample_limit=40)
        tracker = PdTracker.attach_to(policy)
        original = tracker._original_end_sample
        tracker.detach()
        assert policy._end_sample is original

    def test_rejects_policies_without_sampling(self):
        with pytest.raises(TypeError):
            PdTracker.attach_to(make_policy("baseline"))

    def test_works_with_global_protection(self):
        policy = make_policy("global_protection", sample_limit=40)
        tracker = PdTracker.attach_to(policy)
        run_thrash(policy)
        assert tracker.samples
        # GP records a single pseudo-instruction trajectory
        assert set(tracker.samples[-1].pds) == {0}


class TestContextManager:
    def test_attached_records_and_detaches(self):
        policy = make_policy("dlp", sample_limit=40)
        original = policy._end_sample  # bound method: compare by ==
        with PdTracker.attached(policy) as tracker:
            assert policy._end_sample != original
            run_thrash(policy)
        assert policy._end_sample == original
        assert tracker.samples  # data survives the detach

    def test_attached_detaches_on_error(self):
        policy = make_policy("dlp", sample_limit=40)
        original = policy._end_sample
        with pytest.raises(RuntimeError, match="mid-run failure"):
            with PdTracker.attached(policy):
                run_thrash(policy, cycles=2)
                raise RuntimeError("mid-run failure")
        assert policy._end_sample == original

    def test_attached_rejects_policies_without_sampling(self):
        with pytest.raises(TypeError):
            with PdTracker.attached(make_policy("baseline")):
                pass


class TestRecordedDynamics:
    def test_thrash_shows_increase_path_and_rising_pd(self):
        policy = make_policy("dlp", sample_limit=40)
        tracker = PdTracker.attach_to(policy)
        run_thrash(policy)
        assert tracker.path_counts()["increase"] > 0
        trajectory = tracker.trajectory(1)
        assert max(trajectory) > 0

    def test_paths_match_recorded_hit_counts(self):
        policy = make_policy("dlp", sample_limit=40)
        tracker = PdTracker.attach_to(policy)
        run_thrash(policy)
        for s in tracker.samples:
            if s.path == "increase":
                assert s.global_vta_hits > s.global_tda_hits
            elif s.path == "decrease":
                assert 2 * s.global_vta_hits < s.global_tda_hits

    def test_converged_pds(self):
        policy = make_policy("dlp", sample_limit=40)
        tracker = PdTracker.attach_to(policy)
        run_thrash(policy, cycles=40)
        converged = tracker.converged_pds()
        assert 1 in converged
        assert converged[1] > 0

    def test_render_contains_paths(self):
        policy = make_policy("dlp", sample_limit=40)
        tracker = PdTracker.attach_to(policy)
        run_thrash(policy)
        out = tracker.render()
        assert "PD evolution" in out
        assert "sample" in out
