"""Metric helpers and the functional cache used by Fig. 4."""

import pytest

from repro.analysis.metrics import (
    FunctionalCache,
    geometric_mean,
    merge_functional,
    normalize,
    safe_ratio,
)
from repro.cache.tagarray import CacheGeometry


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestNormalize:
    def test_divides_by_baseline(self):
        out = normalize({"base": 2.0, "x": 3.0}, "base")
        assert out == {"base": 1.0, "x": 1.5}

    def test_zero_baseline_rejected(self):
        with pytest.raises(ZeroDivisionError):
            normalize({"base": 0.0}, "base")


class TestSafeRatio:
    def test_normal(self):
        assert safe_ratio(1, 4) == 0.25

    def test_zero_denominator(self):
        assert safe_ratio(1, 0) == 0.0


class TestFunctionalCache:
    def geo(self, assoc=2):
        return CacheGeometry(num_sets=2, assoc=assoc, index_fn="linear")

    def test_compulsory_not_in_reuse_rate(self):
        cache = FunctionalCache(self.geo())
        cache.access(0)
        cache.access(2)
        assert cache.reuse_accesses == 0
        assert cache.reuse_miss_rate == 0.0

    def test_captured_reuse(self):
        cache = FunctionalCache(self.geo())
        cache.access(0)
        cache.access(0)
        assert cache.reuse_accesses == 1
        assert cache.reuse_misses == 0

    def test_thrashed_reuse_counts_as_reuse_miss(self):
        cache = FunctionalCache(self.geo(assoc=1))
        cache.access(0)   # set 0
        cache.access(2)   # set 0, evicts 0
        cache.access(0)   # reuse miss
        assert cache.reuse_misses == 1
        assert cache.reuse_miss_rate == 1.0

    def test_larger_assoc_reduces_reuse_misses(self):
        small = FunctionalCache(self.geo(assoc=1))
        big = FunctionalCache(self.geo(assoc=2))
        pattern = [0, 2, 0, 2, 0, 2]
        for b in pattern:
            small.access(b)
            big.access(b)
        assert big.reuse_misses < small.reuse_misses

    def test_merge_functional(self):
        a, b = FunctionalCache(self.geo()), FunctionalCache(self.geo())
        a.access(0); a.access(0)
        b.access(1)
        merged = merge_functional([a, b])
        assert merged["accesses"] == 3
        assert merged["compulsory"] == 2
        assert merged["reuse_accesses"] == 1
