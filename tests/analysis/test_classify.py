"""CS/CI classification by memory-access ratio (Section 3.2)."""

from repro.analysis.classify import (
    MEMORY_ACCESS_RATIO_THRESHOLD,
    classify_all,
    classify_ratio,
    classify_workload,
)


class TestThreshold:
    def test_paper_threshold_is_one_percent(self):
        assert MEMORY_ACCESS_RATIO_THRESHOLD == 0.01

    def test_classify_ratio(self):
        assert classify_ratio(0.005) == "CS"
        assert classify_ratio(0.02) == "CI"
        assert classify_ratio(0.01) == "CI"  # boundary inclusive


class TestWorkloadClassification:
    def test_single_app(self):
        c = classify_workload("GEMM")
        assert c.abbr == "GEMM"
        assert c.paper_type == "CS"
        assert 0 < c.mem_access_ratio < 0.01
        assert c.matches_paper

    def test_all_match_table2(self):
        rows = classify_all()
        assert len(rows) == 18
        mismatches = [c.abbr for c in rows if not c.matches_paper]
        assert not mismatches, f"classification mismatches: {mismatches}"

    def test_ci_apps_have_higher_ratios_than_cs(self):
        rows = classify_all()
        max_cs = max(c.mem_access_ratio for c in rows if c.paper_type == "CS")
        min_ci = min(c.mem_access_ratio for c in rows if c.paper_type == "CI")
        assert min_ci > max_cs
