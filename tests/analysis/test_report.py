"""ASCII renderers."""

from repro.analysis.report import (
    ascii_table,
    grouped_bars,
    normalized_summary,
    stacked_percent_rows,
)


class TestAsciiTable:
    def test_contains_headers_and_rows(self):
        out = ascii_table(["a", "b"], [["1", "2"], ["3", "4"]], title="T")
        assert out.startswith("T\n")
        assert "a" in out and "4" in out

    def test_column_alignment(self):
        out = ascii_table(["name", "v"], [["x", "1"], ["longer", "2"]])
        lines = out.split("\n")
        assert lines[0].index("v") == lines[-1].index("2")


class TestGroupedBars:
    def test_one_bar_per_series_per_label(self):
        out = grouped_bars(["app1", "app2"], {"A": [1.0, 2.0], "B": [0.5, 1.5]})
        assert out.count("|") == 4
        assert "app1" in out and "B" in out

    def test_values_printed(self):
        out = grouped_bars(["x"], {"s": [1.23]})
        assert "1.23" in out

    def test_zero_values_ok(self):
        out = grouped_bars(["x"], {"s": [0.0]})
        assert "0.00" in out


class TestStackedPercent:
    def test_percentages_rendered(self):
        out = stacked_percent_rows(
            ["APP"], [[0.5, 0.25, 0.25, 0.0]], ["r1", "r2", "r3", "r4"]
        )
        assert "50.0%" in out
        assert "APP" in out


class TestNormalizedSummary:
    def test_rows_and_gmeans(self):
        out = normalized_summary(
            {"APP": {"base": 1.0, "dlp": 1.4}},
            ["base", "dlp"],
            {"CI": {"base": 1.0, "dlp": 1.44}},
        )
        assert "APP" in out
        assert "G.MEAN CI" in out
        assert "1.440" in out
