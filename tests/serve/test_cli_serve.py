"""The ``repro serve`` / ``repro submit`` command-line surface.

Parser registration is checked directly; the ``submit`` verbs run
against a real in-process :class:`ServerThread` with stub workers, so
these stay fast while exercising the whole client/server/CLI path.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cache.l1d import L1DStats
from repro.cli import build_parser, main
from repro.gpu.simulator import SimResult
from repro.serve.server import ServerThread


def stub_sim(cell):
    return SimResult(cycles=4200, thread_insns=100, warp_insns=50,
                     l1d=L1DStats(), interconnect={}, l2={}, dram={},
                     policy={}).to_dict()


@pytest.fixture()
def server(tmp_path):
    with ServerThread(workers=1, store=tmp_path / "store",
                      pool=ThreadPoolExecutor(max_workers=1),
                      sim_fn=stub_sim) as srv:
        yield srv


def submit(server, *argv):
    return main(["submit", "--port", str(server.port), *argv])


class TestParser:
    def test_serve_registered_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8642
        assert args.workers == 2 and args.drain_timeout == 30.0

    def test_submit_subcommands_registered(self):
        parser = build_parser()
        for argv in (
            ["submit", "cell", "MM", "dlp"],
            ["submit", "sweep", "--apps", "MM,HS"],
            ["submit", "replay", "--apps", "MM"],
            ["submit", "status", "job-000001"],
            ["submit", "cancel", "job-000001"],
            ["submit", "metrics"],
            ["submit", "health"],
        ):
            args = parser.parse_args(argv)
            assert args.command == "submit"
            assert args.submit_command == argv[1]

    def test_submit_priority_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit", "cell", "MM", "dlp", "--priority", "urgent"]
            )

    def test_store_prune_flags_registered(self):
        args = build_parser().parse_args(
            ["store", "prune", "--max-age", "7d", "--max-entries", "100"]
        )
        assert args.action == "prune"
        assert args.max_age == "7d" and args.max_entries == 100


class TestSubmitCommands:
    def test_cell_submit_and_wait_renders_result(self, server, capsys):
        code = submit(server, "cell", "MM", "baseline",
                      "--sms", "1", "--wait")
        assert code == 0
        out = capsys.readouterr().out
        assert "submitted job-" in out
        assert "4200" in out            # the stub result's cycle count

    def test_submit_without_wait_prints_job_id(self, server, capsys):
        assert submit(server, "sweep", "--apps", "MM,HS",
                      "--schemes", "baseline,dlp", "--sms", "1") == 0
        out = capsys.readouterr().out
        assert "submitted job-" in out and "4 units" in out
        assert "priority bulk" in out

    def test_status_and_wait(self, server, capsys):
        submit(server, "cell", "MM", "dlp", "--sms", "1")
        job_id = capsys.readouterr().out.split()[1]
        assert submit(server, "status", job_id, "--wait") == 0
        assert "4200" in capsys.readouterr().out

    def test_health(self, server, capsys):
        assert submit(server, "health") == 0
        out = capsys.readouterr().out
        assert "status" in out and "ok" in out

    def test_metrics_table_and_prometheus(self, server, capsys):
        submit(server, "cell", "MM", "dlp", "--sms", "1", "--wait")
        capsys.readouterr()
        assert submit(server, "metrics") == 0
        out = capsys.readouterr().out
        assert "cells.simulated" in out and "queue wait" in out
        assert submit(server, "metrics", "--prom") == 0
        out = capsys.readouterr().out
        assert "repro_serve_cells_simulated 1" in out

    def test_unreachable_server_exits_2(self, capsys):
        # nothing listens on this ephemeral-range port
        assert main(["submit", "--port", "1", "health"]) == 2
        assert "cannot reach repro-serve" in capsys.readouterr().err


class TestSubmitFailurePath:
    def test_failed_job_exits_1_with_fingerprint(self, tmp_path, capsys):
        def boom(cell):
            raise RuntimeError("stub exploded")

        with ServerThread(workers=1, store=tmp_path / "store",
                          pool=ThreadPoolExecutor(max_workers=1),
                          sim_fn=boom) as srv:
            code = main(["submit", "--port", str(srv.port),
                         "cell", "MM", "dlp", "--sms", "1", "--wait"])
        assert code == 1
        err = capsys.readouterr().err
        assert "stub exploded" in err
        assert '"abbr": "MM"' in err and '"scheme": "dlp"' in err
