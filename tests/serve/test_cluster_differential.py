"""The cluster acceptance oracle: sharded sweep == serial executor.

The ISSUE's differential criterion: a bulk sweep fanned across a
4-worker :class:`ClusterScheduler` (real process pool, cells sharded
by content address) must leave **byte-identical** files in its result
store as the serial :class:`SweepExecutor` running the same grid —
same filenames (same content addresses) and same bytes (same payloads,
``sort_keys`` canonical JSON).  Worker identity, shard placement and
completion order must be invisible in the artefacts.
"""

from __future__ import annotations

import asyncio

from repro.experiments.executor import SweepExecutor
from repro.experiments.store import ResultStore
from repro.serve.cluster import ClusterScheduler
from repro.serve.protocol import parse_job_request, sweep_request

APPS = ["MM", "HS"]
SCHEMES = ["baseline", "dlp"]


def read_store(root) -> dict:
    return {path.name: path.read_bytes()
            for path in root.glob("*.json")}


def test_sharded_cluster_sweep_matches_serial_store(tmp_path):
    serial_store = ResultStore(tmp_path / "serial")
    SweepExecutor(store=serial_store, jobs=1).run_sweep(
        APPS, SCHEMES, num_sms=1, scale=0.1)

    async def cluster_sweep():
        scheduler = ClusterScheduler(
            store=ResultStore(tmp_path / "cluster"), workers=4)
        await scheduler.start()
        try:
            job = scheduler.submit(parse_job_request(
                sweep_request(APPS, SCHEMES, sms=1, scale=0.1)))
            while not job.done:
                await asyncio.sleep(0.01)
            assert job.state == "done", job.error
        finally:
            await scheduler.shutdown()

    asyncio.run(asyncio.wait_for(cluster_sweep(), timeout=300))

    serial = read_store(tmp_path / "serial")
    cluster = read_store(tmp_path / "cluster")
    assert len(serial) == len(APPS) * len(SCHEMES)
    assert sorted(serial) == sorted(cluster)      # same content addresses
    for name, payload in serial.items():
        assert cluster[name] == payload, f"store divergence in {name}"
