"""Tier-0 analytical serving: instant answers, background refinement.

Same stub-driven style as ``test_scheduler.py`` — ``predict_fn`` and
``sim_fn`` are injected, so every counter is exact.  The analytical
answer must come back immediately with ``tier: "analytical"``, the
refinement must run the normal exact path under the *unchanged* store
key, and the stored exact result must supersede on the next request.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List

import pytest

from repro.cache.l1d import L1DStats
from repro.experiments.store import MemoryStore
from repro.gpu.simulator import SimResult
from repro.serve.protocol import (
    ProtocolError,
    cell_request,
    parse_job_request,
)
from repro.serve.scheduler import Scheduler


def payload_for(cell) -> dict:
    return SimResult(
        cycles=2000 + len(cell.abbr), thread_insns=10, warp_insns=5,
        l1d=L1DStats(), interconnect={}, l2={}, dram={},
        policy={"scheme": float(len(cell.scheme))},
    ).to_dict()


class StubSim:
    def __init__(self, gate: threading.Event = None):
        self.calls: List[str] = []
        self._lock = threading.Lock()
        self.gate = gate

    def __call__(self, cell):
        if self.gate is not None:
            assert self.gate.wait(timeout=30), "stub gate never released"
        with self._lock:
            self.calls.append(f"{cell.abbr}/{cell.scheme}")
        return payload_for(cell)


class StubPredict:
    """Mimics jobs.predict_unit: (worker payload, trace_dir) -> dict."""

    def __init__(self, fail: bool = False):
        self.calls: List[str] = []
        self.trace_dirs: List[object] = []
        self._lock = threading.Lock()
        self.fail = fail

    def __call__(self, spec: dict, trace_dir=None) -> dict:
        with self._lock:
            self.calls.append(f"{spec['abbr']}/{spec['scheme']}")
            self.trace_dirs.append(trace_dir)
        if self.fail:
            raise RuntimeError("injected prediction failure")
        return {
            "tier": "analytical",
            "app": spec["abbr"], "scheme": spec["scheme"],
            "miss_rate": 0.25, "hit_rate": 0.75,
            "error": {"mean_abs": 0.01, "max_abs": 0.05},
        }


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def make_scheduler(workers=1, sim_fn=None, predict_fn=None,
                         store=None, pool_size=None, **kwargs):
    scheduler = Scheduler(
        store=store if store is not None else MemoryStore(),
        workers=workers,
        pool=ThreadPoolExecutor(max_workers=pool_size or workers),
        sim_fn=sim_fn if sim_fn is not None else StubSim(),
        predict_fn=predict_fn if predict_fn is not None else StubPredict(),
        **kwargs,
    )
    await scheduler.start()
    return scheduler


async def settle(job):
    while not job.done:
        await asyncio.sleep(0.005)
    return job


PREDICT_CELL = cell_request("MM", "baseline", sms=1, scale=0.1, predict=True)
PLAIN_CELL = cell_request("MM", "baseline", sms=1, scale=0.1)


async def wait_for_store(scheduler, key, timeout=30.0):
    waited = 0.0
    while scheduler.store.get(key) is None:
        await asyncio.sleep(0.01)
        waited += 0.01
        assert waited < timeout, "refinement never stored an exact result"


class TestProtocol:
    def test_predict_flag_survives_the_wire(self):
        request = parse_job_request(PREDICT_CELL)
        assert request.predict is True
        assert request.describe()["predict"] is True
        assert parse_job_request(PLAIN_CELL).predict is False

    def test_store_key_is_invariant_under_predict(self):
        predicted = parse_job_request(PREDICT_CELL).units[0]
        plain = parse_job_request(PLAIN_CELL).units[0]
        assert predicted.key() == plain.key()

    def test_predict_rejects_non_blocking_mode(self):
        body = cell_request("MM", "baseline", sms=1, scale=0.1, predict=True,
                            non_blocking=True)
        with pytest.raises(ProtocolError, match="predict"):
            parse_job_request(body)


class TestTier0:
    def test_cold_cell_answers_analytically_then_refines_to_exact(self):
        async def body():
            sim, predictor = StubSim(), StubPredict()
            scheduler = await make_scheduler(sim_fn=sim,
                                             predict_fn=predictor)
            try:
                key = parse_job_request(PREDICT_CELL).units[0].key()
                job = await settle(scheduler.submit(
                    parse_job_request(PREDICT_CELL)))
                assert job.state == "done"
                answer = job.results[0]["result"]
                assert answer["tier"] == "analytical"
                assert answer["error"]["mean_abs"] == 0.01
                assert predictor.calls == ["MM/baseline"]
                assert scheduler.metrics.predict_answers == 1
                assert scheduler.metrics.refinements == 1

                # the background refinement runs the exact path and
                # stores under the byte-identical key — never the
                # analytical payload
                await wait_for_store(scheduler, key)
                assert sim.calls == ["MM/baseline"]
                stored = scheduler.store.get(key).to_dict()
                assert "tier" not in stored
                assert stored["cycles"] == 2002

                # a later predict request is served exact from the store
                again = await settle(scheduler.submit(
                    parse_job_request(PREDICT_CELL)))
                exact = again.results[0]["result"]
                assert exact["tier"] == "exact"
                assert exact["cycles"] == 2002
                assert predictor.calls == ["MM/baseline"]    # still once
                assert scheduler.metrics.cells_store_hits == 1
                assert scheduler.metrics.supersede_latency.count == 1
            finally:
                await scheduler.shutdown()
        run(body())

    def test_plain_payloads_never_grow_a_tier_key(self):
        async def body():
            scheduler = await make_scheduler()
            try:
                job = await settle(scheduler.submit(
                    parse_job_request(PLAIN_CELL)))
                assert "tier" not in job.results[0]["result"]
            finally:
                await scheduler.shutdown()
        run(body())

    def test_concurrent_predicts_share_one_refinement(self):
        async def body():
            sim, predictor = StubSim(), StubPredict()
            scheduler = await make_scheduler(workers=2, sim_fn=sim,
                                             predict_fn=predictor)
            try:
                key = parse_job_request(PREDICT_CELL).units[0].key()
                jobs = [scheduler.submit(parse_job_request(PREDICT_CELL))
                        for _ in range(2)]
                for job in jobs:
                    await settle(job)
                # analytical answers are cheap and not coalesced, but
                # the expensive refinement is deduplicated
                assert scheduler.metrics.predict_answers == 2
                assert scheduler.metrics.refinements == 1
                await wait_for_store(scheduler, key)
                assert sim.calls == ["MM/baseline"]
            finally:
                await scheduler.shutdown()
        run(body())

    def test_plain_request_coalesces_onto_inflight_refinement(self):
        async def body():
            gate = threading.Event()
            sim, predictor = StubSim(gate=gate), StubPredict()
            scheduler = await make_scheduler(sim_fn=sim,
                                             predict_fn=predictor)
            try:
                predicted = await settle(scheduler.submit(
                    parse_job_request(PREDICT_CELL)))
                assert predicted.results[0]["result"]["tier"] == "analytical"
                while scheduler.running_count() != 1:  # refinement running
                    await asyncio.sleep(0.005)
                plain = scheduler.submit(parse_job_request(PLAIN_CELL))
                await asyncio.sleep(0.02)
                gate.set()
                await settle(plain)
                assert plain.state == "done"
                assert plain.results[0]["result"]["cycles"] == 2002
                assert sim.calls == ["MM/baseline"]          # exactly once
                assert scheduler.metrics.cells_coalesced == 1
            finally:
                await scheduler.shutdown()
        run(body())

    def test_refinement_yields_to_interactive_work(self):
        async def body():
            gate = threading.Event()
            sim, predictor = StubSim(gate=gate), StubPredict()
            # one queue worker, but a second pool thread so the
            # analytical answer isn't stuck behind the gated sim
            scheduler = await make_scheduler(sim_fn=sim,
                                             predict_fn=predictor,
                                             pool_size=2)
            try:
                # occupy the single worker with cell A
                a = scheduler.submit(parse_job_request(
                    cell_request("HS", "dlp", sms=1, scale=0.1)))
                while scheduler.running_count() != 1:
                    await asyncio.sleep(0.005)
                # queue a refinement (B) then an interactive cell (C)
                b = await settle(scheduler.submit(
                    parse_job_request(PREDICT_CELL)))
                assert b.results[0]["result"]["tier"] == "analytical"
                c = scheduler.submit(parse_job_request(
                    cell_request("KM", "baseline", sms=1, scale=0.1)))
                await asyncio.sleep(0.02)
                gate.set()
                await settle(a)
                await settle(c)
                key = parse_job_request(PREDICT_CELL).units[0].key()
                await wait_for_store(scheduler, key)
                # interactive C overtook the queued refinement for B
                assert sim.calls == ["HS/dlp", "KM/baseline", "MM/baseline"]
            finally:
                await scheduler.shutdown()
        run(body())

    def test_trace_dir_is_threaded_to_the_predictor(self, tmp_path):
        async def body():
            predictor = StubPredict()
            scheduler = await make_scheduler(predict_fn=predictor,
                                             trace_dir=tmp_path)
            try:
                await settle(scheduler.submit(
                    parse_job_request(PREDICT_CELL)))
                assert predictor.trace_dirs == [str(tmp_path)]
            finally:
                await scheduler.shutdown()
        run(body())


class TestFailure:
    def test_failed_prediction_fails_the_job_with_fingerprint(self):
        async def body():
            scheduler = await make_scheduler(
                predict_fn=StubPredict(fail=True))
            try:
                job = await settle(scheduler.submit(
                    parse_job_request(PREDICT_CELL)))
                assert job.state == "failed"
                assert "injected prediction failure" in job.error["error"]
                assert job.error["fingerprint"]["abbr"] == "MM"
                assert scheduler.metrics.cells_failed == 1
                assert scheduler.metrics.predict_answers == 0
            finally:
                await scheduler.shutdown()
        run(body())

    def test_warm_store_skips_the_predictor_entirely(self):
        async def body():
            sim, predictor = StubSim(), StubPredict()
            scheduler = await make_scheduler(sim_fn=sim,
                                             predict_fn=predictor)
            try:
                key = parse_job_request(PLAIN_CELL).units[0].key()
                await settle(scheduler.submit(parse_job_request(PLAIN_CELL)))
                await wait_for_store(scheduler, key)
                job = await settle(scheduler.submit(
                    parse_job_request(PREDICT_CELL)))
                assert job.results[0]["result"]["tier"] == "exact"
                assert predictor.calls == []
                assert scheduler.metrics.predict_answers == 0
                assert scheduler.metrics.refinements == 0
            finally:
                await scheduler.shutdown()
        run(body())
