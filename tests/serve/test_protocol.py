"""Job request parsing, validation, and content-address agreement."""

from __future__ import annotations

import pytest

from repro.experiments.executor import Cell
from repro.experiments.store import replay_cell_key
from repro.gpu.config import GPUConfig
from repro.serve.protocol import (
    MODE_REPLAY,
    MODE_SIM,
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    ProtocolError,
    cell_request,
    parse_job_request,
    replay_request,
    sweep_request,
)


class TestParsing:
    def test_cell_request_roundtrip(self):
        req = parse_job_request(
            cell_request("bfs", "dlp", sms=2, scale=0.5, seed=3)
        )
        assert req.kind == "cell"
        assert req.priority == PRIORITY_INTERACTIVE
        (unit,) = req.units
        assert unit.mode == MODE_SIM
        assert unit.abbr == "BFS" and unit.scheme == "dlp"
        assert unit.num_sms == 2 and unit.scale == 0.5 and unit.seed == 3

    def test_sweep_builds_full_grid_bulk_priority(self):
        req = parse_job_request(
            sweep_request(["MM", "HS"], ["baseline", "dlp"], sms=1)
        )
        assert req.kind == "sweep"
        assert req.priority == PRIORITY_BULK
        assert len(req.units) == 4
        assert {(u.abbr, u.scheme) for u in req.units} == {
            ("MM", "baseline"), ("MM", "dlp"),
            ("HS", "baseline"), ("HS", "dlp"),
        }

    def test_replay_units_use_replay_mode(self):
        req = parse_job_request(replay_request(["MM"], ["dlp"]))
        (unit,) = req.units
        assert unit.mode == MODE_REPLAY

    def test_priority_override(self):
        req = parse_job_request(
            sweep_request(["MM"], ["baseline", "dlp"],
                          priority="interactive")
        )
        assert req.priority == PRIORITY_INTERACTIVE

    def test_single_unit_sweep_defaults_interactive(self):
        req = parse_job_request(sweep_request(["MM"], ["dlp"]))
        assert req.priority == PRIORITY_INTERACTIVE


class TestKeys:
    """The scheduler coalesces on exactly the store's content addresses."""

    def test_sim_unit_key_matches_executor_cell_key(self):
        req = parse_job_request(cell_request("MM", "dlp", sms=2, seed=1))
        (unit,) = req.units
        expected = Cell.make("MM", "dlp", num_sms=2, seed=1).key()
        assert unit.key() == expected

    def test_replay_unit_key_matches_replay_cell_key(self):
        req = parse_job_request(replay_request(["MM"], ["dlp"], sms=2))
        (unit,) = req.units
        expected = replay_cell_key(
            "MM", "dlp", GPUConfig().scaled(2), scale=1.0, seed=0,
        )
        assert unit.key() == expected

    def test_replay_and_sim_never_collide(self):
        sim = parse_job_request(cell_request("MM", "dlp")).units[0]
        rep = parse_job_request(replay_request(["MM"], ["dlp"])).units[0]
        assert sim.key() != rep.key()

    def test_fingerprint_identifies_the_cell(self):
        (unit,) = parse_job_request(
            cell_request("MM", "dlp", sms=2, seed=5)
        ).units
        fp = unit.fingerprint()
        assert fp["abbr"] == "MM" and fp["scheme"] == "dlp"
        assert fp["seed"] == 5 and fp["config"]["num_sms"] == 2

    def test_replay_fingerprint_is_mode_tagged(self):
        (unit,) = parse_job_request(replay_request(["MM"], ["dlp"])).units
        assert unit.fingerprint()["mode"] == "replay"


class TestValidation:
    @pytest.mark.parametrize("payload", [
        None,
        [],
        {},
        {"kind": "nope", "app": "MM", "scheme": "dlp"},
        {"kind": "cell", "scheme": "dlp"},                   # missing app
        {"kind": "cell", "app": "MM"},                       # missing scheme
        {"kind": "cell", "app": "NOPE", "scheme": "dlp"},
        {"kind": "cell", "app": "MM", "scheme": "nope"},
        {"kind": "cell", "app": "MM", "scheme": "dlp", "sms": 0},
        {"kind": "cell", "app": "MM", "scheme": "dlp", "sms": "four"},
        {"kind": "cell", "app": "MM", "scheme": "dlp", "scale": -1},
        {"kind": "cell", "app": "MM", "scheme": "dlp", "seed": -1},
        {"kind": "cell", "app": "MM", "scheme": "dlp", "max_cycles": 0},
        {"kind": "cell", "app": "MM", "scheme": "dlp", "priority": "urgent"},
        {"kind": "cell", "app": "MM", "scheme": "dlp", "policy_kwargs": 7},
        {"kind": "cell", "apps": ["MM", "HS"], "scheme": "dlp"},  # grid cell
        {"kind": "sweep", "apps": [], "schemes": ["dlp"]},
        {"kind": "sweep", "apps": ["MM"], "schemes": ["dlp"],
         "max_cycles": 10},
    ])
    def test_rejects_bad_requests(self, payload):
        with pytest.raises(ProtocolError):
            parse_job_request(payload)

    def test_app_names_case_insensitive(self):
        req = parse_job_request(cell_request("mm", "dlp"))
        assert req.units[0].abbr == "MM"
