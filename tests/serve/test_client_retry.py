"""ServeClient retry/backoff semantics, without a server.

``_roundtrip`` is scripted and ``time.sleep`` intercepted, so every
test observes the exact retry schedule: which attempts happened, how
long each backoff was, and whose hint (computed jitter vs. the
server's ``Retry-After``) won.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.utils.rng import DeterministicRng


class ScriptedClient(ServeClient):
    """Replays a scripted list of round-trip outcomes."""

    def __init__(self, script, **kwargs):
        kwargs.setdefault("rng", DeterministicRng("test-backoff"))
        super().__init__(**kwargs)
        self.script = list(script)
        self.attempts = 0

    def _roundtrip(self, method, path, body):
        self.attempts += 1
        outcome = self.script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


@pytest.fixture()
def sleeps(monkeypatch) -> List[float]:
    record: List[float] = []
    monkeypatch.setattr("repro.serve.client.time.sleep", record.append)
    return record


class TestThrottleRetry:
    def test_429_retried_until_success(self, sleeps):
        client = ScriptedClient(
            [(429, {"error": "full"}, 0.2),
             (429, {"error": "full"}, 0.1),
             (200, {"id": "job-1"}, None)],
            retries=5,
        )
        status, doc = client.request("POST", "/jobs", {})
        assert status == 200 and doc == {"id": "job-1"}
        assert client.attempts == 3
        assert client.retried_throttles == 2

    def test_retry_after_wins_over_computed_backoff(self, sleeps):
        client = ScriptedClient(
            [(429, {}, 0.2), (200, {}, None)], retries=3)
        client.request("GET", "/x")
        assert sleeps == [0.2]

    def test_retry_after_clamped_to_cap(self, sleeps):
        client = ScriptedClient(
            [(429, {}, 99.0), (200, {}, None)],
            retries=3, backoff_cap=0.5,
        )
        client.request("GET", "/x")
        assert sleeps == [0.5]

    def test_exhausted_retries_surface_the_final_429(self, sleeps):
        client = ScriptedClient([(429, {"error": "full"}, 0.1)] * 3,
                                retries=2)
        status, doc = client.request("POST", "/jobs", {})
        assert status == 429
        assert client.attempts == 3          # 1 try + 2 retries

    def test_retries_off_by_default(self, sleeps):
        client = ScriptedClient([(429, {"error": "full"}, 0.1)])
        status, _doc = client.request("POST", "/jobs", {})
        assert status == 429
        assert client.attempts == 1 and sleeps == []


class TestTransportRetry:
    def test_transport_error_retried(self, sleeps):
        client = ScriptedClient(
            [ServeError("connection refused"), (200, {"ok": True}, None)],
            retries=2,
        )
        status, doc = client.request("GET", "/healthz")
        assert status == 200
        assert client.retried_errors == 1

    def test_exhausted_transport_retries_raise(self, sleeps):
        client = ScriptedClient(
            [ServeError("refused")] * 3, retries=2)
        with pytest.raises(ServeError, match="refused"):
            client.request("GET", "/healthz")
        assert client.attempts == 3

    def test_no_retry_when_disabled(self, sleeps):
        client = ScriptedClient([ServeError("refused")])
        with pytest.raises(ServeError):
            client.request("GET", "/healthz")
        assert client.attempts == 1


class TestBackoffShape:
    def test_full_jitter_within_doubling_ceiling(self):
        client = ServeClient(retries=5, backoff_base=0.25, backoff_cap=5.0,
                             rng=DeterministicRng("jitter"))
        for attempt in range(6):
            ceiling = min(5.0, 0.25 * (2 ** attempt))
            for _ in range(16):
                delay = client._backoff(attempt, None)
                assert 0.0 <= delay <= ceiling

    def test_deterministic_given_rng(self):
        a = ServeClient(retries=1, rng=DeterministicRng("same"))
        b = ServeClient(retries=1, rng=DeterministicRng("same"))
        assert [a._backoff(i, None) for i in range(4)] \
            == [b._backoff(i, None) for i in range(4)]
