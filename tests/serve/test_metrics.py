"""Histograms, snapshots, and the Prometheus rendering."""

from __future__ import annotations

from repro.analysis.telemetry import render_latency_histogram
from repro.serve.metrics import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    ServeMetrics,
    render_prometheus,
)


class TestLatencyHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert abs(snap["sum"] - 5.555) < 1e-9
        # cumulative counts, Prometheus-style
        assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}

    def test_boundary_value_is_inclusive(self):
        hist = LatencyHistogram(buckets=(0.1, 1.0))
        hist.observe(0.1)
        assert hist.snapshot()["buckets"]["0.1"] == 1

    def test_empty_histogram(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0 and snap["sum"] == 0
        assert snap["buckets"]["+Inf"] == 0

    def test_default_buckets_resolve_tier0_latencies(self):
        # regression: the default buckets started at 1 ms, so every
        # tier-0 analytical answer (~18 µs) and warm store hit piled
        # into the first bucket and the histogram carried no signal.
        assert DEFAULT_BUCKETS[0] <= 1e-05
        hist = LatencyHistogram()
        hist.observe(18e-06)   # tier-0 analytical answer
        hist.observe(300e-06)  # warm store hit
        snap = hist.snapshot()["buckets"]
        assert snap["2.5e-05"] == 1   # 18 µs resolved below 25 µs
        assert snap["0.0001"] == 1    # 300 µs not yet counted at 100 µs
        assert snap["0.0005"] == 2

    def test_default_buckets_sorted_for_bisect(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_bisect_matches_linear_scan(self):
        # observe() now bisects; first-bucket-with-seconds<=bound
        # semantics must be unchanged, boundaries included.
        hist = LatencyHistogram()
        probes = [b for b in DEFAULT_BUCKETS]
        probes += [b * 0.999 for b in DEFAULT_BUCKETS]
        probes += [b * 1.001 for b in DEFAULT_BUCKETS]
        probes += [0.0, 1e-9, 500.0]
        for seconds in probes:
            hist.observe(seconds)
        linear = [0] * (len(DEFAULT_BUCKETS) + 1)
        for seconds in probes:
            for i, bound in enumerate(DEFAULT_BUCKETS):
                if seconds <= bound:
                    linear[i] += 1
                    break
            else:
                linear[-1] += 1
        assert hist.counts == linear


class TestServeMetrics:
    def test_snapshot_shape(self):
        metrics = ServeMetrics()
        metrics.jobs_submitted = 3
        metrics.cells_coalesced = 2
        metrics.sim_latency_for("dlp").observe(0.2)
        doc = metrics.snapshot(
            queued=1, running=2, jobs_active=1,
            store_stats={"hits": 5, "misses": 1, "puts": 1},
            draining=True, uptime=12.5,
        )
        assert doc["jobs"]["submitted"] == 3
        assert doc["cells"]["coalesced"] == 2
        assert doc["cells"]["queued"] == 1 and doc["cells"]["running"] == 2
        assert doc["store"]["hits"] == 5
        assert doc["draining"] is True
        assert doc["uptime_seconds"] == 12.5
        assert doc["sim_latency_seconds"]["dlp"]["count"] == 1

    def test_sim_latency_per_scheme_isolated(self):
        metrics = ServeMetrics()
        metrics.sim_latency_for("dlp").observe(0.1)
        metrics.sim_latency_for("baseline").observe(0.2)
        metrics.sim_latency_for("dlp").observe(0.3)
        doc = metrics.snapshot()
        assert doc["sim_latency_seconds"]["dlp"]["count"] == 2
        assert doc["sim_latency_seconds"]["baseline"]["count"] == 1


class TestPrometheusRendering:
    def test_counters_and_histograms_render(self):
        metrics = ServeMetrics()
        metrics.jobs_submitted = 2
        metrics.queue_wait.observe(0.004)
        metrics.sim_latency_for("dlp").observe(0.2)
        text = render_prometheus(metrics.snapshot(queued=1))
        assert "repro_serve_jobs_submitted 2" in text
        assert "repro_serve_cells_queued 1" in text
        assert 'repro_serve_queue_wait_seconds_bucket{le="0.005"} 1' in text
        assert ('repro_serve_sim_latency_seconds_bucket'
                '{scheme="dlp",le="0.25"} 1') in text
        assert "repro_serve_sim_latency_seconds_count" in text
        # every line is "name{labels} value" or "name value"
        for line in text.strip().splitlines():
            assert line.startswith("repro_serve_"), line
            assert len(line.rsplit(" ", 1)) == 2, line


class TestAsciiRendering:
    def test_render_handles_json_sorted_buckets(self):
        # JSON round-trips sort bucket keys lexicographically; the
        # renderer must recover numeric order before un-cumulating.
        hist = LatencyHistogram(buckets=(0.001, 0.01, 0.25))
        for v in (0.0005, 0.0005, 0.2, 2.0):
            hist.observe(v)
        snap = hist.snapshot()
        scrambled = dict(sorted(snap["buckets"].items()))
        text = render_latency_histogram(
            "queue wait", {**snap, "buckets": scrambled}
        )
        assert "n=4" in text
        assert "<= 0.001s" in text and "<= +Infs" in text
        lines = [l for l in text.splitlines() if l.startswith("<=")]
        counts = [int(l.split()[2]) for l in lines]
        assert counts == [2, 1, 1] and all(c >= 0 for c in counts)

    def test_render_empty(self):
        text = render_latency_histogram("idle", LatencyHistogram().snapshot())
        assert "(empty)" in text
