"""Cluster scheduler semantics: admission, fairness, crash recovery.

Same stub-driven style as ``test_scheduler.py`` — the simulation
function is injected on a thread pool, so token buckets, fair-queueing
order and the ``BrokenExecutor`` recovery path are all observed with
exact counters and no real processes.  The HTTP mapping (429 +
``Retry-After``) runs against a real :class:`ServerThread` at the end.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from typing import List, Tuple

import pytest

from repro.cache.l1d import L1DStats
from repro.experiments.store import MemoryStore
from repro.gpu.simulator import SimResult
from repro.serve.client import ServeClient
from repro.serve.cluster import (
    ClusterScheduler,
    QueueFullError,
    RateLimitedError,
    TokenBucket,
    shard_of,
)
from repro.serve.protocol import ProtocolError, cell_request, parse_job_request
from repro.serve.server import ServerThread


def payload_for(cell) -> dict:
    return SimResult(
        cycles=1000 + cell.seed, thread_insns=10, warp_insns=5,
        l1d=L1DStats(), interconnect={}, l2={}, dram={}, policy={},
    ).to_dict()


class StubSim:
    """Records (abbr, seed) per execution; optionally gated."""

    def __init__(self, gate: threading.Event = None):
        self.calls: List[Tuple[str, int]] = []
        self._lock = threading.Lock()
        self.gate = gate

    def __call__(self, cell):
        if self.gate is not None:
            assert self.gate.wait(timeout=30), "stub gate never released"
        with self._lock:
            self.calls.append((cell.abbr, cell.seed))
        return payload_for(cell)


class FakeClock:
    def __init__(self, start: float = 100.0):
        self.t = start

    def __call__(self) -> float:
        return self.t


def cell(seed: int, client: str = None) -> dict:
    return cell_request("MM", "baseline", sms=1, scale=0.1, seed=seed,
                        client=client)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def make_cluster(workers=1, sim_fn=None, **kwargs):
    scheduler = ClusterScheduler(
        store=MemoryStore(),
        workers=workers,
        pool=kwargs.pop("pool", None) if "pool" in kwargs
        else ThreadPoolExecutor(max_workers=workers),
        sim_fn=sim_fn if sim_fn is not None else StubSim(),
        **kwargs,
    )
    await scheduler.start()
    return scheduler


async def settle(job):
    while not job.done:
        await asyncio.sleep(0.005)
    return job


async def until(predicate, timeout: float = 30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, \
            "condition never became true"
        await asyncio.sleep(0.005)


class TestShardOf:
    def test_single_shard_is_always_zero(self):
        assert shard_of("ff" * 32, 1) == 0

    def test_deterministic_and_in_range(self):
        import hashlib
        keys = [hashlib.sha256(str(i).encode()).hexdigest()
                for i in range(64)]
        for shards in (2, 3, 4, 7):
            placed = [shard_of(k, shards) for k in keys]
            assert placed == [shard_of(k, shards) for k in keys]
            assert all(0 <= s < shards for s in placed)
            # 64 spread keys must not all collapse onto one shard
            assert len(set(placed)) > 1

    def test_same_cell_same_shard_across_submissions(self):
        key = parse_job_request(cell(7)).units[0].key()
        again = parse_job_request(cell(7)).units[0].key()
        assert shard_of(key, 4) == shard_of(again, 4)


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.take() and bucket.take()
        assert not bucket.take()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.take(2.0)
        clock.t += 0.5                       # 1 token back
        assert bucket.take(1.0)
        assert not bucket.take(1.0)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.t += 1000.0
        assert bucket.take(3.0)
        assert not bucket.take(0.5)

    def test_wait_time_is_deficit_over_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.take(1.0)
        assert bucket.wait_time(1.0) == pytest.approx(0.5)
        assert bucket.wait_time(0.0) == 0.0

    def test_failed_take_does_not_debit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert not bucket.take(5.0)
        assert bucket.take(1.0)              # the single token survived


class TestQueueAdmission:
    def test_full_queue_rejects_with_retry_hint(self):
        async def body():
            gate = threading.Event()
            scheduler = await make_cluster(sim_fn=StubSim(gate=gate),
                                           max_queued=2)
            try:
                held = scheduler.submit(parse_job_request(cell(1)))
                await until(lambda: scheduler.running_count() == 1)
                queued = [scheduler.submit(parse_job_request(cell(s)))
                          for s in (2, 3)]
                await until(lambda: scheduler.queue_depth() == 2)
                with pytest.raises(QueueFullError) as excinfo:
                    scheduler.submit(parse_job_request(cell(4)))
                assert excinfo.value.retry_after > 0
                assert scheduler.metrics.jobs_throttled_queue == 1
                gate.set()
                for job in [held] + queued:
                    assert (await settle(job)).state == "done"
            finally:
                await scheduler.shutdown()
        run(body())

    def test_multi_cell_job_counts_all_its_cells(self):
        async def body():
            gate = threading.Event()
            scheduler = await make_cluster(sim_fn=StubSim(gate=gate),
                                           max_queued=2)
            try:
                held = scheduler.submit(parse_job_request(cell(1)))
                await until(lambda: scheduler.running_count() == 1)
                from repro.serve.protocol import sweep_request
                # 4 cells > bound of 2, even though the queue is empty
                with pytest.raises(QueueFullError):
                    scheduler.submit(parse_job_request(sweep_request(
                        ["MM", "HS"], ["baseline", "dlp"], sms=1, scale=0.1
                    )))
                gate.set()
                await settle(held)
            finally:
                await scheduler.shutdown()
        run(body())

    def test_unbounded_by_default(self):
        async def body():
            scheduler = await make_cluster()
            try:
                jobs = [scheduler.submit(parse_job_request(cell(s)))
                        for s in range(20)]
                for job in jobs:
                    assert (await settle(job)).state == "done"
            finally:
                await scheduler.shutdown()
        run(body())


class TestRateLimiting:
    def test_bucket_exhaustion_rejects_then_refills(self):
        async def body():
            clock = FakeClock()
            scheduler = await make_cluster(rate=1.0, burst=2.0, clock=clock)
            try:
                a = scheduler.submit(parse_job_request(cell(1, "alice")))
                b = scheduler.submit(parse_job_request(cell(2, "alice")))
                with pytest.raises(RateLimitedError) as excinfo:
                    scheduler.submit(parse_job_request(cell(3, "alice")))
                assert excinfo.value.retry_after == pytest.approx(1.0)
                assert scheduler.metrics.jobs_throttled_rate == 1
                clock.t += 1.0               # one token back
                c = scheduler.submit(parse_job_request(cell(3, "alice")))
                for job in (a, b, c):
                    assert (await settle(job)).state == "done"
            finally:
                await scheduler.shutdown()
        run(body())

    def test_buckets_are_per_client(self):
        async def body():
            clock = FakeClock()
            scheduler = await make_cluster(rate=1.0, burst=1.0, clock=clock)
            try:
                a = scheduler.submit(parse_job_request(cell(1, "alice")))
                with pytest.raises(RateLimitedError):
                    scheduler.submit(parse_job_request(cell(2, "alice")))
                # bob has his own untouched bucket
                b = scheduler.submit(parse_job_request(cell(3, "bob")))
                for job in (a, b):
                    assert (await settle(job)).state == "done"
            finally:
                await scheduler.shutdown()
        run(body())


class TestFairQueueing:
    def test_interactive_client_not_starved_by_flood(self):
        """The starvation bound: after a 6-cell flood from one client,
        a second client's first cell is served within 2 dequeues of the
        flood's in-flight cell — not after the whole flood (FIFO)."""
        async def body():
            gate = threading.Event()
            sim = StubSim(gate=gate)
            scheduler = await make_cluster(sim_fn=sim)
            try:
                flood = [scheduler.submit(parse_job_request(
                    cell(s, "flood"))) for s in range(1, 7)]
                # first flood cell in flight, five queued behind it
                await until(lambda: scheduler.running_count() == 1
                            and scheduler.queue_depth() == 5)
                alice = scheduler.submit(parse_job_request(cell(99, "alice")))
                await until(lambda: scheduler.queue_depth() == 6)
                gate.set()
                await settle(alice)
                for job in flood:
                    await settle(job)
                served = [seed for _abbr, seed in sim.calls]
                # FIFO would put alice last (index 6); her virtual
                # finish tag sorts just after the flood's second cell
                assert served.index(99) <= 2, served
            finally:
                await scheduler.shutdown()
        run(body())

    def test_weighted_client_overtakes_queued_peer(self):
        async def body():
            gate = threading.Event()
            sim = StubSim(gate=gate)
            scheduler = await make_cluster(
                sim_fn=sim, client_weights={"vip": 2.0})
            try:
                flood = [scheduler.submit(parse_job_request(
                    cell(s, "flood"))) for s in range(1, 5)]
                await until(lambda: scheduler.running_count() == 1
                            and scheduler.queue_depth() == 3)
                vip = scheduler.submit(parse_job_request(cell(50, "vip")))
                await until(lambda: scheduler.queue_depth() == 4)
                gate.set()
                for job in flood + [vip]:
                    await settle(job)
                served = [seed for _abbr, seed in sim.calls]
                # finish tag 1.5 (weight 2) beats flood's tag-2 cell
                assert served[1] == 50, served
            finally:
                await scheduler.shutdown()
        run(body())


class CrashingSim:
    """Raises BrokenExecutor the first ``crashes`` times per cell."""

    def __init__(self, crashes: int = 1, barrier: threading.Barrier = None):
        self.crashes = crashes
        self.barrier = barrier
        self.failures: dict = {}
        self.completed: List[int] = []
        self._lock = threading.Lock()

    def __call__(self, cell):
        with self._lock:
            failed = self.failures.get(cell.seed, 0)
            crash = failed < self.crashes
            if crash:
                self.failures[cell.seed] = failed + 1
        if crash:
            if self.barrier is not None:
                self.barrier.wait(timeout=30)
            raise BrokenExecutor("worker process died")
        with self._lock:
            self.completed.append(cell.seed)
        return payload_for(cell)


class TestCrashRecovery:
    def test_crashed_cell_restarts_pool_and_requeues_once(self):
        async def body():
            sim = CrashingSim(crashes=1)
            scheduler = await make_cluster(
                sim_fn=sim, pool=None,
                pool_factory=lambda: ThreadPoolExecutor(max_workers=1),
            )
            try:
                job = await settle(scheduler.submit(parse_job_request(
                    cell(1))))
                assert job.state == "done"
                assert scheduler.metrics.worker_restarts == 1
                assert scheduler.metrics.cells_requeued == 1
                assert sim.completed == [1]
                assert scheduler._pool_gen == 1
            finally:
                await scheduler.shutdown()
        run(body())

    def test_requeue_limit_exhaustion_surfaces_the_failure(self):
        async def body():
            sim = CrashingSim(crashes=99)         # never recovers
            scheduler = await make_cluster(
                sim_fn=sim, pool=None, requeue_limit=1,
                pool_factory=lambda: ThreadPoolExecutor(max_workers=1),
            )
            try:
                job = await settle(scheduler.submit(parse_job_request(
                    cell(1))))
                assert job.state == "failed"
                assert "worker process died" in job.error["error"]
                assert scheduler.metrics.cells_requeued == 1
                assert scheduler.metrics.cells_failed == 1
            finally:
                await scheduler.shutdown()
        run(body())

    def test_concurrent_failures_restart_the_pool_once(self):
        """A dying worker breaks every in-flight future at the same
        generation; only the first failure may rebuild the pool."""
        def shard_spread_bodies(shards: int) -> List[dict]:
            found = {}
            seed = 0
            while len(found) < shards:
                seed += 1
                body = cell(seed)
                key = parse_job_request(body).units[0].key()
                found.setdefault(shard_of(key, shards), body)
            return [found[i] for i in range(shards)]

        async def body():
            barrier = threading.Barrier(2)
            sim = CrashingSim(crashes=1, barrier=barrier)
            scheduler = await make_cluster(
                workers=2, sim_fn=sim, pool=None,
                pool_factory=lambda: ThreadPoolExecutor(max_workers=2),
            )
            try:
                jobs = [scheduler.submit(parse_job_request(b))
                        for b in shard_spread_bodies(2)]
                for job in jobs:
                    assert (await settle(job)).state == "done"
                assert scheduler.metrics.worker_restarts == 1
                assert scheduler.metrics.cells_requeued == 2
            finally:
                await scheduler.shutdown()
        run(body())


class TestClientField:
    def test_default_is_anonymous(self):
        assert parse_job_request(cell(1)).client == "anonymous"

    def test_explicit_client_round_trips(self):
        request = parse_job_request(cell(1, client="alice"))
        assert request.client == "alice"

    @pytest.mark.parametrize("bad", ["", "   ", 42, "x" * 65])
    def test_invalid_client_is_rejected(self, bad):
        body = cell(1)
        body["client"] = bad
        with pytest.raises(ProtocolError):
            parse_job_request(body)


class TestHttp429:
    def test_queue_full_maps_to_429_with_retry_after(self, tmp_path):
        gate = threading.Event()
        sim = StubSim(gate=gate)
        with ServerThread(workers=1, store=tmp_path / "store",
                          pool=ThreadPoolExecutor(max_workers=1),
                          sim_fn=sim, scheduler_cls=ClusterScheduler,
                          max_queued=1) as srv:
            client = srv.client()
            client.submit(cell(1))
            deadline = threading.Event()
            for _ in range(400):
                if srv.scheduler.running_count() == 1:
                    break
                deadline.wait(0.01)
            client.submit(cell(2))               # fills the queue bound
            for _ in range(400):
                if srv.scheduler.queue_depth() == 1:
                    break
                deadline.wait(0.01)

            status, body, retry_after = client._roundtrip(
                "POST", "/jobs", cell(3))
            assert status == 429
            assert "queue full" in body["error"]
            assert retry_after is not None and retry_after > 0

            # a retrying client rides out the backpressure window
            retrier = ServeClient("127.0.0.1", srv.port, retries=40,
                                  backoff_base=0.01, backoff_cap=0.05)
            outcome = {}

            def resubmit():
                outcome["status"], outcome["doc"] = retrier.request(
                    "POST", "/jobs", cell(3))

            thread = threading.Thread(target=resubmit)
            thread.start()
            for _ in range(400):                 # first attempt sees 429
                if retrier.retried_throttles >= 1:
                    break
                deadline.wait(0.01)
            assert retrier.retried_throttles >= 1
            gate.set()
            thread.join(timeout=30)
            assert outcome["status"] == 200
            ServeClient("127.0.0.1", srv.port).wait(outcome["doc"]["id"])
            metrics = client.metrics()
            assert metrics["jobs"]["throttled_queue"] >= 1
            assert metrics["workers"]["restarts_total"] == 0
