"""Scheduler semantics: coalescing, priority, cancellation, failure.

These are pure scheduling tests — the simulation function is a stub
injected alongside a thread pool, so every test is fast and the
counters are exact.  The integration tests in
``test_server_integration.py`` run the same paths with real process
workers and real simulations.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List

import pytest

from repro.cache.l1d import L1DStats
from repro.experiments.store import MemoryStore
from repro.gpu.simulator import SimResult
from repro.serve.protocol import cell_request, parse_job_request, sweep_request
from repro.serve.scheduler import DrainingError, Scheduler


def payload_for(cell) -> dict:
    """A distinctive, valid serialized SimResult for one cell."""
    return SimResult(
        cycles=1000 + len(cell.abbr), thread_insns=10, warp_insns=5,
        l1d=L1DStats(), interconnect={}, l2={}, dram={},
        policy={"scheme": hash_free_tag(cell.scheme)},
    ).to_dict()


def hash_free_tag(scheme: str) -> float:
    return float(len(scheme))


class StubSim:
    """Records every executed cell; optionally blocks until released."""

    def __init__(self, gate: threading.Event = None, fail: bool = False):
        self.calls: List[str] = []
        self._lock = threading.Lock()
        self.gate = gate
        self.fail = fail

    def __call__(self, cell):
        if self.gate is not None:
            assert self.gate.wait(timeout=30), "stub gate never released"
        with self._lock:
            self.calls.append(f"{cell.abbr}/{cell.scheme}")
        if self.fail:
            raise RuntimeError("injected simulation failure")
        return payload_for(cell)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def make_scheduler(workers=1, sim_fn=None, store=None):
    scheduler = Scheduler(
        store=store if store is not None else MemoryStore(),
        workers=workers,
        pool=ThreadPoolExecutor(max_workers=workers),
        sim_fn=sim_fn if sim_fn is not None else StubSim(),
    )
    await scheduler.start()
    return scheduler


async def settle(job):
    while not job.done:
        await asyncio.sleep(0.005)
    return job


CELL = cell_request("MM", "baseline", sms=1, scale=0.1)


class TestCoalescing:
    def test_identical_concurrent_submissions_simulate_once(self):
        async def body():
            sim = StubSim()
            scheduler = await make_scheduler(workers=2, sim_fn=sim)
            try:
                jobs = [
                    scheduler.submit(parse_job_request(CELL))
                    for _ in range(5)
                ]
                for job in jobs:
                    await settle(job)
                assert all(j.state == "done" for j in jobs)
                payloads = [j.results[0]["result"] for j in jobs]
                assert all(p == payloads[0] for p in payloads)
                assert sim.calls == ["MM/baseline"]          # exactly once
                assert scheduler.metrics.cells_requested == 5
                assert scheduler.metrics.cells_coalesced == 4
                assert scheduler.metrics.cells_simulated == 1
            finally:
                await scheduler.shutdown()
        run(body())

    def test_distinct_cells_are_not_coalesced(self):
        async def body():
            sim = StubSim()
            scheduler = await make_scheduler(workers=2, sim_fn=sim)
            try:
                a = scheduler.submit(parse_job_request(CELL))
                b = scheduler.submit(parse_job_request(
                    cell_request("MM", "dlp", sms=1, scale=0.1)
                ))
                await settle(a)
                await settle(b)
                assert sorted(sim.calls) == ["MM/baseline", "MM/dlp"]
                assert scheduler.metrics.cells_coalesced == 0
            finally:
                await scheduler.shutdown()
        run(body())

    def test_warm_store_serves_without_simulation(self):
        async def body():
            sim = StubSim()
            store = MemoryStore()
            scheduler = await make_scheduler(sim_fn=sim, store=store)
            try:
                first = await settle(scheduler.submit(parse_job_request(CELL)))
                assert sim.calls == ["MM/baseline"]
                second = await settle(
                    scheduler.submit(parse_job_request(CELL))
                )
                assert sim.calls == ["MM/baseline"]          # still once
                assert scheduler.metrics.cells_store_hits == 1
                assert second.results == first.results
            finally:
                await scheduler.shutdown()
        run(body())


class TestPriority:
    def test_interactive_cell_overtakes_queued_bulk_cells(self):
        async def body():
            gate = threading.Event()
            sim = StubSim(gate=gate)
            scheduler = await make_scheduler(workers=1, sim_fn=sim)
            try:
                bulk = scheduler.submit(parse_job_request(
                    sweep_request(["MM", "HS"], ["baseline", "dlp"], sms=1)
                ))
                # let the single worker pick up the first bulk cell and
                # leave the other three queued behind it
                while scheduler.running_count() != 1:
                    await asyncio.sleep(0.005)
                interactive = scheduler.submit(parse_job_request(
                    cell_request("KM", "dlp", sms=1)
                ))
                await asyncio.sleep(0.02)   # let it enqueue
                gate.set()
                await settle(interactive)
                await settle(bulk)
                # the interactive cell ran right after the in-flight
                # bulk cell, ahead of the three still-queued ones
                assert sim.calls[1] == "KM/dlp"
                assert len(sim.calls) == 5
            finally:
                await scheduler.shutdown()
        run(body())


class TestFailure:
    def test_failed_unit_reports_fingerprint(self):
        async def body():
            scheduler = await make_scheduler(sim_fn=StubSim(fail=True))
            try:
                job = await settle(scheduler.submit(parse_job_request(CELL)))
                assert job.state == "failed"
                assert "injected simulation failure" in job.error["error"]
                fp = job.error["fingerprint"]
                assert fp["abbr"] == "MM" and fp["scheme"] == "baseline"
                assert job.error["key"] == job.request.units[0].key()
                assert scheduler.metrics.jobs_failed == 1
                assert scheduler.metrics.cells_failed == 1
            finally:
                await scheduler.shutdown()
        run(body())

    def test_failure_in_one_grid_cell_fails_the_job_with_that_cell(self):
        async def body():
            class FailOne(StubSim):
                def __call__(self, cell):
                    if cell.scheme == "dlp":
                        raise RuntimeError("dlp exploded")
                    return payload_for(cell)

            scheduler = await make_scheduler(workers=2, sim_fn=FailOne())
            try:
                job = await settle(scheduler.submit(parse_job_request(
                    sweep_request(["MM"], ["baseline", "dlp"], sms=1)
                )))
                assert job.state == "failed"
                assert job.error["fingerprint"]["scheme"] == "dlp"
            finally:
                await scheduler.shutdown()
        run(body())


class TestCancellation:
    def test_cancel_skips_queued_cells(self):
        async def body():
            gate = threading.Event()
            sim = StubSim(gate=gate)
            scheduler = await make_scheduler(workers=1, sim_fn=sim)
            try:
                job = scheduler.submit(parse_job_request(
                    sweep_request(["MM", "HS"], ["baseline", "dlp"], sms=1)
                ))
                while scheduler.running_count() != 1:
                    await asyncio.sleep(0.005)
                assert scheduler.cancel(job.id) is True
                await settle(job)
                assert job.state == "cancelled"
                gate.set()
                # give the in-flight cell time to finish; the three
                # queued cells must never execute
                await asyncio.sleep(0.1)
                assert len(sim.calls) == 1
                assert scheduler.metrics.jobs_cancelled == 1
            finally:
                await scheduler.shutdown()
        run(body())

    def test_cancel_unknown_or_settled_job_is_false(self):
        async def body():
            scheduler = await make_scheduler()
            try:
                assert scheduler.cancel("job-999999") is False
                job = await settle(scheduler.submit(parse_job_request(CELL)))
                assert scheduler.cancel(job.id) is False
            finally:
                await scheduler.shutdown()
        run(body())

    def test_coalesced_peer_survives_sibling_cancellation(self):
        async def body():
            gate = threading.Event()
            sim = StubSim(gate=gate)
            scheduler = await make_scheduler(workers=1, sim_fn=sim)
            try:
                a = scheduler.submit(parse_job_request(CELL))
                while scheduler.running_count() != 1:
                    await asyncio.sleep(0.005)
                b = scheduler.submit(parse_job_request(CELL))  # coalesces
                await asyncio.sleep(0.02)
                scheduler.cancel(a.id)
                await settle(a)
                gate.set()
                await settle(b)
                assert a.state == "cancelled"
                assert b.state == "done"
                assert sim.calls == ["MM/baseline"]
            finally:
                await scheduler.shutdown()
        run(body())


class TestDrain:
    def test_drain_finishes_active_work_and_rejects_new(self):
        async def body():
            gate = threading.Event()
            sim = StubSim(gate=gate)
            scheduler = await make_scheduler(workers=1, sim_fn=sim)
            job = scheduler.submit(parse_job_request(CELL))
            while scheduler.running_count() != 1:
                await asyncio.sleep(0.005)
            drainer = asyncio.create_task(scheduler.drain(timeout=30))
            await asyncio.sleep(0.02)
            with pytest.raises(DrainingError):
                scheduler.submit(parse_job_request(CELL))
            assert scheduler.metrics.jobs_rejected == 1
            gate.set()
            assert await drainer is True
            assert job.state == "done"
        run(body())
