"""End-to-end service tests: real HTTP, real process workers, real sims.

These run tiny simulations (MM at 1 SM, scale 0.1 — ~0.2 s each)
through :class:`repro.serve.server.ServerThread`, exercising the full
stack the CI ``serve-smoke`` job drives from the command line.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.gpu.simulator import SimResult
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import cell_request, replay_request, sweep_request
from repro.serve.server import ServerThread

CELL = cell_request("MM", "baseline", sms=1, scale=0.1)


@pytest.fixture()
def server(tmp_path):
    with ServerThread(workers=2, store=tmp_path / "store") as srv:
        yield srv


class TestColdCoalescing:
    def test_three_concurrent_clients_one_simulation(self, server):
        """The ISSUE acceptance criterion: N identical cold submissions
        produce exactly one simulation and N identical results."""
        def submit_and_wait(_):
            client = server.client()
            return client.run(CELL, timeout=120)

        with ThreadPoolExecutor(max_workers=3) as pool:
            docs = list(pool.map(submit_and_wait, range(3)))

        assert all(doc["state"] == "done" for doc in docs)
        payloads = [doc["results"][0]["result"] for doc in docs]
        assert payloads[0] == payloads[1] == payloads[2]
        # the payload is a real SimResult
        result = SimResult.from_dict(payloads[0])
        assert result.cycles > 0 and result.l1d.accesses > 0

        metrics = server.client().metrics()
        assert metrics["cells"]["requested"] == 3
        assert metrics["cells"]["simulated"] == 1
        assert metrics["cells"]["coalesced"] + metrics["store"]["hits"] == 2

    def test_warm_resubmission_hits_store(self, server):
        client = server.client()
        client.run(CELL, timeout=120)
        client.run(CELL, timeout=120)
        metrics = client.metrics()
        assert metrics["cells"]["simulated"] == 1
        assert metrics["store"]["hits"] >= 1


class TestLivenessUnderLoad:
    def test_health_and_metrics_respond_during_bulk_sweep(self, server):
        client = server.client()
        job = client.submit(
            sweep_request(["MM", "HS"], ["baseline", "dlp"],
                          sms=1, scale=0.1)
        )
        health = client.healthz()
        assert health["status"] == "ok"
        metrics = client.metrics()
        assert metrics["jobs"]["submitted"] == 1
        prom = client.metrics_prometheus()
        assert "repro_serve_jobs_submitted 1" in prom
        done = client.wait(job["id"], timeout=240)
        assert done["state"] == "done"
        assert len(done["results"]) == 4
        # per-scheme latency labels show up once work completed
        prom = client.metrics_prometheus()
        assert 'scheme="dlp"' in prom and 'scheme="baseline"' in prom


class TestReplayJobs:
    def test_replay_reuses_one_trace_across_schemes(self, tmp_path):
        with ServerThread(workers=2, store=tmp_path / "store",
                          trace_dir=tmp_path / "traces") as srv:
            client = srv.client()
            done = client.run(
                replay_request(["MM"], ["baseline", "dlp"],
                               sms=1, scale=0.1),
                timeout=240,
            )
            assert done["state"] == "done"
            assert len(done["results"]) == 2
            traces = list((tmp_path / "traces").glob("*.rptr"))
            assert len(traces) == 1      # both schemes replayed one stream


class TestErrorPaths:
    def test_unknown_job_is_404(self, server):
        with pytest.raises(ServeError) as excinfo:
            server.client().status("job-999999")
        assert excinfo.value.status == 404

    def test_bad_request_body_is_400(self, server):
        client = server.client()
        status, body = client.request(
            "POST", "/jobs", {"kind": "cell", "app": "NOPE", "scheme": "dlp"}
        )
        assert status == 400 and "error" in body

    def test_non_json_body_is_400(self, server):
        # raw transport bypassing the client's JSON encoding
        import http.client
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("POST", "/jobs", body=b"not json",
                         headers={"Content-Type": "application/json",
                                  "Content-Length": "8"})
            response = conn.getresponse()
            doc = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "JSON" in doc["error"]

    def test_unknown_route_is_404_and_bad_method_is_405(self, server):
        client = server.client()
        assert client.request("GET", "/nope", None)[0] == 404
        assert client.request("POST", "/healthz", {})[0] == 405


class TestDrain:
    def test_sigterm_equivalent_drains_clean(self, tmp_path):
        srv = ServerThread(workers=1, store=tmp_path / "store").start()
        client = srv.client()
        job = client.submit(CELL)
        exit_code = srv.stop()          # same path as the SIGTERM handler
        assert exit_code == 0
        # the in-flight job was allowed to finish before shutdown
        assert srv.scheduler.jobs[job["id"]].state == "done"

    def test_draining_server_rejects_submissions(self, tmp_path):
        gate = threading.Event()

        def slow_sim(cell):
            gate.wait(timeout=60)
            raise RuntimeError("unreachable in this test")

        srv = ServerThread(
            workers=1, store=tmp_path / "store",
            pool=ThreadPoolExecutor(max_workers=1), sim_fn=slow_sim,
        ).start()
        client = srv.client()
        client.submit(CELL)
        stopper = threading.Thread(target=srv.stop)
        stopper.start()
        try:
            # wait for the drain flag to flip, then probe admission
            deadline_probe = ServeClient("127.0.0.1", srv.port, timeout=30)
            for _ in range(200):
                if deadline_probe.healthz()["status"] == "draining":
                    break
                threading.Event().wait(0.01)
            status, body = deadline_probe.request("POST", "/jobs", CELL)
            assert status == 503
            assert "drain" in body["error"]
        finally:
            gate.set()
            stopper.join(timeout=60)
