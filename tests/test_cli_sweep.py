"""CLI: ``repro sweep`` and ``repro store`` subcommands.

The warm-path assertion reads the executor/store counter lines the CLI
prints — never wall clock — so the tests stay stable on loaded machines.
"""

from __future__ import annotations

import re

import pytest

from repro.cli import build_parser, main

SWEEP_ARGS = ["sweep", "--apps", "MM,HS", "--schemes", "baseline,dlp",
              "--sms", "1", "--scale", "0.1"]


def executor_counters(out: str) -> dict:
    """Parse the ``executor: ...`` / ``store: ...`` summary lines."""
    m = re.search(
        r"executor: simulated (\d+) cells, (\d+) store hits, (\d+) deduped",
        out,
    )
    s = re.search(r"store: (\d+) hits, (\d+) misses, (\d+) puts", out)
    assert m and s, f"counter lines missing from output:\n{out}"
    return {
        "simulated": int(m.group(1)),
        "store_hits": int(m.group(2)),
        "deduped": int(m.group(3)),
        "hits": int(s.group(1)),
        "misses": int(s.group(2)),
        "puts": int(s.group(3)),
    }


class TestParser:
    def test_sweep_and_store_registered(self):
        parser = build_parser()
        assert parser.parse_args(["sweep"]).command == "sweep"
        args = parser.parse_args(["store", "ls"])
        assert args.command == "store" and args.action == "ls"

    def test_store_action_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "nuke"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.apps == "all" and args.jobs == 1 and args.store is None


class TestSweepCommand:
    def test_cold_sweep_simulates_every_cell(self, capsys, tmp_path):
        argv = SWEEP_ARGS + ["--store", str(tmp_path / "store")]
        assert main(argv) == 0
        counters = executor_counters(capsys.readouterr().out)
        assert counters["simulated"] == 4
        assert counters["puts"] == 4
        assert counters["store_hits"] == 0

    def test_warm_second_invocation_hits_store_only(self, capsys, tmp_path):
        argv = SWEEP_ARGS + ["--store", str(tmp_path / "store")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        counters = executor_counters(capsys.readouterr().out)
        assert counters["simulated"] == 0
        assert counters["store_hits"] == 4
        assert counters["misses"] == 0

    def test_parallel_jobs_flag(self, capsys, tmp_path):
        argv = SWEEP_ARGS + ["--jobs", "2", "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert executor_counters(out)["simulated"] == 4
        assert "jobs 2" in out

    def test_memory_store_default(self, capsys):
        assert main(SWEEP_ARGS) == 0
        counters = executor_counters(capsys.readouterr().out)
        assert counters["simulated"] == 4

    def test_unknown_scheme_errors(self, capsys):
        assert main(["sweep", "--apps", "MM", "--schemes", "magic"]) == 2
        assert "unknown scheme" in capsys.readouterr().err


class TestStoreCommand:
    def test_ls_lists_sweep_entries(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(SWEEP_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        assert main(["store", "ls", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 entries" in out
        assert "MM" in out and "HS" in out and "dlp" in out

    def test_clear_empties_store(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(SWEEP_ARGS + ["--store", store]) == 0
        capsys.readouterr()
        assert main(["store", "clear", "--store", store]) == 0
        assert "removed 4 entries" in capsys.readouterr().out
        assert main(["store", "ls", "--store", store]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_default_store_dir_from_env(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        assert main(["store", "ls"]) == 0
        assert "envstore" in capsys.readouterr().out
