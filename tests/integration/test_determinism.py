"""Determinism: the same cell must always produce the same result.

The simulator has no hidden nondeterminism — workload address streams
derive from :class:`~repro.utils.rng.DeterministicRng` keyed by workload
name (and optional seed), and the event heap breaks ties by sequence
number — so the same ``(workload, scheme, seed)`` cell run twice, in
this process or under the parallel executor, must match bit for bit.
"""

from __future__ import annotations

import pytest

from repro.experiments.executor import Cell, SweepExecutor
from repro.experiments.runner import harness_config, run_workload
from repro.experiments.store import MemoryStore
from repro.utils.rng import derive_seed
from tests.oracle import assert_results_identical

SCHEMES = ("baseline", "dlp")


@pytest.mark.parametrize("scheme", SCHEMES)
class TestRerunDeterminism:
    def test_same_cell_twice_is_identical(self, scheme):
        config = harness_config(1)
        a = run_workload("MM", scheme, config, scale=0.1)
        b = run_workload("MM", scheme, config, scale=0.1)
        assert_results_identical(a, b, label=f"MM/{scheme}")

    def test_seeded_cell_twice_is_identical(self, scheme):
        config = harness_config(1)
        seed = derive_seed("determinism-test", 7)
        a = run_workload("BT", scheme, config, scale=0.1, seed=seed)
        b = run_workload("BT", scheme, config, scale=0.1, seed=seed)
        assert_results_identical(a, b, label=f"BT/{scheme}/seeded")

    def test_parallel_executor_matches_direct_run(self, scheme):
        cell = Cell.make("HS", scheme, num_sms=1, scale=0.1)
        direct = run_workload("HS", scheme, harness_config(1), scale=0.1)
        pooled = SweepExecutor(MemoryStore(), jobs=2).run_cells([cell])[0]
        assert_results_identical(direct, pooled, label=f"HS/{scheme}/pool")


class TestSeedIdentity:
    def test_seed_participates_in_store_key(self):
        base = Cell.make("MM", "baseline", num_sms=1, scale=0.1)
        seeded = Cell.make("MM", "baseline", num_sms=1, scale=0.1, seed=3)
        assert base.key() != seeded.key()

    def test_derive_seed_is_stable_and_salted(self):
        assert derive_seed("cell") == derive_seed("cell")
        assert derive_seed("cell", 1) != derive_seed("cell", 2)
        assert derive_seed("cell") != derive_seed("другая")
