"""Integration: headline paper claims on the Table 2 workload models.

These run the real workload models at reduced scale on a 2-SM machine,
so they're slower than unit tests (~seconds each) but pin the shape of
the paper's results end to end.  The full-scale numbers live in the
benchmark harness (see EXPERIMENTS.md).
"""

import pytest

from repro.analysis import geometric_mean
from repro.core import make_policy
from repro.experiments.runner import harness_config
from repro.gpu import GpuSimulator
from repro.workloads import make_workload

# CI apps whose scaled models show clear protection headroom (the bench
# harness runs all 18; this subset keeps the test suite fast)
CI_SUBSET = ("CFD", "SS", "SR2K")
CS_SUBSET = ("GEMM", "SC", "BT")


@pytest.fixture(scope="module")
def sweep():
    config = harness_config(2)
    out = {}
    for app in CI_SUBSET + CS_SUBSET:
        workload = make_workload(app, scale=0.5)
        out[app] = {}
        for policy in ("baseline", "stall_bypass", "global_protection", "dlp"):
            sim = GpuSimulator(
                workload.kernels(), config, lambda p=policy: make_policy(p)
            )
            out[app][policy] = sim.run()
    return out


def speedup(results, policy):
    return results["baseline"].cycles / results[policy].cycles


class TestCiApplications:
    def test_dlp_improves_ci_geomean(self, sweep):
        gains = [speedup(sweep[a], "dlp") for a in CI_SUBSET]
        assert geometric_mean(gains) > 1.05

    def test_dlp_at_least_matches_global_protection(self, sweep):
        dlp = geometric_mean([speedup(sweep[a], "dlp") for a in CI_SUBSET])
        gp = geometric_mean(
            [speedup(sweep[a], "global_protection") for a in CI_SUBSET]
        )
        assert dlp >= 0.97 * gp  # paper: DLP above GP on average

    def test_protection_beats_stall_bypass_on_ci(self, sweep):
        dlp = geometric_mean([speedup(sweep[a], "dlp") for a in CI_SUBSET])
        sb = geometric_mean([speedup(sweep[a], "stall_bypass") for a in CI_SUBSET])
        assert dlp > sb

    def test_dlp_reduces_l1d_traffic_on_ci(self, sweep):
        for app in CI_SUBSET:
            base = sweep[app]["baseline"].l1d.serviced_accesses
            dlp = sweep[app]["dlp"].l1d.serviced_accesses
            assert dlp < base, f"{app}: DLP did not reduce serviced traffic"

    def test_dlp_reduces_evictions_on_ci(self, sweep):
        base = sum(sweep[a]["baseline"].l1d.evictions_total for a in CI_SUBSET)
        dlp = sum(sweep[a]["dlp"].l1d.evictions_total for a in CI_SUBSET)
        assert dlp < base

    def test_dlp_raises_hit_rate_on_ci(self, sweep):
        improved = sum(
            sweep[a]["dlp"].l1d.hit_rate > sweep[a]["baseline"].l1d.hit_rate
            for a in CI_SUBSET
        )
        assert improved >= 2  # paper: DLP's hit rate is consistently higher


class TestCsApplications:
    def test_dlp_within_tolerance_on_cs(self, sweep):
        # paper: no CS application loses more than ~3% with DLP; allow a
        # slightly wider band for the scaled models
        for app in CS_SUBSET:
            assert speedup(sweep[app], "dlp") > 0.94, f"{app} regressed under DLP"

    def test_global_protection_safe_on_cs(self, sweep):
        for app in CS_SUBSET:
            assert speedup(sweep[app], "global_protection") > 0.94


class TestInterconnect:
    def test_dlp_interconnect_traffic_not_inflated(self, sweep):
        # paper Fig. 13: DLP reduces interconnect traffic on average
        totals_base = sum(
            sweep[a]["baseline"].interconnect["total_bytes"] for a in CI_SUBSET
        )
        totals_dlp = sum(
            sweep[a]["dlp"].interconnect["total_bytes"] for a in CI_SUBSET
        )
        assert totals_dlp <= 1.05 * totals_base
