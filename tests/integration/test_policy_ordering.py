"""Integration: the paper's qualitative orderings on synthetic kernels.

These use small purpose-built kernels (not the Table 2 models) so they
run in seconds and pin the *mechanism-level* claims:

* on thrash-with-observable-reuse patterns, protection schemes beat
  the baseline in hits and cut evictions;
* Stall-Bypass eliminates L1D pipeline stalls;
* DLP leaves streaming (reuse-free) workloads unharmed;
* the 32 KB cache beats the 16 KB baseline on capacity-bound patterns.
"""

import numpy as np
import pytest

from repro.core import make_policy
from repro.gpu import GPUConfig, GpuSimulator, Kernel, compute, load

LINE = 128


def run(kernel, policy, config):
    sim = GpuSimulator(kernel, config, lambda: make_policy(policy))
    return sim.run()


@pytest.fixture(scope="module")
def config():
    return GPUConfig(num_sms=2, num_partitions=2, icnt_latency=8,
                     l2_latency=16, dram_latency=80, dram_service_interval=4)


@pytest.fixture(scope="module")
def thrash_kernel():
    """Per-warp 8-line loop buffers: 32 resident warps x 8 lines per SM
    on a 128-line cache — reuse at protectable distances (the paper's CI
    regime)."""

    def trace(cta, w):
        base = (cta * 64 + w) * 1_000_000
        for rep in range(30):
            for j in range(8):
                yield compute(2)
                yield load(0x10 + j * 8, np.full(32, base + j * LINE))

    return Kernel("thrash", num_ctas=8, warps_per_cta=8, trace_fn=trace)


@pytest.fixture(scope="module")
def stream_kernel():
    """Pure streaming: no reuse at all — protection must stay inert."""

    def trace(cta, w):
        base = (cta * 64 + w) * 1_000_000
        for i in range(40):
            yield compute(4)
            yield load(0x10, np.arange(32) * 4 + base + i * LINE)

    return Kernel("stream", num_ctas=8, warps_per_cta=8, trace_fn=trace)


class TestThrashRegime:
    @pytest.fixture(scope="class")
    def results(self, thrash_kernel, config):
        return {
            p: run(thrash_kernel, p, config)
            for p in ("baseline", "stall_bypass", "global_protection", "dlp")
        }

    def test_protection_beats_baseline_on_hits(self, results):
        assert results["dlp"].l1d.hits_total > 1.3 * results["baseline"].l1d.hits_total
        assert (
            results["global_protection"].l1d.hits_total
            > 1.3 * results["baseline"].l1d.hits_total
        )

    def test_protection_cuts_evictions(self, results):
        assert (
            results["dlp"].l1d.evictions_total
            < 0.7 * results["baseline"].l1d.evictions_total
        )

    def test_protection_improves_ipc(self, results):
        assert results["dlp"].ipc > results["baseline"].ipc
        assert results["global_protection"].ipc > results["baseline"].ipc

    def test_dlp_engages_protection(self, results):
        assert results["dlp"].policy["pd_increase"] > 0
        assert results["dlp"].policy["protected_bypasses"] > 0

    def test_bypasses_reduce_serviced_traffic(self, results):
        assert (
            results["dlp"].l1d.serviced_accesses
            < results["baseline"].l1d.serviced_accesses
        )


class TestStallBypass:
    def test_no_l1d_stall_cycles(self, thrash_kernel, config):
        result = run(thrash_kernel, "stall_bypass", config)
        assert result.ldst_stall_cycles == 0

    def test_baseline_does_stall(self, thrash_kernel, config):
        result = run(thrash_kernel, "baseline", config)
        assert result.ldst_stall_cycles > 0


class TestStreamRegime:
    @pytest.fixture(scope="class")
    def results(self, stream_kernel, config):
        return {
            p: run(stream_kernel, p, config) for p in ("baseline", "dlp")
        }

    def test_dlp_never_hurts_streams(self, results):
        # no reuse -> no VTA hits -> PDs stay down.  DLP may still *help*
        # by bypassing misses into all-reserved sets (fewer pipeline
        # stalls), but it must never lose IPC on a reuse-free stream.
        assert results["dlp"].ipc >= 0.99 * results["baseline"].ipc

    def test_no_protection_engaged(self, results):
        # the protection machinery itself must stay inert: no PD
        # increases, no lines held beyond LRU
        assert results["dlp"].policy["pd_increase"] == 0
        # stray line-straddle reuse aside, the VTA sees essentially nothing
        assert results["dlp"].policy["vta_hits"] < 0.01 * results["dlp"].l1d.loads


class TestCapacity:
    def test_32kb_beats_16kb_on_thrash(self, thrash_kernel, config):
        base = run(thrash_kernel, "baseline", config)
        big = run(thrash_kernel, "baseline", config.with_l1d_size_kb(32))
        assert big.l1d.hit_rate > base.l1d.hit_rate
        assert big.ipc > base.ipc
