"""Differential oracle for the parallel sweep executor.

Acceptance gate for every executor/store perf change: a >= 3 workload x
4 scheme grid must produce bit-identical ``SimResult`` payloads when run

* serially vs on a >= 2-worker process pool,
* against a cold on-disk store vs a warm one,

and a warm-store rerun must perform **zero** simulations (asserted on
store/executor counters, not wall clock).
"""

from __future__ import annotations

import pytest

from repro.experiments.executor import SweepExecutor
from repro.experiments.store import MemoryStore, ResultStore
from tests.oracle import (
    DEFAULT_APPS,
    DEFAULT_SCHEMES,
    assert_grids_identical,
    make_cells,
    run_grid,
)

CELLS = make_cells()


@pytest.fixture(scope="module")
def serial_grid():
    """Reference run: serial, in-memory, no store reuse."""
    return run_grid(SweepExecutor(MemoryStore(), jobs=1), CELLS)


@pytest.fixture(scope="module")
def cold_run(tmp_path_factory):
    """One cold pass against a fresh on-disk store; warm tests reuse it."""
    store_dir = tmp_path_factory.mktemp("result-store")
    executor = SweepExecutor(ResultStore(store_dir), jobs=1)
    grid = run_grid(executor, CELLS)
    return store_dir, executor, grid


class TestGridShape:
    def test_grid_meets_acceptance_floor(self):
        assert len(DEFAULT_APPS) >= 3
        assert set(DEFAULT_SCHEMES) == {
            "baseline", "stall_bypass", "global_protection", "dlp"
        }


class TestSerialVsParallel:
    def test_parallel_identical_to_serial(self, serial_grid):
        parallel = SweepExecutor(MemoryStore(), jobs=2)
        parallel_grid = run_grid(parallel, CELLS)
        assert parallel.stats.simulated == len(CELLS)
        assert_grids_identical(serial_grid, parallel_grid)


class TestColdVsWarmStore:
    def test_cold_disk_run_identical_to_serial(self, serial_grid, cold_run):
        _, executor, cold_grid = cold_run
        assert executor.stats.simulated == len(CELLS)
        assert executor.store.stats.puts == len(CELLS)
        assert_grids_identical(serial_grid, cold_grid)

    def test_warm_serial_rerun_simulates_nothing(self, serial_grid, cold_run):
        store_dir, _, _ = cold_run
        warm = SweepExecutor(ResultStore(store_dir), jobs=1)
        warm_grid = run_grid(warm, CELLS)
        assert warm.stats.simulated == 0
        assert warm.store.stats.hits == len(CELLS)
        assert warm.store.stats.misses == 0
        assert_grids_identical(serial_grid, warm_grid)

    def test_warm_parallel_rerun_simulates_nothing(self, serial_grid, cold_run):
        store_dir, _, _ = cold_run
        warm = SweepExecutor(ResultStore(store_dir), jobs=2)
        warm_grid = run_grid(warm, CELLS)
        assert warm.stats.simulated == 0
        assert warm.store.stats.hits == len(CELLS)
        assert_grids_identical(serial_grid, warm_grid)


class TestDedup:
    def test_duplicate_cells_simulated_once(self):
        executor = SweepExecutor(MemoryStore(), jobs=1)
        cell = next(iter(CELLS.values()))
        r1, r2, r3 = executor.run_cells([cell, cell, cell])
        assert executor.stats.simulated == 1
        assert executor.stats.deduped == 2
        assert_grids_identical({("a", "b"): r1}, {("a", "b"): r2})
        assert_grids_identical({("a", "b"): r1}, {("a", "b"): r3})
