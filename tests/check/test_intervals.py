"""Unit tests for the R006 abstract-interpretation engine.

The :class:`Interval` lattice and arithmetic are tested directly; the
analyzer behaviours (branch refinement, clamp idioms, loops, aliases,
call summaries) are tested by driving :class:`ValueRangeAnalyzer` over
small parsed sources against the repo's default field table.
"""

import ast
import textwrap

import pytest

from repro.check.analysis.intervals import INF, Interval, ValueRangeAnalyzer
from repro.check.rules.bit_widths import default_field_table

TOP = Interval.top()


class TestIntervalDomain:
    def test_const_and_of_bits(self):
        assert Interval.const(7) == Interval(7, 7)
        assert Interval.of_bits(4) == Interval(0, 15)
        assert Interval.of_bits(7) == Interval(0, 127)

    def test_predicates(self):
        assert Interval.const(3).is_const()
        assert not TOP.is_const()
        assert Interval(1, 0).is_bottom()
        assert Interval(0, 15).within(0, 15)
        assert not Interval(0, 16).within(0, 15)

    def test_join_meet(self):
        a, b = Interval(0, 4), Interval(2, 9)
        assert a.join(b) == Interval(0, 9)
        assert a.meet(b) == Interval(2, 4)
        assert Interval(1, 0).join(a) == a
        assert a.meet(Interval(20, 30)).is_bottom()

    def test_add_sub_neg(self):
        assert Interval(0, 15).add(Interval.const(1)) == Interval(1, 16)
        assert Interval(0, 15).sub(Interval.const(1)) == Interval(-1, 14)
        assert Interval(2, 5).neg() == Interval(-5, -2)

    def test_mul_corners_handle_infinity(self):
        assert Interval(2, 3).mul(Interval(4, 5)) == Interval(8, 15)
        # 0 * inf must not poison the result with NaN
        spanning = Interval(0, INF).mul(Interval.const(0))
        assert spanning == Interval(0, 0)

    def test_shifts(self):
        assert Interval(0, 255).rshift(Interval.const(4)) == Interval(0, 15)
        assert Interval(0, 3).lshift(Interval.const(2)) == Interval(0, 12)
        # non-constant shift amounts are unknown
        assert Interval(0, 255).rshift(Interval(0, 4)) == TOP

    def test_bitand_mask_idiom(self):
        assert Interval(0, INF).bitand(Interval.const(0x7F)) == Interval(0, 127)
        assert TOP.bitand(Interval.const(15)) == Interval(0, 15)
        # commuted: constant on the left
        assert Interval.const(0x7F).bitand(Interval(0, INF)) == Interval(0, 127)

    def test_mod_and_floordiv(self):
        assert Interval(0, INF).mod(Interval.const(128)) == Interval(0, 127)
        assert Interval(0, 255).floordiv(Interval.const(16)) == Interval(0, 15)
        assert Interval(0, 10).mod(Interval(-5, 5)) == TOP

    def test_min_max(self):
        assert Interval(0, INF).min_(Interval.const(15)) == Interval(0, 15)
        assert Interval(-INF, 15).max_(Interval.const(0)) == Interval(0, 15)

    def test_bottom_propagates(self):
        bottom = Interval(1, 0)
        assert bottom.add(Interval.const(1)).is_bottom()
        assert Interval.const(1).sub(bottom).is_bottom()
        assert bottom.min_(Interval.const(3)).is_bottom()


def violations_in(source):
    analyzer = ValueRangeAnalyzer(default_field_table())
    return analyzer.analyze_module(ast.parse(textwrap.dedent(source)))


def fields_of(violations):
    return [v.field_name for v in violations]


class TestAnalyzerStores:
    def test_unclamped_increment_fires(self):
        vs = violations_in(
            """
            def f(entry):
                entry.pd = entry.pd + 1
            """
        )
        assert fields_of(vs) == ["pd"]
        assert vs[0].bits == 4
        assert "4-bit" in vs[0].describe()

    def test_min_clamp_proves(self):
        assert violations_in(
            """
            def f(entry, pd_max):
                entry.pd = min(entry.pd + 1, pd_max)
            """
        ) == []

    def test_unguarded_decrease_fires(self):
        vs = violations_in(
            """
            def f(entry):
                entry.pd = entry.pd - 1
            """
        )
        assert fields_of(vs) == ["pd"]

    def test_mask_fold_proves(self):
        assert violations_in(
            """
            def f(line, value):
                line.insn_id = value & 0x7F
            """
        ) == []

    def test_unknown_value_is_a_finding_not_a_pass(self):
        vs = violations_in(
            """
            def f(line, value):
                line.insn_id = value
            """
        )
        assert fields_of(vs) == ["insn_id"]


class TestAnalyzerRefinement:
    def test_branch_test_refines_the_arm(self):
        assert violations_in(
            """
            def f(entry, pd_max):
                if entry.pd < pd_max:
                    entry.pd = entry.pd + 1
            """
        ) == []

    def test_raise_refines_the_fall_through(self):
        assert violations_in(
            """
            def f(entry, delta, pd_max):
                if delta < 0:
                    raise ValueError(delta)
                entry.pd = min(delta, pd_max)
            """
        ) == []

    def test_without_the_raise_the_same_store_fires(self):
        vs = violations_in(
            """
            def f(entry, delta, pd_max):
                entry.pd = min(delta, pd_max)
            """
        )
        assert fields_of(vs) == ["pd"]

    def test_truthiness_refines_positive(self):
        assert violations_in(
            """
            def f(line):
                if line.protected_life:
                    line.protected_life = line.protected_life - 1
            """
        ) == []

    def test_ifexp_clamp_idioms(self):
        assert violations_in(
            """
            def f(entry, pd_max):
                npd = entry.pd + 1
                entry.pd = npd if npd < pd_max else pd_max

            def g(entry):
                npd = entry.pd - 1
                entry.pd = npd if npd > 0 else 0
            """
        ) == []

    def test_bound_token_parameter_is_exact(self):
        # pl_max seeds as the constant 15, not just "a 4-bit value"
        assert violations_in(
            """
            def f(line, pl_max):
                line.protected_life = pl_max
            """
        ) == []


class TestAnalyzerLoopsAndAliases:
    def test_loop_body_clamp_survives_the_join(self):
        assert violations_in(
            """
            def f(entry, items, pd_max):
                for _ in items:
                    entry.pd = min(entry.pd + 1, pd_max)
            """
        ) == []

    def test_loop_accumulation_without_clamp_fires(self):
        vs = violations_in(
            """
            def f(entry, items):
                for _ in items:
                    entry.pd = entry.pd + 1
            """
        )
        assert "pd" in fields_of(vs)

    def test_packed_array_alias_tracked(self):
        vs = violations_in(
            """
            def f(self, way):
                pdl = self._pdl
                pdl[way] = 20
            """
        )
        assert fields_of(vs) == ["_pdl"]

    def test_packed_array_alias_clamp_proves(self):
        assert violations_in(
            """
            def f(self, way):
                pdl = self._pdl
                pdl[way] = min(pdl[way] + 1, self._pd_max)
            """
        ) == []

    def test_whole_array_literal_fill(self):
        vs = violations_in(
            """
            def f(self, n):
                self._pdl = [0] * n
                self._pli = [99] * n
            """
        )
        assert fields_of(vs) == ["_pli"]


class TestAnalyzerSummaries:
    def test_local_call_summary(self):
        assert violations_in(
            """
            def fold(value):
                return value & 15

            def f(entry, value):
                entry.pd = fold(value)
            """
        ) == []

    def test_local_call_summary_reports_bad_return(self):
        vs = violations_in(
            """
            def widen(value):
                return value + 1000

            def f(entry, value):
                entry.pd = widen(value)
            """
        )
        assert fields_of(vs) == ["pd"]

    def test_hash_pc_known_return(self):
        assert violations_in(
            """
            from repro.utils.hashing import hash_pc

            def f(line, pc):
                line.insn_id = hash_pc(pc)
            """
        ) == []

    def test_recursion_degrades_to_unknown(self):
        vs = violations_in(
            """
            def loop(value):
                return loop(value)

            def f(entry, value):
                entry.pd = loop(value)
            """
        )
        assert fields_of(vs) == ["pd"]


class TestClassDefaults:
    def test_in_range_default_is_fine(self):
        assert violations_in(
            """
            class Entry:
                pd: int = 0
                tda_hits: int = 255
            """
        ) == []

    def test_out_of_range_default_fires(self):
        vs = violations_in(
            """
            class Entry:
                pd: int = 20
            """
        )
        assert fields_of(vs) == ["pd"]
