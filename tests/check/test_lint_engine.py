"""Engine-level tests for the linter: allow-marker semantics, R010
marker hygiene, the strict/baseline interaction and SARIF output.

These drive :class:`repro.check.lint.Linter` and :func:`run_check`
directly on small sources — no committed fixtures, no repo scan.
"""

import json
import textwrap

import pytest

from repro.check.lint import (
    Linter,
    load_baseline,
    run_check,
    sarif_payload,
    write_baseline,
)

R001_LINE = "import random\nvalue = random.random()\n"


@pytest.fixture()
def linter():
    return Linter()


def lint(linter, source, relpath="repro/core/seeded.py"):
    return linter.lint_source(textwrap.dedent(source), relpath)


class TestAllowMarkers:
    def test_one_marker_covers_multiple_rules(self, linter):
        fs = lint(
            linter,
            """
            def bump(entry):
                entry.pd = entry.pd + 4  # repro-check: allow(R003,R006) seeded fixture
            """,
        )
        assert fs == []

    def test_two_markers_share_a_line(self, linter):
        fs = lint(
            linter,
            """
            def bump(entry):
                entry.pd = entry.pd + 4  # repro-check: allow(R003) fixture # repro-check: allow(R006) fixture
            """,
        )
        assert fs == []
        assert len(linter.markers) == 2
        assert all(m.used for m in linter.markers)

    def test_marker_on_any_line_of_a_multiline_statement(self, linter):
        fs = lint(
            linter,
            """
            def bump(entry, a, b):
                entry.pd = (
                    entry.pd
                    + a  # repro-check: allow(R003,R006) exercised bound elsewhere
                    + b
                )
            """,
        )
        assert fs == []

    def test_marker_on_a_decorator_line(self, linter):
        fs = lint(
            linter,
            """
            def wrap(f):
                return f

            @wrap  # repro-check: allow(R004) fixture wants the shared list
            def collect(items=[]):
                return items
            """,
        )
        assert fs == []

    def test_standalone_comment_marker_covers_next_statement(self, linter):
        fs = lint(
            linter,
            """
            def bump(entry):
                # repro-check: allow(R003,R006) fixture
                entry.pd = entry.pd + 4
            """,
        )
        assert fs == []

    def test_docstring_mentioning_the_syntax_is_not_a_marker(self, linter):
        fs = lint(
            linter,
            '''
            def bump(entry):
                """Mark with ``# repro-check: allow(R003)`` to accept."""
                entry.pd = entry.pd + 4
            ''',
        )
        assert "R003" in {f.rule for f in fs}
        assert linter.markers == []

    def test_marker_does_not_leak_to_other_statements(self, linter):
        fs = lint(
            linter,
            """
            def bump(entry):
                entry.pd = entry.pd + 4  # repro-check: allow(R003,R006) fixture
                entry.pd = entry.pd + 8
            """,
        )
        assert "R003" in {f.rule for f in fs}


class TestMarkerHygieneR010:
    def test_unused_marker_is_dead(self, linter):
        lint(linter, "x = 1  # repro-check: allow(R001) nothing here\n")
        fs = linter.marker_findings()
        assert [f.rule for f in fs] == ["R010"]
        assert "suppresses nothing" in fs[0].message

    def test_used_but_unjustified_marker(self, linter):
        fs = lint(
            linter,
            """
            import random  # repro-check: allow(R001)
            value = random.random()
            """,
        )
        assert fs == []
        hygiene = linter.marker_findings()
        assert [f.rule for f in hygiene] == ["R010"]
        assert "no justification" in hygiene[0].message

    def test_used_and_justified_marker_is_clean(self, linter):
        lint(
            linter,
            """
            import random  # repro-check: allow(R001) fixture noise source
            value = random.random()
            """,
        )
        assert linter.marker_findings() == []


class TestRunCheckModes:
    def test_strict_refuses_a_baseline(self, tmp_path):
        lines = []
        code = run_check(
            strict=True, baseline=str(tmp_path / "b.json"), out=lines.append
        )
        assert code == 2
        assert any("--strict refuses a baseline" in line for line in lines)

    def test_strict_surfaces_r010(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "x = 1  # repro-check: allow(R001) nothing\n", encoding="utf-8"
        )
        lines = []
        assert run_check(paths=[str(bad)], out=lines.append) == 0
        assert run_check(paths=[str(bad)], strict=True, out=lines.append) == 1
        assert any("R010" in line for line in lines)

    def test_baseline_round_trip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(R001_LINE, encoding="utf-8")
        linter = Linter()
        findings = linter.lint_file(bad)
        assert findings
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        assert load_baseline(baseline) == {f.fingerprint() for f in findings}
        assert run_check(
            paths=[str(bad)], baseline=str(baseline), out=lambda _line: None
        ) == 0

    def test_missing_baseline_file_suppresses_nothing(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()


class TestSarif:
    def test_payload_structure(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(R001_LINE, encoding="utf-8")
        findings = Linter().lint_file(bad)
        doc = sarif_payload(findings, ["R001", "R003"])
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == \
            ["R001", "R003"]
        result = run["results"][0]
        assert result["ruleId"] == findings[0].rule
        assert result["partialFingerprints"]["reproCheck/v1"] == \
            findings[0].fingerprint()
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == findings[0].line

    def test_run_check_writes_the_report(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(R001_LINE, encoding="utf-8")
        report = tmp_path / "check.sarif"
        lines = []
        code = run_check(
            paths=[str(bad)], sarif=str(report), out=lines.append
        )
        assert code == 1
        doc = json.loads(report.read_text(encoding="utf-8"))
        assert {r["ruleId"] for r in doc["runs"][0]["results"]} == {"R001"}
        assert any("sarif report written" in line for line in lines)
