"""Seeded-violation fixtures for the static verification rules R006-R009.

Each rule gets sources that must fire and sources that must stay quiet,
lint through the real engine (scoping, suppression and dedup included).
The acceptance regressions live here too: reintroducing the historical
nasc ``or``-truthiness drift is caught by R007, and adding ``engine`` to
a store-key builder is caught by R008.
"""

import textwrap

import pytest

from repro.check.lint import Linter


@pytest.fixture()
def linter():
    return Linter()


def findings_for(linter, source, relpath):
    return linter.lint_source(textwrap.dedent(source), relpath)


def rules_of(findings):
    return [f.rule for f in findings]


class TestR006BitWidthProof:
    def test_unclamped_field_write_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def bump(entry, delta):
                entry.pd = entry.pd + delta
            """,
            relpath="repro/core/seeded.py",
        )
        assert "R006" in rules_of(fs)

    def test_clamped_write_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            def bump(entry, pd_max):
                entry.pd = min(entry.pd + 1, pd_max)
            """,
            relpath="repro/core/seeded.py",
        )
        assert "R006" not in rules_of(fs)

    def test_fastsim_packed_write_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def fill(self, way, insn):
                self._iid[way] = insn
            """,
            relpath="repro/fastsim/seeded.py",
        )
        assert "R006" in rules_of(fs)

    def test_outside_scoped_packages_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            def bump(entry, delta):
                entry.pd = entry.pd + delta
            """,
            relpath="repro/analysis/seeded.py",
        )
        assert "R006" not in rules_of(fs)

    def test_allow_marker_with_justification_suppresses(self, linter):
        fs = findings_for(
            linter,
            """
            def fill(self, way, insn):
                # repro-check: allow(R006) insn is hash_pc-folded upstream
                self._iid[way] = insn
            """,
            relpath="repro/fastsim/seeded.py",
        )
        assert "R006" not in rules_of(fs)


class TestR007OverrideGuard:
    def test_nasc_or_truthiness_regression(self, linter):
        # The historical bug shape: `or` drops an explicit nasc=0.
        fs = findings_for(
            linter,
            """
            def resolve(self, vta_assoc):
                nasc = self._nasc_override or vta_assoc
                return nasc
            """,
            relpath="repro/core/seeded.py",
        )
        r007 = [f for f in fs if f.rule == "R007"]
        assert r007, rules_of(fs)
        assert "nasc" in r007[0].message
        assert "historical nasc bug" in r007[0].message

    def test_bare_truthiness_conditional_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def resolve(spec, assoc):
                return spec.vta_assoc if spec.vta_assoc else assoc
            """,
            relpath="repro/fastsim/seeded.py",
        )
        assert "R007" in rules_of(fs)

    def test_is_not_none_guard_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            def resolve(spec, assoc):
                return spec.vta_assoc if spec.vta_assoc is not None else assoc
            """,
            relpath="repro/fastsim/seeded.py",
        )
        assert "R007" not in rules_of(fs)

    def test_unrelated_or_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            def resolve(label, default):
                return label or default
            """,
            relpath="repro/core/seeded.py",
        )
        assert "R007" not in rules_of(fs)

    def test_outside_policy_packages_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            def resolve(self, vta_assoc):
                return self._nasc_override or vta_assoc
            """,
            relpath="repro/serve/seeded.py",
        )
        assert "R007" not in rules_of(fs)


class TestR008KeyPurity:
    def test_engine_in_key_builder_regression(self, linter):
        # The law R008 exists for: engines are bit-identical, so a key
        # must never depend on which one computed the result.
        fs = findings_for(
            linter,
            """
            import json


            def cell_key(abbr, scheme, engine):
                doc = {"abbr": abbr, "scheme": scheme, "engine": engine}
                return json.dumps(doc, sort_keys=True)
            """,
            relpath="repro/experiments/seeded.py",
        )
        r008 = [f for f in fs if f.rule == "R008"]
        assert r008, rules_of(fs)
        assert "engine" in r008[0].message

    def test_engine_attribute_read_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def key(self):
                return f"{self.abbr}-{self.engine}"
            """,
            relpath="repro/experiments/seeded.py",
        )
        assert "R008" in rules_of(fs)

    def test_unconditional_non_blocking_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def fingerprint(cfg):
                return {"abbr": cfg.abbr, "non_blocking": cfg.non_blocking}
            """,
            relpath="repro/experiments/seeded.py",
        )
        assert "R008" in rules_of(fs)

    def test_guarded_non_blocking_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            def fingerprint(cfg):
                doc = {"abbr": cfg.abbr}
                if cfg.non_blocking:
                    doc["non_blocking"] = True
                return doc
            """,
            relpath="repro/experiments/seeded.py",
        )
        assert "R008" not in rules_of(fs)

    def test_unsorted_json_dumps_fires(self, linter):
        fs = findings_for(
            linter,
            """
            import json


            def trace_key(doc):
                return json.dumps(doc)
            """,
            relpath="repro/trace/seeded.py",
        )
        assert "R008" in rules_of(fs)

    def test_sorted_json_dumps_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            import json


            def trace_key(doc):
                return json.dumps(doc, sort_keys=True)
            """,
            relpath="repro/trace/seeded.py",
        )
        assert "R008" not in rules_of(fs)

    def test_process_lifetime_value_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def job_key(self):
                return f"job-{id(self)}"
            """,
            relpath="repro/serve/seeded.py",
        )
        assert "R008" in rules_of(fs)

    def test_non_key_builder_is_exempt(self, linter):
        fs = findings_for(
            linter,
            """
            def describe(self, engine):
                return f"{self.abbr} via {engine}"
            """,
            relpath="repro/experiments/seeded.py",
        )
        assert "R008" not in rules_of(fs)

    def test_outside_store_packages_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            def cell_key(engine):
                return str(engine)
            """,
            relpath="repro/core/seeded.py",
        )
        assert "R008" not in rules_of(fs)


class TestR009AsyncHygiene:
    def test_time_sleep_in_coroutine_fires(self, linter):
        fs = findings_for(
            linter,
            """
            import time


            async def pump(self):
                time.sleep(0.1)
            """,
            relpath="repro/serve/seeded.py",
        )
        r009 = [f for f in fs if f.rule == "R009"]
        assert r009
        assert "asyncio.sleep" in r009[0].message

    def test_future_result_fires(self, linter):
        fs = findings_for(
            linter,
            """
            async def run(self, future):
                return future.result()
            """,
            relpath="repro/serve/seeded.py",
        )
        assert "R009" in rules_of(fs)

    def test_shutdown_without_wait_false_fires(self, linter):
        fs = findings_for(
            linter,
            """
            async def stop(self):
                self._pool.shutdown(wait=True)
            """,
            relpath="repro/serve/seeded.py",
        )
        assert "R009" in rules_of(fs)

    def test_shutdown_wait_false_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            async def stop(self):
                self._pool.shutdown(wait=False)
            """,
            relpath="repro/serve/seeded.py",
        )
        assert "R009" not in rules_of(fs)

    def test_open_in_coroutine_fires(self, linter):
        fs = findings_for(
            linter,
            """
            async def dump(self, path):
                with open(path) as handle:
                    return handle.read()
            """,
            relpath="repro/serve/seeded.py",
        )
        assert "R009" in rules_of(fs)

    def test_nested_sync_helper_is_exempt(self, linter):
        fs = findings_for(
            linter,
            """
            async def run(self, loop, pool, path):
                def work():
                    with open(path) as handle:
                        return handle.read()

                return await loop.run_in_executor(pool, work)
            """,
            relpath="repro/serve/seeded.py",
        )
        assert "R009" not in rules_of(fs)

    def test_sync_function_is_exempt(self, linter):
        fs = findings_for(
            linter,
            """
            import time


            def pump(self):
                time.sleep(0.1)
            """,
            relpath="repro/serve/seeded.py",
        )
        assert "R009" not in rules_of(fs)

    def test_outside_serve_is_quiet(self, linter):
        fs = findings_for(
            linter,
            """
            import time


            async def pump(self):
                time.sleep(0.1)
            """,
            relpath="repro/experiments/seeded.py",
        )
        assert "R009" not in rules_of(fs)
