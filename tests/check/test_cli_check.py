"""End-to-end tests for the ``repro check`` CLI verb.

Covers the acceptance contract: exit 0 on the clean repo with no
baseline, non-zero on an injected R001/R003 violation, JSON output,
baseline suppression, and the R005 SIM_VERSION manifest drift cases.
"""

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.check import manifest
from repro.check.lint import run_check
from repro.cli import main

R001_SNIPPET = "import random\n\n\ndef roll():\n    return random.random()\n"
R003_SNIPPET = textwrap.dedent(
    """
    def bump(entry):
        entry.pd = entry.pd + 4
    """
)


@pytest.fixture()
def violating_file(tmp_path):
    path = tmp_path / "injected.py"
    path.write_text(R001_SNIPPET + R003_SNIPPET, encoding="utf-8")
    return path


class TestCheckCommand:
    def test_repo_is_clean_with_no_baseline(self, capsys):
        assert main(["check"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_injected_violations_fail(self, violating_file, capsys):
        assert main(["check", str(violating_file)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "R003" in out

    def test_json_output(self, violating_file, capsys):
        assert main(["check", "--json", str(violating_file)]) == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in payload["findings"]}
        assert {"R001", "R003"} <= rules
        assert payload["suppressed"] == 0
        assert "R005" in payload["checked_rules"]
        for f in payload["findings"]:
            assert f["fingerprint"] and f["line"] >= 1

    def test_baseline_suppression_roundtrip(self, violating_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "check", str(violating_file),
            "--baseline", str(baseline), "--update-baseline",
        ]) == 0
        assert baseline.exists()
        # baselined findings no longer fail the check ...
        assert main([
            "check", str(violating_file), "--baseline", str(baseline)
        ]) == 0
        assert "baseline-suppressed" in capsys.readouterr().out
        # ... but a new violation alongside them does
        extra = violating_file.read_text() + "\ndef g(line):\n    line.insn_id += 1\n"
        violating_file.write_text(extra, encoding="utf-8")
        assert main([
            "check", str(violating_file), "--baseline", str(baseline)
        ]) == 1

    def test_update_baseline_requires_baseline_path(self, violating_file):
        assert main(["check", str(violating_file), "--update-baseline"]) == 2

    def test_explicit_paths_skip_repo_rules(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main(["check", str(clean)]) == 0


class TestSimVersionManifest:
    """R005 drift taxonomy, exercised on a synthetic package tree."""

    @pytest.fixture()
    def fake_root(self, tmp_path):
        root = tmp_path / "repro"
        (root / "core").mkdir(parents=True)
        (root / "cache").mkdir()
        (root / "check").mkdir()
        (root / "experiments").mkdir()
        (root / "core" / "dlp.py").write_text("PD = 4\n", encoding="utf-8")
        (root / "cache" / "line.py").write_text("PL = 4\n", encoding="utf-8")
        (root / "experiments" / "store.py").write_text(
            'SIM_VERSION = "1"\n', encoding="utf-8"
        )
        return root

    def test_missing_manifest_reported(self, fake_root):
        messages = manifest.diff_manifest(fake_root)
        assert len(messages) == 1
        assert "missing" in messages[0]

    def test_fresh_manifest_is_clean(self, fake_root):
        manifest.write_manifest(fake_root)
        assert manifest.diff_manifest(fake_root) == []

    def test_semantic_change_without_bump_flagged(self, fake_root):
        manifest.write_manifest(fake_root)
        (fake_root / "core" / "dlp.py").write_text("PD = 5\n", encoding="utf-8")
        messages = manifest.diff_manifest(fake_root)
        assert len(messages) == 1
        assert "bump SIM_VERSION" in messages[0]
        assert "core/dlp.py" in messages[0]

    def test_new_semantic_file_without_bump_flagged(self, fake_root):
        manifest.write_manifest(fake_root)
        (fake_root / "cache" / "mshr.py").write_text("M = 32\n", encoding="utf-8")
        messages = manifest.diff_manifest(fake_root)
        assert messages and "cache/mshr.py" in messages[0]

    def test_bumped_version_with_stale_manifest_flagged(self, fake_root):
        manifest.write_manifest(fake_root)
        (fake_root / "experiments" / "store.py").write_text(
            'SIM_VERSION = "2"\n', encoding="utf-8"
        )
        messages = manifest.diff_manifest(fake_root)
        assert len(messages) == 1
        assert "--update-manifest" in messages[0]

    def test_update_manifest_clears_the_drift(self, fake_root):
        manifest.write_manifest(fake_root)
        (fake_root / "core" / "dlp.py").write_text("PD = 5\n", encoding="utf-8")
        (fake_root / "experiments" / "store.py").write_text(
            'SIM_VERSION = "2"\n', encoding="utf-8"
        )
        manifest.write_manifest(fake_root)
        assert manifest.diff_manifest(fake_root) == []

    def test_repo_manifest_is_current(self):
        # The committed manifest must match the committed sources; if this
        # fails, someone edited core/ or cache/ without the bump workflow.
        assert manifest.diff_manifest() == []


class TestRunCheckEngine:
    def test_out_callable_receives_lines(self, violating_file):
        lines = []
        code = run_check(paths=[str(violating_file)], out=lines.append)
        assert code == 1
        assert any("R001" in line for line in lines)

    def test_update_manifest_on_copy(self, tmp_path):
        src_root = manifest.package_root()
        root = tmp_path / "repro"
        for pkg in ("core", "cache", "experiments"):
            shutil.copytree(src_root / pkg, root / pkg)
        (root / "check").mkdir()
        path = manifest.write_manifest(root)
        assert path.exists()
        assert manifest.diff_manifest(root) == []
