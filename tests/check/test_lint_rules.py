"""Fixture tests for the ``repro check`` AST rules.

Each rule gets at least one positive fixture (must fire) and one
negative fixture (must stay quiet); the suppression and dedup behaviour
of the engine is covered at the end.
"""

import textwrap

import pytest

from repro.check.lint import Linter


@pytest.fixture()
def linter():
    return Linter()


def findings_for(linter, source, relpath="src/repro/somewhere/mod.py"):
    return linter.lint_source(textwrap.dedent(source), relpath)


def rules_of(findings):
    return [f.rule for f in findings]


class TestR001Nondeterminism:
    def test_import_random_fires(self, linter):
        fs = findings_for(linter, "import random\n")
        assert rules_of(fs) == ["R001"]

    def test_numpy_random_alias_fires(self, linter):
        fs = findings_for(
            linter,
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
        )
        assert "R001" in rules_of(fs)

    def test_time_time_fires(self, linter):
        fs = findings_for(
            linter,
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert "R001" in rules_of(fs)

    def test_builtin_hash_fires(self, linter):
        fs = findings_for(linter, "def f(x):\n    return hash(x)\n")
        assert "R001" in rules_of(fs)

    def test_set_iteration_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def f(items):
                for item in set(items):
                    print(item)
            """,
        )
        assert "R001" in rules_of(fs)

    def test_set_comprehension_source_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def f(items):
                return [i * 2 for i in {i % 4 for i in items}]
            """,
        )
        assert "R001" in rules_of(fs)

    def test_list_of_set_fires(self, linter):
        fs = findings_for(linter, "def f(xs):\n    return list(set(xs))\n")
        assert "R001" in rules_of(fs)

    def test_sorted_set_iteration_is_fine(self, linter):
        fs = findings_for(
            linter,
            """
            def f(items):
                for item in sorted(set(items)):
                    print(item)
            """,
        )
        assert fs == []

    def test_rng_module_is_exempt(self, linter):
        fs = findings_for(
            linter, "import random\n", relpath="src/repro/utils/rng.py"
        )
        assert fs == []

    def test_time_in_telemetry_wallclock_context_still_fires(self, linter):
        # No blanket exemptions outside utils/rng: wall-clock reads in
        # simulation code are exactly the hazard R001 exists for.
        fs = findings_for(
            linter,
            "import time\n\nSTART = time.monotonic()\n",
            relpath="src/repro/core/dlp.py",
        )
        assert "R001" in rules_of(fs)


class TestR002FloatContamination:
    def test_float_literal_into_counter_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def f(entry):
                entry.tda_hits = entry.tda_hits + 0.5
            """,
        )
        assert "R002" in rules_of(fs)

    def test_true_division_into_pd_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def f(entry, nasc):
                entry.pd = nasc / 2
            """,
        )
        assert "R002" in rules_of(fs)

    def test_integer_arithmetic_is_fine(self, linter):
        fs = findings_for(
            linter,
            """
            def f(entry, nasc):
                entry.pd = min(entry.pd + (nasc >> 1), 15)
            """,
        )
        assert fs == []


class TestR003BitfieldMasking:
    def test_unclamped_increment_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def f(entry):
                entry.pd = entry.pd + 4
            """,
        )
        assert "R003" in rules_of(fs)

    def test_augassign_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def f(line):
                line.protected_life += 1
            """,
        )
        assert "R003" in rules_of(fs)

    def test_min_max_clamp_is_fine(self, linter):
        fs = findings_for(
            linter,
            """
            def f(entry, delta, pd_max):
                entry.pd = min(max(entry.pd + delta, 0), pd_max)
            """,
        )
        assert fs == []

    def test_mask_is_fine(self, linter):
        fs = findings_for(
            linter,
            """
            def f(entry, v):
                entry.insn_id = v & 0x7F
            """,
        )
        assert fs == []

    def test_guarded_decrement_is_fine(self, linter):
        fs = findings_for(
            linter,
            """
            def f(line):
                if line.protected_life > 0:
                    line.protected_life -= 1
            """,
        )
        assert fs == []

    def test_non_hw_field_is_ignored(self, linter):
        fs = findings_for(
            linter,
            """
            def f(line):
                line.lru_stamp = line.lru_stamp + 1
            """,
        )
        assert fs == []


class TestR004ProcessHazards:
    def test_mutable_default_fires(self, linter):
        fs = findings_for(
            linter,
            """
            def f(items=[]):
                items.append(1)
            """,
        )
        assert "R004" in rules_of(fs)

    def test_dict_default_fires(self, linter):
        fs = findings_for(linter, "def f(cache={}):\n    return cache\n")
        assert "R004" in rules_of(fs)

    def test_none_default_is_fine(self, linter):
        fs = findings_for(linter, "def f(items=None):\n    return items\n")
        assert fs == []

    def test_global_in_executor_code_fires(self, linter):
        fs = findings_for(
            linter,
            """
            _pool = None

            def init():
                global _pool
                _pool = object()
            """,
            relpath="src/repro/experiments/executor.py",
        )
        assert "R004" in rules_of(fs)

    def test_global_outside_executor_scope_is_fine(self, linter):
        fs = findings_for(
            linter,
            """
            _thing = None

            def init():
                global _thing
                _thing = object()
            """,
            relpath="src/repro/analysis/report.py",
        )
        assert fs == []


class TestEngineBehaviour:
    def test_inline_allow_suppresses(self, linter):
        fs = findings_for(
            linter,
            """
            def f(entry):
                entry.pd = entry.pd + 4  # repro-check: allow(R003)
            """,
        )
        assert fs == []

    def test_allow_star_suppresses_everything(self, linter):
        fs = findings_for(
            linter,
            """
            def f(entry):
                entry.pd = entry.pd + 0.5  # repro-check: allow(*)
            """,
        )
        assert fs == []

    def test_allow_of_other_rule_does_not_suppress(self, linter):
        fs = findings_for(
            linter,
            """
            def f(entry):
                entry.pd = entry.pd + 4  # repro-check: allow(R001)
            """,
        )
        assert "R003" in rules_of(fs)

    def test_nested_attribute_chain_reports_once(self, linter):
        fs = findings_for(
            linter,
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
        )
        r001 = [f for f in fs if f.rule == "R001"]
        assert len(r001) == 1

    def test_fingerprints_survive_line_moves(self, linter):
        src_a = "def f(entry):\n    entry.pd = entry.pd + 4\n"
        src_b = "# a new leading comment\n\n\n" + src_a
        fp_a = [f.fingerprint() for f in findings_for(linter, src_a)]
        fp_b = [f.fingerprint() for f in findings_for(linter, src_b)]
        assert fp_a and fp_a == fp_b

    def test_syntax_error_reported_as_finding(self, linter):
        fs = findings_for(linter, "def broken(:\n")
        assert fs and all(f.rule == "R000" for f in fs)

    def test_repo_lints_clean(self, linter):
        findings = linter.lint()
        assert findings == [], "\n".join(f.format() for f in findings)
