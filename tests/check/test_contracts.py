"""Hardware bit-width contract tests (paper Fig. 8 widths).

All tests use :func:`repro.check.contracts.instrument` to build
force-checked subclasses, so they enforce contracts regardless of the
``REPRO_CHECK`` environment the suite runs under.
"""

import pytest

from repro.cache.line import CacheLine
from repro.cache.mshr import MshrEntry
from repro.check.contracts import (
    BitField,
    HardwareContractViolation,
    SaturatingCounter,
    declared_contracts,
    hw_checked,
    instrument,
    set_field_width,
)
from repro.core.pdpt import (
    INSN_ID_BITS,
    PD_BITS,
    TDA_HIT_BITS,
    VTA_HIT_BITS,
    PdptEntry,
    PredictionTable,
)
from repro.core.protection import pd_increment
from repro.core.vta import VictimEntry
from repro.utils.hashing import hash_pc

CheckedEntry = instrument(PdptEntry)
CheckedLine = instrument(CacheLine)


class TestDeclarations:
    def test_paper_widths_declared(self):
        spec = dict(declared_contracts(PdptEntry))
        assert spec["insn_id"].width == 7
        assert spec["tda_hits"].width == 8
        assert spec["vta_hits"].width == 10
        assert spec["pd"].width == 4

    def test_line_widths_declared(self):
        spec = dict(declared_contracts(CacheLine))
        assert spec["insn_id"].width == 7
        assert spec["pending_insn_id"].width == 7
        assert spec["protected_life"].width == 4

    def test_vta_and_mshr_carry_the_7bit_id(self):
        assert dict(declared_contracts(VictimEntry))["insn_id"].width == 7
        assert dict(declared_contracts(MshrEntry))["first_insn_id"].width == 7

    def test_enforcement_matches_environment(self):
        # The production classes carry descriptors iff REPRO_CHECK was set
        # at import time: zero overhead in a default build.
        from repro.check.contracts import CheckedField, contracts_enabled

        is_checked = isinstance(PdptEntry.__dict__.get("pd"), CheckedField)
        assert is_checked == contracts_enabled()

    def test_bad_contract_declarations_rejected(self):
        with pytest.raises(ValueError):
            BitField(0)
        with pytest.raises(TypeError):
            hw_checked(pd=4)(type("X", (), {}))
        with pytest.raises(ValueError):
            instrument(type("NoSpec", (), {}))


class TestProtectedLifeSaturation:
    """PL is a 4-bit field: the paper's maximum protection is 2**4 - 1."""

    def test_pl_saturates_at_15(self):
        line = CheckedLine(way=0)
        line.grant_protection(pd=999, pl_max=(1 << 4) - 1)
        assert line.protected_life == 15

    def test_unclamped_pl_write_raises(self):
        line = CheckedLine(way=0)
        with pytest.raises(HardwareContractViolation):
            line.protected_life = 16

    def test_negative_pl_write_raises(self):
        line = CheckedLine(way=0)
        with pytest.raises(HardwareContractViolation):
            line.protected_life = -1

    def test_decay_floors_at_zero(self):
        line = CheckedLine(way=0)
        line.protected_life = 1
        line.decay_protection()
        line.decay_protection()
        assert line.protected_life == 0


class TestSevenBitInstructionId:
    def test_wrapped_ids_accepted(self):
        for pc in (0x0, 0x1234, 0xFFFF_FFFF, 2**40 + 17):
            line = CheckedLine(way=0)
            line.insn_id = hash_pc(pc)
            assert 0 <= line.insn_id < 128

    def test_unwrapped_id_rejected(self):
        line = CheckedLine(way=0)
        with pytest.raises(HardwareContractViolation):
            line.insn_id = 128  # 8 bits: the hash must fold, not pass through

    def test_pdpt_entry_id_rejected_at_construction(self):
        with pytest.raises(HardwareContractViolation):
            CheckedEntry(insn_id=1 << 7)


class TestTypeDiscipline:
    def test_float_write_raises(self):
        entry = CheckedEntry(insn_id=3)
        with pytest.raises(HardwareContractViolation) as exc:
            entry.tda_hits = 2.5
        assert "float" in str(exc.value)

    def test_bool_write_raises(self):
        entry = CheckedEntry(insn_id=3)
        with pytest.raises(HardwareContractViolation):
            entry.pd = True

    def test_numpy_style_index_ints_accepted(self):
        class FakeNumpyInt:
            def __init__(self, v):
                self.v = v

            def __index__(self):
                return self.v

        entry = CheckedEntry(insn_id=3)
        entry.pd = FakeNumpyInt(7)
        assert entry.pd.__index__() == 7


class TestSaturatingCounters:
    def test_tda_counter_saturates_at_8_bits(self):
        table = PredictionTable()
        table.entries = [CheckedEntry(i) for i in range(table.num_entries)]
        for _ in range(300):
            table.record_tda_hit(5)
        assert table.entries[5].tda_hits == (1 << TDA_HIT_BITS) - 1

    def test_vta_counter_saturates_at_10_bits(self):
        table = PredictionTable()
        table.entries = [CheckedEntry(i) for i in range(table.num_entries)]
        for _ in range(1500):
            table.record_vta_hit(9)
        assert table.entries[9].vta_hits == (1 << VTA_HIT_BITS) - 1

    def test_overflowing_write_is_a_violation_not_a_wrap(self):
        entry = CheckedEntry(insn_id=0)
        entry.tda_hits = (1 << TDA_HIT_BITS) - 1
        with pytest.raises(HardwareContractViolation):
            entry.tda_hits += 1


class TestPdSteps:
    """PD increments are {0, 1/2, 1, 2, 4} x Nasc (Section 4.2)."""

    @pytest.mark.parametrize("nasc", [4, 8])
    def test_step_set(self, nasc):
        allowed = {0, nasc >> 1, nasc, 2 * nasc, 4 * nasc}
        for hit_vta in range(0, 25):
            for hit_tda in range(0, 25):
                assert pd_increment(nasc, hit_vta, hit_tda) in allowed

    def test_steps_stay_inside_the_4bit_pd(self):
        table = PredictionTable()
        table.entries = [CheckedEntry(i) for i in range(table.num_entries)]
        for delta in (4, 8, 16, 99):
            table.adjust_pd(2, delta)  # clamped to pd_max by the table
        assert table.pd(2) == (1 << PD_BITS) - 1


class TestWidthOverrides:
    def test_set_field_width_widens_one_instance(self):
        entry = CheckedEntry(insn_id=0)
        set_field_width(entry, "pd", 6)
        entry.pd = 63
        assert entry.pd == 63
        with pytest.raises(HardwareContractViolation):
            entry.pd = 64
        # other instances keep the paper width
        other = CheckedEntry(insn_id=1)
        with pytest.raises(HardwareContractViolation):
            other.pd = 63

    def test_set_field_width_noop_on_unchecked_class(self):
        entry = PdptEntry(0)
        set_field_width(entry, "pd", 2)  # must not raise either way

    def test_set_field_width_rejects_bad_width(self):
        with pytest.raises(ValueError):
            set_field_width(CheckedEntry(insn_id=0), "pd", 0)

    def test_prediction_table_ablation_widths(self):
        # Force-checked subclass entries via a subclassed table would be
        # heavyweight; instead verify the table's own widening hook.
        table = PredictionTable(
            num_entries=256, tda_hit_bits=4, vta_hit_bits=5, pd_bits=6
        )
        assert table.entries[255].insn_id == 255
        assert table.pd_max == 63

    def test_instrument_override(self):
        Narrow = instrument(PdptEntry, pd=BitField(2))
        entry = Narrow(insn_id=0)
        entry.pd = 3
        with pytest.raises(HardwareContractViolation):
            entry.pd = 4


class TestSaturatingCounterKind:
    def test_kinds_render_in_messages(self):
        entry = CheckedEntry(insn_id=0)
        with pytest.raises(HardwareContractViolation) as exc:
            entry.vta_hits = 1 << VTA_HIT_BITS
        assert "saturating counter" in str(exc.value)
        with pytest.raises(HardwareContractViolation) as exc:
            entry.insn_id = 1 << INSN_ID_BITS
        assert "bit-field" in str(exc.value)
