"""Tests for the engine-parity extractor and its committed manifest.

The live extraction must satisfy the cross-engine laws and match the
committed ``parity_manifest.json`` byte-for-byte; mutated copies must be
flagged with actionable messages.  ``classify_guard`` — the heart of
R007 — is unit-tested on expression fixtures directly.
"""

import ast
import copy
import json

import pytest

from repro.check.analysis.parity import (
    check_consistency,
    classify_guard,
    compute_parity,
    diff_parity,
    load_parity,
)
from repro.check.rules.engine_parity import EngineParityRule


@pytest.fixture(scope="module")
def current():
    return compute_parity()


class TestLiveExtraction:
    def test_consistency_laws_hold(self, current):
        assert check_consistency(current) == []

    def test_manifest_is_in_sync(self, current):
        assert diff_parity(load_parity(), current) == []

    def test_manifest_round_trips_through_json(self, current):
        assert json.loads(json.dumps(current)) == load_parity()

    def test_extraction_has_all_surfaces(self, current):
        defaults = current["knob_defaults"]
        assert set(defaults) == {
            "reference.dlp", "reference.global_protection", "fastsim.spec",
        }
        assert all(isinstance(t, dict) for t in defaults.values())
        assert current["hw_widths"], "no @hw_checked declarations extracted"
        assert current["fastsim_constant_redefinitions"] == []

    def test_width_table_matches_contracts(self, current):
        assert list(EngineParityRule._width_table_problems(current)) == []


class TestConsistencyOnDrift:
    def test_knob_default_drift_is_flagged(self, current):
        mutated = copy.deepcopy(current)
        mutated["knob_defaults"]["fastsim.spec"]["pd_bits"] = 5
        problems = check_consistency(mutated)
        assert any("knob default drift for 'pd_bits'" in p for p in problems)

    def test_or_truthiness_guard_is_flagged(self, current):
        mutated = copy.deepcopy(current)
        mutated["override_guards"]["repro/core/seeded.py"] = {
            "nasc": ["or_truthiness"],
        }
        problems = check_consistency(mutated)
        assert any(
            "or_truthiness" in p and "historical nasc bug" in p
            for p in problems
        )

    def test_redefined_width_constant_is_flagged(self, current):
        mutated = copy.deepcopy(current)
        mutated["fastsim_constant_redefinitions"] = ["PD_BITS"]
        problems = check_consistency(mutated)
        assert any("redefines width constants" in p for p in problems)

    def test_conflicting_hw_widths_are_flagged(self, current):
        mutated = copy.deepcopy(current)
        site = dict(next(iter(mutated["hw_widths"].values())))
        field = next(iter(site))
        site[field] = 99
        mutated["hw_widths"]["repro/core/seeded.py:Seeded"] = site
        problems = check_consistency(mutated)
        assert any(
            f"hardware field {field!r} declared with conflicting" in p
            for p in problems
        )

    def test_pl_must_mirror_pd_width(self, current):
        mutated = copy.deepcopy(current)
        mutated["width_constants"]["PL_BITS"] = 5
        problems = check_consistency(mutated)
        assert any("must share its width" in p for p in problems)


class TestDiff:
    def test_missing_manifest_points_at_update_parity(self, current):
        (message,) = diff_parity(None, current)
        assert "--update-parity" in message

    def test_mutated_extraction_diffs_with_rebaseline_hint(self, current):
        mutated = copy.deepcopy(current)
        mutated["width_constants"]["PD_BITS"] = 5
        messages = diff_parity(load_parity(), mutated)
        assert messages
        assert all("--update-parity" in m for m in messages)
        assert any("width_constants.PD_BITS" in m for m in messages)


class TestWidthTableProblems:
    def test_contract_vs_table_drift(self, current):
        mutated = copy.deepcopy(current)
        for fields in mutated["hw_widths"].values():
            if "pd" in fields:
                fields["pd"] = 5
        problems = list(EngineParityRule._width_table_problems(mutated))
        assert any("update rules/bit_widths.py" in p for p in problems)

    def test_unknown_packed_array_is_flagged(self, current):
        mutated = copy.deepcopy(current)
        mutated["packed_correspondence"]["_zzz"] = "pd"
        problems = list(EngineParityRule._width_table_problems(mutated))
        assert any("'_zzz'" in p and "no width" in p for p in problems)


def guard_of(expr):
    return classify_guard(ast.parse(expr, mode="eval").body)


class TestClassifyGuard:
    def test_or_truthiness(self):
        assert guard_of("self._nasc_override or nasc") == \
            ("nasc", "or_truthiness")

    def test_is_not_none(self):
        assert guard_of("vta_assoc if vta_assoc is not None else assoc") == \
            ("vta_assoc", "is_not_none")

    def test_inverted_is_none(self):
        assert guard_of("assoc if vta_assoc is None else vta_assoc") == \
            ("vta_assoc", "is_not_none")

    def test_bare_truthiness(self):
        assert guard_of("vta_assoc if vta_assoc else assoc") == \
            ("vta_assoc", "truthiness")

    def test_unrelated_expressions_pass(self):
        assert guard_of("x or y") is None
        assert guard_of("x if x is not None else y") is None
        assert guard_of("nasc + 1") is None
