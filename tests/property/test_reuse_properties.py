"""Property tests for the RDD primitives the prediction tier leans on.

``RddHistogram.merge`` must be a commutative monoid and ``bucket_of``
must honour the paper's Fig. 3 range boundaries exactly — the predict
profiles, the ``--rdd`` trace report, and the serve tier all aggregate
through these.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.reuse import (
    RD_RANGES,
    RddHistogram,
    ReuseProfiler,
    bucket_of,
)
from repro.cache.tagarray import CacheGeometry

TRIALS = 25


def random_histogram(rng: random.Random) -> RddHistogram:
    return RddHistogram([rng.randrange(0, 1000) for _ in range(4)])


def random_profiler(rng: random.Random) -> ReuseProfiler:
    profiler = ReuseProfiler(CacheGeometry(num_sets=4, assoc=4))
    for _ in range(rng.randrange(0, 200)):
        profiler.observe(rng.randrange(0, 64), pc=rng.randrange(0, 8))
    return profiler


class TestBucketBoundaries:
    @pytest.mark.parametrize("rd,expected", [
        (1, 0), (4, 0),          # RD 1~4
        (5, 1), (8, 1),          # RD 5~8
        (9, 2), (64, 2),         # RD 9~64
        (65, 3), (10**9, 3),     # RD >65
    ])
    def test_figure3_boundaries(self, rd, expected):
        assert bucket_of(rd) == expected

    def test_ranges_and_bucketing_agree(self):
        for idx, (lo, hi) in enumerate(RD_RANGES):
            assert bucket_of(lo) == idx
            assert bucket_of(min(hi, 10**12)) == idx
            if idx + 1 < len(RD_RANGES):
                assert bucket_of(hi + 1) == idx + 1

    def test_ranges_tile_the_positive_integers(self):
        assert RD_RANGES[0][0] == 1
        for (_, hi), (lo, _) in zip(RD_RANGES, RD_RANGES[1:]):
            assert lo == hi + 1


class TestHistogramMerge:
    def test_merge_is_commutative(self):
        rng = random.Random(0)
        for _ in range(TRIALS):
            a, b = random_histogram(rng), random_histogram(rng)
            ab = RddHistogram(list(a.counts))
            ab.merge(b)
            ba = RddHistogram(list(b.counts))
            ba.merge(a)
            assert ab.counts == ba.counts

    def test_merge_is_associative(self):
        rng = random.Random(1)
        for _ in range(TRIALS):
            a, b, c = (random_histogram(rng) for _ in range(3))
            left = RddHistogram(list(a.counts))
            left.merge(b)
            left.merge(c)
            bc = RddHistogram(list(b.counts))
            bc.merge(c)
            right = RddHistogram(list(a.counts))
            right.merge(bc)
            assert left.counts == right.counts

    def test_merge_preserves_totals(self):
        rng = random.Random(2)
        for _ in range(TRIALS):
            a, b = random_histogram(rng), random_histogram(rng)
            expected = a.total + b.total
            a.merge(b)
            assert a.total == expected

    def test_empty_histogram_is_identity(self):
        rng = random.Random(3)
        for _ in range(TRIALS):
            a = random_histogram(rng)
            before = list(a.counts)
            a.merge(RddHistogram())
            assert a.counts == before

    def test_add_matches_bucket_of(self):
        rng = random.Random(4)
        hist = RddHistogram()
        shadow = [0, 0, 0, 0]
        for _ in range(500):
            rd = rng.randrange(1, 200)
            hist.add(rd)
            shadow[bucket_of(rd)] += 1
        assert hist.counts == shadow

    def test_fractions_sum_to_one_when_populated(self):
        rng = random.Random(5)
        for _ in range(TRIALS):
            hist = random_histogram(rng)
            if hist.total:
                assert sum(hist.fractions()) == pytest.approx(1.0)
        assert RddHistogram().fractions() == [0.0, 0.0, 0.0, 0.0]


class TestProfilerMerge:
    def test_merge_preserves_every_total(self):
        rng = random.Random(6)
        for _ in range(10):
            a, b = random_profiler(rng), random_profiler(rng)
            expected = {
                "accesses": a.accesses + b.accesses,
                "compulsory": a.compulsory + b.compulsory,
                "reuses": a.reuses + b.reuses,
                "overall": a.overall.total + b.overall.total,
            }
            per_pc = {}
            for src in (a, b):
                for pc, hist in src.per_pc.items():
                    per_pc[pc] = per_pc.get(pc, 0) + hist.total
            a.merge(b)
            assert a.accesses == expected["accesses"]
            assert a.compulsory == expected["compulsory"]
            assert a.reuses == expected["reuses"]
            assert a.overall.total == expected["overall"]
            assert {pc: h.total for pc, h in a.per_pc.items()} == per_pc

    def test_merge_is_commutative_on_histograms(self):
        rng = random.Random(7)
        for _ in range(10):
            a, b = random_profiler(rng), random_profiler(rng)
            ab = ReuseProfiler(a.geometry)
            ab.merge(a)
            ab.merge(b)
            ba = ReuseProfiler(a.geometry)
            ba.merge(b)
            ba.merge(a)
            assert ab.overall.counts == ba.overall.counts
            assert {pc: h.counts for pc, h in ab.per_pc.items()} == \
                {pc: h.counts for pc, h in ba.per_pc.items()}

    def test_merge_does_not_alias_source_histograms(self):
        a = ReuseProfiler(CacheGeometry(num_sets=1, assoc=4))
        b = ReuseProfiler(CacheGeometry(num_sets=1, assoc=4))
        for block in (0, 0):     # one reuse attributed to pc 5
            b.observe(block, pc=5)
        a.merge(b)
        a.per_pc[5].add(1)
        assert b.per_pc[5].total == 1   # b must be untouched
