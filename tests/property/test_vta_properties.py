"""Property-based tests: VTA and coalescer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cache.tagarray import CacheGeometry
from repro.core.vta import VictimTagArray
from repro.gpu.coalescer import coalesce, coalesce_count

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "probe"]),
        st.integers(0, 63),        # block
        st.integers(0, 127),       # insn id
    ),
    max_size=200,
)


class TestVtaProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=ops)
    def test_occupancy_bounded_by_capacity(self, ops):
        vta = VictimTagArray(CacheGeometry(num_sets=4, assoc=2, index_fn="linear"), 2)
        for op, block, insn in ops:
            if op == "insert":
                vta.insert(block, insn)
            else:
                vta.probe(block)
            assert vta.occupancy() <= vta.num_entries

    @settings(max_examples=60, deadline=None)
    @given(ops=ops)
    def test_no_duplicate_tags_per_set(self, ops):
        vta = VictimTagArray(CacheGeometry(num_sets=4, assoc=2, index_fn="linear"), 2)
        for op, block, insn in ops:
            if op == "insert":
                vta.insert(block, insn)
            else:
                vta.probe(block)
            for entries in vta.sets:
                tags = [e.tag for e in entries if e.valid]
                assert len(tags) == len(set(tags))

    @settings(max_examples=60, deadline=None)
    @given(ops=ops)
    def test_probe_hit_returns_last_inserted_insn(self, ops):
        vta = VictimTagArray(CacheGeometry(num_sets=4, assoc=4, index_fn="linear"), 4)
        last_insn = {}
        for op, block, insn in ops:
            if op == "insert":
                vta.insert(block, insn)
                last_insn[block] = insn
            else:
                result = vta.probe(block)
                if result is not None:
                    assert result == last_insn[block]
                last_insn.pop(block, None)  # hit or miss: entry gone/absent


addr_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(1, 32),
    elements=st.integers(0, 1 << 24),
)


class TestCoalescerProperties:
    @settings(max_examples=80, deadline=None)
    @given(addrs=addr_arrays)
    def test_count_matches_unique_blocks(self, addrs):
        blocks = coalesce(addrs, 128)
        assert len(blocks) == coalesce_count(addrs, 128)
        assert sorted(set(blocks)) == sorted(np.unique(addrs >> 7).tolist())

    @settings(max_examples=80, deadline=None)
    @given(addrs=addr_arrays)
    def test_no_duplicates_and_bounded(self, addrs):
        blocks = coalesce(addrs, 128)
        assert len(blocks) == len(set(blocks))
        assert 1 <= len(blocks) <= len(addrs)

    @settings(max_examples=80, deadline=None)
    @given(addrs=addr_arrays)
    def test_every_lane_served(self, addrs):
        blocks = set(coalesce(addrs, 128))
        for addr in addrs:
            assert int(addr) >> 7 in blocks
