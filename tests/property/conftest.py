"""Keep the adversarial generators out of the global registry.

Every test in this package may register ATH/APC/APH/ABS (directly or
via ``run_fuzz``); without teardown they would leak into the Table 2
registry assertions elsewhere in the suite.
"""

from __future__ import annotations

import pytest

from repro.workloads.adversarial import (
    register_adversarial_workloads,
    unregister_adversarial_workloads,
)


@pytest.fixture(autouse=True)
def _scoped_adversarial_registry():
    register_adversarial_workloads()
    yield
    unregister_adversarial_workloads()
