"""Property-based tests on the Fig. 9 protection maths."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pdpt import PredictionTable
from repro.core.protection import pd_increment, run_global_pd_update, run_pd_update

hits = st.integers(min_value=0, max_value=2000)
nascs = st.integers(min_value=0, max_value=16)


class TestPdIncrementProperties:
    @given(nasc=nascs, vta=hits, tda=hits)
    def test_bounded_by_four_nasc(self, nasc, vta, tda):
        assert 0 <= pd_increment(nasc, vta, tda) <= 4 * nasc

    @given(nasc=nascs, vta=hits, tda=hits)
    def test_monotone_in_vta_hits(self, nasc, vta, tda):
        assert pd_increment(nasc, vta + 1, tda) >= pd_increment(nasc, vta, tda)

    @given(nasc=nascs, vta=hits, tda=hits)
    def test_antitone_in_tda_hits(self, nasc, vta, tda):
        assert pd_increment(nasc, vta, tda + 1) <= pd_increment(nasc, vta, tda)

    @given(nasc=nascs, tda=hits)
    def test_zero_vta_hits_never_increments(self, nasc, tda):
        assert pd_increment(nasc, 0, tda) == 0

    @given(vta=hits, tda=hits)
    def test_increment_is_a_shift_of_nasc(self, vta, tda):
        # hardware implements the step comparison with shifts: for a
        # power-of-two Nasc, the result must be Nasc shifted by [-1, 2]
        nasc = 4
        inc = pd_increment(nasc, vta, tda)
        assert inc in (0, nasc >> 1, nasc, 2 * nasc, 4 * nasc)


def build_table(pairs):
    t = PredictionTable()
    for insn_id, (vta, tda) in enumerate(pairs):
        for _ in range(vta):
            t.record_vta_hit(insn_id)
        for _ in range(tda):
            t.record_tda_hit(insn_id)
    return t


per_insn = st.lists(
    st.tuples(st.integers(0, 50), st.integers(0, 50)), min_size=1, max_size=16
)


class TestRunPdUpdateProperties:
    @settings(max_examples=60, deadline=None)
    @given(pairs=per_insn, nasc=st.integers(1, 8))
    def test_pds_stay_in_field_range(self, pairs, nasc):
        t = build_table(pairs)
        run_pd_update(t, nasc)
        for entry in t.entries:
            assert 0 <= entry.pd <= 15

    @settings(max_examples=60, deadline=None)
    @given(pairs=per_insn, nasc=st.integers(1, 8))
    def test_counters_always_cleared(self, pairs, nasc):
        t = build_table(pairs)
        run_pd_update(t, nasc)
        assert t.global_tda_hits == 0
        assert t.global_vta_hits == 0
        assert all(e.tda_hits == 0 and e.vta_hits == 0 for e in t.entries)

    @settings(max_examples=60, deadline=None)
    @given(pairs=per_insn, nasc=st.integers(1, 8))
    def test_path_consistent_with_global_counts(self, pairs, nasc):
        t = build_table(pairs)
        g_tda, g_vta = t.global_tda_hits, t.global_vta_hits
        result = run_pd_update(t, nasc)
        if g_vta > g_tda:
            assert result.path == "increase"
        elif 2 * g_vta < g_tda:
            assert result.path == "decrease"
        else:
            assert result.path == "hold"

    @settings(max_examples=60, deadline=None)
    @given(pairs=per_insn, nasc=st.integers(1, 8))
    def test_decrease_never_raises_any_pd(self, pairs, nasc):
        t = build_table(pairs)
        for e in t.entries[:4]:
            e.pd = 9
        before = [e.pd for e in t.entries]
        result = run_pd_update(t, nasc)
        if result.path == "decrease":
            assert all(e.pd <= b for e, b in zip(t.entries, before))


class TestGlobalUpdateProperties:
    @given(pd=st.integers(0, 15), nasc=st.integers(1, 8), tda=hits, vta=hits)
    def test_result_in_range(self, pd, nasc, tda, vta):
        new_pd, path = run_global_pd_update(pd, 15, nasc, tda, vta)
        assert 0 <= new_pd <= 15
        assert path in ("increase", "decrease", "hold")

    @given(pd=st.integers(0, 15), nasc=st.integers(1, 8), tda=hits, vta=hits)
    def test_hold_is_identity(self, pd, nasc, tda, vta):
        new_pd, path = run_global_pd_update(pd, 15, nasc, tda, vta)
        if path == "hold":
            assert new_pd == pd
