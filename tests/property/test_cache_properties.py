"""Property-based tests: cache-substrate invariants under arbitrary
access streams (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.l1d import AccessOutcome, L1DCache, MemAccess
from repro.cache.line import LineState
from repro.cache.tagarray import CacheGeometry
from repro.core import make_policy

POLICY_NAMES = ["baseline", "stall_bypass", "global_protection", "dlp"]

streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),  # block
              st.integers(min_value=0, max_value=7),   # insn id
              st.booleans()),                          # is_write
    min_size=1,
    max_size=300,
)


def drive(policy_name, stream, num_sets=4, assoc=2, **policy_kwargs):
    cache = L1DCache(
        CacheGeometry(num_sets=num_sets, assoc=assoc, index_fn="linear"),
        make_policy(policy_name, **policy_kwargs),
        send_fn=lambda f: None,
        mshr_entries=4,
        mshr_merge=2,
        miss_queue_depth=4,
    )
    outcomes = []
    for block, insn, is_write in stream:
        result = cache.access(MemAccess(block_addr=block, insn_id=insn,
                                        is_write=is_write))
        outcomes.append(result.outcome)
        cache.drain_miss_queue(8)
        if result.outcome is AccessOutcome.MISS:
            cache.fill(block, 0)
    return cache, outcomes


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(stream=streams, policy=st.sampled_from(POLICY_NAMES))
    def test_no_duplicate_tags_within_a_set(self, stream, policy):
        cache, _ = drive(policy, stream)
        for cache_set in cache.tags.sets:
            tags = [l.tag for l in cache_set.lines if not l.is_invalid]
            assert len(tags) == len(set(tags))

    @settings(max_examples=40, deadline=None)
    @given(stream=streams, policy=st.sampled_from(POLICY_NAMES))
    def test_counter_conservation(self, stream, policy):
        cache, _ = drive(policy, stream)
        s = cache.stats
        assert s.loads == s.hits + s.hit_reserved + s.misses + s.bypasses
        assert s.stores == s.write_hits + s.write_misses
        assert s.fills == s.misses  # every allocated miss was filled

    @settings(max_examples=40, deadline=None)
    @given(stream=streams, policy=st.sampled_from(POLICY_NAMES))
    def test_pl_never_exceeds_field_width(self, stream, policy):
        cache, _ = drive(policy, stream)
        for line in cache.tags.lines():
            assert 0 <= line.protected_life <= 15

    @settings(max_examples=40, deadline=None)
    @given(stream=streams)
    def test_mshr_empty_after_all_fills(self, stream):
        cache, _ = drive("baseline", stream)
        assert len(cache.mshr) == 0

    @settings(max_examples=40, deadline=None)
    @given(stream=streams)
    def test_baseline_with_immediate_fills_never_stalls_on_mshr(self, stream):
        # fills arrive before the next access, so the only possible stall
        # is the miss queue - which we drain - hence none at all
        cache, outcomes = drive("baseline", stream)
        assert AccessOutcome.STALL not in outcomes

    @settings(max_examples=30, deadline=None)
    @given(stream=streams)
    def test_dlp_and_baseline_agree_without_protection(self, stream):
        """With PDs pinned at zero, DLP's replacement decisions reduce to
        LRU, so hit/miss totals must match the baseline exactly (loads
        only; the huge sample limit keeps PDs at zero)."""
        loads = [(b, i, False) for b, i, _ in stream]
        base_cache, _ = drive("baseline", loads)
        # a huge sample limit keeps the window from ever closing, so PDs
        # stay at their initial zero
        dlp_cache, _ = drive("dlp", loads, sample_limit=10**9)
        assert dlp_cache.stats.hits == base_cache.stats.hits
        assert dlp_cache.stats.misses == base_cache.stats.misses


class TestReservedLinesNeverReplaced:
    @settings(max_examples=40, deadline=None)
    @given(stream=streams, policy=st.sampled_from(POLICY_NAMES))
    def test_fill_always_finds_its_line(self, stream, policy):
        """If a reserved line were ever replaced, fill() would raise."""
        cache = L1DCache(
            CacheGeometry(num_sets=2, assoc=2, index_fn="linear"),
            make_policy(policy),
            send_fn=lambda f: None,
            mshr_entries=4,
            mshr_merge=2,
            miss_queue_depth=4,
        )
        pending = []
        for i, (block, insn, is_write) in enumerate(stream):
            result = cache.access(
                MemAccess(block_addr=block, insn_id=insn, is_write=is_write)
            )
            cache.drain_miss_queue(8)
            if result.outcome is AccessOutcome.MISS:
                pending.append(block)
            # fill lazily every third access to keep lines reserved longer
            if i % 3 == 2:
                while pending:
                    cache.fill(pending.pop(), 0)
        while pending:
            cache.fill(pending.pop(), 0)
