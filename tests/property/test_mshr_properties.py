"""Seeded property tests for the MSHR merge disciplines.

Four invariants, each over many seeded random operation streams:

* the per-entry merge bound holds under either discipline — waiters in
  blocking mode, *distinct words* in word-granular mode (coalesced
  secondary misses are free and may push the waiter list past the
  bound, which is exactly the synapse32 point);
* a fill wakes every merged waiter exactly once, in arrival order;
* with ``non_blocking=False`` the refactored cache is access-for-access
  identical across both engines on random streams (the golden byte
  snapshots pin it against the seed separately);
* the non-blocking replay path never deadlocks on MSHR-saturating
  streams, even with the table sized far below the fill window.
"""

from __future__ import annotations

import pytest

from repro.cache.l1d import L1DCache, MemAccess
from repro.cache.mshr import MshrTable
from repro.cache.tagarray import CacheGeometry
from repro.core import make_policy
from repro.fastsim import make_l1d
from repro.utils.hashing import hash_pc
from repro.utils.rng import DeterministicRng

SEEDS = range(6)


def _op_stream(seed: int, length: int = 300):
    """Seeded (block, word, is_bypass) operations over a small block set."""
    rng = DeterministicRng("mshr-props", salt=seed)
    ops = []
    for i in range(length):
        ops.append((
            int(rng.integers(0, 12)),          # block
            int(rng.integers(0, 32)),          # word
            bool(float(rng.random()) < 0.15),  # bypass-intent
        ))
    return ops


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("word_granular", [False, True],
                         ids=["blocking", "word-granular"])
def test_merge_bound_holds(seed, word_granular):
    mshr = MshrTable(num_entries=8, max_merged=3,
                     word_granular=word_granular, words_per_line=32)
    for block, word, _ in _op_stream(seed):
        w = word if word_granular else None
        if mshr.lookup(block) is None:
            if not mshr.is_full:
                mshr.allocate(block, 0, 0, f"w{block}", word=w)
        elif mshr.can_merge(block, w):
            mshr.merge(block, f"m{block}", word=w)
        for entry_block in mshr.outstanding_blocks():
            entry = mshr.lookup(entry_block)
            if word_granular:
                assert entry.num_words <= mshr.max_merged
            else:
                assert entry.num_requests <= mshr.max_merged


@pytest.mark.parametrize("seed", SEEDS)
def test_word_coalescing_is_free(seed):
    """A secondary miss on an already-pending word always merges, even
    with the entry at its distinct-word bound, and consumes no slot."""
    mshr = MshrTable(num_entries=4, max_merged=2,
                     word_granular=True, words_per_line=32)
    mshr.allocate(0x10, 0, 0, "w0", word=0)
    mshr.merge(0x10, "w1", word=1)
    entry = mshr.lookup(0x10)
    assert entry.num_words == 2
    assert not mshr.can_merge(0x10, word=2)   # new word: at the bound
    assert mshr.can_merge(0x10, word=0)       # pending word: free
    rng = DeterministicRng("coalesce", salt=seed)
    extra = int(rng.integers(1, 6))
    for i in range(extra):
        mshr.merge(0x10, f"c{i}", word=int(rng.integers(0, 2)))
    assert entry.num_words == 2               # bitmap unchanged
    assert entry.num_requests == 2 + extra    # every waiter recorded
    assert mshr.word_coalesced == extra


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("word_granular", [False, True],
                         ids=["blocking", "word-granular"])
def test_fill_wakes_every_waiter_exactly_once(seed, word_granular):
    """Every registered waiter comes back from exactly one release, in
    arrival order."""
    mshr = MshrTable(num_entries=16, max_merged=4,
                     word_granular=word_granular, words_per_line=32)
    registered = {}
    token = 0
    for block, word, _ in _op_stream(seed):
        w = word if word_granular else None
        if mshr.lookup(block) is None:
            if mshr.is_full:
                continue
            mshr.allocate(block, 0, 0, token, word=w)
            registered.setdefault(block, []).append(token)
            token += 1
        elif mshr.can_merge(block, w):
            mshr.merge(block, token, word=w)
            registered[block].append(token)
            token += 1
    woken = []
    for block in list(mshr.outstanding_blocks()):
        entry = mshr.release(block)
        assert entry.waiters == registered.pop(block)
        woken.extend(entry.waiters)
    assert not registered
    assert sorted(woken) == list(range(token))
    assert len(woken) == len(set(woken))  # exactly once
    with pytest.raises(KeyError):
        mshr.release(0x1)  # double fill is loud


class TestBypassMergeEdge:
    """Regression: the ``is_bypass`` MSHR-merge edge (latent until the
    non-blocking mode made concurrent bypass + cached fetches real)."""

    def test_cached_into_bypass_entry_raises(self):
        mshr = MshrTable(num_entries=4, max_merged=4)
        mshr.allocate(0x10, 0, 0, "byp", is_bypass=True)
        with pytest.raises(RuntimeError, match="bypass"):
            mshr.merge(0x10, "cached", is_bypass=False)

    def test_bypass_into_cached_entry_is_absorbed(self):
        mshr = MshrTable(num_entries=4, max_merged=4)
        mshr.allocate(0x10, 0, 0, "cached")
        entry = mshr.merge(0x10, "byp", is_bypass=True)
        assert entry.is_bypass is False        # entry stays a cached fetch
        assert entry.waiters == ["cached", "byp"]
        assert mshr.bypass_absorbed == 1

    def test_bypass_into_bypass_entry_merges(self):
        mshr = MshrTable(num_entries=4, max_merged=4)
        mshr.allocate(0x10, 0, 0, "b0", is_bypass=True)
        entry = mshr.merge(0x10, "b1", is_bypass=True)
        assert entry.is_bypass is True
        assert mshr.bypass_absorbed == 0


GEOMETRY = CacheGeometry(num_sets=8, assoc=2, line_size=128,
                         index_fn="linear")
POLICIES = ("baseline", "stall_bypass", "global_protection", "dlp")


def _random_accesses(seed: int, length: int = 500):
    rng = DeterministicRng("mshr-blocking-diff", salt=seed)
    pcs = [0x100, 0x200, 0x300]
    out = []
    for i in range(length):
        block = 0x1000 + int(rng.integers(0, 48))
        pc = pcs[int(rng.integers(0, len(pcs)))]
        out.append((block, pc, bool(float(rng.random()) < 0.1)))
    return out


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy_name", POLICIES)
def test_blocking_mode_access_for_access_identical(seed, policy_name):
    """With ``non_blocking=False`` both engines walk the refactored
    blocking path and must agree on the outcome of *every* access (not
    just the final counters) on random streams."""
    caches = []
    for engine in ("reference", "fast"):
        cache = make_l1d(engine, GEOMETRY, make_policy(policy_name),
                         mshr_entries=8, mshr_merge=4, miss_queue_depth=8)
        assert getattr(cache, "non_blocking") is False
        caches.append(cache)
    reference, fast = caches
    for step, (block, pc, is_write) in enumerate(_random_accesses(seed)):
        access = MemAccess(block_addr=block, pc=pc, insn_id=hash_pc(pc),
                           is_write=is_write, now=step)
        a = reference.access(access)
        b = fast.access(access)
        assert (a.outcome, a.stall_reason) == (b.outcome, b.stall_reason), (
            f"step {step}: {a.outcome}/{a.stall_reason} != "
            f"{b.outcome}/{b.stall_reason}"
        )
        for cache, result in ((reference, a), (fast, b)):
            if result.is_stall:
                for pending in list(cache.mshr.outstanding_blocks()):
                    cache.fill(pending, now=step)
            elif result.outcome.name == "MISS":
                cache.fill(block, now=step)
            cache.drain_miss_queue(8)
    assert reference.stats.to_raw_dict() == fast.stats.to_raw_dict()


@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("generator", ["APC", "ABS"])
def test_non_blocking_never_deadlocks_on_saturating_streams(
    policy_name, generator
):
    """MSHR-saturating adversarial streams through the non-blocking
    replay path with the table sized far below the fill window: every
    stall must converge by filling outstanding misses (a hang raises
    ``ReplayStallError`` via the bounded retry loop)."""
    from repro.gpu.config import GPUConfig
    from repro.trace.record import capture_records
    from repro.trace.replay import replay_records
    from repro.workloads import make_workload
    from repro.workloads.adversarial import register_adversarial_workloads

    from tests.oracle import assert_results_identical

    register_adversarial_workloads()
    config = GPUConfig().scaled(2).with_l1d(
        mshr_entries=4, mshr_merge=2, miss_queue_depth=2, non_blocking=True,
    )
    records = capture_records(
        make_workload(generator, 0.5, seed=1), config
    )
    reference = replay_records(iter(records), config, policy_name)
    fast = replay_records(iter(records), config, policy_name,
                          engine="fast")
    assert reference.l1d.accesses > 0
    assert_results_identical(reference, fast,
                             label=f"{generator}/{policy_name}")
