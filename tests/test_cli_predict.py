"""CLI surface of the prediction tier: ``repro predict`` and
``repro trace info --rdd``."""

from __future__ import annotations

from repro.cli import main


class TestPredictCommand:
    def test_small_grid_prints_calibrated_table(self, capsys):
        assert main(["predict", "--apps", "MM,KM",
                     "--schemes", "baseline,dlp",
                     "--sms", "2", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "MM" in out and "KM" in out
        assert "DLP" in out          # scheme display labels
        # the stats line makes the tier explicit
        assert "no cache was stepped" in out
        assert "profiled 2 streams" in out
        # calibrated answers carry error bars
        assert "±err" in out or "err" in out

    def test_raw_flag_skips_calibration(self, capsys):
        assert main(["predict", "--apps", "MM",
                     "--schemes", "baseline",
                     "--sms", "2", "--scale", "0.25", "--raw"]) == 0
        out = capsys.readouterr().out
        assert "raw model" in out

    def test_unknown_scheme_is_a_usage_error(self, capsys):
        assert main(["predict", "--apps", "MM",
                     "--schemes", "clairvoyant"]) == 2
        err = capsys.readouterr().err
        assert "clairvoyant" in err

    def test_unknown_app_is_a_usage_error(self):
        assert main(["predict", "--apps", "NOPE",
                     "--schemes", "baseline",
                     "--sms", "2", "--scale", "0.25"]) == 2

    def test_trace_dir_profiles_from_recorded_stream(self, tmp_path, capsys):
        from repro.experiments.runner import harness_config
        from repro.experiments.store import trace_key
        from repro.trace.record import record_workload
        from repro.workloads import make_workload

        config = harness_config(2)
        key = trace_key("MM", config, scale=0.25, seed=0)
        record_workload(make_workload("MM", 0.25, seed=0), config,
                        tmp_path / f"{key}.rptr")
        assert main(["predict", "--apps", "MM", "--schemes", "baseline",
                     "--sms", "2", "--scale", "0.25",
                     "--trace-dir", str(tmp_path)]) == 0
        assert "profiled 1 stream" in capsys.readouterr().out


class TestTraceInfoRdd:
    def test_rdd_report_without_replay(self, tmp_path, capsys):
        path = tmp_path / "mm.rptr"
        assert main(["trace", "record", "MM", "--out", str(path),
                     "--sms", "2", "--scale", "0.25"]) == 0
        capsys.readouterr()
        assert main(["trace", "info", str(path), "--rdd"]) == 0
        out = capsys.readouterr().out
        assert "reuse-distance distribution" in out
        assert "per-instruction RDDs" in out
        assert "RD 1~4" in out

    def test_info_without_rdd_stays_header_only(self, tmp_path, capsys):
        path = tmp_path / "mm.rptr"
        main(["trace", "record", "MM", "--out", str(path),
              "--sms", "2", "--scale", "0.25"])
        capsys.readouterr()
        assert main(["trace", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-instruction RDDs" not in out
