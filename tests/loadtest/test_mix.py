"""Deterministic zipfian mixes: reproducibility and shape."""

from __future__ import annotations

from collections import Counter

from repro.loadtest.mix import MixConfig, build_population, build_schedule
from repro.serve.protocol import parse_job_request


class TestPopulation:
    def test_every_rank_is_a_distinct_content_address(self):
        mix = MixConfig(population=12)
        keys = [parse_job_request(body).units[0].key()
                for body in build_population(mix)]
        assert len(set(keys)) == 12

    def test_bodies_are_valid_submit_payloads(self):
        for body in build_population(MixConfig(population=6)):
            request = parse_job_request(body)
            assert len(request.units) == 1

    def test_population_covers_all_apps_and_schemes(self):
        mix = MixConfig(population=8, apps=("MM", "BFS"),
                        schemes=("baseline", "dlp"))
        bodies = build_population(mix)
        assert {b["app"] for b in bodies} == {"MM", "BFS"}
        assert {b["scheme"] for b in bodies} == {"baseline", "dlp"}

    def test_different_seeds_shift_the_population(self):
        a = build_population(MixConfig(population=4, seed=0))
        b = build_population(MixConfig(population=4, seed=1))
        assert a != b


class TestSchedule:
    def test_same_config_same_schedule(self):
        mix = MixConfig(population=10, seed=3, predict_fraction=0.3)
        assert build_schedule(mix, 200) == build_schedule(mix, 200)

    def test_different_seed_different_schedule(self):
        base = MixConfig(population=10, seed=0)
        other = MixConfig(population=10, seed=1)
        assert build_schedule(base, 200) != build_schedule(other, 200)

    def test_ranks_stay_in_population(self):
        mix = MixConfig(population=7)
        assert all(0 <= rank < 7
                   for rank, _predict in build_schedule(mix, 300))

    def test_zipf_head_is_hotter_than_tail(self):
        mix = MixConfig(population=16, zipf_exponent=1.1)
        counts = Counter(
            rank for rank, _ in build_schedule(mix, 2000))
        assert counts[0] > counts.get(15, 0)
        # the head rank dominates: well above the uniform share
        assert counts[0] > 2000 / 16

    def test_predict_fraction_bounds(self):
        none = build_schedule(
            MixConfig(population=4, predict_fraction=0.0), 100)
        assert not any(predict for _rank, predict in none)
        every = build_schedule(
            MixConfig(population=4, predict_fraction=1.0), 100)
        assert all(predict for _rank, predict in every)

    def test_predict_fraction_is_approximately_honoured(self):
        schedule = build_schedule(
            MixConfig(population=4, predict_fraction=0.25), 2000)
        share = sum(1 for _r, predict in schedule if predict) / 2000
        assert 0.15 < share < 0.35
