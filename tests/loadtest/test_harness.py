"""Loadtest harness: percentiles, SLO gating, one tiny real run."""

from __future__ import annotations

import pytest

from repro.loadtest.harness import (
    LoadTestConfig,
    LoadTestReport,
    SloConfig,
    evaluate_slos,
    percentile,
    run_loadtest,
)
from repro.loadtest.mix import MixConfig


def report_with(**overrides) -> LoadTestReport:
    base = dict(
        clients=10, requests=10, workers=2, completed=10, failed=0,
        failures=[], throttled_responses=0, transport_retries=0,
        wall_s=1.0, throughput_rps=10.0, p50_s=0.1, p95_s=0.2,
        p99_s=0.3, max_s=0.4, coalescing_rate=0.2, store_hit_rate=0.3,
        hot_rate=0.5, predict_answers=0, cells_requeued=0,
        worker_restarts=0, worker_killed=False,
    )
    base.update(overrides)
    return LoadTestReport(**base)


class TestPercentile:
    def test_empty_is_none(self):
        # regression: an empty sample used to report 0.0, which let an
        # all-failed run pass any p99 SLO gate
        assert percentile([], 0.99) is None

    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0


class TestEvaluateSlos:
    def test_clean_report_has_no_violations(self):
        slo = SloConfig(p99_s=1.0, min_coalescing_rate=0.1,
                        max_throttled_rate=0.5)
        assert evaluate_slos(report_with(), slo) == []

    def test_p99_breach(self):
        violations = evaluate_slos(report_with(p99_s=2.0),
                                   SloConfig(p99_s=1.0))
        assert violations and "p99" in violations[0]

    def test_failure_budget_breach(self):
        violations = evaluate_slos(
            report_with(failed=3), SloConfig(max_failures=1))
        assert violations and "failures 3" in violations[0]

    def test_coalescing_floor_breach(self):
        violations = evaluate_slos(
            report_with(coalescing_rate=0.01),
            SloConfig(min_coalescing_rate=0.2))
        assert violations and "coalescing" in violations[0]

    def test_throttle_ceiling_breach(self):
        violations = evaluate_slos(
            report_with(throttled_responses=8),
            SloConfig(max_throttled_rate=0.5))
        assert violations and "429 rate" in violations[0]

    def test_none_slos_gate_nothing(self):
        bad = report_with(p99_s=100.0, coalescing_rate=0.0,
                          throttled_responses=100)
        assert evaluate_slos(bad, SloConfig()) == []

    def test_zero_completion_run_fails_the_gate(self):
        # regression: percentile([]) returned 0.0, so a run where every
        # request failed reported p99 = 0.0 and PASSED a p99 SLO whose
        # failure budget was permissive.  Zero completed requests must
        # be a violation in its own right.
        report = report_with(
            completed=0, failed=0, p50_s=None, p95_s=None,
            p99_s=None, max_s=None, throughput_rps=0.0,
        )
        violations = evaluate_slos(report, SloConfig(p99_s=60.0))
        assert violations and "no requests completed" in violations[0]

    def test_none_p99_does_not_crash_the_p99_gate(self):
        report = report_with(completed=0, p99_s=None)
        violations = evaluate_slos(report, SloConfig(p99_s=1.0))
        assert all("p99" not in v for v in violations)

    def test_empty_percentiles_serialise_as_null(self):
        report = report_with(completed=0, p50_s=None, p95_s=None,
                             p99_s=None, max_s=None)
        lat = report.to_dict()["latency_s"]
        assert lat == {"p50": None, "p95": None, "p99": None,
                       "max": None}


class TestTinyRealRun:
    """One self-hosted run through the whole stack, kept tiny."""

    @pytest.fixture(scope="class")
    def report(self):
        config = LoadTestConfig(
            clients=6,
            mix=MixConfig(population=3, apps=("MM",),
                          schemes=("baseline", "dlp"), scale=0.05),
            slo=SloConfig(p99_s=60.0),
            workers=2,
            ramp_seconds=0.05,
        )
        return run_loadtest(config)

    def test_every_request_completes(self, report):
        assert report.completed == 6
        assert report.failed == 0 and report.failures == []
        assert report.passed and report.violations == []

    def test_duplicates_were_served_hot(self, report):
        # 6 zipfian requests over 3 distinct cells: at least 3
        # duplicates, each coalesced or served from the store
        assert report.cells.get("simulated", 0) <= 3
        assert report.hot_rate > 0

    def test_latency_and_throughput_populated(self, report):
        assert 0 < report.p50_s <= report.p99_s <= report.max_s
        assert report.throughput_rps > 0
        assert report.wall_s > 0

    def test_report_serialises(self, report):
        doc = report.to_dict()
        assert doc["completed"] == 6
        assert doc["passed"] is True
        assert set(doc["latency_s"]) == {"p50", "p95", "p99", "max"}
