"""AsyncServeClient: HTTP parsing, retry/backoff, scripted servers.

The scripted server is a real ``asyncio.start_server`` speaking raw
bytes, so these tests cover the client's actual wire path — framing,
``Connection: close`` handling, dropped connections — without a
simulation service behind it.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Tuple

import pytest

from repro.loadtest.client import AsyncServeClient, LoadClientError
from repro.utils.rng import DeterministicRng


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


def http_bytes(status: int, doc=None, retry_after=None) -> bytes:
    body = json.dumps(doc).encode() if doc is not None else b""
    extra = f"Retry-After: {retry_after}\r\n" if retry_after is not None \
        else ""
    head = (
        f"HTTP/1.1 {status} Whatever\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


class ScriptedServer:
    """Serves a fixed list of canned responses; 'drop' closes early."""

    def __init__(self, script: List):
        self.script = list(script)
        self.connections = 0
        self._server = None

    async def __aenter__(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0)
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        self.connections += 1
        await reader.read(65536)                  # whole request fits
        action = self.script.pop(0) if self.script \
            else http_bytes(200, {"ok": True})
        if action != "drop":
            writer.write(action)
            await writer.drain()
        writer.close()


def split_head(raw: bytes) -> bytes:
    head, _, _body = raw.partition(b"\r\n\r\n")
    return head + b"\r\n\r\n"


class TestParse:
    def test_status_headers_and_retry_after(self):
        status, headers, hint = AsyncServeClient._parse_head(
            split_head(http_bytes(429, {"error": "full"},
                                  retry_after="0.125")))
        assert status == 429
        assert "json" in headers["content-type"]
        assert hint == pytest.approx(0.125)

    def test_json_body_decodes(self):
        doc = AsyncServeClient._decode(
            {"content-type": "application/json"}, b'{"error": "full"}')
        assert doc == {"error": "full"}

    def test_non_json_body_stays_text(self):
        doc = AsyncServeClient._decode(
            {"content-type": "text/plain"}, b"hello")
        assert doc == "hello"

    def test_malformed_status_line_raises_oserror(self):
        with pytest.raises(OSError):
            AsyncServeClient._parse_head(b"garbage\r\n\r\n")
        with pytest.raises(OSError):
            AsyncServeClient._parse_head(b"\r\n\r\n")

    def test_unparseable_retry_after_ignored(self):
        status, _headers, hint = AsyncServeClient._parse_head(
            split_head(http_bytes(429, {}, retry_after="soon")))
        assert status == 429 and hint is None


class TestRetrySchedule:
    def test_429_then_success(self):
        async def body():
            server = ScriptedServer([
                http_bytes(429, {"error": "full"}, retry_after="0.01"),
                http_bytes(200, {"id": "job-1"}),
            ])
            async with server as (host, port):
                client = AsyncServeClient(
                    host, port, retries=3, backoff_base=0.01,
                    backoff_cap=0.02,
                    rng=DeterministicRng("test"))
                status, doc = await client.request("POST", "/jobs", {})
                assert status == 200 and doc == {"id": "job-1"}
                assert client.throttled == 1
                assert server.connections == 2
        run(body())

    def test_dropped_connection_then_success(self):
        async def body():
            server = ScriptedServer(["drop", http_bytes(200, {"ok": 1})])
            async with server as (host, port):
                client = AsyncServeClient(
                    host, port, retries=3, backoff_base=0.01,
                    backoff_cap=0.02, rng=DeterministicRng("test"))
                status, _doc = await client.request("GET", "/healthz")
                assert status == 200
                assert client.transport_errors == 1
        run(body())

    def test_exhausted_transport_retries_raise(self):
        async def body():
            server = ScriptedServer(["drop", "drop", "drop"])
            async with server as (host, port):
                client = AsyncServeClient(
                    host, port, retries=2, backoff_base=0.01,
                    backoff_cap=0.02, rng=DeterministicRng("test"))
                with pytest.raises(LoadClientError):
                    await client.request("GET", "/healthz")
                assert server.connections == 3
        run(body())

    def test_exhausted_429s_surface_final_status(self):
        async def body():
            script = [http_bytes(429, {"error": "full"},
                                 retry_after="0.01")] * 3
            server = ScriptedServer(script)
            async with server as (host, port):
                client = AsyncServeClient(
                    host, port, retries=2, backoff_base=0.01,
                    backoff_cap=0.02, rng=DeterministicRng("test"))
                status, doc = await client.request("POST", "/jobs", {})
                assert status == 429
                assert client.throttled == 3
        run(body())

    def test_semaphore_bounds_connections(self):
        async def body():
            server = ScriptedServer([])
            async with server as (host, port):
                sem = asyncio.Semaphore(2)
                client = AsyncServeClient(host, port, semaphore=sem)
                statuses = await asyncio.gather(*(
                    client.request("GET", "/x") for _ in range(8)))
                assert all(s == 200 for s, _ in statuses)
        run(body())


class TestBackoff:
    def test_retry_after_wins_and_is_capped(self):
        client = AsyncServeClient("h", 1, backoff_cap=0.5,
                                  rng=DeterministicRng("x"))
        assert client._backoff(0, 0.2) == pytest.approx(0.2)
        assert client._backoff(0, 9.0) == pytest.approx(0.5)

    def test_full_jitter_within_ceiling(self):
        client = AsyncServeClient("h", 1, backoff_base=0.2,
                                  backoff_cap=2.0,
                                  rng=DeterministicRng("x"))
        for attempt in range(8):
            ceiling = min(2.0, 0.2 * (2 ** attempt))
            for _ in range(8):
                assert 0.0 <= client._backoff(attempt, None) <= ceiling
