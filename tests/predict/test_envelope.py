"""The committed error envelope: structure, bounds, and recheck.

``tests/golden/predict_envelope.json`` pins the measured accuracy of
the calibrated predictor over the paper's 18-app x 4-policy grid.  The
fast checks here keep the document internally consistent and inside the
advertised bounds; the spot recheck re-measures a 2-app slice against
the exact tier; the full-grid rebuild (minutes) runs only when
``REPRO_ENVELOPE=1`` — CI's predict-smoke job sets it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.runner import harness_config
from repro.predict import ENVELOPE_SCHEMES, build_envelope, default_calibration

ENVELOPE_PATH = Path(__file__).resolve().parents[1] / "golden" / \
    "predict_envelope.json"

# The accuracy contract the predictor must keep meeting.
MEAN_ABS_BOUND = 0.02
MAX_ABS_BOUND = 0.12


@pytest.fixture(scope="module")
def envelope():
    return json.loads(ENVELOPE_PATH.read_text())


class TestStructure:
    def test_grid_shape(self, envelope):
        assert len(envelope["meta"]["apps"]) == 18
        assert tuple(envelope["meta"]["schemes"]) == ENVELOPE_SCHEMES
        assert envelope["overall"]["cells"] == 72
        assert len(envelope["cells"]) == 72
        for scheme in ENVELOPE_SCHEMES:
            assert envelope["summary"][scheme]["cells"] == 18

    def test_every_cell_is_well_formed(self, envelope):
        for cell in envelope["cells"]:
            assert cell["app"] in envelope["meta"]["apps"]
            assert cell["scheme"] in ENVELOPE_SCHEMES
            assert 0.0 <= cell["exact_miss_rate"] <= 1.0
            assert 0.0 <= cell["predicted_miss_rate"] <= 1.0
            assert cell["abs_err"] == pytest.approx(
                abs(cell["predicted_miss_rate"] - cell["exact_miss_rate"]),
                abs=2e-6)

    def test_summaries_derive_from_cells(self, envelope):
        errs = [c["abs_err"] for c in envelope["cells"]]
        assert envelope["overall"]["mean_abs_err"] == pytest.approx(
            sum(errs) / len(errs), abs=1e-6)
        assert envelope["overall"]["max_abs_err"] == pytest.approx(
            max(errs), abs=1e-6)
        for scheme, summary in envelope["summary"].items():
            scheme_errs = [c["abs_err"] for c in envelope["cells"]
                           if c["scheme"] == scheme]
            assert summary["mean_abs_err"] == pytest.approx(
                sum(scheme_errs) / len(scheme_errs), abs=1e-6)
            assert summary["max_abs_err"] == pytest.approx(
                max(scheme_errs), abs=1e-6)


class TestBounds:
    def test_overall_error_is_inside_the_contract(self, envelope):
        assert envelope["overall"]["mean_abs_err"] <= MEAN_ABS_BOUND
        assert envelope["overall"]["max_abs_err"] <= MAX_ABS_BOUND

    def test_error_bars_shipped_with_calibration_match(self, envelope):
        cal = default_calibration()
        for scheme in ENVELOPE_SCHEMES:
            sc = cal.for_scheme(scheme)
            committed = envelope["summary"][scheme]
            # the calibration's advertised bars were fit on the same
            # grid — a drifted model shows up as disagreement here
            assert sc.mean_abs_err == pytest.approx(
                committed["mean_abs_err"], abs=5e-3)
            assert sc.max_abs_err == pytest.approx(
                committed["max_abs_err"], abs=2e-2)


class TestRecheck:
    def test_spot_recheck_against_the_exact_tier(self, envelope):
        """Re-measure a 2-app slice and compare to the committed cells."""
        apps = ["MM", "KM"]
        doc = build_envelope(default_calibration(), apps=apps,
                             config=harness_config(2), scale=0.25)
        committed = {(c["app"], c["scheme"]): c for c in envelope["cells"]}
        for cell in doc["cells"]:
            pinned = committed[(cell["app"], cell["scheme"])]
            assert cell["predicted_miss_rate"] == pytest.approx(
                pinned["predicted_miss_rate"], abs=1e-5)
            assert cell["exact_miss_rate"] == pytest.approx(
                pinned["exact_miss_rate"], abs=1e-5)
            bound = envelope["summary"][cell["scheme"]]["max_abs_err"]
            assert cell["abs_err"] <= bound + 0.005

    @pytest.mark.skipif(os.environ.get("REPRO_ENVELOPE") != "1",
                        reason="full-grid rebuild; set REPRO_ENVELOPE=1")
    def test_full_grid_rebuild_matches_committed(self, envelope):
        doc = build_envelope(default_calibration(),
                             config=harness_config(2), scale=0.25)
        committed = {(c["app"], c["scheme"]): c for c in envelope["cells"]}
        assert len(doc["cells"]) == len(committed)
        for cell in doc["cells"]:
            pinned = committed[(cell["app"], cell["scheme"])]
            assert cell["predicted_miss_rate"] == pytest.approx(
                pinned["predicted_miss_rate"], abs=1e-5)
            assert cell["exact_miss_rate"] == pytest.approx(
                pinned["exact_miss_rate"], abs=1e-5)
        assert doc["overall"]["mean_abs_err"] == pytest.approx(
            envelope["overall"]["mean_abs_err"], abs=1e-4)
        assert doc["overall"]["max_abs_err"] == pytest.approx(
            envelope["overall"]["max_abs_err"], abs=1e-4)
