"""PredictSweepExecutor: profile caching, trace source, sweep stats."""

from __future__ import annotations

import pytest

from repro.experiments.runner import harness_config
from repro.experiments.store import trace_key
from repro.predict import PredictSweepExecutor


class TestSweep:
    def test_sweep_profiles_each_stream_once(self):
        executor = PredictSweepExecutor(calibration=None)
        grid = executor.run_sweep(["MM", "BFS"],
                                  ["baseline", "dlp", "64kb"],
                                  num_sms=2, scale=0.25)
        assert set(grid) == {"MM", "BFS"}
        assert all(set(row) == {"baseline", "dlp", "64kb"}
                   for row in grid.values())
        assert executor.stats.profiled == 2
        assert executor.stats.profile_hits == 4   # 2 extra schemes per app
        assert executor.stats.predicted == 6

    def test_answers_are_flagged_analytical(self):
        executor = PredictSweepExecutor(calibration=None)
        prediction = executor.run_cell("MM", "baseline",
                                       num_sms=2, scale=0.25)
        doc = prediction.to_dict()
        assert doc["tier"] == "analytical"
        assert doc["scheme"] == "baseline"

    def test_repeated_cell_hits_the_prediction_memo(self):
        executor = PredictSweepExecutor(calibration=None)
        a = executor.run_cell("KM", "dlp", num_sms=2, scale=0.25)
        b = executor.run_cell("KM", "dlp", num_sms=2, scale=0.25)
        assert executor.stats.profiled == 1
        assert executor.stats.predicted == 1       # model evaluated once
        assert executor.stats.prediction_hits == 1
        assert a.miss_rate == pytest.approx(b.miss_rate)
        assert a is not b        # memo hands out copies, never aliases

    def test_policy_kwargs_split_the_memo(self):
        executor = PredictSweepExecutor(calibration=None)
        a = executor.run_cell("KM", "dlp", num_sms=2, scale=0.25)
        b = executor.run_cell("KM", "dlp", num_sms=2, scale=0.25, pd_bits=5)
        assert executor.stats.predicted == 2
        assert executor.stats.prediction_hits == 0
        assert a.scheme == b.scheme == "dlp"


class TestTraceSource:
    def test_recorded_trace_predicts_identically_to_capture(self, tmp_path):
        from repro.trace.record import record_workload
        from repro.workloads import make_workload

        config = harness_config(2)
        key = trace_key("MM", config, scale=0.25, seed=0)
        record_workload(make_workload("MM", 0.25, seed=0), config,
                        tmp_path / f"{key}.rptr")

        from_trace = PredictSweepExecutor(config=config, calibration=None,
                                          trace_dir=tmp_path)
        from_capture = PredictSweepExecutor(config=config, calibration=None)
        for scheme in ("baseline", "dlp", "global_protection"):
            a = from_trace.run_cell("MM", scheme, num_sms=2, scale=0.25)
            b = from_capture.run_cell("MM", scheme, num_sms=2, scale=0.25)
            assert a.miss_rate == pytest.approx(b.miss_rate, abs=1e-12)
            assert a.hits == pytest.approx(b.hits, abs=1e-9)
        assert from_trace.stats.profiled == 1

    def test_missing_trace_falls_back_to_capture(self, tmp_path):
        executor = PredictSweepExecutor(calibration=None, trace_dir=tmp_path)
        prediction = executor.run_cell("BFS", "baseline",
                                       num_sms=2, scale=0.25)
        assert 0.0 <= prediction.miss_rate <= 1.0
        assert executor.stats.profiled == 1
