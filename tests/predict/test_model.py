"""Analytical model invariants: one profile, every scheme and geometry."""

from __future__ import annotations

import pytest

from repro.experiments.runner import harness_config
from repro.predict import (
    PREDICTABLE_SCHEMES,
    PredictionError,
    predict,
    profile_workload,
)

CONFIG = harness_config(2)


@pytest.fixture(scope="module")
def profile():
    return profile_workload("BFS", CONFIG, scale=0.25)


class TestContract:
    def test_every_scheme_predicts(self, profile):
        for scheme in PREDICTABLE_SCHEMES:
            p = predict(profile, scheme, CONFIG, calibration=None)
            assert p.scheme == scheme
            assert 0.0 <= p.miss_rate <= 1.0
            assert 0.0 <= p.hit_rate <= 1.0
            assert p.reads == profile.reads
            assert p.hits >= 0 and p.misses >= 0 and p.bypasses >= 0

    def test_unknown_scheme_rejected(self, profile):
        with pytest.raises(PredictionError):
            predict(profile, "fifo", CONFIG)

    def test_policy_kwargs_rejected_for_lru_schemes(self, profile):
        with pytest.raises(PredictionError):
            predict(profile, "baseline", CONFIG, calibration=None, nasc=2)

    def test_policy_kwargs_accepted_for_protected_schemes(self, profile):
        base = predict(profile, "dlp", CONFIG, calibration=None)
        wide = predict(profile, "dlp", CONFIG, calibration=None, pd_bits=5)
        assert 0.0 <= wide.miss_rate <= 1.0
        assert base.scheme == wide.scheme == "dlp"

    def test_geometry_mismatch_rejected(self, profile):
        import dataclasses

        other = dataclasses.replace(profile, num_sets=profile.num_sets * 2)
        with pytest.raises(PredictionError):
            predict(other, "baseline", CONFIG, calibration=None)

    def test_to_dict_is_flagged_analytical(self, profile):
        doc = predict(profile, "baseline", CONFIG, calibration=None).to_dict()
        assert doc["tier"] == "analytical"
        assert doc["calibrated"] is False
        assert "error" not in doc      # raw model carries no error bars


class TestStackModel:
    def test_hits_grow_monotonically_with_capacity(self, profile):
        hits = {
            kb: predict(profile, kb, CONFIG, calibration=None).hits
            for kb in ("32kb", "64kb")
        }
        base = predict(profile, "baseline", CONFIG, calibration=None).hits
        # Mattson inclusion: a bigger stack window can only gain reuses
        assert base <= hits["32kb"] <= hits["64kb"]

    def test_stall_bypass_equals_baseline_functionally(self, profile):
        a = predict(profile, "baseline", CONFIG, calibration=None)
        b = predict(profile, "stall_bypass", CONFIG, calibration=None)
        assert a.miss_rate == pytest.approx(b.miss_rate)

    def test_accounting_closes(self, profile):
        p = predict(profile, "baseline", CONFIG, calibration=None)
        # reads split into hits + misses; LRU tier never bypasses
        assert p.bypasses == 0
        assert p.hits + p.misses == pytest.approx(p.reads)
        assert sum(p.hit_buckets) == pytest.approx(1.0) or p.hits == 0


class TestCalibrationPlumbing:
    def test_calibrated_prediction_carries_error_bars(self, profile):
        from repro.predict import default_calibration

        p = predict(profile, "dlp", CONFIG,
                    calibration=default_calibration())
        assert p.calibrated
        assert p.error is not None
        assert p.error["mean_abs"] > 0
        assert p.error["max_abs"] >= p.error["mean_abs"]
        assert p.ipc is not None and p.ipc > 0

    def test_calibration_preserves_serviced_accounting(self, profile):
        from repro.predict import default_calibration

        p = predict(profile, "dlp", CONFIG,
                    calibration=default_calibration())
        serviced = p.reads - p.bypasses
        assert p.misses == pytest.approx(serviced * p.miss_rate, rel=1e-6)
        assert p.hits == pytest.approx(serviced - p.misses, rel=1e-6)
