"""Calibration: serialization, application, and small-grid fitting."""

from __future__ import annotations

import pytest

from repro.experiments.runner import harness_config
from repro.predict import (
    ENVELOPE_SCHEMES,
    Calibration,
    build_envelope,
    default_calibration,
    fit_calibration,
    predict,
    profile_workload,
)

CONFIG = harness_config(2)


class TestShippedTable:
    def test_default_calibration_covers_the_paper_grid(self):
        cal = default_calibration()
        assert cal is not None
        for scheme in ENVELOPE_SCHEMES:
            sc = cal.for_scheme(scheme)
            assert sc is not None
            assert sc.cells >= 2
            assert sc.max_abs_err >= sc.mean_abs_err >= 0.0

    def test_default_calibration_is_cached(self):
        assert default_calibration() is default_calibration()


class TestSerialization:
    def test_round_trip_through_dict(self):
        cal = default_calibration()
        clone = Calibration.from_dict(cal.to_dict())
        assert clone.to_dict() == cal.to_dict()

    def test_save_load_round_trip(self, tmp_path):
        cal = default_calibration()
        path = tmp_path / "cal.json"
        cal.save(path)
        assert Calibration.load(path).to_dict() == cal.to_dict()


class TestApply:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_workload("KM", CONFIG, scale=0.25)

    def test_apply_corrects_and_attaches_error_bars(self, profile):
        cal = default_calibration()
        raw = predict(profile, "dlp", CONFIG, calibration=None)
        calibrated = predict(profile, "dlp", CONFIG, calibration=cal)
        sc = cal.for_scheme("dlp")
        assert calibrated.calibrated and not raw.calibrated
        assert calibrated.miss_rate == pytest.approx(
            sc.correct(raw.miss_rate))
        assert calibrated.error["mean_abs"] == sc.mean_abs_err
        assert calibrated.error["max_abs"] == sc.max_abs_err

    def test_apply_keeps_counts_consistent(self, profile):
        p = predict(profile, "global_protection", CONFIG,
                    calibration=default_calibration())
        serviced = p.reads - p.bypasses
        assert p.hits + p.misses == pytest.approx(serviced)
        assert p.misses == pytest.approx(serviced * p.miss_rate, rel=1e-9)

    def test_apply_without_scheme_entry_is_identity(self, profile):
        empty = Calibration()
        raw = predict(profile, "baseline", CONFIG, calibration=None)
        untouched = predict(profile, "baseline", CONFIG, calibration=empty)
        assert untouched.miss_rate == pytest.approx(raw.miss_rate)
        assert not untouched.calibrated


class TestFit:
    @pytest.fixture(scope="class")
    def small_fit(self):
        return fit_calibration(apps=["MM", "BFS", "KM"],
                               schemes=("baseline", "dlp"),
                               fit_ipc=False, scale=0.25)

    def test_fit_produces_per_scheme_envelopes(self, small_fit):
        assert set(small_fit.schemes) == {"baseline", "dlp"}
        for sc in small_fit.schemes.values():
            assert sc.cells == 3
            assert 0.0 <= sc.mean_abs_err <= sc.max_abs_err < 0.5
        assert small_fit.meta["exact_tier"] == "fast-engine functional replay"

    def test_fitted_table_round_trips(self, small_fit):
        clone = Calibration.from_dict(small_fit.to_dict())
        assert clone.to_dict() == small_fit.to_dict()

    def test_build_envelope_over_the_small_grid(self, small_fit):
        doc = build_envelope(small_fit, apps=["MM", "BFS", "KM"],
                             schemes=("baseline", "dlp"), scale=0.25)
        assert doc["overall"]["cells"] == 6
        assert len(doc["cells"]) == 6
        for cell in doc["cells"]:
            assert 0.0 <= cell["exact_miss_rate"] <= 1.0
            assert 0.0 <= cell["predicted_miss_rate"] <= 1.0
            assert cell["abs_err"] == pytest.approx(
                abs(cell["predicted_miss_rate"] - cell["exact_miss_rate"]),
                abs=2e-6)
        assert doc["summary"]["baseline"]["cells"] == 3
        assert doc["overall"]["max_abs_err"] >= doc["overall"]["mean_abs_err"]
