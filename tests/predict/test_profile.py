"""PredictProfiler: stack/counter distances, writes, epochs, JSON."""

from __future__ import annotations

import pytest

from repro.experiments.runner import harness_config
from repro.predict import (
    NUM_EPOCHS,
    PredictProfile,
    PredictProfiler,
    profile_records,
    profile_trace,
    profile_workload,
)
from repro.predict.profile import RD_CAP, SD_CAP, TAIL


def colliding_blocks(geometry, n, start=0):
    """``n`` distinct block addresses that map to set_index(start)."""
    target = geometry.set_index(start)
    out = [start]
    block = start
    while len(out) < n:
        block += 1
        if geometry.set_index(block) == target:
            out.append(block)
    return out


@pytest.fixture
def profiler():
    return PredictProfiler(harness_config(1))


class TestDistances:
    def test_first_touch_is_compulsory(self, profiler):
        profiler.observe(0, 0, 0x10, False)
        epoch = profiler.profile.epochs[0]
        assert epoch.compulsory == 1
        assert epoch.reads == 1 and epoch.accesses == 1
        assert not epoch.joint

    def test_reuse_records_stack_and_counter_distance(self, profiler):
        a, b = colliding_blocks(profiler.geometry, 2)
        profiler.observe(0, a, 0x10, False)
        profiler.observe(0, b, 0x20, False)
        profiler.observe(0, a, 0x30, False)
        epoch = profiler.profile.epochs[0]
        # one reuse, attributed to the *previous* toucher of block a,
        # at stack position 1 (b is above it) and counter distance 2
        [(insn, pairs)] = epoch.joint.items()
        assert pairs == {(1, 2): 1}
        assert epoch.compulsory == 2

    def test_intervening_write_to_other_block_still_counts_rd(self, profiler):
        a, b = colliding_blocks(profiler.geometry, 2)
        profiler.observe(0, a, 0x10, False)
        profiler.observe(0, b, 0x20, True)    # store runs the set query
        profiler.observe(0, a, 0x30, False)
        epoch = profiler.profile.epochs[0]
        [(_, pairs)] = epoch.joint.items()
        # write removed b from the stack, so a is still MRU (sd=0),
        # but the counter distance includes the write (rd=2)
        assert pairs == {(0, 2): 1}

    def test_write_to_same_block_makes_reuse_write_evicted(self, profiler):
        profiler.observe(0, 0, 0x10, False)
        profiler.observe(0, 0, 0x20, True)
        profiler.observe(0, 0, 0x30, False)
        epoch = profiler.profile.epochs[0]
        assert epoch.write_evicted == 1
        assert not epoch.joint            # never a protectable reuse
        assert profiler.profile.write_evicted  # attributed per insn

    def test_distances_cap_to_tail(self, profiler):
        blocks = colliding_blocks(profiler.geometry, SD_CAP + 2)
        for block in blocks:
            profiler.observe(0, block, 0x10, False)
        profiler.observe(0, blocks[0], 0x10, False)
        epoch = profiler.profile.epochs[0]
        [(_, pairs)] = epoch.joint.items()
        [(sd, rd)] = pairs.keys()
        assert sd == TAIL and rd == TAIL
        assert RD_CAP < SD_CAP + 1  # rd exceeded its (smaller) cap too

    def test_per_sm_state_is_independent(self, profiler):
        profiler.observe(0, 0, 0x10, False)
        profiler.observe(1, 0, 0x10, False)
        epoch = profiler.profile.epochs[0]
        assert epoch.compulsory == 2     # each SM's L1D sees a cold miss


class TestEpochs:
    def test_expected_hint_spreads_stream_over_epochs(self):
        config = harness_config(1)
        profiler = PredictProfiler(config, expected_per_sm={0: NUM_EPOCHS})
        for i in range(NUM_EPOCHS):
            profiler.observe(0, i * 7919, 0x10, False)
        assert len(profiler.profile.epochs) == NUM_EPOCHS
        assert all(e.accesses == 1 for e in profiler.profile.epochs)

    def test_without_hint_everything_lands_in_one_epoch(self, profiler):
        for i in range(10):
            profiler.observe(0, i, 0x10, False)
        assert len(profiler.profile.epochs) == 1


class TestSerialization:
    def test_profile_round_trips_through_json_dict(self):
        profile = profile_workload("MM", harness_config(2), scale=0.25)
        clone = PredictProfile.from_dict(profile.to_dict())
        assert clone.to_dict() == profile.to_dict()
        assert clone.accesses == profile.accesses
        assert clone.reads == profile.reads
        assert clone.compulsory == profile.compulsory
        assert clone.insns == profile.insns
        assert clone.rdd.counts == profile.rdd.counts
        assert {i: h.counts for i, h in clone.insn_rdd.items()} == \
            {i: h.counts for i, h in profile.insn_rdd.items()}

    def test_merged_preserves_totals(self):
        profile = profile_workload("BFS", harness_config(2), scale=0.25)
        flat = profile.merged()
        assert flat.accesses == profile.accesses
        assert flat.reads == profile.reads
        assert flat.writes == profile.writes
        assert flat.compulsory == profile.compulsory
        assert sum(sum(p.values()) for p in flat.joint.values()) == sum(
            sum(p.values())
            for e in profile.epochs for p in e.joint.values()
        )


class TestSources:
    def test_trace_profile_matches_live_capture(self, tmp_path):
        from repro.trace.format import TraceReader
        from repro.trace.record import capture_records, record_workload
        from repro.workloads import make_workload

        config = harness_config(2)
        workload = make_workload("MM", 0.25, seed=0)
        live = profile_records(capture_records(workload, config), config)

        path = tmp_path / "mm.rptr"
        record_workload(make_workload("MM", 0.25, seed=0), config, path)
        traced = profile_trace(TraceReader(path), config)

        # the same stream must profile identically either way
        assert traced.epochs == live.epochs or \
            [e.to_dict() for e in traced.epochs] == \
            [e.to_dict() for e in live.epochs]
        assert traced.rdd.counts == live.rdd.counts

    def test_trace_line_size_mismatch_rejected(self, tmp_path):
        from repro.trace.format import TraceFormatError, TraceReader
        from repro.trace.record import record_workload
        from repro.workloads import make_workload

        config = harness_config(1)
        path = tmp_path / "mm.rptr"
        record_workload(make_workload("MM", 0.25, seed=0), config, path)
        bad = config.with_l1d(line_size=64)
        with pytest.raises(TraceFormatError):
            profile_trace(TraceReader(path), bad)
