"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (["list"], ["run", "SS"], ["compare", "SS"],
                     ["figure", "fig2"], ["profile", "SS"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_policy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "SS", "--policy", "magic"])

    def test_figure_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Histogram" in out and "STR" in out

    def test_figure_static(self, capsys):
        assert main(["figure", "overhead"]) == 0
        assert "7.48%" in capsys.readouterr().out

    def test_figure_fig2(self, capsys):
        assert main(["figure", "fig2"]) == 0
        assert "Addr 0" in capsys.readouterr().out

    def test_run_small(self, capsys):
        assert main(["run", "gemm", "--sms", "2", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out and "ipc" in out

    def test_run_unknown_app_errors(self, capsys):
        assert main(["run", "NOPE"]) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_small(self, capsys):
        assert main(["profile", "SC", "--sms", "2"]) == 0
        out = capsys.readouterr().out
        assert "RD 1~4" in out
        assert "per-instruction" in out
