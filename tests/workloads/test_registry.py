"""Workload registry = Table 2."""

import pytest

from repro.workloads import ALL_APPS, CI_APPS, CS_APPS, WORKLOADS, make_workload, table2_rows


class TestTable2:
    def test_eighteen_applications(self):
        assert len(ALL_APPS) == 18

    def test_nine_cs_nine_ci(self):
        assert len(CS_APPS) == 9
        assert len(CI_APPS) == 9

    def test_paper_ordering(self):
        assert ALL_APPS == [
            "HG", "HS", "STEN", "SC", "BP", "SRAD", "NW", "GEMM", "BT",
            "CFD", "PVR", "SS", "BFS", "MM", "SRK", "SR2K", "KM", "STR",
        ]

    def test_cs_block_precedes_ci_block(self):
        assert ALL_APPS[:9] == CS_APPS
        assert ALL_APPS[9:] == CI_APPS

    def test_suites_match_table2(self):
        suites = {a: cls.meta.suite for a, cls in WORKLOADS.items()}
        assert suites["HG"] == "CUDA Samples"
        assert suites["STEN"] == "Parboil"
        assert suites["PVR"] == "Mars"
        assert suites["GEMM"] == "Polybench"
        assert suites["BFS"] == "Rodinia"

    def test_paper_inputs_recorded(self):
        assert WORKLOADS["HG"].meta.paper_input == "67108864"
        assert WORKLOADS["KM"].meta.paper_input == "204800"

    def test_table2_rows_shape(self):
        rows = table2_rows()
        assert len(rows) == 18
        assert all(len(r) == 6 for r in rows)


class TestFactory:
    def test_case_insensitive(self):
        assert make_workload("bfs").meta.abbr == "BFS"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("DOOM")

    def test_scale_forwarded(self):
        assert make_workload("KM", scale=0.5).scale == 0.5

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            make_workload("KM", scale=0)
