"""Workload base-class utilities."""

import numpy as np
import pytest

from repro.workloads.base import AddressMap, Workload


class TestAddressMap:
    def test_regions_disjoint(self):
        amap = AddressMap()
        a = amap.region("a", 1 << 16)
        b = amap.region("b", 1 << 16)
        assert b >= a + (1 << 16)

    def test_same_name_same_base(self):
        amap = AddressMap()
        assert amap.region("x", 100) == amap.region("x", 100)

    def test_regrow_rejected(self):
        amap = AddressMap()
        amap.region("x", 100)
        with pytest.raises(ValueError):
            amap.region("x", 200)

    def test_regions_listing(self):
        amap = AddressMap()
        amap.region("x", 64)
        assert "x" in amap.regions()


class TestAddressHelpers:
    def test_coalesced_is_consecutive_words(self):
        addrs = Workload.coalesced(1000)
        assert addrs.tolist() == [1000 + 4 * i for i in range(32)]

    def test_coalesced_custom_element(self):
        addrs = Workload.coalesced(0, elem_bytes=1)
        assert addrs.tolist() == list(range(32))

    def test_broadcast_single_address(self):
        addrs = Workload.broadcast(4096)
        assert len(addrs) == 32
        assert np.unique(addrs).tolist() == [4096]

    def test_strided(self):
        addrs = Workload.strided(0, 256, count=4)
        assert addrs.tolist() == [0, 256, 512, 768]
