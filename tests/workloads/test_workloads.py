"""Cross-cutting checks over all 18 workload models.

These pin the properties the experiments rely on: trace determinism,
classification by memory-access ratio (Fig. 6 / Table 2), address-region
hygiene and scale behaviour.
"""

import numpy as np
import pytest

from repro.gpu.isa import ComputeOp, MemOp
from repro.workloads import ALL_APPS, make_workload

# static_stats over all traces is the expensive part; compute once per app
_STATS_CACHE = {}


def stats_for(abbr):
    if abbr not in _STATS_CACHE:
        _STATS_CACHE[abbr] = make_workload(abbr).static_stats()
    return _STATS_CACHE[abbr]


@pytest.mark.parametrize("abbr", ALL_APPS)
class TestEveryWorkload:
    def test_builds_kernels(self, abbr):
        kernels = make_workload(abbr).kernels()
        assert kernels
        assert all(k.total_warps > 0 for k in kernels)

    def test_first_trace_is_well_formed(self, abbr):
        wl = make_workload(abbr)
        kernel = wl.kernels()[0]
        ops = list(kernel.warp_trace(0, 0))
        assert ops, f"{abbr}: empty warp trace"
        for op in ops:
            assert isinstance(op, (ComputeOp, MemOp))
            if isinstance(op, MemOp):
                assert len(op.addrs) >= 1
                assert min(op.addrs) >= 0

    def test_traces_are_deterministic(self, abbr):
        def fingerprint():
            wl = make_workload(abbr)
            kernel = wl.kernels()[0]
            total = 0
            for op in kernel.warp_trace(0, 0):
                if isinstance(op, MemOp):
                    total += int(np.sum(np.asarray(op.addrs, dtype=np.int64)))
                else:
                    total += op.count
            return total

        assert fingerprint() == fingerprint()

    def test_classification_matches_table2(self, abbr):
        wl = make_workload(abbr)
        ratio = stats_for(abbr)["mem_access_ratio"]
        if wl.meta.paper_type == "CS":
            assert ratio < 0.01, f"{abbr}: CS app with ratio {ratio:.3%}"
        else:
            assert ratio >= 0.01, f"{abbr}: CI app with ratio {ratio:.3%}"

    def test_uses_multiple_static_instructions(self, abbr):
        assert stats_for(abbr)["distinct_pcs"] >= 2

    def test_meta_complete(self, abbr):
        meta = make_workload(abbr).meta
        assert meta.abbr == abbr
        assert meta.paper_type in ("CS", "CI")
        assert meta.suite
        assert meta.paper_input
        assert meta.scaled_input


class TestScaling:
    def test_scale_changes_work_volume(self):
        small = make_workload("SS", scale=0.25).static_stats()["mem_ops"]
        full = make_workload("SS", scale=1.0).static_stats()["mem_ops"]
        assert small < full

    def test_distinct_workloads_use_distinct_regions(self):
        # PC constants must not collide across workloads (each module
        # owns a PC block)
        pcs = {}
        for abbr in ALL_APPS:
            wl = make_workload(abbr)
            kernel = wl.kernels()[0]
            for op in kernel.warp_trace(0, 0):
                if isinstance(op, MemOp):
                    owner = pcs.setdefault(op.pc, abbr)
                    assert owner == abbr, f"PC {op.pc:#x} shared by {owner} and {abbr}"


class TestBfsGraph:
    def test_frontiers_cover_levels(self):
        wl = make_workload("BFS")
        wl.kernels()
        assert len(wl.frontiers) >= 3
        assert wl.frontiers[0].tolist() == [0]
        # frontier sizes grow then shrink (or terminate)
        sizes = [f.size for f in wl.frontiers]
        assert max(sizes) > 1

    def test_csr_is_consistent(self):
        wl = make_workload("BFS")
        wl.kernels()
        assert wl.row_offsets[-1] == wl.edges.size
        assert wl.edges.min() >= 0
        assert wl.edges.max() < wl.num_nodes

    def test_one_kernel_per_level(self):
        wl = make_workload("BFS")
        assert len(wl.kernels()) == len(wl.frontiers)
