"""Per-workload structure tests: each model's documented access pattern.

Every workload docstring makes claims about its memory structure (which
PCs stream, which re-reference, what footprints).  These tests pin those
claims at the trace level so a refactor can't silently change the
reuse behaviour the figures depend on.
"""

import numpy as np
import pytest

from repro.gpu.coalescer import coalesce
from repro.gpu.isa import ComputeOp, MemOp
from repro.workloads import make_workload

LINE = 128


def mem_ops(workload, kernel_idx=0, cta=0, warp=0):
    kernel = workload.kernels()[kernel_idx]
    return [op for op in kernel.warp_trace(cta, warp) if isinstance(op, MemOp)]


def blocks_by_pc(ops):
    out = {}
    for op in ops:
        out.setdefault(op.pc, []).extend(coalesce(op.addrs, LINE))
    return out


def reuse_factor(blocks):
    """Accesses per distinct line: 1.0 = pure stream."""
    return len(blocks) / len(set(blocks))


class TestHistogram:
    def test_input_is_pure_stream(self):
        per_pc = blocks_by_pc(mem_ops(make_workload("HG")))
        input_blocks = per_pc[0x100]
        assert reuse_factor(input_blocks) == 1.0

    def test_bins_are_warp_private(self):
        wl = make_workload("HG")
        bins0 = set(blocks_by_pc(mem_ops(wl, warp=0))[0x108])
        bins1 = set(blocks_by_pc(mem_ops(wl, warp=1))[0x108])
        assert not bins0 & bins1


class TestHotspot:
    def test_pass2_rereads_pass1_lines(self):
        per_pc = blocks_by_pc(mem_ops(make_workload("HS")))
        first = set(per_pc[0x200])          # pass-1 temperature loads
        reread = set(per_pc[0x210])         # pass-2 border reloads
        assert reread <= first


class TestStencil3D:
    def test_update_sweep_rereads_front_sweep(self):
        per_pc = blocks_by_pc(mem_ops(make_workload("STEN")))
        assert set(per_pc[0x308]) == set(per_pc[0x300])


class TestConvolution:
    def test_apron_lines_rereferenced_next_tile(self):
        ops = mem_ops(make_workload("SC"))
        apron = [coalesce(o.addrs, LINE)[0] for o in ops if o.pc == 0x408]
        mains = [coalesce(o.addrs, LINE)[0] for o in ops if o.pc == 0x400]
        # every apron line is the next tile's main line
        assert set(apron) <= set(mains)


class TestBackprop:
    def test_input_vector_shared_across_warps(self):
        wl = make_workload("BP")
        in0 = set(blocks_by_pc(mem_ops(wl, warp=0))[0x500])
        in1 = set(blocks_by_pc(mem_ops(wl, warp=3))[0x500])
        assert in0 & in1

    def test_weights_are_private_streams(self):
        wl = make_workload("BP")
        w0 = blocks_by_pc(mem_ops(wl, warp=0))[0x508]
        w1 = blocks_by_pc(mem_ops(wl, warp=1))[0x508]
        assert reuse_factor(w0) == 1.0
        assert not set(w0) & set(w1)


class TestBTree:
    def test_root_is_hottest(self):
        per_pc = blocks_by_pc(mem_ops(make_workload("BT")))
        assert len(set(per_pc[0x908])) == 1          # single root line
        assert len(set(per_pc[0x918])) > 20          # leaves scatter

    def test_levels_have_increasing_footprints(self):
        per_pc = blocks_by_pc(mem_ops(make_workload("BT")))
        root = len(set(per_pc[0x908]))
        internal = len(set(per_pc[0x910]))
        leaf = len(set(per_pc[0x918]))
        assert root <= internal <= leaf


class TestCfd:
    def test_own_block_rereferenced_across_passes(self):
        wl = make_workload("CFD")
        first = blocks_by_pc(mem_ops(wl, kernel_idx=0))[0xA00]
        assert reuse_factor(first) > 1.0  # two steps re-read the block

    def test_neighbour_gather_touches_other_blocks(self):
        wl = make_workload("CFD")
        per_pc = blocks_by_pc(mem_ops(wl, kernel_idx=0, warp=0))
        own = set(per_pc[0xA00]) | set(per_pc[0xA10]) | set(per_pc[0xA18])
        nbr = set(per_pc[0xA18]) if 0xA18 in per_pc else set()
        # neighbour loads exist and reach beyond the warp's own lines
        assert 0xA18 in per_pc
        assert nbr - set(per_pc[0xA00])


class TestSimilarityScore:
    def test_own_vector_hot_partner_cyclic(self):
        per_pc = blocks_by_pc(mem_ops(make_workload("SS")))
        own = per_pc[0xC00]
        partners = per_pc[0xC08]
        assert reuse_factor(own) > 10           # re-read every pair
        assert len(set(partners)) > len(set(own))  # sweep covers the corpus


class TestBfs:
    def test_edges_read_once_per_node(self):
        wl = make_workload("BFS")
        # use a later level where frontiers are populated
        ops = mem_ops(wl, kernel_idx=3, cta=2, warp=0) or mem_ops(
            wl, kernel_idx=3, cta=4, warp=0
        )
        if not ops:
            pytest.skip("chunk empty at this level")
        per_pc = blocks_by_pc(ops)
        if 0xD18 in per_pc:
            assert reuse_factor(per_pc[0xD18]) <= 2.0

    def test_level_kernels_shrink_then_grow(self):
        wl = make_workload("BFS")
        wl.kernels()  # builds the graph and frontiers
        sizes = [f.size for f in wl.frontiers]
        assert sizes[0] == 1
        assert max(sizes) > 100


class TestMatMul:
    def test_a_broadcasts_b_coalesced(self):
        ops = mem_ops(make_workload("MM"))
        a_ops = [o for o in ops if o.pc == 0xE00]
        b_ops = [o for o in ops if o.pc == 0xE08]
        assert all(len(coalesce(o.addrs, LINE)) == 1 for o in a_ops)
        assert all(len(coalesce(o.addrs, LINE)) == 1 for o in b_ops)
        # B sweeps n distinct rows; A touches only ~n/32 lines
        per_pc = blocks_by_pc(ops)
        assert len(set(per_pc[0xE08])) > 8 * len(set(per_pc[0xE00]))


class TestSyrkFamily:
    def test_syrk_own_row_loaded_once(self):
        per_pc = blocks_by_pc(mem_ops(make_workload("SRK")))
        assert reuse_factor(per_pc[0xF00]) == 1.0   # hoisted to registers

    def test_syrk_sweep_covers_all_rows(self):
        wl = make_workload("SRK")
        per_pc = blocks_by_pc(mem_ops(wl))
        assert len(set(per_pc[0xF08])) == wl.rows * wl.row_lines

    def test_syr2k_sweeps_both_matrices(self):
        per_pc = blocks_by_pc(mem_ops(make_workload("SR2K")))
        a_sweep = set(per_pc[0x1018])
        b_sweep = set(per_pc[0x1008])
        assert a_sweep and b_sweep and not a_sweep & b_sweep


class TestKmeans:
    def test_features_rereferenced_per_chunk(self):
        wl = make_workload("KM")
        per_pc = blocks_by_pc(mem_ops(wl))
        assert reuse_factor(per_pc[0x1100]) == pytest.approx(
            wl.centroid_chunks, rel=0.01
        )

    def test_centroids_shared_across_warps(self):
        wl = make_workload("KM")
        c0 = set(blocks_by_pc(mem_ops(wl, warp=0))[0x1108])
        c1 = set(blocks_by_pc(mem_ops(wl, warp=5))[0x1108])
        assert c0 == c1


class TestStringMatch:
    def test_text_rescanned_per_keyword_chunk(self):
        wl = make_workload("STR")
        per_pc = blocks_by_pc(mem_ops(wl))
        assert reuse_factor(per_pc[0x1200]) == pytest.approx(
            wl.keyword_chunks, rel=0.01
        )

    def test_dict_probes_are_divergent(self):
        ops = mem_ops(make_workload("STR"))
        dict_ops = [o for o in ops if o.pc == 0x1208]
        requests = [len(coalesce(o.addrs, LINE)) for o in dict_ops]
        assert max(requests) > 2


class TestPageViewRank:
    def test_two_phase_kernels(self):
        wl = make_workload("PVR")
        names = [k.name for k in wl.kernels()]
        assert names == ["pvr_map", "pvr_reduce"]

    def test_reduce_accumulators_private_and_hot(self):
        wl = make_workload("PVR")
        per0 = blocks_by_pc(mem_ops(wl, kernel_idx=1, warp=0))[0xB28]
        per1 = blocks_by_pc(mem_ops(wl, kernel_idx=1, warp=1))[0xB28]
        assert reuse_factor(per0) > 4
        assert not set(per0) & set(per1)
