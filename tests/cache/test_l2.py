"""L2 slice: read/merge/fill/write flows."""

from repro.cache.l2 import L2Cache
from repro.cache.tagarray import CacheGeometry


def make_l2():
    return L2Cache(CacheGeometry(num_sets=4, assoc=2, index_fn="linear"))


class TestReadFlow:
    def test_cold_read_misses(self):
        l2 = make_l2()
        assert l2.read(0x10, "w0") == "miss"
        assert l2.stats.dram_reads == 1

    def test_second_read_merges(self):
        l2 = make_l2()
        l2.read(0x10, "w0")
        assert l2.read(0x10, "w1") == "merged"
        assert l2.stats.dram_reads == 1  # no second DRAM read

    def test_fill_returns_all_waiters(self):
        l2 = make_l2()
        l2.read(0x10, "w0")
        l2.read(0x10, "w1")
        assert l2.fill(0x10) == ["w0", "w1"]
        assert l2.pending_count() == 0

    def test_read_after_fill_hits(self):
        l2 = make_l2()
        l2.read(0x10, None)
        l2.fill(0x10)
        assert l2.read(0x10, None) == "hit"
        assert l2.stats.hit_rate == 0.5

    def test_lru_eviction_in_slice(self):
        l2 = make_l2()
        for block in (0x0, 0x4, 0x8):  # all map to set 0 (linear, 4 sets)
            l2.read(block, None)
            l2.fill(block)
        assert l2.stats.evictions == 1
        assert l2.read(0x0, None) == "miss"  # 0x0 was the LRU victim

    def test_default_geometry_is_table1_slice(self):
        l2 = L2Cache()
        assert l2.geometry.num_sets == 64
        assert l2.geometry.assoc == 8
        assert l2.geometry.size_bytes == 64 * 1024


class TestWriteFlow:
    def test_write_goes_to_dram(self):
        l2 = make_l2()
        l2.write(0x10)
        assert l2.stats.dram_writes == 1

    def test_write_does_not_allocate(self):
        l2 = make_l2()
        l2.write(0x10)
        assert l2.read(0x10, None) == "miss"

    def test_write_touches_present_line(self):
        l2 = make_l2()
        l2.read(0x0, None)
        l2.fill(0x0)
        l2.read(0x4, None)
        l2.fill(0x4)
        l2.write(0x0)  # refresh 0x0's recency
        l2.read(0x8, None)
        l2.fill(0x8)   # should evict 0x4, not 0x0
        assert l2.read(0x0, None) == "hit"
