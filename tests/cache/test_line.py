"""Cache line state machine and protection fields."""

import pytest

from repro.cache.line import CacheLine, LineState


class TestLifecycle:
    def test_initial_state(self):
        line = CacheLine(way=0)
        assert line.is_invalid
        assert not line.is_valid
        assert not line.is_reserved

    def test_reserve_then_fill(self):
        line = CacheLine(way=0)
        line.reserve(tag=0x42, block_addr=0x42, insn_id=7, now=1)
        assert line.is_reserved
        assert line.tag == 0x42
        line.fill(now=2)
        assert line.is_valid
        assert line.insn_id == 7  # fill adopts the allocating instruction

    def test_fill_without_reserve_raises(self):
        line = CacheLine(way=0)
        with pytest.raises(RuntimeError):
            line.fill(now=1)

    def test_double_fill_raises(self):
        line = CacheLine(way=0)
        line.reserve(0x1, 0x1, 0, now=0)
        line.fill(now=1)
        with pytest.raises(RuntimeError):
            line.fill(now=2)

    def test_invalidate_clears_everything(self):
        line = CacheLine(way=1)
        line.reserve(0x9, 0x9, 3, now=0)
        line.fill(now=1)
        line.grant_protection(5, 15)
        line.invalidate()
        assert line.is_invalid
        assert line.tag == -1
        assert line.protected_life == 0
        assert line.insn_id == 0


class TestProtection:
    def test_grant_clamps_to_pl_max(self):
        line = CacheLine(way=0)
        line.grant_protection(100, pl_max=15)
        assert line.protected_life == 15

    def test_grant_floors_at_zero(self):
        line = CacheLine(way=0)
        line.grant_protection(-3, pl_max=15)
        assert line.protected_life == 0

    def test_decay_decrements(self):
        line = CacheLine(way=0)
        line.grant_protection(2, 15)
        line.decay_protection()
        assert line.protected_life == 1
        assert line.is_protected

    def test_decay_floors_at_zero(self):
        line = CacheLine(way=0)
        line.decay_protection()
        assert line.protected_life == 0
        assert not line.is_protected

    def test_protected_until_pl_exhausted(self):
        line = CacheLine(way=0)
        line.grant_protection(3, 15)
        for _ in range(3):
            assert line.is_protected
            line.decay_protection()
        assert not line.is_protected
