"""L1D protocol: hit/miss/merge/stall/bypass/write flows (Section 2)."""

import pytest

from repro.cache.l1d import AccessOutcome, L1DCache, MemAccess
from repro.cache.tagarray import CacheGeometry
from repro.core.baseline import BaselinePolicy
from repro.core.policy import StallReason
from repro.core.stall_bypass import StallBypassPolicy


def make_cache(geometry=None, policy=None, **kw):
    sent = []
    cache = L1DCache(
        geometry or CacheGeometry(num_sets=4, assoc=2, index_fn="linear"),
        policy or BaselinePolicy(),
        send_fn=sent.append,
        **kw,
    )
    return cache, sent


def access(cache, block, **kw):
    return cache.access(MemAccess(block_addr=block, **kw))


class TestLoadFlow:
    def test_cold_miss_allocates_and_fetches(self):
        cache, sent = make_cache()
        result = access(cache, 0x10)
        assert result.outcome is AccessOutcome.MISS
        assert cache.stats.misses == 1
        cache.drain_miss_queue()
        assert len(sent) == 1 and sent[0].block_addr == 0x10

    def test_fill_then_hit(self):
        cache, _ = make_cache()
        access(cache, 0x10)
        cache.fill(0x10, now=5)
        result = access(cache, 0x10)
        assert result.outcome is AccessOutcome.HIT
        assert cache.stats.hits == 1

    def test_pending_hit_merges(self):
        cache, _ = make_cache()
        access(cache, 0x10, waiter="w0")
        result = access(cache, 0x10, waiter="w1")
        assert result.outcome is AccessOutcome.HIT_RESERVED
        waiters = cache.fill(0x10, now=1)
        assert waiters == ["w0", "w1"]

    def test_merge_limit_stalls_baseline(self):
        cache, _ = make_cache(mshr_merge=1)
        access(cache, 0x10, waiter="w0")
        result = access(cache, 0x10, waiter="w1")
        assert result.is_stall
        assert result.stall_reason is StallReason.MERGE_FULL

    def test_mshr_full_stalls_baseline(self):
        cache, _ = make_cache(mshr_entries=1)
        access(cache, 0x10)
        result = access(cache, 0x20)
        assert result.is_stall
        assert result.stall_reason is StallReason.MSHR_FULL

    def test_all_reserved_set_stalls_baseline(self):
        cache, _ = make_cache()
        # blocks 0x0 and 0x4 map to set 0 (linear, 4 sets); fill both ways
        access(cache, 0x0)
        access(cache, 0x4)
        result = access(cache, 0x8)  # set 0 again: both ways reserved
        assert result.is_stall
        assert result.stall_reason is StallReason.NO_RESERVABLE_LINE

    def test_miss_queue_full_stalls(self):
        cache, _ = make_cache(miss_queue_depth=1)
        access(cache, 0x1)
        # queue not drained: second miss cannot enqueue its fetch
        result = access(cache, 0x2)
        assert result.is_stall
        assert result.stall_reason is StallReason.MISS_QUEUE_FULL

    def test_stall_has_no_side_effects(self):
        cache, _ = make_cache(mshr_entries=1)
        access(cache, 0x10)
        before = cache.stats.loads
        cache.access(MemAccess(block_addr=0x20))
        assert cache.stats.loads == before  # stalled access not counted

    def test_eviction_on_replacement(self):
        cache, _ = make_cache()
        for block in (0x0, 0x4):
            access(cache, block)
            cache.drain_miss_queue()
            cache.fill(block, 0)
        access(cache, 0x8)  # set 0 full of valid lines: evict LRU (0x0)
        assert cache.stats.evictions == 1
        assert cache.tags.probe(0x0) is None

    def test_lru_victim_is_least_recent(self):
        cache, _ = make_cache()
        for block in (0x0, 0x4):
            access(cache, block)
            cache.fill(block, 0)
        access(cache, 0x0)  # touch 0x0: now 0x4 is LRU
        access(cache, 0x8)
        assert cache.tags.probe(0x0) is not None
        assert cache.tags.probe(0x4) is None


class TestStallBypass:
    def test_bypasses_on_mshr_full(self):
        cache, sent = make_cache(policy=StallBypassPolicy(), mshr_entries=1)
        access(cache, 0x10)
        result = access(cache, 0x20, waiter="w")
        assert result.outcome is AccessOutcome.BYPASS
        assert cache.stats.bypasses == 1
        assert sent and sent[-1].is_bypass and sent[-1].waiter == "w"

    def test_bypasses_on_reserved_set(self):
        cache, sent = make_cache(policy=StallBypassPolicy())
        access(cache, 0x0)
        access(cache, 0x4)
        result = access(cache, 0x8)
        assert result.outcome is AccessOutcome.BYPASS

    def test_bypass_needs_no_miss_queue_slot(self):
        cache, sent = make_cache(policy=StallBypassPolicy(), miss_queue_depth=1)
        access(cache, 0x1)  # occupies the single miss-queue slot
        result = access(cache, 0x2)
        assert result.outcome is AccessOutcome.BYPASS
        assert sent[-1].block_addr == 0x2  # sent directly, queue untouched


class TestWriteFlow:
    def test_write_miss_is_no_allocate(self):
        cache, _ = make_cache()
        result = access(cache, 0x10, is_write=True)
        assert result.outcome is AccessOutcome.WRITE_MISS
        assert cache.tags.probe(0x10) is None
        cache.drain_miss_queue()
        assert cache.stats.sent_writes == 1

    def test_write_hit_evicts(self):
        cache, _ = make_cache()
        access(cache, 0x10)
        cache.fill(0x10, 0)
        result = access(cache, 0x10, is_write=True)
        assert result.outcome is AccessOutcome.WRITE_HIT
        assert cache.stats.write_evicts == 1
        assert cache.tags.probe(0x10) is None

    def test_write_to_reserved_line_leaves_it_pending(self):
        cache, _ = make_cache()
        access(cache, 0x10)
        access(cache, 0x10, is_write=True)
        # the reserved line must still be fillable
        cache.fill(0x10, 0)
        assert cache.tags.probe(0x10).is_valid

    def test_write_stalls_on_full_miss_queue(self):
        cache, _ = make_cache(miss_queue_depth=1)
        access(cache, 0x1)
        result = access(cache, 0x2, is_write=True)
        assert result.is_stall


class TestStatsDerived:
    def test_hit_rate_excludes_bypasses(self):
        cache, _ = make_cache(policy=StallBypassPolicy(), mshr_entries=1)
        access(cache, 0x10)
        cache.fill(0x10, 0)
        access(cache, 0x10)          # hit
        access(cache, 0x20)          # miss (allocates)
        access(cache, 0x30)          # bypass (MSHR full)
        s = cache.stats
        assert s.bypasses == 1
        # 3 non-bypassed loads, 1 hit
        assert s.hit_rate == pytest.approx(1 / 3)

    def test_serviced_accesses(self):
        cache, _ = make_cache(policy=StallBypassPolicy(), mshr_entries=1)
        access(cache, 0x10)
        access(cache, 0x20)  # bypass
        assert cache.stats.serviced_accesses == 1

    def test_fill_without_reservation_raises(self):
        cache, _ = make_cache()
        with pytest.raises(KeyError):
            cache.fill(0x99, 0)

    def test_as_dict_contains_core_counters(self):
        cache, _ = make_cache()
        access(cache, 0x10)
        d = cache.stats.as_dict()
        for key in ("loads", "misses", "hits", "hit_rate", "evictions_total"):
            assert key in d
