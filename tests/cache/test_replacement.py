"""Victim selection helpers: plain LRU vs protection-filtered LRU."""

from repro.cache.replacement import lru_victim, protected_lru_victim
from repro.cache.tagarray import CacheSet


def fill_set(assoc=4):
    cache_set = CacheSet(0, assoc)
    for i, line in enumerate(cache_set.lines):
        line.reserve(tag=i, block_addr=i, insn_id=0, now=i + 1)
        line.fill(now=i + 1)
        line.lru_stamp = i + 1
    return cache_set


class TestLruVictim:
    def test_prefers_invalid(self):
        cache_set = CacheSet(0, 2)
        cache_set.lines[0].reserve(0, 0, 0, 1)
        cache_set.lines[0].fill(1)
        assert lru_victim(cache_set) is cache_set.lines[1]

    def test_picks_oldest_valid(self):
        cache_set = fill_set()
        assert lru_victim(cache_set) is cache_set.lines[0]

    def test_skips_reserved(self):
        cache_set = fill_set(2)
        cache_set.lines[0].invalidate()
        cache_set.lines[0].reserve(9, 9, 0, 10)
        assert lru_victim(cache_set) is cache_set.lines[1]

    def test_none_when_all_reserved(self):
        cache_set = CacheSet(0, 2)
        for line in cache_set.lines:
            line.reserve(0, 0, 0, 1)
        assert lru_victim(cache_set) is None


class TestProtectedLruVictim:
    def test_skips_protected_lines(self):
        cache_set = fill_set()
        cache_set.lines[0].grant_protection(3, 15)
        assert protected_lru_victim(cache_set) is cache_set.lines[1]

    def test_matches_lru_when_nothing_protected(self):
        cache_set = fill_set()
        assert protected_lru_victim(cache_set) is lru_victim(cache_set)

    def test_none_when_all_protected(self):
        cache_set = fill_set()
        for line in cache_set.lines:
            line.grant_protection(1, 15)
        assert protected_lru_victim(cache_set) is None

    def test_none_when_reserved_and_protected_mix(self):
        cache_set = fill_set(2)
        cache_set.lines[0].grant_protection(5, 15)
        cache_set.lines[1].invalidate()
        cache_set.lines[1].reserve(7, 7, 0, 9)
        assert protected_lru_victim(cache_set) is None

    def test_protection_expiry_restores_candidacy(self):
        cache_set = fill_set(2)
        cache_set.lines[0].grant_protection(1, 15)
        assert protected_lru_victim(cache_set) is cache_set.lines[1]
        cache_set.lines[0].decay_protection()
        assert protected_lru_victim(cache_set) is cache_set.lines[0]

    def test_prefers_invalid_over_unprotected(self):
        cache_set = CacheSet(0, 2)
        cache_set.lines[0].reserve(0, 0, 0, 1)
        cache_set.lines[0].fill(1)
        assert protected_lru_victim(cache_set) is cache_set.lines[1]
