"""Tag array geometry and probing."""

import pytest

from repro.cache.line import LineState
from repro.cache.tagarray import CacheGeometry, TagArray


class TestGeometry:
    def test_baseline_size_is_16kb(self, baseline_geometry):
        assert baseline_geometry.size_bytes == 16 * 1024

    def test_capacity_sweep_sizes(self, baseline_geometry):
        assert baseline_geometry.with_assoc(8).size_bytes == 32 * 1024
        assert baseline_geometry.with_assoc(16).size_bytes == 64 * 1024

    def test_block_addr_strips_offset(self):
        geo = CacheGeometry(num_sets=32, assoc=4, line_size=128)
        assert geo.block_addr(0) == 0
        assert geo.block_addr(127) == 0
        assert geo.block_addr(128) == 1
        assert geo.block_addr(130) == 1

    def test_set_index_in_range(self, baseline_geometry):
        for block in range(0, 10000, 113):
            assert 0 <= baseline_geometry.set_index(block) < 32

    def test_linear_index_fn(self):
        geo = CacheGeometry(num_sets=64, assoc=8, index_fn="linear")
        assert geo.set_index(65) == 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheGeometry(num_sets=0, assoc=4)
        with pytest.raises(ValueError):
            CacheGeometry(num_sets=12, assoc=4)  # not a power of two
        with pytest.raises(ValueError):
            CacheGeometry(num_sets=32, assoc=4, line_size=100)

    def test_unknown_index_fn_rejected_on_use(self):
        geo = CacheGeometry(num_sets=32, assoc=4, index_fn="bogus")
        with pytest.raises(ValueError):
            geo.set_index(0)


class TestTagArray:
    def test_probe_miss_on_empty(self, tiny_geometry):
        tags = TagArray(tiny_geometry)
        assert tags.probe(0x10) is None

    def test_reserve_then_probe(self, tiny_geometry):
        tags = TagArray(tiny_geometry)
        cache_set = tags.set_for(0x10)
        line = cache_set.find_invalid()
        line.reserve(tiny_geometry.tag(0x10), 0x10, 0, tags.next_stamp())
        found = tags.probe(0x10)
        assert found is line
        assert found.state is LineState.RESERVED

    def test_sets_partition_blocks(self, tiny_geometry):
        tags = TagArray(tiny_geometry)
        # linear index: blocks 0 and 4 share set 0; block 1 goes to set 1
        assert tags.set_for(0).index == tags.set_for(4).index
        assert tags.set_for(1).index != tags.set_for(0).index

    def test_replaceable_excludes_reserved(self, tiny_geometry):
        tags = TagArray(tiny_geometry)
        cache_set = tags.set_for(0)
        a, b = cache_set.lines
        a.reserve(0, 0, 0, 1)
        b.reserve(4, 4, 0, 2)
        b.fill(3)
        assert cache_set.replaceable() == [b]

    def test_flush(self, tiny_geometry):
        tags = TagArray(tiny_geometry)
        line = tags.set_for(0).find_invalid()
        line.reserve(0, 0, 0, 1)
        line.fill(2)
        tags.flush()
        assert tags.probe(0) is None
        assert tags.valid_blocks() == []

    def test_stamps_monotonic(self, tiny_geometry):
        tags = TagArray(tiny_geometry)
        assert tags.next_stamp() < tags.next_stamp() < tags.next_stamp()

    def test_all_reserved_or_protected(self, tiny_geometry):
        tags = TagArray(tiny_geometry)
        cache_set = tags.set_for(0)
        a, b = cache_set.lines
        assert not cache_set.all_reserved_or_protected()  # invalid lines
        a.reserve(0, 0, 0, 1)
        b.reserve(4, 4, 0, 2)
        assert cache_set.all_reserved_or_protected()
        b.fill(3)
        assert not cache_set.all_reserved_or_protected()  # valid unprotected
        b.grant_protection(2, 15)
        assert cache_set.all_reserved_or_protected()
