"""Test package (keeps pytest module names stable under rootdir collection)."""
