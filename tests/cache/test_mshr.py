"""MSHR table and miss queue resource semantics (Section 2)."""

import pytest

from repro.cache.mshr import MissQueue, MshrTable


class TestMshrTable:
    def test_allocate_and_lookup(self):
        mshr = MshrTable(num_entries=4, max_merged=2)
        entry = mshr.allocate(0x10, insn_id=3, now=5, waiter="w0")
        assert mshr.lookup(0x10) is entry
        assert entry.num_requests == 1
        assert entry.first_insn_id == 3

    def test_merge_appends_waiters(self):
        mshr = MshrTable(num_entries=4, max_merged=3)
        mshr.allocate(0x10, 0, 0, "w0")
        mshr.merge(0x10, "w1")
        mshr.merge(0x10, "w2")
        assert mshr.lookup(0x10).waiters == ["w0", "w1", "w2"]
        assert mshr.total_merges == 2

    def test_can_merge_respects_limit(self):
        mshr = MshrTable(num_entries=4, max_merged=2)
        mshr.allocate(0x10, 0, 0, "w0")
        assert mshr.can_merge(0x10)
        mshr.merge(0x10, "w1")
        assert not mshr.can_merge(0x10)

    def test_merge_overflow_raises(self):
        mshr = MshrTable(num_entries=4, max_merged=1)
        mshr.allocate(0x10, 0, 0, "w0")
        with pytest.raises(RuntimeError):
            mshr.merge(0x10, "w1")

    def test_is_full(self):
        mshr = MshrTable(num_entries=2, max_merged=2)
        mshr.allocate(0x1, 0, 0, None)
        assert not mshr.is_full
        mshr.allocate(0x2, 0, 0, None)
        assert mshr.is_full

    def test_allocate_when_full_raises(self):
        mshr = MshrTable(num_entries=1, max_merged=1)
        mshr.allocate(0x1, 0, 0, None)
        with pytest.raises(RuntimeError):
            mshr.allocate(0x2, 0, 0, None)

    def test_duplicate_allocation_raises(self):
        mshr = MshrTable(num_entries=4, max_merged=2)
        mshr.allocate(0x1, 0, 0, None)
        with pytest.raises(RuntimeError):
            mshr.allocate(0x1, 0, 0, None)

    def test_release_returns_waiters_and_frees(self):
        mshr = MshrTable(num_entries=1, max_merged=4)
        mshr.allocate(0x1, 0, 0, "a")
        mshr.merge(0x1, "b")
        entry = mshr.release(0x1)
        assert entry.waiters == ["a", "b"]
        assert not mshr.is_full
        assert mshr.lookup(0x1) is None

    def test_release_unknown_raises(self):
        mshr = MshrTable()
        with pytest.raises(KeyError):
            mshr.release(0x99)

    def test_peak_occupancy_tracked(self):
        mshr = MshrTable(num_entries=4, max_merged=1)
        mshr.allocate(0x1, 0, 0, None)
        mshr.allocate(0x2, 0, 0, None)
        mshr.release(0x1)
        mshr.allocate(0x3, 0, 0, None)
        assert mshr.peak_occupancy == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MshrTable(num_entries=0)
        with pytest.raises(ValueError):
            MshrTable(max_merged=0)


class TestMissQueue:
    def test_fifo_order(self):
        q = MissQueue(depth=3)
        q.push("a")
        q.push("b")
        assert q.pop() == "a"
        assert q.pop() == "b"

    def test_full_and_empty_flags(self):
        q = MissQueue(depth=2)
        assert q.is_empty
        q.push(1)
        q.push(2)
        assert q.is_full

    def test_push_when_full_raises(self):
        q = MissQueue(depth=1)
        q.push(1)
        with pytest.raises(RuntimeError):
            q.push(2)

    def test_peek_does_not_remove(self):
        q = MissQueue(depth=2)
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            MissQueue(depth=0)
