"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cache.tagarray import CacheGeometry
from repro.gpu.config import GPUConfig, L1DConfig


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current simulator "
             "instead of comparing against them",
    )
    parser.addoption(
        "--update-corpus",
        action="store_true",
        default=False,
        help="rewrite tests/fuzz/corpus.json from the current simulator "
             "instead of comparing against it",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture
def update_corpus(request) -> bool:
    return request.config.getoption("--update-corpus")


@pytest.fixture
def baseline_geometry() -> CacheGeometry:
    """Table 1 L1D: 32 sets x 4 ways x 128 B, hashed index."""
    return CacheGeometry(num_sets=32, assoc=4, line_size=128, index_fn="hash")


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """Small geometry for exhaustive-state tests."""
    return CacheGeometry(num_sets=4, assoc=2, line_size=128, index_fn="linear")


@pytest.fixture
def tiny_config() -> GPUConfig:
    """A one-SM machine with short latencies for fast timing tests."""
    return GPUConfig(
        num_sms=1,
        num_partitions=2,
        max_warps_per_sm=8,
        max_ctas_per_sm=2,
        icnt_latency=4,
        l2_latency=4,
        dram_latency=20,
        dram_service_interval=2,
        l1d=L1DConfig(num_sets=4, assoc=2, mshr_entries=4, mshr_merge=2,
                      miss_queue_depth=2, hit_latency=2),
    )


@pytest.fixture
def small_config() -> GPUConfig:
    """Two SMs, Table-1-shaped caches, short memory latencies."""
    return GPUConfig(
        num_sms=2,
        num_partitions=3,
        icnt_latency=4,
        l2_latency=8,
        dram_latency=40,
        dram_service_interval=2,
    )
