"""Crossbar: latency, injection serialisation, traffic accounting."""

from repro.memory.interconnect import CONTROL_BYTES, LINE_BYTES, Interconnect


class FakeClock:
    def __init__(self):
        self.now = 0
        self.events = []

    def schedule(self, delay, fn):
        self.events.append((self.now + delay, fn))


def make_icnt(latency=10):
    clk = FakeClock()
    icnt = Interconnect(clk.schedule, latency, clock=lambda: clk.now)
    return icnt, clk


class TestTrafficAccounting:
    def test_read_request_is_header_only(self):
        icnt, clk = make_icnt()
        icnt.send_request(0, is_write=False, deliver=lambda: None)
        assert icnt.stats.bytes_to_mem == CONTROL_BYTES

    def test_write_request_carries_data(self):
        icnt, clk = make_icnt()
        icnt.send_request(0, is_write=True, deliver=lambda: None)
        assert icnt.stats.bytes_to_mem == CONTROL_BYTES + LINE_BYTES

    def test_response_carries_data(self):
        icnt, clk = make_icnt()
        icnt.send_response(lambda: None)
        assert icnt.stats.bytes_from_mem == CONTROL_BYTES + LINE_BYTES

    def test_total_bytes(self):
        icnt, clk = make_icnt()
        icnt.send_request(0, False, lambda: None)
        icnt.send_response(lambda: None)
        assert icnt.stats.total_bytes == 2 * CONTROL_BYTES + LINE_BYTES

    def test_packet_counts(self):
        icnt, clk = make_icnt()
        for _ in range(3):
            icnt.send_request(0, False, lambda: None)
        icnt.send_response(lambda: None)
        assert icnt.stats.request_packets == 3
        assert icnt.stats.response_packets == 1


class TestInjectionSerialisation:
    def test_same_source_serialises(self):
        icnt, clk = make_icnt(latency=10)
        icnt.send_request(0, False, lambda: None)
        icnt.send_request(0, False, lambda: None)
        icnt.send_request(0, False, lambda: None)
        times = sorted(t for t, _ in clk.events)
        assert times == [10, 11, 12]  # one packet per cycle per port

    def test_different_sources_independent(self):
        icnt, clk = make_icnt(latency=10)
        icnt.send_request(0, False, lambda: None)
        icnt.send_request(1, False, lambda: None)
        times = sorted(t for t, _ in clk.events)
        assert times == [10, 10]

    def test_port_frees_over_time(self):
        icnt, clk = make_icnt(latency=10)
        icnt.send_request(0, False, lambda: None)
        clk.now = 5
        icnt.send_request(0, False, lambda: None)
        times = sorted(t for t, _ in clk.events)
        assert times == [10, 15]
