"""Memory partition: routing, L2 timing, DRAM path, response port."""

from repro.cache.l1d import FetchRequest
from repro.cache.tagarray import CacheGeometry
from repro.memory.dram import DramChannel
from repro.memory.partition import MemoryPartition, partition_for


class Harness:
    """Manual event executor for partition callbacks."""

    def __init__(self, l2_latency=10, l2_service=2, resp_interval=4):
        self.now = 0
        self.events = []
        self.responses = []
        self.partition = MemoryPartition(
            0,
            CacheGeometry(num_sets=4, assoc=2, index_fn="linear"),
            DramChannel(service_interval=4, access_latency=50),
            self.schedule,
            self.responses.append,
            l2_latency,
            l2_service_interval=l2_service,
            response_interval=resp_interval,
        )

    def schedule(self, delay, fn):
        self.events.append([self.now + delay, fn])

    def run_until_quiet(self):
        while self.events:
            self.events.sort(key=lambda e: e[0])
            time, fn = self.events.pop(0)
            self.now = time
            fn()


def fetch(block, is_write=False, sm=0):
    return FetchRequest(block_addr=block, insn_id=0, sm_id=sm, is_bypass=False,
                        is_write=is_write)


class TestPartitionFor:
    def test_line_interleaving(self):
        assert partition_for(0, 12) == 0
        assert partition_for(13, 12) == 1
        assert partition_for(25, 12) == 1


class TestReadPath:
    def test_cold_read_goes_to_dram_and_responds(self):
        h = Harness()
        f = fetch(0x10)
        h.partition.receive(f, 0)
        h.run_until_quiet()
        assert h.responses == [f]
        # L2 latency (10) + DRAM latency (50) at minimum
        assert h.now >= 60

    def test_warm_read_is_l2_hit(self):
        h = Harness()
        h.partition.receive(fetch(0x10), 0)
        h.run_until_quiet()
        t_cold = h.now
        h.partition.receive(fetch(0x10), h.now)
        h.run_until_quiet()
        assert h.partition.l2.stats.hits == 1
        assert h.now - t_cold < 60  # far cheaper than the DRAM trip

    def test_concurrent_same_block_merges(self):
        h = Harness()
        a, b = fetch(0x10), fetch(0x10, sm=1)
        h.partition.receive(a, 0)
        h.partition.receive(b, 0)
        h.run_until_quiet()
        assert a in h.responses and b in h.responses
        assert h.partition.dram.stats.reads == 1

    def test_response_port_serialises(self):
        h = Harness(resp_interval=4)
        # two merged fetches return together; responses must be 4 apart
        h.partition.receive(fetch(0x10), 0)
        h.partition.receive(fetch(0x10, sm=1), 0)
        times = []
        original = h.responses.append

        def record(f):
            times.append(h.now)
            original(f)

        h.partition.respond = record
        h.run_until_quiet()
        assert len(times) == 2
        assert abs(times[1] - times[0]) >= 4


class TestWritePath:
    def test_write_hits_dram_without_response(self):
        h = Harness()
        h.partition.receive(fetch(0x10, is_write=True), 0)
        h.run_until_quiet()
        assert h.responses == []
        assert h.partition.dram.stats.writes == 1

    def test_l2_service_interval_queues_accesses(self):
        h = Harness(l2_service=5)
        h.partition.receive(fetch(0x10), 0)
        h.partition.receive(fetch(0x20), 0)
        assert h.partition.l2_queue_delay == 5
