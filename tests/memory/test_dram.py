"""DRAM channel: bandwidth-limited FIFO service."""

import pytest

from repro.memory.dram import DramChannel


class TestService:
    def test_idle_read_returns_after_latency(self):
        dram = DramChannel(service_interval=4, access_latency=100)
        assert dram.schedule_read(10) == 110

    def test_back_to_back_reads_serialise(self):
        dram = DramChannel(service_interval=4, access_latency=100)
        assert dram.schedule_read(0) == 100
        assert dram.schedule_read(0) == 104   # queued behind the first
        assert dram.schedule_read(0) == 108

    def test_gap_resets_queue(self):
        dram = DramChannel(service_interval=4, access_latency=100)
        dram.schedule_read(0)
        assert dram.schedule_read(50) == 150  # channel idle again

    def test_writes_consume_bandwidth(self):
        dram = DramChannel(service_interval=4, access_latency=100)
        dram.schedule_write(0)
        assert dram.schedule_read(0) == 104

    def test_queue_delay_tracked(self):
        dram = DramChannel(service_interval=10, access_latency=0)
        dram.schedule_read(0)
        dram.schedule_read(0)   # waits 10
        dram.schedule_read(0)   # waits 20
        assert dram.stats.total_queue_delay == 30
        assert dram.stats.mean_queue_delay == 10

    def test_utilization(self):
        dram = DramChannel(service_interval=10, access_latency=0)
        dram.schedule_read(0)
        assert dram.utilization(100) == pytest.approx(0.1)
        assert dram.utilization(0) == 0.0

    def test_stats_counters(self):
        dram = DramChannel(2, 10)
        dram.schedule_read(0)
        dram.schedule_write(0)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DramChannel(0, 10)
        with pytest.raises(ValueError):
            DramChannel(1, -1)
