"""Policy registry/factory and shared base behaviour."""

import pytest

from repro.core import (
    POLICIES,
    BaselinePolicy,
    DlpPolicy,
    GlobalProtectionPolicy,
    StallBypassPolicy,
    make_policy,
)
from repro.core.policy import CachePolicy, StallReason


class TestFactory:
    def test_all_four_schemes_registered(self):
        assert set(POLICIES) == {
            "baseline", "stall_bypass", "global_protection", "dlp"
        }

    @pytest.mark.parametrize("name,cls", [
        ("baseline", BaselinePolicy),
        ("stall_bypass", StallBypassPolicy),
        ("global_protection", GlobalProtectionPolicy),
        ("dlp", DlpPolicy),
    ])
    def test_factory_builds_right_class(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_factory_forwards_kwargs(self):
        policy = make_policy("dlp", sample_limit=99)
        assert policy.sampler.access_limit == 99

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("mystery")

    def test_instances_are_fresh(self):
        # one policy instance per SM: the factory must not share state
        assert make_policy("dlp") is not make_policy("dlp")


class TestBaseBehaviour:
    def test_base_policy_never_bypasses(self):
        policy = CachePolicy()
        assert not policy.bypass_on_no_victim(None)
        for reason in StallReason:
            assert not policy.bypass_on_stall(reason, None)

    def test_stall_bypass_always_bypasses(self):
        policy = StallBypassPolicy()
        assert policy.bypass_on_no_victim(None)
        for reason in StallReason:
            assert policy.bypass_on_stall(reason, None)

    def test_stall_bypass_counts_reasons(self):
        policy = StallBypassPolicy()
        policy.bypass_on_stall(StallReason.MSHR_FULL, None)
        policy.bypass_on_stall(StallReason.MSHR_FULL, None)
        assert policy.stats()["bypass_mshr_full"] == 2

    def test_describe(self):
        assert make_policy("dlp").describe() == "dlp"
