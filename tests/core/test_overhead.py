"""Section 4.3 hardware-overhead arithmetic — pinned to the paper."""

from repro.cache.tagarray import CacheGeometry
from repro.core.overhead import compute_overhead


class TestPaperNumbers:
    """The paper's exact byte counts for the baseline configuration."""

    def test_tda_extension_is_176_bytes(self):
        assert compute_overhead().tda_extension_bytes == 176

    def test_vta_is_624_bytes(self):
        assert compute_overhead().vta_bytes == 624

    def test_pdpt_is_464_bytes(self):
        assert compute_overhead().pdpt_bytes == 464

    def test_total_extra_is_1264_bytes(self):
        assert compute_overhead().total_extra_bytes == 1264

    def test_baseline_cache_is_16896_bytes(self):
        assert compute_overhead().baseline_bytes == 16896

    def test_overhead_fraction_is_7_48_percent(self):
        assert round(100 * compute_overhead().overhead_fraction, 2) == 7.48


class TestParameterised:
    def test_doubling_vta_assoc_doubles_vta_cost(self):
        base = compute_overhead()
        wide = compute_overhead(vta_assoc=8)
        assert wide.vta_bytes == 2 * base.vta_bytes

    def test_wider_pl_grows_tda_extension(self):
        base = compute_overhead()
        wide = compute_overhead(pl_bits=8)
        assert wide.tda_extension_bytes > base.tda_extension_bytes

    def test_bigger_cache_geometry(self):
        big = compute_overhead(CacheGeometry(num_sets=64, assoc=8))
        assert big.baseline_bytes > 16896
        assert big.tda_extension_bytes == (7 + 4) * 512 // 8

    def test_rows_include_all_components(self):
        names = [name for name, _ in compute_overhead().rows()]
        assert "Victim Tag Array" in names
        assert "PDPT" in names
