"""Protection Distance Prediction Table (Section 4.1.3)."""

import pytest

from repro.core.pdpt import PredictionTable


class TestHitAccounting:
    def test_tda_hits_per_entry(self):
        t = PredictionTable()
        t.record_tda_hit(5)
        t.record_tda_hit(5)
        t.record_tda_hit(9)
        assert t.entries[5].tda_hits == 2
        assert t.entries[9].tda_hits == 1
        assert t.global_tda_hits == 3

    def test_vta_hits_per_entry(self):
        t = PredictionTable()
        t.record_vta_hit(3)
        assert t.entries[3].vta_hits == 1
        assert t.global_vta_hits == 1

    def test_tda_counter_saturates_at_8_bits(self):
        t = PredictionTable()
        for _ in range(300):
            t.record_tda_hit(0)
        assert t.entries[0].tda_hits == 255
        assert t.global_tda_hits == 300  # global accumulator is wider

    def test_vta_counter_saturates_at_10_bits(self):
        t = PredictionTable()
        for _ in range(1100):
            t.record_vta_hit(0)
        assert t.entries[0].vta_hits == 1023

    def test_insn_id_wraps_to_table_size(self):
        t = PredictionTable(num_entries=128)
        t.record_tda_hit(130)
        assert t.entries[2].tda_hits == 1


class TestPdField:
    def test_pd_saturates_at_4_bits(self):
        t = PredictionTable()
        t.adjust_pd(0, 100)
        assert t.pd(0) == 15

    def test_pd_floors_at_zero(self):
        t = PredictionTable()
        t.adjust_pd(0, -5)
        assert t.pd(0) == 0

    def test_set_pd_clamps(self):
        t = PredictionTable()
        t.set_pd(1, 99)
        assert t.pd(1) == 15
        t.set_pd(1, -1)
        assert t.pd(1) == 0

    def test_decrease_all(self):
        t = PredictionTable()
        t.set_pd(0, 10)
        t.set_pd(1, 3)
        t.decrease_all(4)
        assert t.pd(0) == 6
        assert t.pd(1) == 0


class TestSampling:
    def test_clear_hits_preserves_pds(self):
        t = PredictionTable()
        t.record_tda_hit(0)
        t.record_vta_hit(1)
        t.set_pd(0, 7)
        t.clear_hits()
        assert t.entries[0].tda_hits == 0
        assert t.entries[1].vta_hits == 0
        assert t.global_tda_hits == 0
        assert t.global_vta_hits == 0
        assert t.pd(0) == 7

    def test_active_entries(self):
        t = PredictionTable()
        t.record_tda_hit(2)
        t.record_vta_hit(5)
        assert sorted(e.insn_id for e in t.active_entries()) == [2, 5]

    def test_snapshot_reports_used_entries(self):
        t = PredictionTable()
        t.record_tda_hit(4)
        snap = t.snapshot()
        assert 4 in snap and snap[4]["tda_hits"] == 1

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            PredictionTable(num_entries=0)
