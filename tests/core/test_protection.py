"""Figure 9 PD computation: step comparison and the two update paths."""

import pytest

from repro.core.pdpt import PredictionTable
from repro.core.protection import pd_increment, run_global_pd_update, run_pd_update


class TestPdIncrement:
    """The shift-based step comparison of Section 4.2 (Nasc = 4)."""

    def test_no_vta_hits_means_no_increment(self):
        assert pd_increment(4, 0, 10) == 0

    def test_ratio_above_four(self):
        assert pd_increment(4, 41, 10) == 16  # 4 x Nasc cap

    def test_ratio_exactly_four(self):
        assert pd_increment(4, 40, 10) == 16

    def test_ratio_two_to_four(self):
        assert pd_increment(4, 25, 10) == 8

    def test_ratio_one_to_two(self):
        assert pd_increment(4, 15, 10) == 4

    def test_ratio_half_to_one(self):
        assert pd_increment(4, 6, 10) == 2  # Nasc >> 1

    def test_ratio_below_half(self):
        assert pd_increment(4, 4, 10) == 0

    def test_zero_tda_hits_takes_top_rung(self):
        # all observed reuse happened after eviction: maximum protection
        assert pd_increment(4, 3, 0) == 16

    def test_upper_limit_prevents_overprotection(self):
        # even a 100:1 ratio is capped at 4 x Nasc
        assert pd_increment(4, 1000, 10) == 16

    def test_nasc_scaling(self):
        assert pd_increment(8, 15, 10) == 8
        assert pd_increment(2, 15, 10) == 2

    def test_negative_nasc_rejected(self):
        with pytest.raises(ValueError):
            pd_increment(-1, 5, 5)


class TestRunPdUpdate:
    def test_increase_path_is_per_instruction(self):
        t = PredictionTable()
        # insn 0: heavy VTA losses; insn 1: well-served by the TDA
        for _ in range(20):
            t.record_vta_hit(0)
        for _ in range(2):
            t.record_tda_hit(0)
        for _ in range(10):
            t.record_tda_hit(1)
        for _ in range(1):
            t.record_vta_hit(1)
        result = run_pd_update(t, nasc=4)
        assert result.path == "increase"   # global: 21 VTA > 12 TDA
        assert t.pd(0) == 15               # 4*Nasc = 16, clamped to 15
        assert t.pd(1) == 0                # ratio 0.1 < 1/2: no increment

    def test_decrease_path_hits_all_pds(self):
        t = PredictionTable()
        t.set_pd(0, 10)
        t.set_pd(5, 3)
        for _ in range(10):
            t.record_tda_hit(0)
        t.record_vta_hit(0)  # 2*1 < 10
        result = run_pd_update(t, nasc=4)
        assert result.path == "decrease"
        assert t.pd(0) == 6
        assert t.pd(5) == 0

    def test_hold_path_changes_nothing(self):
        t = PredictionTable()
        t.set_pd(0, 7)
        for _ in range(10):
            t.record_tda_hit(0)
        for _ in range(7):
            t.record_vta_hit(0)  # 7 <= 10 and 14 >= 10: hold
        result = run_pd_update(t, nasc=4)
        assert result.path == "hold"
        assert t.pd(0) == 7

    def test_hits_cleared_after_every_path(self):
        for vta, tda in ((20, 2), (1, 10), (7, 10)):
            t = PredictionTable()
            for _ in range(vta):
                t.record_vta_hit(0)
            for _ in range(tda):
                t.record_tda_hit(0)
            run_pd_update(t, nasc=4)
            assert t.global_tda_hits == 0
            assert t.global_vta_hits == 0
            assert t.entries[0].tda_hits == 0

    def test_adjustments_reported(self):
        t = PredictionTable()
        for _ in range(8):
            t.record_vta_hit(3)
        t.record_tda_hit(3)
        result = run_pd_update(t, nasc=4)
        assert result.adjustments == {3: 15}

    def test_boundary_equal_hits_is_not_increase(self):
        t = PredictionTable()
        for _ in range(5):
            t.record_vta_hit(0)
            t.record_tda_hit(0)
        result = run_pd_update(t, nasc=4)
        assert result.path == "hold"  # strict '>' in Fig. 9


class TestGlobalPdUpdate:
    def test_increase(self):
        pd, path = run_global_pd_update(0, 15, 4, g_tda=5, g_vta=11)
        assert path == "increase"
        assert pd == 8  # ratio 2.2 -> 2*Nasc

    def test_increase_clamps_to_pd_max(self):
        pd, _ = run_global_pd_update(14, 15, 4, g_tda=1, g_vta=100)
        assert pd == 15

    def test_decrease(self):
        pd, path = run_global_pd_update(10, 15, 4, g_tda=10, g_vta=2)
        assert path == "decrease"
        assert pd == 6

    def test_decrease_floors_at_zero(self):
        pd, _ = run_global_pd_update(2, 15, 4, g_tda=10, g_vta=0)
        assert pd == 0

    def test_hold(self):
        pd, path = run_global_pd_update(7, 15, 4, g_tda=10, g_vta=7)
        assert path == "hold"
        assert pd == 7
