"""Global-Protection comparator: single PD, same Fig. 9 flow."""

from repro.cache.l1d import AccessOutcome, L1DCache, MemAccess
from repro.cache.tagarray import CacheGeometry
from repro.core.global_protection import GlobalProtectionPolicy


def make_cache(**kw):
    policy = GlobalProtectionPolicy(**kw)
    cache = L1DCache(
        CacheGeometry(num_sets=4, assoc=2, index_fn="linear"),
        policy,
        send_fn=lambda f: None,
    )
    return cache, policy


def run_load(cache, block, insn_id=0):
    result = cache.access(MemAccess(block_addr=block, insn_id=insn_id))
    if result.outcome is AccessOutcome.MISS:
        cache.drain_miss_queue(8)
        cache.fill(block, 0)
    return result


class TestGlobalPd:
    def test_single_pd_applies_to_all_instructions(self):
        cache, policy = make_cache()
        policy.global_pd = 7
        cache.access(MemAccess(block_addr=0x0, insn_id=1))
        cache.fill(0x0, 0)
        cache.drain_miss_queue(8)
        cache.access(MemAccess(block_addr=0x4, insn_id=99))
        assert cache.tags.probe(0x0).protected_life >= 6  # decayed once
        assert cache.tags.probe(0x4).protected_life == 7

    def test_thrash_raises_global_pd(self):
        # 3 blocks per set cycling through a 2-way cache: reuses are VTA
        # visible but TDA invisible -> the global increase path fires
        cache, policy = make_cache(sample_limit=40)
        for rep in range(20):
            for b in range(12):
                run_load(cache, b)
        assert policy.global_pd > 0
        assert policy.pd_updates["increase"] > 0

    def test_hit_heavy_stream_keeps_pd_zero(self):
        cache, policy = make_cache(sample_limit=20)
        run_load(cache, 0x0)
        for _ in range(100):
            run_load(cache, 0x0)
        assert policy.global_pd == 0

    def test_protected_set_bypasses(self):
        cache, policy = make_cache()
        run_load(cache, 0x0)
        run_load(cache, 0x4)
        for b in (0x0, 0x4):
            cache.tags.probe(b).grant_protection(15, 15)
        result = cache.access(MemAccess(block_addr=0x8))
        assert result.outcome is AccessOutcome.BYPASS
        assert policy.protected_bypasses == 1

    def test_vta_hits_counted_globally(self):
        cache, policy = make_cache()
        run_load(cache, 0x0)
        run_load(cache, 0x4)
        run_load(cache, 0x8)   # evicts 0x0
        run_load(cache, 0x0)   # VTA hit
        assert policy.global_vta_hits == 1

    def test_reset(self):
        cache, policy = make_cache()
        policy.global_pd = 9
        policy.global_tda_hits = 5
        policy.reset()
        assert policy.global_pd == 0
        assert policy.global_tda_hits == 0

    def test_stats_keys(self):
        cache, policy = make_cache()
        assert "global_pd" in policy.stats()
