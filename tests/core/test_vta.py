"""Victim Tag Array behaviour (Section 4.1.2)."""

from repro.cache.tagarray import CacheGeometry
from repro.core.vta import VictimTagArray


def make_vta(num_sets=4, assoc=2):
    return VictimTagArray(
        CacheGeometry(num_sets=num_sets, assoc=assoc, index_fn="linear"), assoc
    )


class TestInsertProbe:
    def test_probe_empty_misses(self):
        vta = make_vta()
        assert vta.probe(0x10) is None

    def test_insert_then_probe_returns_insn_id(self):
        vta = make_vta()
        vta.insert(0x10, insn_id=42)
        assert vta.probe(0x10) == 42

    def test_probe_consumes_entry(self):
        vta = make_vta()
        vta.insert(0x10, 7)
        assert vta.probe(0x10) == 7
        assert vta.probe(0x10) is None  # hit invalidated the entry

    def test_lru_replacement_within_set(self):
        vta = make_vta(num_sets=4, assoc=2)
        vta.insert(0x0, 1)   # set 0
        vta.insert(0x4, 2)   # set 0
        vta.insert(0x8, 3)   # set 0: evicts the 0x0 entry
        assert vta.probe(0x0) is None
        assert vta.probe(0x4) == 2
        assert vta.probe(0x8) == 3

    def test_reinsert_same_tag_refreshes(self):
        vta = make_vta(num_sets=4, assoc=2)
        vta.insert(0x0, 1)
        vta.insert(0x4, 2)
        vta.insert(0x0, 9)   # re-eviction of same tag: update in place
        vta.insert(0x8, 3)   # should evict 0x4 (LRU), not 0x0
        assert vta.probe(0x0) == 9
        assert vta.probe(0x4) is None

    def test_sets_are_independent(self):
        vta = make_vta(num_sets=4, assoc=1)
        vta.insert(0x0, 1)   # set 0
        vta.insert(0x1, 2)   # set 1
        assert vta.probe(0x0) == 1
        assert vta.probe(0x1) == 2


class TestBookkeeping:
    def test_num_entries(self):
        assert make_vta(4, 2).num_entries == 8

    def test_paper_config_matches_tda(self, baseline_geometry):
        # footnote 2: VTA associativity = cache associativity
        vta = VictimTagArray(baseline_geometry)
        assert vta.assoc == 4
        assert vta.num_entries == 128

    def test_occupancy_and_stats(self):
        vta = make_vta()
        vta.insert(0x0, 0)
        vta.insert(0x1, 0)
        assert vta.occupancy() == 2
        vta.probe(0x0)
        assert vta.occupancy() == 1
        assert vta.hits == 1
        assert vta.inserts == 2
        assert vta.probes == 1

    def test_reset(self):
        vta = make_vta()
        vta.insert(0x0, 5)
        vta.reset()
        assert vta.occupancy() == 0
        assert vta.probe(0x0) is None
