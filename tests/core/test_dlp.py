"""DLP policy end-to-end on a bare L1D (no timing)."""

from repro.cache.l1d import AccessOutcome, L1DCache, MemAccess
from repro.cache.tagarray import CacheGeometry
from repro.core.dlp import DlpPolicy


def make_cache(num_sets=4, assoc=2, **policy_kw):
    policy = DlpPolicy(**policy_kw)
    cache = L1DCache(
        CacheGeometry(num_sets=num_sets, assoc=assoc, index_fn="linear"),
        policy,
        send_fn=lambda fetch: None,
    )
    return cache, policy


def run_load(cache, block, insn_id=0):
    result = cache.access(MemAccess(block_addr=block, insn_id=insn_id))
    if result.outcome is AccessOutcome.MISS:
        cache.drain_miss_queue(8)
        cache.fill(block, 0)
    return result


class TestStructures:
    def test_vta_matches_cache_geometry(self):
        cache, policy = make_cache()
        assert policy.vta.geometry is cache.geometry
        assert policy.vta.assoc == 2

    def test_nasc_defaults_to_vta_assoc(self):
        _, policy = make_cache()
        assert policy.nasc == 2

    def test_nasc_override(self):
        _, policy = make_cache(nasc=8)
        assert policy.nasc == 8

    def test_vta_assoc_override(self):
        _, policy = make_cache(vta_assoc=4)
        assert policy.vta.assoc == 4
        assert policy.nasc == 4


class TestProtocolBehaviour:
    def test_eviction_feeds_vta(self):
        cache, policy = make_cache()
        run_load(cache, 0x0)
        run_load(cache, 0x4)
        run_load(cache, 0x8)  # evicts 0x0 into the VTA
        assert policy.vta.occupancy() == 1

    def test_vta_hit_credits_previous_owner(self):
        cache, policy = make_cache()
        run_load(cache, 0x0, insn_id=3)
        run_load(cache, 0x4, insn_id=9)
        run_load(cache, 0x8, insn_id=9)  # evicts 0x0 (owned by insn 3)
        run_load(cache, 0x0, insn_id=9)  # miss; hits the VTA
        assert policy.pdpt.entries[3].vta_hits == 1
        assert policy.pdpt.global_vta_hits == 1

    def test_tda_hit_credits_previous_toucher_and_retags(self):
        cache, policy = make_cache()
        run_load(cache, 0x0, insn_id=3)
        run_load(cache, 0x0, insn_id=7)   # hit: credit insn 3
        run_load(cache, 0x0, insn_id=11)  # hit: credit insn 7
        assert policy.pdpt.entries[3].tda_hits == 1
        assert policy.pdpt.entries[7].tda_hits == 1
        assert policy.pdpt.entries[11].tda_hits == 0

    def test_pl_decays_per_set_query(self):
        cache, policy = make_cache()
        run_load(cache, 0x0)
        line = cache.tags.probe(0x0)
        line.grant_protection(3, 15)
        run_load(cache, 0x4)  # same set: query decays PL
        assert line.protected_life == 2

    def test_hit_rewrites_pl_from_pd(self):
        cache, policy = make_cache()
        policy.pdpt.set_pd(5, 9)
        run_load(cache, 0x0, insn_id=2)
        run_load(cache, 0x0, insn_id=5)  # hit by insn 5 -> PL = PD(5)
        assert cache.tags.probe(0x0).protected_life == 9

    def test_allocate_writes_pl_from_pd(self):
        cache, policy = make_cache()
        policy.pdpt.set_pd(4, 6)
        cache.access(MemAccess(block_addr=0x0, insn_id=4))
        assert cache.tags.probe(0x0).protected_life == 6

    def test_fully_protected_set_bypasses(self):
        cache, policy = make_cache()
        run_load(cache, 0x0)
        run_load(cache, 0x4)
        for block in (0x0, 0x4):
            cache.tags.probe(block).grant_protection(15, 15)
        result = cache.access(MemAccess(block_addr=0x8))
        assert result.outcome is AccessOutcome.BYPASS
        assert policy.protected_bypasses == 1

    def test_bypass_disabled_stalls_instead(self):
        cache, policy = make_cache(bypass_enabled=False)
        run_load(cache, 0x0)
        run_load(cache, 0x4)
        for block in (0x0, 0x4):
            cache.tags.probe(block).grant_protection(15, 15)
        result = cache.access(MemAccess(block_addr=0x8))
        assert result.is_stall

    def test_bypass_query_drains_protection(self):
        # "a bypassed request also queries and consumes PL values": the
        # set-query decay runs before victim selection, so PL=2 lines
        # deflect exactly one request before the set is released
        cache, policy = make_cache()
        run_load(cache, 0x0)
        run_load(cache, 0x4)
        for block in (0x0, 0x4):
            cache.tags.probe(block).grant_protection(2, 15)
        first = cache.access(MemAccess(block_addr=0x8))   # decay 2->1, bypass
        assert first.outcome is AccessOutcome.BYPASS
        second = cache.access(MemAccess(block_addr=0x8))  # decay 1->0, allocate
        assert second.outcome is AccessOutcome.MISS

    def test_writes_do_not_touch_pdpt(self):
        cache, policy = make_cache()
        run_load(cache, 0x0, insn_id=1)
        cache.access(MemAccess(block_addr=0x0, insn_id=1, is_write=True))
        assert policy.pdpt.global_tda_hits == 0


class TestSamplingIntegration:
    def test_sample_triggers_pd_update(self):
        cache, policy = make_cache(sample_limit=10)
        for i in range(25):
            run_load(cache, (i % 3) * 4)
        total = sum(policy.pd_updates.values())
        assert total == 2
        assert policy.sampler.samples_completed == 2

    def test_thrash_raises_pd(self):
        # cyclic footprint of 3 blocks per set in a 2-way x 4-set cache:
        # per-set RD is 3 > associativity, so every reuse misses the TDA
        # but lands inside the VTA's reach -> the increase path fires
        cache, policy = make_cache(sample_limit=40)
        for rep in range(20):
            for b in range(12):
                run_load(cache, b, insn_id=1)
        assert policy.pd_updates["increase"] > 0
        assert policy.pdpt.pd(1) > 0

    def test_instruction_cap_closes_sample(self):
        cache, policy = make_cache(sample_limit=10_000, insn_sample_limit=50)
        run_load(cache, 0x0)
        policy.notify_instructions(64)
        assert policy.sampler.samples_completed == 1

    def test_stats_exported(self):
        cache, policy = make_cache()
        run_load(cache, 0x0)
        stats = policy.stats()
        for key in ("protected_bypasses", "samples_completed", "vta_hits",
                    "pd_increase", "pd_decrease", "pd_hold"):
            assert key in stats

    def test_reset_clears_state(self):
        cache, policy = make_cache()
        run_load(cache, 0x0, insn_id=1)
        run_load(cache, 0x0, insn_id=1)
        policy.pdpt.set_pd(1, 5)
        policy.reset()
        assert policy.pdpt.pd(1) == 0
        assert policy.vta.occupancy() == 0
