"""Sampling window (Section 4.1.4: 200-access samples + instruction cap)."""

import pytest

from repro.core.sampler import SampleWindow


class TestAccessSampling:
    def test_completes_at_access_limit(self):
        w = SampleWindow(access_limit=5, insn_limit=10**9)
        assert [w.tick_access() for _ in range(5)] == [False] * 4 + [True]
        assert w.samples_completed == 1

    def test_counter_resets_after_sample(self):
        w = SampleWindow(access_limit=3, insn_limit=10**9)
        for _ in range(3):
            w.tick_access()
        assert w.accesses == 0
        for _ in range(2):
            assert not w.tick_access()

    def test_paper_default_is_200(self):
        assert SampleWindow().access_limit == 200

    def test_multiple_samples(self):
        w = SampleWindow(access_limit=2, insn_limit=10**9)
        completions = sum(w.tick_access() for _ in range(10))
        assert completions == 5


class TestInstructionCap:
    def test_cap_closes_window_with_accesses(self):
        w = SampleWindow(access_limit=200, insn_limit=100)
        w.tick_access()
        assert w.tick_instructions(100)
        assert w.closed_by["instructions"] == 1

    def test_cap_without_accesses_does_nothing(self):
        # an empty window has no hit data: no PD update possible
        w = SampleWindow(access_limit=200, insn_limit=100)
        assert not w.tick_instructions(500)

    def test_instruction_counter_accumulates(self):
        w = SampleWindow(access_limit=200, insn_limit=100)
        w.tick_access()
        assert not w.tick_instructions(60)
        assert w.tick_instructions(60)

    def test_reset(self):
        w = SampleWindow(access_limit=5, insn_limit=100)
        w.tick_access()
        w.tick_instructions(10)
        w.reset()
        assert w.accesses == 0
        assert w.instructions == 0


class TestValidation:
    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            SampleWindow(access_limit=0)
        with pytest.raises(ValueError):
            SampleWindow(insn_limit=0)


class TestAlignment:
    """PD updates must stay aligned to the access_limit boundary."""

    def test_overshoot_detected(self):
        w = SampleWindow(access_limit=200)
        w.accesses = 205  # a window close was skipped upstream
        with pytest.raises(RuntimeError, match="200-access aligned"):
            w.tick_access()

    def test_exact_alignment_never_overshoots(self):
        w = SampleWindow(access_limit=200, insn_limit=10**9)
        closes = sum(1 for _ in range(1000) if w.tick_access())
        assert closes == 5
        assert w.accesses == 0
