"""Fixed-seed fuzz corpus: differential + pinned regression gate.

Twenty seeded adversarial streams (generators round-robin over
ATH/APC/APH/ABS, seeds 0..19) are each checked two ways:

* **differential** — reference vs fast engine over every scheme x
  MSHR-mode grid point must be bit-identical; a mismatch is minimized
  to its shortest failing prefix and the repro line lands in the
  assertion message;
* **pinned** — the reference result's sha256 must match
  ``tests/fuzz/corpus.json``, so an unintentional semantic change to
  either engine (which would move both in lockstep and slip past the
  differential check) still fails loudly.

Regenerate the pins after an *intentional* semantic change with::

    python -m pytest tests/fuzz -q --update-corpus

(and bump ``repro.experiments.store.SIM_VERSION``, exactly like
``--update-golden``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.experiments.fuzz as fuzz_mod
from repro.experiments.fuzz import (
    FUZZ_MODES,
    FUZZ_SCHEMES,
    FuzzCase,
    fuzz_cases,
    fuzz_config,
    run_case,
    run_fuzz,
    shrink_failing_prefix,
)
from repro.trace.record import capture_records
from repro.trace.replay import replay_records
from repro.workloads import make_workload
from repro.workloads.adversarial import register_adversarial_workloads

CORPUS_PATH = Path(__file__).parent / "corpus.json"
CORPUS_STREAMS = 20
CORPUS_SCALE = 0.5


def _case_id(case: FuzzCase) -> str:
    return f"{case.generator}-s{case.seed}"


def _check_id(scheme: str, non_blocking: bool) -> str:
    return f"{scheme}/{'non_blocking' if non_blocking else 'blocking'}"


def corpus_cases():
    return fuzz_cases(CORPUS_STREAMS, base_seed=0, scale=CORPUS_SCALE)


def build_corpus() -> dict:
    """Reference-engine fingerprints for every corpus grid point, with
    the differential check (and prefix minimization on failure) folded
    into the same pass."""
    register_adversarial_workloads()
    corpus = {}
    for case in corpus_cases():
        records = capture_records(
            make_workload(case.generator, case.scale, seed=case.seed),
            fuzz_config(case.num_sms),
        )
        checks = {}
        for non_blocking in FUZZ_MODES:
            config = fuzz_config(case.num_sms, non_blocking=non_blocking)
            for scheme in FUZZ_SCHEMES:
                ref = replay_records(iter(records), config, scheme)
                fast = replay_records(iter(records), config, scheme,
                                      engine="fast")
                ref_fp = fuzz_mod._fingerprint(ref)
                fast_fp = fuzz_mod._fingerprint(fast)
                if ref_fp != fast_fp:
                    prefix = shrink_failing_prefix(records, config, scheme)
                    pytest.fail(
                        f"engines diverged on {_case_id(case)} "
                        f"{_check_id(scheme, non_blocking)}: "
                        f"ref {ref_fp[:12]} != fast {fast_fp[:12]}; "
                        f"minimized repro: first {prefix} of "
                        f"{len(records)} records "
                        f"(repro fuzz --generators {case.generator} "
                        f"--seed {case.seed} --streams 1 "
                        f"--scale {case.scale:g} --policies {scheme})"
                    )
                checks[_check_id(scheme, non_blocking)] = ref_fp
        corpus[_case_id(case)] = {**case.describe(),
                                  "records": len(records),
                                  "checks": checks}
    return corpus


def test_corpus_differential_and_pinned(update_corpus):
    corpus = build_corpus()
    if update_corpus:
        CORPUS_PATH.write_text(
            json.dumps(corpus, indent=2, sort_keys=True) + "\n"
        )
        return
    assert CORPUS_PATH.exists(), (
        "missing tests/fuzz/corpus.json; generate with "
        "`python -m pytest tests/fuzz --update-corpus`"
    )
    pinned = json.loads(CORPUS_PATH.read_text())
    assert corpus == pinned, (
        "fuzz corpus fingerprints diverged from the pinned corpus; if "
        "the semantic change is intentional, rerun with --update-corpus "
        "and bump SIM_VERSION"
    )


def test_corpus_shape():
    """The pinned corpus covers the promised grid: 20 streams, all four
    generators, every scheme x mode point, non-trivial streams."""
    pinned = json.loads(CORPUS_PATH.read_text())
    assert len(pinned) == CORPUS_STREAMS
    generators = {entry["generator"] for entry in pinned.values()}
    assert generators == {"ATH", "APC", "APH", "ABS"}
    expected_checks = {
        _check_id(s, nb) for s in FUZZ_SCHEMES for nb in FUZZ_MODES
    }
    for case_id, entry in pinned.items():
        assert set(entry["checks"]) == expected_checks, case_id
        assert entry["records"] > 50, case_id
    # blocking and non-blocking must be *different* semantics somewhere,
    # or the mode axis of the corpus is vacuous
    assert any(
        entry["checks"][_check_id(s, False)]
        != entry["checks"][_check_id(s, True)]
        for entry in pinned.values()
        for s in FUZZ_SCHEMES
    )


def test_run_fuzz_smoke_clean():
    """The CLI-facing driver agrees: a small run reports zero
    divergences and counts the grid it covered."""
    report = run_fuzz(streams=4, scale=0.25)
    assert report.ok
    assert report.cases == 4
    assert report.checks == 4 * len(FUZZ_SCHEMES) * len(FUZZ_MODES)
    assert report.records > 0


class TestShrinker:
    """The minimizer itself, against synthetic divergence oracles."""

    def _patch(self, monkeypatch, predicate):
        def fake_diverges(records, config, scheme):
            return ("refsha", "fastsha") if predicate(len(records)) else None

        monkeypatch.setattr(fuzz_mod, "_diverges", fake_diverges)

    def test_finds_exact_threshold(self, monkeypatch):
        for threshold in (1, 2, 37, 100):
            self._patch(monkeypatch, lambda n, t=threshold: n >= t)
            assert shrink_failing_prefix(list(range(100)), None, "x") \
                == threshold

    def test_non_monotone_still_returns_failing_prefix(self, monkeypatch):
        # diverges only on the full stream: shrinker must not "minimize"
        # to a passing prefix
        self._patch(monkeypatch, lambda n: n == 100)
        assert shrink_failing_prefix(list(range(100)), None, "x") == 100

    def test_divergence_carries_minimized_repro(self, monkeypatch):
        self._patch(monkeypatch, lambda n: n >= 10)
        case = FuzzCase(generator="APC", seed=3, scale=0.25)
        found = run_case(case, schemes=("dlp",), modes=(True,))
        assert len(found) == 1
        div = found[0].to_dict()
        assert div["prefix"] == 10
        assert div["scheme"] == "dlp"
        assert div["non_blocking"] is True
        assert "--generators APC" in div["repro"]
        assert "--seed 3" in div["repro"]
