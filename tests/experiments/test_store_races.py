"""Store races: ls/clear/prune vs. a concurrent pruner.

A cluster shares one store directory across workers and any number of
``repro store prune`` invocations; every path that walks the directory
must tolerate a file vanishing between ``glob`` and the subsequent
``stat``/``read``/``unlink``.  These tests inject the race
deterministically by making the first touch of a ``.json`` file raise
``FileNotFoundError``, exactly as if another process pruned it.
"""

from __future__ import annotations

from pathlib import Path

from repro.cache.l1d import L1DStats
from repro.experiments.store import ResultStore
from repro.gpu.simulator import SimResult


def stub_result(cycles: int = 100) -> SimResult:
    return SimResult(cycles=cycles, thread_insns=10, warp_insns=5,
                     l1d=L1DStats(), interconnect={}, l2={}, dram={},
                     policy={})


def seeded(tmp_path, entries: int = 3) -> ResultStore:
    store = ResultStore(tmp_path)
    for i in range(entries):
        store.put(f"{i:064d}", stub_result(cycles=i + 1),
                  meta={"abbr": f"W{i}"})
    return store


def raise_enoent_once(monkeypatch, method: str):
    """First call of Path.<method> on a .json file raises ENOENT."""
    real = getattr(Path, method)
    raced = []

    def racy(self, *args, **kwargs):
        if self.suffix == ".json" and not raced:
            raced.append(self)
            raise FileNotFoundError(self)
        return real(self, *args, **kwargs)

    monkeypatch.setattr(Path, method, racy)
    return raced


class TestLsRace:
    def test_ls_skips_entry_deleted_after_glob(self, tmp_path, monkeypatch):
        store = seeded(tmp_path, entries=3)
        raced = raise_enoent_once(monkeypatch, "read_text")
        entries = store.ls()
        assert len(raced) == 1
        assert len(entries) == 2             # survivor entries intact
        assert all("abbr" in e for e in entries)


class TestClearRace:
    def test_clear_counts_only_files_it_unlinked(self, tmp_path,
                                                 monkeypatch):
        store = seeded(tmp_path, entries=3)
        raced = raise_enoent_once(monkeypatch, "unlink")
        assert store.clear() == 2
        assert len(raced) == 1


class TestPruneRace:
    def test_prune_skips_entry_deleted_before_stat(self, tmp_path,
                                                   monkeypatch):
        store = seeded(tmp_path, entries=3)
        raced = raise_enoent_once(monkeypatch, "stat")
        # max_entries=0 wants everything gone; the raced entry is
        # invisible this round and simply survives to the next pruner
        removed = store.prune(max_entries=0)
        assert len(raced) == 1
        assert removed == 2

    def test_prune_tolerates_unlink_race(self, tmp_path, monkeypatch):
        store = seeded(tmp_path, entries=3)
        raced = raise_enoent_once(monkeypatch, "unlink")
        removed = store.prune(max_entries=0)
        assert len(raced) == 1
        assert removed == 2                  # the raced unlink counts 0
