"""Experiment runner plumbing."""

import pytest

from repro.experiments.runner import (
    FIG10_SCHEMES,
    SCHEME_LABELS,
    TRAFFIC_SCHEMES,
    build_simulator,
    harness_config,
    run_workload,
)


class TestSchemes:
    def test_fig10_scheme_order_matches_legend(self):
        assert FIG10_SCHEMES == (
            "baseline", "stall_bypass", "global_protection", "dlp", "32kb"
        )

    def test_traffic_schemes_exclude_capacity(self):
        assert "32kb" not in TRAFFIC_SCHEMES

    def test_labels_match_paper(self):
        assert SCHEME_LABELS["baseline"] == "16KB(Baseline)"
        assert SCHEME_LABELS["dlp"] == "DLP"


class TestBuildSimulator:
    def test_policy_scheme(self):
        sim = build_simulator("SS", "dlp", scale=0.25)
        assert sim.sms[0].policy.name == "dlp"
        assert sim.config.l1d.assoc == 4

    def test_capacity_scheme_uses_baseline_policy(self):
        sim = build_simulator("SS", "32kb", scale=0.25)
        assert sim.sms[0].policy.name == "baseline"
        assert sim.config.l1d.assoc == 8

    def test_policy_kwargs_forwarded(self):
        sim = build_simulator("SS", "dlp", scale=0.25, sample_limit=77)
        assert sim.sms[0].policy.sampler.access_limit == 77

    def test_each_sm_gets_own_policy_instance(self):
        sim = build_simulator("SS", "dlp", scale=0.25)
        assert sim.sms[0].policy is not sim.sms[1].policy


class TestHarnessConfig:
    def test_default_is_four_sms(self):
        cfg = harness_config()
        assert cfg.num_sms == 4
        assert cfg.num_partitions == 3
        # per-SM machine identical to Table 1
        assert cfg.l1d.size_bytes == 16 * 1024


class TestRunWorkload:
    def test_small_run_completes(self):
        result = run_workload("GEMM", "baseline", harness_config(2), scale=0.5)
        assert result.cycles > 0
        assert result.thread_insns > 0
        assert not result.truncated

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            run_workload("NOPE")
