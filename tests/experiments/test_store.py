"""Result store: keys, round-trips, counters, versioning."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import harness_config, run_workload
from repro.experiments.store import (
    SIM_VERSION,
    MemoryStore,
    ResultStore,
    canonical_json,
    cell_fingerprint,
    cell_key,
    open_store,
    replay_cell_key,
    trace_key,
)
from repro.gpu.simulator import SimResult


@pytest.fixture(scope="module")
def small_result() -> SimResult:
    return run_workload("MM", "dlp", harness_config(1), scale=0.1)


class TestCellKey:
    def test_key_is_stable(self):
        cfg = harness_config(1)
        assert cell_key("MM", "dlp", cfg) == cell_key("MM", "dlp", cfg)

    def test_key_normalises_nothing_but_hashes_everything(self):
        cfg = harness_config(1)
        base = cell_key("MM", "dlp", cfg)
        assert cell_key("MM", "baseline", cfg) != base
        assert cell_key("HS", "dlp", cfg) != base
        assert cell_key("MM", "dlp", harness_config(2)) != base
        assert cell_key("MM", "dlp", cfg, scale=0.5) != base
        assert cell_key("MM", "dlp", cfg, seed=1) != base
        assert cell_key("MM", "dlp", cfg, max_cycles=10) != base
        assert cell_key("MM", "dlp", cfg, policy_kwargs={"sample_limit": 9}) != base

    def test_abbr_case_insensitive(self):
        cfg = harness_config(1)
        assert cell_key("mm", "dlp", cfg) == cell_key("MM", "dlp", cfg)

    def test_version_stamp_isolates_semantic_changes(self):
        cfg = harness_config(1)
        assert cell_key("MM", "dlp", cfg) != cell_key(
            "MM", "dlp", cfg, sim_version=SIM_VERSION + "-next"
        )

    def test_fingerprint_covers_config_fields(self):
        fp = cell_fingerprint("MM", "dlp", harness_config(1))
        assert fp["config"]["num_sms"] == 1
        assert fp["config"]["l1d"]["assoc"] == 4
        assert fp["sim_version"] == SIM_VERSION

    def test_policy_kwarg_order_is_irrelevant(self):
        cfg = harness_config(1)
        assert cell_key(
            "MM", "dlp", cfg, policy_kwargs={"a": 1, "b": 2}
        ) == cell_key("MM", "dlp", cfg, policy_kwargs={"b": 2, "a": 1})


class TestNonBlockingKeys:
    """``non_blocking`` is cache *semantics* (unlike ``--engine``): it
    must enter cell identities when on, and vanish without a trace when
    off so every pre-existing blocking-mode key survives."""

    #: Blocking-mode keys for (MM, dlp, harness_config(1)), pinned at
    #: the commit that introduced the non-blocking flag.  If these move,
    #: every result store in the wild silently cold-starts.
    PINNED_CELL_KEY = (
        "5a5a596fddf045eacdce9c6c1d006aa75933b86319335a4d0adda8d9c4080775"
    )
    PINNED_REPLAY_KEY = (
        "f87993b9b596e24aa53d7e46d1c3978da6980caa7c9fc9d81e19bbf80c717143"
    )
    PINNED_TRACE_KEY = (
        "a3d5bb0ff8603cee2d2b135fe438da8465957d5fc43ab9ce5d9d16dcbc4a0393"
    )

    def test_blocking_keys_are_pinned(self):
        cfg = harness_config(1)
        assert cell_key("MM", "dlp", cfg) == self.PINNED_CELL_KEY
        assert replay_cell_key("MM", "dlp", cfg) == self.PINNED_REPLAY_KEY
        assert trace_key("MM", cfg) == self.PINNED_TRACE_KEY

    def test_non_blocking_changes_cell_and_replay_keys(self):
        cfg = harness_config(1)
        nb = cfg.with_l1d(non_blocking=True)
        assert cell_key("MM", "dlp", nb) != self.PINNED_CELL_KEY
        assert replay_cell_key("MM", "dlp", nb) != self.PINNED_REPLAY_KEY

    def test_trace_key_is_mode_independent(self):
        """Traces are captured upstream of the L1D, so the same recorded
        stream serves both modes under one key."""
        cfg = harness_config(1)
        assert trace_key("MM", cfg.with_l1d(non_blocking=True)) \
            == self.PINNED_TRACE_KEY

    def test_blocking_fingerprint_has_no_non_blocking_field(self):
        fp = cell_fingerprint("MM", "dlp", harness_config(1))
        assert "non_blocking" not in fp["config"]["l1d"]
        nb_fp = cell_fingerprint(
            "MM", "dlp", harness_config(1).with_l1d(non_blocking=True)
        )
        assert nb_fp["config"]["l1d"]["non_blocking"] is True


class TestSerialization:
    def test_simresult_roundtrip_is_lossless(self, small_result):
        reloaded = SimResult.from_dict(
            json.loads(json.dumps(small_result.to_dict()))
        )
        assert reloaded == small_result
        assert canonical_json(reloaded.to_dict()) == canonical_json(
            small_result.to_dict()
        )

    def test_l1d_raw_dict_excludes_derived_metrics(self, small_result):
        raw = small_result.l1d.to_raw_dict()
        assert "hit_rate" not in raw
        assert "loads" in raw and "stalls" in raw


@pytest.mark.parametrize("make_store", [
    lambda tmp: MemoryStore(),
    lambda tmp: ResultStore(tmp),
], ids=["memory", "disk"])
class TestStoreInterface:
    def test_get_put_roundtrip(self, make_store, tmp_path, small_result):
        store = make_store(tmp_path)
        key = "k" * 64
        assert store.get(key) is None
        store.put(key, small_result, meta={"abbr": "MM"})
        assert store.get(key) == small_result
        assert key in store
        assert len(store) == 1

    def test_counters(self, make_store, tmp_path, small_result):
        store = make_store(tmp_path)
        store.get("absent")
        store.put("k1", small_result)
        store.get("k1")
        assert store.stats.as_dict() == {"hits": 1, "misses": 1, "puts": 1}

    def test_ls_and_clear(self, make_store, tmp_path, small_result):
        store = make_store(tmp_path)
        store.put("b" * 64, small_result, meta={"abbr": "MM", "scheme": "dlp"})
        store.put("a" * 64, small_result, meta={"abbr": "HS", "scheme": "dlp"})
        entries = store.ls()
        assert [e["key"] for e in entries] == ["a" * 64, "b" * 64]
        assert entries[0]["abbr"] == "HS"
        assert store.clear() == 2
        assert len(store) == 0


class TestDiskStore:
    def test_persists_across_instances(self, tmp_path, small_result):
        ResultStore(tmp_path).put("k" * 64, small_result)
        assert ResultStore(tmp_path).get("k" * 64) == small_result

    def test_torn_payload_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / ("k" * 64 + ".json")).write_text("{not json")
        assert store.get("k" * 64) is None
        assert store.ls() == []

    def test_open_store(self, tmp_path):
        assert isinstance(open_store(None), MemoryStore)
        disk = open_store(str(tmp_path / "sub"))
        assert isinstance(disk, ResultStore)
        assert disk.root.is_dir()
