"""Figure drivers (cheap paths; timing figures run on small subsets)."""

import pytest

from repro.experiments import figures


class TestStaticFigures:
    def test_table1_render(self):
        out = figures.render_table1()
        assert "16KB, 32sets, 4-ways, Hash index" in out
        assert "177.4 GB/s" in out

    def test_table2_render(self):
        out = figures.render_table2()
        assert "Breadth-First Search" in out
        assert "Polybench" in out

    def test_overhead_render_shows_paper_percent(self):
        assert "7.48%" in figures.render_overhead()

    def test_fig2_reproduces_rd_3(self):
        data = figures.fig2_data()
        assert data["rds"] == [None, None, None, 3]
        assert "3" in figures.render_fig2()

    def test_fig6_sorted_by_ratio(self):
        data = figures.fig6_data()
        ratios = [c.mem_access_ratio for c in data]
        assert ratios == sorted(ratios)

    def test_fig6_render(self):
        assert "threshold" in figures.render_fig6()


class TestStreamFigures:
    def test_fig3_subset(self):
        data = figures.fig3_data(apps=("SC", "KM"), num_sms=2)
        assert set(data) == {"SC", "KM"}
        for fracs in data.values():
            assert sum(fracs) == pytest.approx(1.0)

    def test_fig3_sc_is_short_km_is_long(self):
        # the paper's Fig. 3 contrast: SC short-RD heavy, KM longer
        data = figures.fig3_data(apps=("SC", "KM"), num_sms=2)
        assert data["SC"][0] > data["KM"][0]

    def test_fig4_subset_monotone(self):
        data = figures.fig4_data(apps=("SS",), num_sms=2)
        rates = data["SS"]
        assert rates[16] >= rates[32] >= rates[64]

    def test_fig7_has_per_insn_rows(self):
        data = figures.fig7_data(num_sms=2)
        assert len(data) >= 5  # BFS has ~9 static memory instructions
        assert all(k.startswith("insn") for k in data)

    def test_render_fig3(self):
        out = figures.render_fig3(figures.fig3_data(apps=("SC",), num_sms=2))
        assert "RD 1~4" in out


class TestTimingFigures:
    @pytest.fixture(scope="class")
    def fig10_subset(self):
        return figures.fig10_data(apps=("SS",), num_sms=2)

    def test_fig10_normalized_to_baseline(self, fig10_subset):
        per_app, means, labels = fig10_subset
        assert per_app["SS"]["16KB(Baseline)"] == pytest.approx(1.0)
        assert labels[0] == "16KB(Baseline)"

    def test_fig10_gmeans_grouped(self, fig10_subset):
        _, means, _ = fig10_subset
        assert "CI" in means  # SS is a CI app
        assert "CS" not in means

    def test_fig11a_traffic_normalized(self):
        per_app, _, labels = figures.fig11a_data(apps=("SS",), num_sms=2)
        assert per_app["SS"]["16KB(Baseline)"] == pytest.approx(1.0)
        assert "32KB" not in labels

    def test_render_policy_figure(self, fig10_subset):
        out = figures.render_policy_figure(fig10_subset, "Fig. 10")
        assert out.startswith("Fig. 10")
        assert "G.MEAN CI" in out
