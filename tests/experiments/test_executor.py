"""Sweep executor unit behaviour (the differential oracle lives in
tests/integration/test_executor_differential.py)."""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.experiments.executor import Cell, SweepExecutor
from repro.experiments.store import MemoryStore, ResultStore


class TestCell:
    def test_make_normalises(self):
        cell = Cell.make("mm", "dlp", num_sms=1, b=2, a=1)
        assert cell.abbr == "MM"
        assert cell.policy_kwargs == (("a", 1), ("b", 2))

    def test_cells_are_hashable_and_comparable(self):
        assert Cell.make("MM", "dlp") == Cell.make("mm", "dlp")
        assert len({Cell.make("MM", "dlp"), Cell.make("MM", "dlp")}) == 1

    def test_resolved_config_defaults_to_harness_machine(self):
        assert Cell.make("MM", "dlp", num_sms=2).resolved_config() == (
            runner.harness_config(2)
        )

    def test_explicit_config_wins(self):
        cfg = runner.harness_config(1).with_l1d(assoc=8)
        cell = Cell.make("MM", "baseline", config=cfg)
        assert cell.resolved_config() is cfg
        assert cell.key() != Cell.make("MM", "baseline").key()


class TestSweepShape:
    def test_run_sweep_nests_by_app_then_scheme(self):
        executor = SweepExecutor(MemoryStore())
        out = executor.run_sweep(
            ["MM", "HS"], ["baseline", "dlp"], num_sms=1, scale=0.1
        )
        assert set(out) == {"MM", "HS"}
        assert set(out["MM"]) == {"baseline", "dlp"}
        assert executor.stats.simulated == 4

    def test_sweep_reuses_store_across_calls(self):
        executor = SweepExecutor(MemoryStore())
        executor.run_sweep(["MM"], ["baseline"], num_sms=1, scale=0.1)
        executor.run_sweep(["MM"], ["baseline"], num_sms=1, scale=0.1)
        assert executor.stats.simulated == 1
        assert executor.stats.store_hits == 1


class TestRunnerWiring:
    def test_run_cell_goes_through_executor_store(self, tmp_path):
        previous = runner.configure(store=str(tmp_path), jobs=1)
        try:
            r1 = runner.run_cell("MM", "baseline", num_sms=1)
            r2 = runner.run_cell("MM", "baseline", num_sms=1)
            executor = runner.get_executor()
            assert isinstance(executor.store, ResultStore)
            assert executor.stats.simulated == 1
            assert executor.stats.store_hits == 1
            assert r1 == r2
        finally:
            runner.set_executor(previous)

    def test_clear_cache_clears_active_store(self):
        previous = runner.set_executor(SweepExecutor(MemoryStore()))
        try:
            runner.run_cell("MM", "baseline", num_sms=1)
            assert len(runner.get_executor().store) == 1
            runner.clear_cache()
            assert len(runner.get_executor().store) == 0
        finally:
            runner.set_executor(previous)

    def test_set_executor_returns_previous(self):
        ex = SweepExecutor(MemoryStore())
        prev = runner.set_executor(ex)
        try:
            assert runner.get_executor() is ex
        finally:
            assert runner.set_executor(prev) is ex


class TestJobs:
    def test_jobs_floor_is_one(self):
        assert SweepExecutor(jobs=0).jobs == 1
        assert SweepExecutor(jobs=-3).jobs == 1

    def test_single_pending_cell_skips_the_pool(self):
        # jobs=2 with one miss must not pay pool startup; behavioural
        # proxy: the result still matches a plain serial run.
        pooled = SweepExecutor(MemoryStore(), jobs=2)
        serial = SweepExecutor(MemoryStore(), jobs=1)
        cell = Cell.make("MM", "baseline", num_sms=1, scale=0.1)
        assert pooled.run_cell(cell) == serial.run_cell(cell)
