"""Worker failures carry the failing cell's content-addressed identity."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import executor as executor_mod
from repro.experiments.executor import (
    Cell,
    CellExecutionError,
    SweepExecutor,
)
from repro.experiments.store import MemoryStore


def _boom(cell):
    raise RuntimeError(f"worker died on {cell.abbr}")


class TestSerialPath:
    def test_failure_wraps_cell_identity(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "simulate_cell", _boom)
        executor = SweepExecutor(MemoryStore(), jobs=1)
        cell = Cell.make("MM", "dlp", num_sms=1, scale=0.1)
        with pytest.raises(CellExecutionError) as excinfo:
            executor.run_cell(cell)
        exc = excinfo.value
        assert exc.cell == cell
        assert exc.key == cell.key()
        assert isinstance(exc.cause, RuntimeError)
        message = str(exc)
        assert cell.key()[:12] in message
        assert "abbr=MM" in message and "scheme=dlp" in message
        assert "worker died on MM" in message

    def test_payload_is_the_full_fingerprint(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "simulate_cell", _boom)
        executor = SweepExecutor(MemoryStore(), jobs=1)
        cell = Cell.make("HS", "baseline", num_sms=2, seed=3)
        with pytest.raises(CellExecutionError) as excinfo:
            executor.run_cell(cell)
        payload = excinfo.value.payload()
        assert payload["key"] == cell.key()
        assert payload["fingerprint"] == cell.fingerprint()
        assert payload["fingerprint"]["config"]["num_sms"] == 2
        assert payload["error"] == "RuntimeError: worker died on HS"

    def test_only_the_bad_cell_is_blamed(self, monkeypatch):
        real = executor_mod.simulate_cell

        def fail_dlp(cell):
            if cell.scheme == "dlp":
                raise ValueError("dlp policy exploded")
            return real(cell)

        monkeypatch.setattr(executor_mod, "simulate_cell", fail_dlp)
        executor = SweepExecutor(MemoryStore(), jobs=1)
        with pytest.raises(CellExecutionError) as excinfo:
            executor.run_sweep(["MM"], ["baseline", "dlp"],
                               num_sms=1, scale=0.1)
        assert excinfo.value.cell.scheme == "dlp"
        assert "ValueError: dlp policy exploded" in str(excinfo.value)


def _unpicklable_failure(cell):
    # defined at module scope so the *cell* pickles into the pool fine;
    # the failure happens inside the worker
    raise RuntimeError(f"pool worker died on {cell.abbr}/{cell.scheme}")


class TestParallelPath:
    def test_pool_failure_names_the_cell_not_the_pool(self, monkeypatch):
        """jobs>=2 goes through ProcessPoolExecutor; the raised error
        must still identify the cell, not be a bare pool traceback."""
        monkeypatch.setattr(
            executor_mod, "simulate_cell", _unpicklable_failure
        )
        executor = SweepExecutor(MemoryStore(), jobs=2)
        cells = [
            Cell.make("MM", "baseline", num_sms=1, scale=0.1),
            Cell.make("MM", "dlp", num_sms=1, scale=0.1),
        ]
        with pytest.raises(CellExecutionError) as excinfo:
            executor.run_cells(cells)
        exc = excinfo.value
        assert exc.cell in cells
        assert exc.key == exc.cell.key()
        assert "pool worker died on" in str(exc)


class TestCliExitCode:
    def test_sweep_failure_exits_3_with_fingerprint(self, monkeypatch,
                                                    capsys):
        monkeypatch.setattr(executor_mod, "simulate_cell", _boom)
        code = main(["sweep", "--apps", "MM", "--schemes", "baseline",
                     "--sms", "1", "--scale", "0.1"])
        assert code == 3
        err = capsys.readouterr().err
        assert "worker died on MM" in err
        # the fingerprint JSON follows the message on stderr
        assert '"abbr": "MM"' in err
        assert '"scheme": "baseline"' in err
        assert '"sim_version"' in err
