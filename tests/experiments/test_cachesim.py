"""Functional simulation path (streams, RDD profiling, capacity sweep)."""

import pytest

from repro.experiments.cachesim import capacity_sweep, interleaved_streams, profile_reuse
from repro.gpu.config import GPUConfig, L1DConfig
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def func_config():
    return GPUConfig(num_sms=2, num_partitions=2)


@pytest.fixture(scope="module")
def small_workload():
    return make_workload("SS", scale=0.25)


class TestInterleavedStreams:
    def test_emits_every_request(self, func_config, small_workload):
        stream = list(interleaved_streams(small_workload, func_config))
        expected = small_workload.static_stats()["mem_requests"]
        assert len(stream) == expected

    def test_sm_ids_in_range(self, func_config, small_workload):
        for sm, block, pc, is_write in interleaved_streams(small_workload, func_config):
            assert 0 <= sm < func_config.num_sms

    def test_ctas_distributed_round_robin(self, func_config, small_workload):
        sms = {sm for sm, *_ in interleaved_streams(small_workload, func_config)}
        assert sms == {0, 1}

    def test_deterministic(self, func_config):
        a = list(interleaved_streams(make_workload("MM", 0.5), func_config))
        b = list(interleaved_streams(make_workload("MM", 0.5), func_config))
        assert a == b


class TestProfileReuse:
    def test_produces_rdd(self, func_config, small_workload):
        profiler = profile_reuse(small_workload, func_config)
        assert profiler.reuses > 0
        assert sum(profiler.overall_fractions()) == pytest.approx(1.0)

    def test_per_pc_histograms_present(self, func_config, small_workload):
        profiler = profile_reuse(small_workload, func_config)
        assert len(profiler.per_pc) >= 1


class TestCapacitySweep:
    def test_bigger_cache_never_worse(self, func_config, small_workload):
        sweep = capacity_sweep(small_workload, (16, 32, 64), func_config)
        assert (
            sweep[16]["reuse_miss_rate"]
            >= sweep[32]["reuse_miss_rate"]
            >= sweep[64]["reuse_miss_rate"]
        )

    def test_capacities_see_identical_streams(self, func_config, small_workload):
        sweep = capacity_sweep(small_workload, (16, 32), func_config)
        assert sweep[16]["accesses"] == sweep[32]["accesses"]
        assert sweep[16]["compulsory"] == sweep[32]["compulsory"]

    def test_compulsory_excluded(self, func_config, small_workload):
        sweep = capacity_sweep(small_workload, (16,), func_config)
        stats = sweep[16]
        assert stats["reuse_accesses"] == stats["accesses"] - stats["compulsory"]
