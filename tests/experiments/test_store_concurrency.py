"""Concurrent and crash-interrupted store access.

The atomic-put contract: a reader sharing a store directory with any
number of writers — including writers that die mid-``put`` — only ever
observes a missing entry or one complete JSON payload, never a torn
one.  Exercised three ways: an in-process exception mid-write, a
subprocess SIGKILLed inside ``put``, and two real processes hammering
the same key.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache.l1d import L1DStats
from repro.experiments.store import ResultStore
from repro.gpu.simulator import SimResult

KEY = "k" * 64


def stub_result(cycles: int = 123) -> SimResult:
    return SimResult(cycles=cycles, thread_insns=10, warp_insns=5,
                     l1d=L1DStats(), interconnect={}, l2={}, dram={},
                     policy={})


class ExplodingResult(SimResult):
    """Raises partway through serialization — an interrupted put."""

    def to_dict(self):
        raise RuntimeError("simulated crash mid-put")


class TestInterruptedPut:
    def test_failed_put_leaves_no_entry_and_no_staging_file(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(RuntimeError):
            store.put(KEY, ExplodingResult(
                cycles=1, thread_insns=1, warp_insns=1, l1d=L1DStats(),
                interconnect={}, l2={}, dram={}, policy={},
            ))
        assert KEY not in store
        assert store.get(KEY) is None
        assert list(tmp_path.iterdir()) == []

    def test_store_recovers_after_failed_put(self, tmp_path):
        store = ResultStore(tmp_path)
        try:
            store.put(KEY, ExplodingResult(
                cycles=1, thread_insns=1, warp_insns=1, l1d=L1DStats(),
                interconnect={}, l2={}, dram={}, policy={},
            ))
        except RuntimeError:
            pass
        store.put(KEY, stub_result(cycles=7))
        assert store.get(KEY).cycles == 7

    def test_tmp_orphans_are_invisible_to_reads(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, stub_result())
        # a crashed writer's leftover staging file
        orphan = tmp_path / f"{'x' * 64}.tmp.99999"
        orphan.write_text("{\"truncat")
        assert len(store) == 1
        assert [e["key"] for e in store.ls()] == [KEY]
        assert store.get("x" * 64) is None


KILL_SCRIPT = """\
import os, sys, time
sys.path.insert(0, {src!r})
from repro.cache.l1d import L1DStats
from repro.gpu.simulator import SimResult
from repro.experiments.store import ResultStore

def stall(fd):                 # put() fsyncs the staged tmp before publish
    print("INSIDE_PUT", flush=True)
    time.sleep(30)

os.fsync = stall
store = ResultStore({root!r})
store.put({key!r}, SimResult(
    cycles=5, thread_insns=1, warp_insns=1, l1d=L1DStats(),
    interconnect={{}}, l2={{}}, dram={{}}, policy={{}},
))
"""


class TestKilledWriter:
    def test_sigkill_mid_put_leaves_only_valid_json(self, tmp_path):
        """SIGKILL a writer while it is inside ``put`` (staged tmp
        written, not yet published); the directory must hold nothing a
        reader could mis-parse."""
        repo = Path(__file__).resolve().parents[2]
        script = KILL_SCRIPT.format(
            src=str(repo / "src"), root=str(tmp_path), key=KEY,
        )
        env = dict(os.environ, PYTHONPATH=str(repo / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, env=env, text=True,
        )
        try:
            line = proc.stdout.readline()          # blocks until inside put
            assert "INSIDE_PUT" in line
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        store = ResultStore(tmp_path)
        assert store.get(KEY) is None              # never a torn entry
        assert list(tmp_path.glob("*.json")) == [] # nothing was published
        assert list(tmp_path.glob("*.tmp.*")) != []  # the orphaned stage
        assert store.ls() == []                    # ... which ls ignores
        # a later writer publishes over the orphan without issue
        store.put(KEY, stub_result(cycles=9))
        assert store.get(KEY).cycles == 9


def _writer(root: str, key: str, cycles: int, rounds: int) -> None:
    store = ResultStore(root)
    for _ in range(rounds):
        store.put(key, stub_result(cycles=cycles))


def _reader(root: str, key: str, rounds: int, out) -> None:
    store = ResultStore(root)
    seen = set()
    for _ in range(rounds):
        result = store.get(key)
        if result is not None:
            seen.add(result.cycles)
    out.put(sorted(seen))


class TestTwoProcesses:
    def test_concurrent_put_get_same_key_never_corrupts(self, tmp_path):
        """Two writer processes overwrite one key while a reader polls:
        every successful read is one of the two complete payloads."""
        ctx = multiprocessing.get_context("spawn")
        out = ctx.Queue()
        writers = [
            ctx.Process(target=_writer,
                        args=(str(tmp_path), KEY, cycles, 50))
            for cycles in (111, 222)
        ]
        reader = ctx.Process(target=_reader,
                             args=(str(tmp_path), KEY, 200, out))
        for proc in writers + [reader]:
            proc.start()
        for proc in writers + [reader]:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        seen = out.get(timeout=10)
        assert set(seen) <= {111, 222}
        # the final state is one complete payload
        final = ResultStore(tmp_path).get(KEY)
        assert final is not None and final.cycles in (111, 222)
        assert list(tmp_path.glob("*.tmp.*")) == []
