"""Store pruning: age and count eviction, plus the CLI verb."""

from __future__ import annotations

import os

import pytest

from repro.cache.l1d import L1DStats
from repro.cli import _parse_age, main
from repro.experiments.store import ResultStore
from repro.gpu.simulator import SimResult
from repro.utils import wallclock


def stub_result(cycles: int = 100) -> SimResult:
    return SimResult(cycles=cycles, thread_insns=10, warp_insns=5,
                     l1d=L1DStats(), interconnect={}, l2={}, dram={},
                     policy={})


def seed_store(root, ages, base_now=1_000_000.0) -> ResultStore:
    """A store with one entry per ``ages`` item, mtime ``base_now - age``."""
    store = ResultStore(root)
    for i, age in enumerate(ages):
        key = f"{i:064d}"
        store.put(key, stub_result(cycles=i + 1), meta={"abbr": f"W{i}"})
        stamp = base_now - age
        os.utime(store._path(key), (stamp, stamp))
    return store


NOW = 1_000_000.0


class TestPruneByAge:
    def test_drops_only_entries_older_than_max_age(self, tmp_path):
        store = seed_store(tmp_path, ages=[10, 100, 5000, 90000])
        removed = store.prune(max_age=3600, now=NOW)
        assert removed == 2
        assert len(store) == 2
        keys = {e["key"] for e in store.ls()}
        assert keys == {f"{0:064d}", f"{1:064d}"}

    def test_surviving_entries_still_read_back(self, tmp_path):
        store = seed_store(tmp_path, ages=[10, 90000])
        store.prune(max_age=3600, now=NOW)
        assert store.get(f"{0:064d}").cycles == 1

    def test_zero_age_drops_everything(self, tmp_path):
        store = seed_store(tmp_path, ages=[1, 2, 3])
        assert store.prune(max_age=0, now=NOW) == 3
        assert len(store) == 0


class TestPruneByCount:
    def test_keeps_newest_n(self, tmp_path):
        store = seed_store(tmp_path, ages=[40, 30, 20, 10])
        removed = store.prune(max_entries=2)
        assert removed == 2
        # entries 2 and 3 are the newest (smallest age)
        assert {e["key"] for e in store.ls()} == {f"{2:064d}", f"{3:064d}"}

    def test_max_entries_zero_empties_the_store(self, tmp_path):
        store = seed_store(tmp_path, ages=[1, 2])
        assert store.prune(max_entries=0) == 2
        assert len(store) == 0

    def test_under_limit_is_untouched(self, tmp_path):
        store = seed_store(tmp_path, ages=[1, 2])
        assert store.prune(max_entries=10) == 0
        assert len(store) == 2


class TestPruneCombined:
    def test_age_then_count(self, tmp_path):
        # 5 entries; age bound kills 2, count bound trims survivors to 2
        store = seed_store(tmp_path, ages=[10, 20, 30, 90000, 95000])
        removed = store.prune(max_age=3600, max_entries=2, now=NOW)
        assert removed == 3
        assert {e["key"] for e in store.ls()} == {f"{0:064d}", f"{1:064d}"}

    def test_no_bounds_is_a_noop(self, tmp_path):
        store = seed_store(tmp_path, ages=[1])
        assert store.prune() == 0
        assert len(store) == 1


class TestParseAge:
    @pytest.mark.parametrize("text,expected", [
        ("90", 90.0), ("90s", 90.0), ("30m", 1800.0),
        ("12h", 43200.0), ("7d", 604800.0), ("1.5h", 5400.0),
    ])
    def test_forms(self, text, expected):
        assert _parse_age(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "7w", "-5"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            _parse_age(text)


class TestCli:
    def test_store_prune_by_age(self, tmp_path, capsys):
        seed_store(tmp_path, ages=[10, 90000], base_now=wallclock.now())
        code = main(["store", "prune", "--store", str(tmp_path),
                     "--max-age", "1h"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned 1 entries" in out and "(1 remain)" in out

    def test_store_prune_by_count(self, tmp_path, capsys):
        seed_store(tmp_path, ages=[30, 20, 10])
        assert main(["store", "prune", "--store", str(tmp_path),
                     "--max-entries", "1"]) == 0
        assert "pruned 2 entries" in capsys.readouterr().out

    def test_prune_without_bounds_errors(self, tmp_path, capsys):
        assert main(["store", "prune", "--store", str(tmp_path)]) == 2
        assert "max-age" in capsys.readouterr().err
