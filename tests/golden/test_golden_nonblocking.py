"""Golden snapshots for the non-blocking L1D, plus a seed-integrity gate.

The same fixed synthetic stream as ``test_golden_traces`` drives a
non-blocking L1D (``non_blocking=True``) under the windowed-fill
discipline of the replay engine: a miss stays outstanding for
:data:`NB_WINDOW` accesses before its fill lands, so RESERVED lines
persist between accesses, secondary misses merge in the MSHR at word
granularity, and MSHR/miss-queue pressure stalls are real (the table is
sized below the window on purpose).  One snapshot per policy is pinned
in ``tests/golden/nonblocking_<policy>.json``; regenerate intentional
changes with::

    python -m pytest tests/golden -q --update-golden

The blocking goldens are additionally pinned **by file hash** against
the seed commit: the non-blocking mode rode in behind a default-off
flag, so the four pre-existing snapshot files must remain byte-for-byte
what the seed shipped.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from pathlib import Path

import pytest

from repro.cache.l1d import AccessOutcome, L1DCache, MemAccess
from repro.cache.tagarray import CacheGeometry
from repro.core import make_policy
from repro.utils.hashing import hash_pc

from tests.golden.test_golden_traces import POLICIES, synthetic_stream

GOLDEN_DIR = Path(__file__).parent

#: Accesses a fetch stays in flight before its fill returns (mirrors
#: ``repro.trace.replay.NB_FILL_WINDOW``).
NB_WINDOW = 24

#: sha256 of the four blocking golden snapshots as shipped by the seed.
#: The non-blocking flag is default-off; these files must never move as
#: a side effect of non-blocking work.  (An *intentional* blocking-mode
#: semantic change updates these pins alongside --update-golden.)
SEED_GOLDEN_SHA256 = {
    "baseline.json":
        "d4850ed84a60db523e8e926d2250c0e0f32dd95f34eb7d91a997723924749531",
    "dlp.json":
        "4eba26fabc775897e033d5015a469fbecb0ef56bdc3f757035c06c1cd7561e2c",
    "global_protection.json":
        "113ccf1b7a8e2094780cc15e6d4f29a81bec4ce05c984befb197a45714ce2af0",
    "stall_bypass.json":
        "45001c9c118b53f3f98e548c4db6d624803100bb581cbe685cb4d1cb646423f7",
}


def run_trace_nonblocking(policy_name: str) -> dict:
    """Drive the fixed stream through a non-blocking L1D; window fills
    by issue age instead of bounding misses in flight."""
    policy = make_policy(policy_name)
    cache = L1DCache(
        CacheGeometry(num_sets=8, assoc=2, line_size=128, index_fn="linear"),
        policy,
        mshr_entries=8,
        mshr_merge=4,
        miss_queue_depth=8,
        non_blocking=True,
    )
    outstanding: deque = deque()

    def fill_oldest() -> bool:
        if not outstanding:
            return False
        _, block = outstanding.popleft()
        cache.fill(block, now=0)
        return True

    for step, (block, pc, is_write) in enumerate(synthetic_stream()):
        while outstanding and outstanding[0][0] + NB_WINDOW <= step:
            fill_oldest()
        access = MemAccess(
            block_addr=block, pc=pc, insn_id=hash_pc(pc),
            is_write=is_write, now=step,
        )
        result = cache.access(access)
        retries = 0
        while result.is_stall:
            if fill_oldest():
                cache.drain_miss_queue(8)
            else:
                retries += 1
                if retries > 4096:
                    raise RuntimeError(f"non-converging stall: {access}")
            result = cache.access(access)
        if result.outcome is AccessOutcome.MISS:
            outstanding.append((step, block))
        cache.drain_miss_queue(2)
        if step % 8 == 7:
            policy.notify_instructions(64)
    while fill_oldest():
        pass
    cache.drain_miss_queue(8)

    if policy_name == "dlp":
        final_pds = {
            str(insn_id): entry["pd"]
            for insn_id, entry in sorted(policy.pd_snapshot().items())
        }
    elif policy_name == "global_protection":
        final_pds = {"global": policy.global_pd}
    else:
        final_pds = {}
    return {
        "l1d": cache.stats.to_raw_dict(),
        "policy": {k: v for k, v in sorted(policy.stats().items())},
        "final_pds": final_pds,
    }


@pytest.mark.parametrize("policy_name", POLICIES)
def test_golden_trace_nonblocking(policy_name, update_golden):
    snapshot = run_trace_nonblocking(policy_name)
    path = GOLDEN_DIR / f"nonblocking_{policy_name}.json"
    if update_golden:
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden snapshot {path.name}; generate with "
        f"`python -m pytest tests/golden --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert snapshot == golden, (
        f"{policy_name} (non-blocking): counters diverged from golden "
        f"snapshot; if the change is intentional, rerun with "
        f"--update-golden and bump SIM_VERSION"
    )


@pytest.mark.parametrize("policy_name", POLICIES)
def test_blocking_goldens_byte_identical_to_seed(policy_name):
    """non_blocking=False is the seed's semantics, down to the bytes of
    the pinned snapshot files."""
    path = GOLDEN_DIR / f"{policy_name}.json"
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    assert digest == SEED_GOLDEN_SHA256[path.name], (
        f"{path.name} no longer matches the seed snapshot; the "
        f"non-blocking mode must not perturb blocking-mode goldens"
    )


def test_nonblocking_differs_from_blocking():
    """The mode is not vacuous: reserved-line reuse happens and the
    snapshots move for every policy."""
    from tests.golden.test_golden_traces import run_trace

    for policy_name in POLICIES:
        nb = run_trace_nonblocking(policy_name)
        assert nb["l1d"]["hit_reserved"] > 0, policy_name
        assert nb != run_trace(policy_name), policy_name
