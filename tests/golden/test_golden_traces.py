"""Golden-trace regression tests for all four cache policies.

A fixed synthetic access stream (hot reuse + streaming + medium-distance
zipf + write-through stores, four static PCs) drives a small L1D under
each policy; the resulting counter snapshot — L1D raw counters, policy
stats (bypasses, VTA hits, sample counts) and the final protection
distances — is compared field-for-field against ``tests/golden/*.json``.

Any semantic change to the cache protocol or a policy shows up here as a
readable diff.  If the change is intentional, regenerate the snapshots
(and bump ``repro.experiments.store.SIM_VERSION``!) with::

    python -m pytest tests/golden -q --update-golden
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

import pytest

from repro.cache.l1d import AccessOutcome, L1DCache, MemAccess
from repro.cache.tagarray import CacheGeometry
from repro.core import make_policy
from repro.utils.hashing import hash_pc
from repro.utils.rng import DeterministicRng

GOLDEN_DIR = Path(__file__).parent
POLICIES = ("baseline", "stall_bypass", "global_protection", "dlp")

#: Static PCs of the synthetic kernel, one per access class.
PC_HOT, PC_STREAM, PC_MEDIUM, PC_WRITE = 0x100, 0x200, 0x300, 0x400


def synthetic_stream():
    """Deterministic (block, pc, is_write) stream, identical every run.

    Mixes the reuse classes of paper Fig. 3: a small hot set revisited at
    short distance (protectable), a pure stream (cache-polluting), a
    zipf-skewed medium-distance class, and sparse write-through stores.
    """
    rng = DeterministicRng("golden-trace")
    hot = [0x1000 + i for i in range(6)]
    medium_pool = [0x2000 + i for i in range(24)]
    stream_next = 0x8000
    accesses = []
    for step in range(600):
        roll = float(rng.random())
        if roll < 0.45:
            block = hot[int(rng.integers(0, len(hot)))]
            accesses.append((block, PC_HOT, False))
        elif roll < 0.75:
            accesses.append((stream_next, PC_STREAM, False))
            stream_next += 1
        elif roll < 0.93:
            idx = int(rng.zipf_indices(len(medium_pool), 1)[0])
            accesses.append((medium_pool[idx], PC_MEDIUM, False))
        else:
            block = medium_pool[int(rng.integers(0, len(medium_pool)))]
            accesses.append((block, PC_WRITE, True))
    return accesses


def run_trace(policy_name: str) -> dict:
    """Drive the fixed stream through one policy; return its snapshot."""
    policy = make_policy(policy_name)
    cache = L1DCache(
        CacheGeometry(num_sets=8, assoc=2, line_size=128, index_fn="linear"),
        policy,
        mshr_entries=8,
        mshr_merge=4,
        miss_queue_depth=8,
    )
    outstanding: deque = deque()

    def fill_oldest() -> bool:
        if not outstanding:
            return False
        cache.fill(outstanding.popleft(), now=0)
        return True

    for step, (block, pc, is_write) in enumerate(synthetic_stream()):
        access = MemAccess(
            block_addr=block, pc=pc, insn_id=hash_pc(pc),
            is_write=is_write, now=step,
        )
        result = cache.access(access)
        while result.is_stall:
            if not fill_oldest():
                raise RuntimeError(f"stalled with no outstanding fill: {access}")
            cache.drain_miss_queue(8)
            result = cache.access(access)
        if result.outcome is AccessOutcome.MISS:
            outstanding.append(block)
        cache.drain_miss_queue(2)
        # keep a bounded number of misses in flight, like the LD/ST unit
        while len(outstanding) > 4:
            fill_oldest()
        if step % 8 == 7:
            policy.notify_instructions(64)
    while fill_oldest():
        pass
    cache.drain_miss_queue(8)

    if policy_name == "dlp":
        final_pds = {
            str(insn_id): entry["pd"]
            for insn_id, entry in sorted(policy.pd_snapshot().items())
        }
    elif policy_name == "global_protection":
        final_pds = {"global": policy.global_pd}
    else:
        final_pds = {}
    return {
        "l1d": cache.stats.to_raw_dict(),
        "policy": {k: v for k, v in sorted(policy.stats().items())},
        "final_pds": final_pds,
    }


@pytest.mark.parametrize("policy_name", POLICIES)
def test_golden_trace(policy_name, update_golden):
    snapshot = run_trace(policy_name)
    path = GOLDEN_DIR / f"{policy_name}.json"
    if update_golden:
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden snapshot {path.name}; generate with "
        f"`python -m pytest tests/golden --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert snapshot == golden, (
        f"{policy_name}: counters diverged from golden snapshot; if the "
        f"change is intentional, rerun with --update-golden and bump "
        f"SIM_VERSION"
    )


def test_stream_is_deterministic():
    assert synthetic_stream() == synthetic_stream()


def test_snapshots_distinguish_policies():
    """The stream must actually exercise policy differences — identical
    snapshots across policies would make the goldens vacuous."""
    snaps = {name: run_trace(name) for name in POLICIES}
    assert snaps["stall_bypass"] != snaps["baseline"]
    assert snaps["dlp"] != snaps["baseline"]
    assert snaps["dlp"]["policy"].get("vta_hits", 0) > 0
    assert snaps["dlp"]["final_pds"]
