"""Golden-trace regression suite (see test_golden_traces.py)."""
