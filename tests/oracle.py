"""Differential oracle: prove two executions produced identical results.

The sweep executor's whole value proposition is "faster, but
bit-identical".  This module is the reusable check: run the same cell
grid through two execution strategies (serial vs parallel, cold store vs
warm store, in-memory vs on-disk) and assert every
:class:`~repro.gpu.simulator.SimResult` matches *bit for bit* — the
comparison is over canonical JSON of the full serialized payload, so an
int silently becoming a float, a dropped stall counter or a reordered
per-SM list all fail loudly.

Any future perf PR that touches the simulator, the executor or the store
should run its change through :func:`assert_grids_identical`; if the
change is *meant* to alter results, that is exactly when
``repro.experiments.store.SIM_VERSION`` must be bumped.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.executor import Cell, SweepExecutor
from repro.experiments.store import canonical_json
from repro.gpu.simulator import SimResult

GridKey = Tuple[str, str]
Grid = Dict[GridKey, SimResult]

#: Small-but-diverse default grid: MM (compute-friendly, short), HS
#: (stencil) and BT (pointer-chasing) under all four policies, one SM,
#: reduced inputs — a full pass costs about a second.
DEFAULT_APPS: Tuple[str, ...] = ("MM", "HS", "BT")
DEFAULT_SCHEMES: Tuple[str, ...] = (
    "baseline", "stall_bypass", "global_protection", "dlp"
)
DEFAULT_NUM_SMS = 1
DEFAULT_SCALE = 0.1


def fingerprint(result: SimResult) -> str:
    """Canonical JSON of the full serialized result (the comparison unit)."""
    return canonical_json(result.to_dict())


def make_cells(
    apps: Sequence[str] = DEFAULT_APPS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    num_sms: int = DEFAULT_NUM_SMS,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> Dict[GridKey, Cell]:
    return {
        (app, scheme): Cell.make(
            app, scheme, num_sms=num_sms, scale=scale, seed=seed
        )
        for app in apps
        for scheme in schemes
    }


def run_grid(executor: SweepExecutor, cells: Dict[GridKey, Cell]) -> Grid:
    """Resolve a cell grid through one executor, keyed by (app, scheme)."""
    keys = list(cells)
    results = executor.run_cells([cells[k] for k in keys])
    return dict(zip(keys, results))


def assert_results_identical(
    a: SimResult, b: SimResult, label: str = ""
) -> None:
    """Bit-identical comparison of two results, with a readable diff."""
    fa, fb = fingerprint(a), fingerprint(b)
    if fa == fb:
        return
    da, db = a.to_dict(), b.to_dict()
    diffs = []
    for field in sorted(set(da) | set(db)):
        if da.get(field) != db.get(field):
            diffs.append(f"  {field}: {da.get(field)!r} != {db.get(field)!r}")
    raise AssertionError(
        f"SimResult mismatch{f' for {label}' if label else ''}:\n"
        + "\n".join(diffs[:10])
    )


def assert_grids_identical(a: Grid, b: Grid) -> None:
    assert set(a) == set(b), (
        f"grid shape mismatch: {sorted(set(a) ^ set(b))}"
    )
    for key in sorted(a):
        assert_results_identical(a[key], b[key], label=f"{key[0]}/{key[1]}")
