"""Shared driver for the engine-differential tests.

:func:`drive_stream` pushes one deterministic access stream through an
L1D built by either engine (``reference`` or ``fast``) using the exact
protocol loop of the golden-trace harness — bounded misses in flight,
in-place stall retries, periodic instruction notifications — and
returns a full counter snapshot.  Two engines are equivalent iff their
snapshots match bit for bit on every stream and every ablation knob.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Tuple

from repro.cache.l1d import AccessOutcome, MemAccess
from repro.cache.tagarray import CacheGeometry
from repro.core import make_policy
from repro.fastsim import make_l1d
from repro.utils.hashing import hash_pc
from repro.utils.rng import DeterministicRng

Stream = Iterable[Tuple[int, int, bool]]

#: Static PCs of the synthetic kernels, one per access class.
PC_HOT, PC_STREAM, PC_MEDIUM, PC_WRITE = 0x100, 0x200, 0x300, 0x400

SMALL_GEOMETRY = CacheGeometry(
    num_sets=8, assoc=2, line_size=128, index_fn="linear"
)


def golden_stream():
    """The golden-trace stream (tests/golden): hot + stream + zipf +
    writes, 600 accesses, identical every run."""
    rng = DeterministicRng("golden-trace")
    hot = [0x1000 + i for i in range(6)]
    medium_pool = [0x2000 + i for i in range(24)]
    stream_next = 0x8000
    accesses = []
    for _step in range(600):
        roll = float(rng.random())
        if roll < 0.45:
            block = hot[int(rng.integers(0, len(hot)))]
            accesses.append((block, PC_HOT, False))
        elif roll < 0.75:
            accesses.append((stream_next, PC_STREAM, False))
            stream_next += 1
        elif roll < 0.93:
            idx = int(rng.zipf_indices(len(medium_pool), 1)[0])
            accesses.append((medium_pool[idx], PC_MEDIUM, False))
        else:
            block = medium_pool[int(rng.integers(0, len(medium_pool)))]
            accesses.append((block, PC_WRITE, True))
    return accesses


def fuzz_stream(seed: int, length: int = 800):
    """A random mixed-locality stream, deterministic per seed."""
    rng = DeterministicRng(f"fastsim-fuzz-{seed}")
    pcs = [0x500 + 0x10 * i for i in range(6)]
    hot = [0x4000 + i for i in range(10)]
    accesses = []
    for _step in range(length):
        roll = float(rng.random())
        pc = pcs[int(rng.integers(0, len(pcs)))]
        if roll < 0.35:
            block = hot[int(rng.integers(0, len(hot)))]
        else:
            block = 0x9000 + int(rng.integers(0, 4096))
        accesses.append((block, pc, bool(float(rng.random()) < 0.12)))
    return accesses


def thrash_stream(length: int = 600, working_set: int = 24):
    """Cyclic reuse over a working set larger than the 16-line cache:
    every line is evicted before its reuse, so VTA hits dominate TDA
    hits and protection distances grow (the Figure 9 increase path)."""
    return [(0x6000 + (i % working_set), 0x700, False)
            for i in range(length)]


#: Non-blocking discipline: accesses a fetch stays outstanding before
#: its fill lands (mirrors ``repro.trace.replay.NB_FILL_WINDOW``).
NB_WINDOW = 24


def drive_stream(
    policy_name: str,
    engine: str,
    stream: Optional[Stream] = None,
    geometry: Optional[CacheGeometry] = None,
    resets_at: Tuple[int, ...] = (),
    non_blocking: bool = False,
    **policy_kwargs,
) -> Dict:
    """Run one stream through one (policy, engine) pair; return the
    snapshot.  ``resets_at`` lists access indices before which
    ``policy.reset()`` fires (the between-kernel path).

    ``non_blocking`` switches the drive discipline to the windowed-fill
    model of the non-blocking replay engine: misses stay outstanding for
    :data:`NB_WINDOW` accesses (RESERVED lines persist between
    accesses, MSHR merging and resource stalls materialise) instead of
    the bounded-4-in-flight blocking loop."""
    policy = make_policy(policy_name, **policy_kwargs)
    cache = make_l1d(
        engine,
        geometry or SMALL_GEOMETRY,
        policy,
        mshr_entries=8,
        mshr_merge=4,
        miss_queue_depth=8,
        non_blocking=non_blocking,
    )
    outstanding: deque = deque()

    def fill_oldest() -> bool:
        if not outstanding:
            return False
        entry = outstanding.popleft()
        cache.fill(entry[1] if non_blocking else entry, now=0)
        return True

    accesses = list(stream if stream is not None else golden_stream())
    for step, (block, pc, is_write) in enumerate(accesses):
        if step in resets_at:
            while fill_oldest():
                pass
            cache.drain_miss_queue(8)
            cache.policy.reset()
        if non_blocking:
            while outstanding and outstanding[0][0] + NB_WINDOW <= step:
                fill_oldest()
        access = MemAccess(
            block_addr=block, pc=pc, insn_id=hash_pc(pc),
            is_write=is_write, now=step,
        )
        result = cache.access(access)
        retries = 0
        while result.is_stall:
            if fill_oldest():
                cache.drain_miss_queue(8)
            else:
                # nothing to fill: a NO_RESERVABLE_LINE stall that only
                # converges through per-retry PL decay (bounded by the
                # PL width; 4096 turns a model bug into a loud error)
                retries += 1
                if retries > 4096:
                    raise RuntimeError(f"non-converging stall: {access}")
            result = cache.access(access)
        if result.outcome is AccessOutcome.MISS:
            outstanding.append((step, block) if non_blocking else block)
        cache.drain_miss_queue(2)
        if not non_blocking:
            while len(outstanding) > 4:
                fill_oldest()
        if step % 8 == 7:
            cache.policy.notify_instructions(64)
    while fill_oldest():
        pass
    cache.drain_miss_queue(8)
    return snapshot(cache, policy_name)


def snapshot(cache, policy_name: str) -> Dict:
    """Full engine-visible state: L1D raw counters, policy stats, PDs."""
    if policy_name == "dlp":
        final_pds = {
            str(insn_id): entry["pd"]
            for insn_id, entry in sorted(cache.policy.pd_snapshot().items())
        }
    elif policy_name == "global_protection":
        final_pds = {"global": cache.policy.global_pd}
    else:
        final_pds = {}
    return {
        "l1d": cache.stats.to_raw_dict(),
        "policy": {k: v for k, v in sorted(cache.policy.stats().items())},
        "final_pds": final_pds,
    }
