"""Fast engine equivalence through every wired entry point.

The engine selector threads through the timing simulator, the sweep
executor, trace replay, the replay sweep and the serve worker; each
path must produce bit-identical results under either engine, and the
result-store keys must never depend on the engine (the whole point of
excluding an execution detail from a result's identity).
"""

from __future__ import annotations

import pytest

from repro.experiments.executor import Cell, SweepExecutor
from repro.gpu.config import GPUConfig
from repro.trace.record import capture_records
from repro.trace.replay import ReplayEngine, _resolve, replay_records
from repro.trace.sweep import ReplaySweepExecutor
from repro.workloads import make_workload

from tests.oracle import assert_results_identical

SCHEMES = ("baseline", "stall_bypass", "global_protection", "dlp")

#: replay-path ablation grid (scheme, policy kwargs).
REPLAY_ABLATIONS = [
    ("baseline", {}),
    ("stall_bypass", {}),
    ("global_protection", {}),
    ("dlp", {}),
    ("dlp", {"pd_bits": 2}),
    ("dlp", {"vta_assoc": 2}),
    ("dlp", {"nasc": 0}),
    ("dlp", {"bypass_enabled": False}),
    ("dlp", {"sample_limit": 50}),
]


@pytest.fixture(scope="module")
def captured():
    """One recorded MM stream shared by every replay test."""
    config = GPUConfig().scaled(2)
    records = capture_records(make_workload("MM", 0.4), config)
    return config, records


@pytest.mark.parametrize(
    "scheme,kwargs", REPLAY_ABLATIONS,
    ids=[f"{s}-{'-'.join(map(str, k.values())) or 'default'}"
         for s, k in REPLAY_ABLATIONS],
)
def test_replay_records_identical(captured, scheme, kwargs):
    config, records = captured
    reference = replay_records(iter(records), config, scheme,
                               engine="reference", **kwargs)
    fast = replay_records(iter(records), config, scheme,
                          engine="fast", **kwargs)
    assert_results_identical(reference, fast, label=f"{scheme}/{kwargs}")


def test_fast_replay_engine_counts_match(captured):
    """The engine-level bookkeeping (per-SM record counts, send totals)
    agrees, not just the aggregated result."""
    config, records = captured
    scheme_config, factory = _resolve("dlp", config)
    reference = ReplayEngine(scheme_config, factory)
    reference.run(iter(records))
    from repro.fastsim.replay import FastReplayEngine as Fast

    fast = Fast(scheme_config, factory)
    fast.run(iter(records))
    assert fast.replayed_per_sm == reference.replayed_per_sm
    assert fast.replayed_records == reference.replayed_records
    assert fast.sent_fetches == reference.sent_fetches
    assert fast.sent_writes == reference.sent_writes


def test_replay_rejects_unknown_engine(captured):
    config, records = captured
    with pytest.raises(ValueError, match="unknown engine"):
        replay_records(iter(records), config, "baseline", engine="turbo")


def test_timing_sweep_identical():
    """Full timing path (GPU front end + LD/ST + memory system) through
    the sweep executor, both engines, all four schemes."""
    grids = {}
    for engine in ("reference", "fast"):
        executor = SweepExecutor()
        grids[engine] = executor.run_sweep(
            ["MM", "BT"], SCHEMES, num_sms=1, scale=0.1, engine=engine
        )
    for app, per_scheme in grids["reference"].items():
        for scheme, reference in per_scheme.items():
            assert_results_identical(
                reference, grids["fast"][app][scheme],
                label=f"{app}/{scheme}",
            )


def test_cell_key_excludes_engine():
    """Store identity is engine-independent: either engine's results
    warm the other's cells."""
    a = Cell.make("MM", "dlp", num_sms=1, scale=0.1, engine="reference")
    b = Cell.make("MM", "dlp", num_sms=1, scale=0.1, engine="fast")
    assert a.key() == b.key()
    assert a.fingerprint() == b.fingerprint()
    assert a.meta() == b.meta()


def test_fast_results_warm_reference_store():
    """A store populated by the fast engine short-circuits a reference
    run of the same cell (and vice versa)."""
    executor = SweepExecutor()
    fast_cell = Cell.make("MM", "dlp", num_sms=1, scale=0.1, engine="fast")
    ref_cell = Cell.make("MM", "dlp", num_sms=1, scale=0.1)
    first = executor.run_cell(fast_cell)
    second = executor.run_cell(ref_cell)
    assert executor.stats.simulated == 1
    assert executor.stats.store_hits == 1
    assert_results_identical(first, second, label="store warm-through")


def test_replay_sweep_executor_identical():
    reference = ReplaySweepExecutor().run_sweep(
        ["MM"], SCHEMES, num_sms=2, scale=0.4
    )
    fast = ReplaySweepExecutor(engine="fast").run_sweep(
        ["MM"], SCHEMES, num_sms=2, scale=0.4
    )
    for scheme in SCHEMES:
        assert_results_identical(
            reference["MM"][scheme], fast["MM"][scheme],
            label=f"replay-sweep/{scheme}",
        )


def test_serve_replay_unit_identical(tmp_path):
    """The serve worker entry point honours the engine field in its
    payload and stays bit-identical (shared trace dir exercised too)."""
    from repro.serve.jobs import replay_unit

    spec = {"abbr": "MM", "scheme": "dlp", "num_sms": 2, "scale": 0.4,
            "seed": 0, "policy_kwargs": {}}
    reference = replay_unit(dict(spec), str(tmp_path / "traces"))
    fast = replay_unit(dict(spec, engine="fast"), str(tmp_path / "traces"))
    assert fast == reference


def test_serve_scheduler_stamps_engine():
    """The scheduler injects its deployment-wide engine into replay
    worker payloads and timing cells."""
    from repro.serve.protocol import MODE_REPLAY, MODE_SIM, UnitSpec
    from repro.serve.scheduler import Scheduler

    scheduler = Scheduler(engine="fast")
    sim_spec = UnitSpec(mode=MODE_SIM, abbr="MM", scheme="dlp")
    assert sim_spec.cell(scheduler.engine).engine == "fast"
    # the key the scheduler coalesces on ignores the engine
    assert sim_spec.cell("fast").key() == sim_spec.cell("reference").key()
    replay_spec = UnitSpec(mode=MODE_REPLAY, abbr="MM", scheme="dlp")
    payload = dict(replay_spec.worker_payload())
    payload["engine"] = scheduler.engine
    assert payload["engine"] == "fast"


def test_phase_profile_runs_and_compares():
    from repro.fastsim.profile import PHASES, profile_cell

    profile = profile_cell("MM", "dlp", num_sms=1, scale=0.2)
    assert profile.records > 0
    assert set(profile.phases) == set(PHASES)
    assert profile.reference_seconds > 0
    assert profile.fast_seconds > 0
    doc = profile.as_dict()
    assert doc["speedup"] == profile.speedup
    rendered = profile.render()
    for phase in PHASES:
        assert phase in rendered
