"""The fast engine is bit-identical to the reference, access by access.

Every test drives the same deterministic stream through
:class:`repro.cache.l1d.L1DCache` and
:class:`repro.fastsim.engine.FastL1DCache` and requires identical
snapshots: all thirteen raw L1D counters, every policy stat, and the
final protection distances.  The grid covers all four policies and the
ablation knobs the paper sweeps (PL width, VTA associativity, NASC,
bypass gating, sampling period), plus fuzzed random streams so the
equivalence is not an artifact of one access pattern.
"""

from __future__ import annotations

import pytest

from repro.fastsim import ENGINES, make_l1d, validate_engine
from repro.fastsim.engine import PolicySpec

from tests.fastsim.harness import (
    SMALL_GEOMETRY,
    drive_stream,
    fuzz_stream,
    golden_stream,
    thrash_stream,
)

POLICIES = ("baseline", "stall_bypass", "global_protection", "dlp")

#: (policy, ablation kwargs) — the differential grid.
ABLATIONS = [
    ("baseline", {}),
    ("stall_bypass", {}),
    ("global_protection", {}),
    ("global_protection", {"nasc": 0}),
    ("global_protection", {"bypass_enabled": False}),
    ("global_protection", {"vta_assoc": 2}),
    ("global_protection", {"pd_bits": 2}),
    ("dlp", {}),
    ("dlp", {"pd_bits": 2}),
    ("dlp", {"pd_bits": 6}),
    ("dlp", {"vta_assoc": 2}),
    ("dlp", {"vta_assoc": 8}),
    ("dlp", {"nasc": 0}),
    ("dlp", {"nasc": 3}),
    ("dlp", {"bypass_enabled": False}),
    ("dlp", {"sample_limit": 50}),
    ("dlp", {"insn_sample_limit": 500}),
]


def _label(params) -> str:
    policy, kwargs = params
    knobs = ",".join(f"{k}={v}" for k, v in kwargs.items()) or "default"
    return f"{policy}[{knobs}]"


@pytest.mark.parametrize("policy,kwargs", ABLATIONS, ids=map(_label, ABLATIONS))
def test_golden_stream_identical(policy, kwargs):
    reference = drive_stream(policy, "reference", **kwargs)
    fast = drive_stream(policy, "fast", **kwargs)
    assert fast == reference


@pytest.mark.parametrize("policy,kwargs", ABLATIONS, ids=map(_label, ABLATIONS))
def test_golden_stream_identical_non_blocking(policy, kwargs):
    """The full 17-cell ablation grid again, under the non-blocking
    windowed-fill discipline: RESERVED lines persist across accesses,
    secondary misses merge in the MSHR, and resource stalls materialise.
    Both engines must still agree bit for bit."""
    reference = drive_stream(policy, "reference", non_blocking=True,
                             **kwargs)
    fast = drive_stream(policy, "fast", non_blocking=True, **kwargs)
    assert fast == reference
    # the discipline is real: reserved-line reuse happened, and the
    # snapshot differs from the blocking run of the same cell
    assert reference["l1d"]["hit_reserved"] > 0
    assert reference != drive_stream(policy, "reference", **kwargs)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_fuzzed_stream_identical_non_blocking(policy, seed):
    stream = fuzz_stream(seed)
    reference = drive_stream(policy, "reference", stream=stream,
                             non_blocking=True)
    fast = drive_stream(policy, "fast", stream=stream, non_blocking=True)
    assert fast == reference


@pytest.mark.parametrize("policy", ("global_protection", "dlp"))
@pytest.mark.parametrize("bypass", (True, False), ids=["bypass", "stall"])
def test_thrash_stream_identical(policy, bypass):
    """Over-capacity cyclic reuse grows protection distances, forcing
    the protected-bypass (or, gated, the NO_RESERVABLE_LINE stall-retry)
    path that the golden stream never reaches."""
    stream = thrash_stream()
    reference = drive_stream(policy, "reference", stream=stream,
                             bypass_enabled=bypass)
    fast = drive_stream(policy, "fast", stream=stream,
                        bypass_enabled=bypass)
    assert fast == reference
    # prove the stream exercised what it claims to
    assert reference["policy"]["pd_increase"] > 0
    if bypass:
        assert reference["policy"]["protected_bypasses"] > 0
    else:
        assert reference["l1d"]["stalls"]


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_fuzzed_stream_identical(policy, seed):
    stream = fuzz_stream(seed)
    reference = drive_stream(policy, "reference", stream=stream)
    fast = drive_stream(policy, "fast", stream=stream)
    assert fast == reference


def test_engine_registry():
    assert ENGINES == ("reference", "fast")
    for engine in ENGINES:
        assert validate_engine(engine) == engine
    with pytest.raises(ValueError, match="unknown engine"):
        validate_engine("warp")
    with pytest.raises(ValueError, match="unknown engine"):
        make_l1d("warp", SMALL_GEOMETRY, None)


def test_policy_spec_round_trip():
    """PolicySpec captures every knob the fast engine inlines."""
    from repro.core import make_policy

    policy = make_policy("dlp", sample_limit=50, insn_sample_limit=500,
                         vta_assoc=2, pd_bits=3, nasc=0,
                         bypass_enabled=False)
    spec = PolicySpec.from_policy(policy)
    assert spec.sample_limit == 50
    assert spec.insn_sample_limit == 500
    assert spec.vta_assoc == 2
    assert spec.pd_bits == 3
    assert spec.nasc == 0
    assert spec.bypass_enabled is False


def test_fast_engine_rejects_unknown_policy():
    class Alien:
        name = "alien"

    with pytest.raises(ValueError, match="alien"):
        PolicySpec.from_policy(Alien())


def test_streams_are_deterministic():
    """The harness itself must be reproducible for the diffs to mean
    anything."""
    assert golden_stream() == golden_stream()
    assert fuzz_stream(7) == fuzz_stream(7)
    assert fuzz_stream(7) != fuzz_stream(8)
