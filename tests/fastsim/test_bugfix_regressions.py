"""Regression tests for the two policy-layer bugs fixed in this PR.

1. **NASC override truthiness.**  ``DlpPolicy(nasc=0)`` (and the GP
   equivalent) silently fell back to the VTA associativity because the
   override was read with ``or`` — ``nasc=0`` is a legitimate ablation
   point (protection distances frozen at their initial value) and must
   be honoured literally.
2. **Between-kernel reset semantics.**  ``DlpPolicy.reset()`` rebuilt
   the PDPT from scratch, wiping the lifetime ``ever_used`` markers
   (and any ablation contract widths installed on entries), while the
   sampler and VTA honoured the base-class contract that *statistics
   survive reset*.  Reset now clears learned state in place everywhere;
   cumulative stats (samples completed, PD update tallies, VTA
   hit/insert totals, overhead-model activity markers) survive.
"""

from __future__ import annotations

import pytest

from repro.core import make_policy

from tests.fastsim.harness import drive_stream, thrash_stream

PROTECTED = ("global_protection", "dlp")
POLICIES = ("baseline", "stall_bypass", "global_protection", "dlp")


# ----------------------------------------------------------------------
# satellite 1: nasc=0 must be honoured, not replaced by vta_assoc
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", PROTECTED)
def test_nasc_zero_override_is_honoured(policy):
    snap = drive_stream(policy, "reference", nasc=0)
    # With NASC frozen at 0 the Figure 9 ladder returns 0 on every
    # rung, so no protection distance can ever leave 0.
    assert all(pd == 0 for pd in snap["final_pds"].values())
    # ... and the policy is not inert — sampling windows still close
    # and updates still classify, they just carry zero step size.
    assert snap["policy"]["samples_completed"] > 0


@pytest.mark.parametrize("policy", PROTECTED)
def test_nasc_zero_differs_from_default(policy):
    """The old ``nasc or vta_assoc`` bug made nasc=0 identical to the
    default; on a PD-growing stream the two cells must now diverge."""
    default = drive_stream(policy, "reference", stream=thrash_stream())
    frozen = drive_stream(policy, "reference", stream=thrash_stream(),
                          nasc=0)
    assert default != frozen
    # default runs do grow protection distances on this stream
    assert any(pd > 0 for pd in default["final_pds"].values())


@pytest.mark.parametrize("policy", PROTECTED)
def test_nasc_attribute_after_attach(policy):
    """Unit-level: the resolved step size is literally 0 (and literally
    the override) once the VTA attaches."""
    from repro.cache.l1d import L1DCache, MemAccess
    from tests.fastsim.harness import SMALL_GEOMETRY

    frozen = make_policy(policy, nasc=0)
    override = make_policy(policy, nasc=3)
    for p in (frozen, override):
        # one miss attaches the VTA and resolves the step size
        cache = L1DCache(SMALL_GEOMETRY, p, mshr_entries=8, mshr_merge=4,
                         miss_queue_depth=8)
        cache.access(MemAccess(block_addr=0x1, pc=0x100, insn_id=1))
        cache.fill(0x1, 0)
    assert frozen.nasc == 0
    assert override.nasc == 3


# ----------------------------------------------------------------------
# satellite 2: stats survive reset(), learned state does not
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", PROTECTED)
def test_reset_preserves_stats_and_clears_state(policy):
    from collections import deque

    from repro.cache.l1d import AccessOutcome, L1DCache, MemAccess
    from repro.utils.hashing import hash_pc
    from tests.fastsim.harness import SMALL_GEOMETRY, golden_stream

    p = make_policy(policy)
    cache = L1DCache(SMALL_GEOMETRY, p, mshr_entries=8, mshr_merge=4,
                     miss_queue_depth=8)
    outstanding: deque = deque()
    for step, (block, pc, is_write) in enumerate(golden_stream()):
        access = MemAccess(block_addr=block, pc=pc, insn_id=hash_pc(pc),
                           is_write=is_write, now=step)
        result = cache.access(access)
        while result.is_stall:
            cache.fill(outstanding.popleft(), now=0)
            cache.drain_miss_queue(8)
            result = cache.access(access)
        if result.outcome is AccessOutcome.MISS:
            outstanding.append(block)
        cache.drain_miss_queue(2)
        while len(outstanding) > 4:
            cache.fill(outstanding.popleft(), now=0)
        if step % 8 == 7:
            p.notify_instructions(64)
    while outstanding:
        cache.fill(outstanding.popleft(), now=0)
    cache.drain_miss_queue(8)

    stats_before = dict(p.stats())
    assert stats_before["samples_completed"] > 0
    if policy == "dlp":
        touched_before = set(p.pd_snapshot())
        assert touched_before  # the stream exercised the PDPT

    p.reset()

    # statistics survive ...
    assert dict(p.stats()) == stats_before
    # ... learned state does not
    assert p.sampler.accesses == 0
    assert p.sampler.instructions == 0
    if policy == "dlp":
        # lifetime activity markers survive the in-place PDPT reset
        # (the old rebuild-the-table bug dropped them) ...
        assert set(p.pd_snapshot()) == touched_before
        # ... while every learned counter and PD is back to zero
        for entry in p.pdpt.entries:
            assert (entry.tda_hits, entry.vta_hits, entry.pd) == (0, 0, 0)
        assert p.pdpt.global_tda_hits == 0
        assert p.pdpt.global_vta_hits == 0
    else:
        assert p.global_pd == 0
    if p.vta is not None:
        assert all(not e.valid for row in p.vta.sets for e in row)


@pytest.mark.parametrize("policy", POLICIES)
def test_two_kernel_run_identical_across_engines(policy):
    """A reset mid-stream (the kernel boundary) behaves identically in
    both engines: same post-reset state, same cumulative stats."""
    reference = drive_stream(policy, "reference", resets_at=(300,))
    fast = drive_stream(policy, "fast", resets_at=(300,))
    assert fast == reference


@pytest.mark.parametrize("policy", PROTECTED)
def test_two_kernel_stats_accumulate(policy):
    """Kernel 2 adds to kernel 1's counters instead of restarting them."""
    one_kernel = drive_stream(policy, "reference")
    two_kernels = drive_stream(policy, "reference", resets_at=(300,))
    assert two_kernels["policy"]["samples_completed"] >= \
        one_kernel["policy"]["samples_completed"] // 2
    # cumulative across the boundary: more stream, never a restart from
    # zero at the boundary (the L1D counters are untouched by reset)
    assert two_kernels["l1d"]["loads"] == one_kernel["l1d"]["loads"]
