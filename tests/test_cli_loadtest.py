"""``repro loadtest`` from the CLI: JSON report, SLO exit codes."""

from __future__ import annotations

import json

from repro.cli import main

TINY = [
    "loadtest", "--clients", "4", "--workers", "1",
    "--population", "2", "--apps", "MM", "--schemes", "baseline",
    "--scale", "0.05", "--ramp", "0.05",
]


class TestLoadtestCli:
    def test_json_report_and_pass_exit(self, capsys):
        code = main(TINY + ["--slo-p99", "60", "--json"])
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert code == 0
        assert doc["passed"] is True
        assert doc["completed"] == 4 and doc["failed"] == 0
        assert doc["clients"] == 4 and doc["workers"] == 1
        assert set(doc["latency_s"]) == {"p50", "p95", "p99", "max"}

    def test_slo_breach_exits_nonzero(self, capsys):
        # an impossible p99 bound: a real request cannot finish in 1 ns
        code = main(TINY + ["--slo-p99", "0.000000001"])
        captured = capsys.readouterr()
        assert code == 1
        assert "loadtest: FAIL" in captured.out
        assert "SLO violation" in captured.err
        assert "p99" in captured.err
