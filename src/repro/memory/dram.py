"""DRAM channel model.

A bandwidth-limited FIFO service model: each 128-byte transfer occupies
the channel for ``service_interval`` core cycles (derived from the
paper's 177.4 GB/s aggregate over 12 partitions), and data returns
``access_latency`` cycles after its service slot starts.  Queueing delay
emerges from ``next_free``; this is the mechanism through which cache
thrashing (many fetches) inflates memory latency and depresses IPC in
the reproduction, standing in for GDDR5 bank/row timing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0
    busy_cycles: int = 0
    total_queue_delay: int = 0

    @property
    def mean_queue_delay(self) -> float:
        ops = self.reads + self.writes
        return self.total_queue_delay / ops if ops else 0.0

    def as_dict(self):
        return {
            "reads": self.reads,
            "writes": self.writes,
            "busy_cycles": self.busy_cycles,
            "mean_queue_delay": self.mean_queue_delay,
        }


class DramChannel:
    """One partition's memory channel."""

    def __init__(self, service_interval: int, access_latency: int):
        if service_interval < 1:
            raise ValueError("service interval must be at least one cycle")
        if access_latency < 0:
            raise ValueError("access latency must be non-negative")
        self.service_interval = service_interval
        self.access_latency = access_latency
        self.next_free = 0
        self.stats = DramStats()

    def schedule_read(self, now: int) -> int:
        """Enqueue a read arriving at ``now``; returns the cycle the data
        is available at the partition."""
        start = max(now, self.next_free)
        self.next_free = start + self.service_interval
        self.stats.reads += 1
        self.stats.busy_cycles += self.service_interval
        self.stats.total_queue_delay += start - now
        return start + self.access_latency

    def schedule_write(self, now: int) -> int:
        """Enqueue a write (no response); returns its completion cycle."""
        start = max(now, self.next_free)
        self.next_free = start + self.service_interval
        self.stats.writes += 1
        self.stats.busy_cycles += self.service_interval
        self.stats.total_queue_delay += start - now
        return start + self.access_latency

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)
