"""Memory partition: one L2 slice plus one DRAM channel.

Addresses interleave across partitions at line granularity
(``block_addr % num_partitions``), matching GPGPU-Sim's default
address mapping for the paper's 12-partition configuration.

Timing: the slice accepts one access per ``l2_service_interval`` cycles
(tag/array bandwidth) and its response port serialises one 128-byte
packet per ``response_interval`` cycles (a 32 B/cycle crossbar link).
Read flow: L2 probe on arrival; hits respond after the L2 latency;
misses ride the DRAM channel and fill the slice on return, waking every
merged fetch.  Writes are write-through to DRAM (the L1D is
write-through, so partition writes carry store traffic only).

These service intervals are what make L1D *miss volume* expensive even
when the L2 absorbs it — the queueing that bypass-heavy policies trade
against extra hits, as the paper's Section 6.4 discusses.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cache.l1d import FetchRequest
from repro.cache.l2 import L2Cache
from repro.cache.tagarray import CacheGeometry
from repro.memory.dram import DramChannel


def partition_for(block_addr: int, num_partitions: int) -> int:
    """Line-interleaved partition mapping."""
    return block_addr % num_partitions


class MemoryPartition:
    """One of the chip's memory partitions."""

    def __init__(
        self,
        partition_id: int,
        l2_geometry: CacheGeometry,
        dram: DramChannel,
        schedule: Callable[[int, Callable[[], None]], None],
        respond: Callable[[FetchRequest], None],
        l2_latency: int,
        l2_service_interval: int = 2,
        response_interval: int = 4,
    ):
        self.partition_id = partition_id
        self.l2 = L2Cache(l2_geometry)
        self.dram = dram
        self.schedule = schedule
        self.respond = respond
        self.l2_latency = l2_latency
        self.l2_service_interval = l2_service_interval
        self.response_interval = response_interval
        self._l2_next_free = 0
        self._resp_next_free = 0
        self.l2_queue_delay = 0
        self.resp_queue_delay = 0

    # ------------------------------------------------------------------

    def _l2_slot(self, now: int) -> int:
        """Admission time of the next L2 access (slice bandwidth)."""
        start = max(now, self._l2_next_free)
        self._l2_next_free = start + self.l2_service_interval
        self.l2_queue_delay += start - now
        return start

    def _respond_later(self, fetch: FetchRequest, ready: int, now: int) -> None:
        """Serialise the response onto the return link."""
        start = max(ready, self._resp_next_free)
        self._resp_next_free = start + self.response_interval
        self.resp_queue_delay += start - ready
        self.schedule(start - now, lambda f=fetch: self.respond(f))

    def receive(self, fetch: FetchRequest, now: int) -> None:
        """A request delivered by the interconnect."""
        start = self._l2_slot(now)
        if fetch.is_write:
            self.l2.write(fetch.block_addr)
            self.dram.schedule_write(start + self.l2_latency)
            return
        outcome = self.l2.read(fetch.block_addr, waiter=fetch)
        if outcome == "hit":
            self._respond_later(fetch, start + self.l2_latency, now)
        elif outcome == "miss":
            ready = self.dram.schedule_read(start + self.l2_latency)
            self.schedule(
                ready - now, lambda b=fetch.block_addr, t=ready: self._dram_return(b, t)
            )
        # "merged": the fetch waits on the in-flight DRAM read and will be
        # released by _dram_return via L2Cache.fill.

    def _dram_return(self, block_addr: int, now: int) -> None:
        waiters: List[Optional[FetchRequest]] = self.l2.fill(block_addr)
        for fetch in waiters:
            if fetch is not None:
                self._respond_later(fetch, now, now)
