"""Memory-system substrate: interconnect, memory partitions, DRAM.

The paper's machine (Table 1) routes L1D misses over a crossbar to 12
memory partitions, each holding an L2 slice and a GDDR5 channel.  The
models here are latency/bandwidth-level (not bank/row cycle-accurate);
DESIGN.md Section 6 records the fidelity gap.
"""

from repro.memory.interconnect import Interconnect, InterconnectStats
from repro.memory.dram import DramChannel
from repro.memory.partition import MemoryPartition, partition_for

__all__ = [
    "Interconnect",
    "InterconnectStats",
    "DramChannel",
    "MemoryPartition",
    "partition_for",
]
