"""Interconnection network between the SMs and the memory partitions.

Modelled as a crossbar with a fixed one-way latency and per-direction
byte accounting — the quantity Figure 13 of the paper reports.  Packet
sizes follow GPGPU-Sim's convention: an 8-byte control header per
packet, plus the 128-byte line payload on read responses and write
requests.

Bandwidth contention is modelled at the DRAM channels (the bottleneck in
the paper's configuration), not in the crossbar itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

CONTROL_BYTES = 8
LINE_BYTES = 128


@dataclass
class InterconnectStats:
    request_packets: int = 0
    response_packets: int = 0
    bytes_to_mem: int = 0
    bytes_from_mem: int = 0

    @property
    def total_bytes(self) -> int:
        """Total traffic both directions (Fig. 13's metric)."""
        return self.bytes_to_mem + self.bytes_from_mem

    def as_dict(self):
        return {
            "request_packets": self.request_packets,
            "response_packets": self.response_packets,
            "bytes_to_mem": self.bytes_to_mem,
            "bytes_from_mem": self.bytes_from_mem,
            "total_bytes": self.total_bytes,
        }


class Interconnect:
    """Fixed-latency crossbar with per-source injection serialisation and
    traffic accounting.

    ``schedule(delay, fn)`` is the simulator's event scheduler; delivery
    callbacks fire after ``latency`` cycles plus any injection-port
    queueing.  Each SM's injection port accepts one packet per cycle —
    this throttles the dedicated bypass path of Fig. 1/8 the same way the
    miss queue throttles ordinary fetches, so bypass-heavy policies still
    pay for their request volume.
    """

    def __init__(
        self,
        schedule: Callable[[int, Callable[[], None]], None],
        latency: int,
        clock: Callable[[], int] | None = None,
        injection_interval: int = 1,
    ):
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.schedule = schedule
        self.latency = latency
        self.clock = clock or (lambda: 0)
        self.injection_interval = injection_interval
        self.stats = InterconnectStats()
        self._next_free: dict = {}

    def _injection_delay(self, src: int) -> int:
        now = self.clock()
        start = max(now, self._next_free.get(src, 0))
        self._next_free[src] = start + self.injection_interval
        return start - now

    def send_request(self, src: int, is_write: bool, deliver: Callable[[], None]) -> None:
        """SM -> memory partition direction."""
        self.stats.request_packets += 1
        self.stats.bytes_to_mem += CONTROL_BYTES + (LINE_BYTES if is_write else 0)
        self.schedule(self._injection_delay(src) + self.latency, deliver)

    def send_response(self, deliver: Callable[[], None]) -> None:
        """Memory partition -> SM direction (read data).  Return-path
        serialisation happens at the partition's response port."""
        self.stats.response_packets += 1
        self.stats.bytes_from_mem += CONTROL_BYTES + LINE_BYTES
        self.schedule(self.latency, deliver)
