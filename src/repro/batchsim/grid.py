"""Ablation-grid expansion for ``repro sweep --grid``.

A grid axis is one policy knob swept over explicit values
(``nasc=0,2,4``) or an integer range (``nasc=0:8`` or ``pl=2:14:4``);
:func:`expand_grid` crosses the axes into one policy-kwargs dict per
cell, which the batch engine then replays as one lane each.  This is
the Fig. 9-style frontier map: hundreds of (Nasc, PD-bits,
sampling-period) points over a single decoded trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

Number = Union[int, float]


@dataclass(frozen=True)
class GridAxis:
    """One swept policy knob and its values, in sweep order."""

    name: str
    values: Tuple[Number, ...]

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"invalid grid axis name {self.name!r}")
        if not self.values:
            raise ValueError(f"grid axis {self.name!r} has no values")


def _parse_number(text: str, axis: str) -> Number:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"grid axis {axis!r}: {text!r} is not a number"
        ) from None


def parse_grid_axis(text: str) -> GridAxis:
    """Parse one ``--grid`` argument.

    Accepted forms::

        name=v1,v2,v3      explicit values (int or float)
        name=lo:hi         integer range, inclusive, step 1
        name=lo:hi:step    integer range, inclusive, given step
    """
    name, sep, spec = text.partition("=")
    name = name.strip()
    if not sep or not spec:
        raise ValueError(
            f"invalid grid axis {text!r}; expected name=v1,v2,... or "
            f"name=lo:hi[:step]"
        )
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"invalid grid range {text!r}; expected name=lo:hi[:step]"
            )
        try:
            lo, hi = int(parts[0]), int(parts[1])
            step = int(parts[2]) if len(parts) == 3 else 1
        except ValueError:
            raise ValueError(
                f"grid axis {name!r}: range bounds must be integers"
            ) from None
        if step <= 0:
            raise ValueError(f"grid axis {name!r}: step must be positive")
        if hi < lo:
            raise ValueError(f"grid axis {name!r}: empty range {spec!r}")
        return GridAxis(name, tuple(range(lo, hi + 1, step)))
    values = tuple(
        _parse_number(v.strip(), name) for v in spec.split(",") if v.strip()
    )
    return GridAxis(name, values)


def expand_grid(axes: Sequence[GridAxis]) -> List[Dict[str, Number]]:
    """Cross the axes into one policy-kwargs dict per grid cell.

    The first axis varies slowest (row-major), matching the order the
    axes were given on the command line.
    """
    if not axes:
        return []
    seen = set()
    for axis in axes:
        if axis.name in seen:
            raise ValueError(f"duplicate grid axis {axis.name!r}")
        seen.add(axis.name)
    cells: List[Dict[str, Number]] = [{}]
    for axis in axes:
        cells = [
            {**cell, axis.name: value}
            for cell in cells
            for value in axis.values
        ]
    return cells


def cell_label(kwargs: Dict[str, Number]) -> str:
    """Canonical display label for one grid cell (axis order preserved)."""
    return ",".join(f"{k}={v}" for k, v in kwargs.items())


__all__ = ["GridAxis", "parse_grid_axis", "expand_grid", "cell_label"]
