"""Shared trace preprocessing for the batch replay engine.

Every lane of a batch replay consumes the *same* record stream, so the
expensive per-record work — varint decoding, PC -> instruction-ID
hashing, set indexing and the set-major reordering the kernels want —
is done once here and shared across all lanes.

Decoding is vectorized: an SM section decompresses to one byte buffer,
varint boundaries fall out of the continuation bit, and
``np.add.reduceat`` folds each group's 7-bit payloads in a handful of
array ops.  Anything the vector path cannot represent exactly (varints
longer than 9 bytes, running sums that leave the int64 range) falls
back to the scalar :meth:`~repro.trace.format.TraceReader.sm_stream`
decoder, which also owns the canonical corrupt-trace error messages.
"""

from __future__ import annotations

import gzip
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.format import TraceFormatError, TraceReader, TraceRecord
from repro.utils.hashing import hash_pc

#: Longest varint group the vector path folds exactly: byte 8 shifts by
#: 56 and carries 7 payload bits, so 9 bytes stay within uint64.
_MAX_VARINT_BYTES = 9


def _unzigzag_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorized zigzag decode (uint64 -> int64)."""
    half = (values >> np.uint64(1)).astype(np.int64)
    sign = (values & np.uint64(1)).astype(np.int64)
    return half ^ -sign


def _decode_payload(
    payload: bytes, expected: int
) -> Optional[Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]]:
    """Decode one SM section's compressed payload into (blocks, pcs,
    writes, warps) arrays, or ``None`` when the scalar decoder must run
    instead (over-long varints, count mismatch, possible overflow)."""
    raw = gzip.decompress(payload)
    data = np.frombuffer(raw, dtype=np.uint8)
    if data.size == 0:
        if expected:
            return None
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    term = (data & 0x80) == 0
    if int(term.sum()) != 3 * expected or not bool(term[-1]):
        return None
    ends = np.flatnonzero(term)
    starts = np.empty_like(ends)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    if int((ends - starts).max()) >= _MAX_VARINT_BYTES:
        return None
    group = np.cumsum(term) - term
    pos = np.arange(data.size, dtype=np.int64) - starts[group]
    contrib = (data & 0x7F).astype(np.uint64) << (7 * pos).astype(np.uint64)
    values = np.add.reduceat(contrib, starts)
    cols = values.reshape(-1, 3)
    blocks = np.cumsum(_unzigzag_array(cols[:, 0]), dtype=np.int64)
    pcs = np.cumsum(_unzigzag_array(cols[:, 1]), dtype=np.int64)
    if int(blocks.min()) < 0 or int(pcs.min()) < 0:
        # Recorded addresses are non-negative; a negative running sum
        # means an int64 cumsum overflow.  The scalar path is exact.
        return None
    packed = cols[:, 2]
    writes = (packed & np.uint64(1)).astype(np.int64)
    warps = (packed >> np.uint64(1)).astype(np.int64)
    return blocks, pcs, writes, warps


class SmColumns:
    """One SM stream as parallel numpy columns plus the insn-ID table.

    ``insns`` holds :func:`~repro.utils.hashing.hash_pc` of each
    record's PC — exactly the ``insn_id`` both replay engines feed their
    caches — computed once per distinct PC.
    """

    __slots__ = ("sm_id", "n", "blocks", "pcs", "insns", "writes", "warps",
                 "max_insn", "_records")

    def __init__(self, sm_id: int, blocks: "np.ndarray", pcs: "np.ndarray",
                 writes: "np.ndarray", warps: "np.ndarray") -> None:
        self.sm_id = sm_id
        self.n = int(blocks.size)
        self.blocks = blocks
        self.pcs = pcs
        self.writes = writes
        self.warps = warps
        if self.n:
            unique, inverse = np.unique(pcs, return_inverse=True)
            table = np.fromiter(
                (hash_pc(int(pc)) for pc in unique),
                dtype=np.int64, count=unique.size,
            )
            self.insns = table[inverse]
            self.max_insn = int(table.max())
        else:
            self.insns = np.zeros(0, dtype=np.int64)
            self.max_insn = 0
        self._records: Optional[List[TraceRecord]] = None

    def records(self) -> List[TraceRecord]:
        """The stream as :class:`TraceRecord` objects (for lanes driven
        record by record, e.g. non-blocking mode); built lazily."""
        if self._records is None:
            sm = self.sm_id
            self._records = [
                TraceRecord(sm, block, pc, bool(write), warp)
                for block, pc, write, warp in zip(
                    self.blocks.tolist(), self.pcs.tolist(),
                    self.writes.tolist(), self.warps.tolist(),
                )
            ]
        return self._records


def _columns_from_lists(
    sm_id: int,
    blocks: Sequence[int],
    pcs: Sequence[int],
    writes: Sequence[int],
    warps: Sequence[int],
) -> SmColumns:
    n = len(blocks)
    return SmColumns(
        sm_id,
        np.fromiter(blocks, dtype=np.int64, count=n),
        np.fromiter(pcs, dtype=np.int64, count=n),
        np.fromiter(writes, dtype=np.int64, count=n),
        np.fromiter(warps, dtype=np.int64, count=n),
    )


def decode_reader(reader: TraceReader) -> List[SmColumns]:
    """Decode every SM section of a trace file into columns."""
    out: List[SmColumns] = []
    for sm_id in range(reader.num_sms):
        expected = reader.records_per_sm[sm_id]
        decoded = None
        try:
            decoded = _decode_payload(reader.sm_payload(sm_id), expected)
        except (OSError, EOFError, zlib.error):
            decoded = None  # scalar path raises the canonical error
        if decoded is None:
            records = list(reader.sm_stream(sm_id))
            if len(records) != expected:
                raise TraceFormatError(
                    f"{reader.path}: SM{sm_id} decoded {len(records)} "
                    f"records but the header declares {expected}"
                )
            out.append(_columns_from_lists(
                sm_id,
                [r.block_addr for r in records],
                [r.pc for r in records],
                [int(r.is_write) for r in records],
                [r.warp_id for r in records],
            ))
        else:
            out.append(SmColumns(sm_id, *decoded))
    return out


def decode_records(
    records: Sequence[TraceRecord], num_sms: int
) -> List[SmColumns]:
    """Bucket an in-memory record stream per SM and build columns."""
    blocks: List[List[int]] = [[] for _ in range(num_sms)]
    pcs: List[List[int]] = [[] for _ in range(num_sms)]
    writes: List[List[int]] = [[] for _ in range(num_sms)]
    warps: List[List[int]] = [[] for _ in range(num_sms)]
    for record in records:
        sm_id = record[0]
        blocks[sm_id].append(record[1])
        pcs[sm_id].append(record[2])
        writes[sm_id].append(int(record[3]))
        warps[sm_id].append(record[4])
    return [
        _columns_from_lists(sm, blocks[sm], pcs[sm], writes[sm], warps[sm])
        for sm in range(num_sms)
    ]


# ----------------------------------------------------------------------
# set-major partitions
# ----------------------------------------------------------------------

#: A run of one set's records inside one sampling window:
#: ``(set_index, [(block, insn, is_write), ...])``.
SetRun = Tuple[int, List[Tuple[int, int, int]]]


class SmPartition:
    """One SM stream reordered set-major for one cache geometry.

    Within a sampling window the per-set record order fully determines
    the packed engine's trajectory (accesses to different sets commute:
    PDPT/VTA credits are saturating sums and all LRU/PL comparisons are
    intra-set), so kernels iterate set runs instead of the raw
    interleaving.  Windows are record-count slices of the *original*
    order, exactly the ``sample_limit`` accounting of the engine.
    """

    def __init__(self, columns: SmColumns, num_sets: int,
                 index_fn: str) -> None:
        self.n = columns.n
        self.num_sets = num_sets
        mask = num_sets - 1
        bits = mask.bit_length()
        blocks = columns.blocks
        if index_fn == "linear" or bits == 0:
            sets = blocks & mask
        else:
            sets = np.zeros_like(blocks)
            rest = blocks.copy()
            while rest.any():
                sets ^= rest & mask
                rest >>= bits
        self._sets = sets
        order = np.argsort(sets, kind="stable")
        self._tuples: List[Tuple[int, int, int]] = list(zip(
            blocks[order].tolist(),
            columns.insns[order].tolist(),
            columns.writes[order].tolist(),
        ))
        counts = np.bincount(sets, minlength=num_sets) if self.n else \
            np.zeros(num_sets, dtype=np.int64)
        starts = np.zeros(num_sets + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        self._starts = starts
        self._windows: Dict[int, Tuple[List[List[SetRun]], int]] = {}

    def whole_stream(self) -> Tuple[List[List[SetRun]], int]:
        """The unwindowed layout (policies with no sampling): one
        pseudo-window holding every non-empty set run."""
        cached = self._windows.get(0)
        if cached is None:
            starts = self._starts.tolist()
            runs = [
                (si, self._tuples[starts[si]:starts[si + 1]])
                for si in range(self.num_sets)
                if starts[si + 1] > starts[si]
            ]
            cached = ([runs] if runs else [], 0)
            self._windows[0] = cached
        return cached

    def windows(self, acc_limit: int) -> Tuple[List[List[SetRun]], int]:
        """Set runs sliced per sampling window of ``acc_limit`` records,
        plus the number of windows that actually close (the trailing
        partial window stays open)."""
        cached = self._windows.get(acc_limit)
        if cached is not None:
            return cached
        n = self.n
        if n == 0:
            cached = ([], 0)
            self._windows[acc_limit] = cached
            return cached
        num_windows = -(-n // acc_limit)
        window_of = np.arange(n, dtype=np.int64) // acc_limit
        counts = np.bincount(
            self._sets * num_windows + window_of,
            minlength=self.num_sets * num_windows,
        ).reshape(self.num_sets, num_windows)
        bounds = np.concatenate(
            [self._starts[:-1, None],
             self._starts[:-1, None] + np.cumsum(counts, axis=1)],
            axis=1,
        ).tolist()
        tuples = self._tuples
        layout: List[List[SetRun]] = []
        for w in range(num_windows):
            active = np.flatnonzero(counts[:, w])
            layout.append([
                (int(si), tuples[bounds[si][w]:bounds[si][w + 1]])
                for si in active.tolist()
            ])
        cached = (layout, n // acc_limit)
        self._windows[acc_limit] = cached
        return cached


class TracePartitions:
    """Per-(SM, geometry) partition cache shared by every lane."""

    def __init__(self, columns: Sequence[SmColumns]) -> None:
        self.columns = list(columns)
        self.max_insn = max((c.max_insn for c in self.columns), default=0)
        self._cache: Dict[Tuple[int, int, str], SmPartition] = {}

    def get(self, sm_id: int, num_sets: int, index_fn: str) -> SmPartition:
        key = (sm_id, num_sets, index_fn)
        part = self._cache.get(key)
        if part is None:
            part = SmPartition(self.columns[sm_id], num_sets, index_fn)
            self._cache[key] = part
        return part
