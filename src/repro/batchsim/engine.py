"""The batch replay engine: N policy lanes over one decoded trace.

:func:`replay_batch` is the multi-lane front door: it decodes and
partitions the trace once (:mod:`repro.batchsim.decode`), then advances
every lane — a (scheme, policy_kwargs) variant — through the stream via
the specialized kernels in :mod:`repro.batchsim.kernels`.  Lanes whose
blocking-replay trajectories are provably identical (``baseline`` vs
``stall_bypass``, knobs the replay path never reads such as
``insn_sample_limit``) share one kernel run and the survivors get a
state copy, so a 17-cell ablation grid costs ~15 kernel passes plus one
decode instead of 17 full replays.

:class:`BatchReplayEngine` is the single-lane adapter behind
``--engine batch``: constructor-compatible with
:class:`~repro.fastsim.replay.FastReplayEngine` and bit-identical to it
(and therefore to the reference engine) lane for lane, so batch results
resolve the same store entries as either other engine.  Non-blocking
mode has no batch specialization — fills in flight break the per-window
set decomposition — so NB lanes run the ordinary per-record engine,
one private engine per lane (no cross-lane state by construction).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.fastsim.engine import KIND_DLP, FastL1DCache
from repro.fastsim.replay import FastReplayEngine
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimResult
from repro.trace.format import TraceReader, TraceRecord
from repro.trace.replay import _resolve

from repro.batchsim.decode import (
    SmColumns,
    TracePartitions,
    _columns_from_lists,
    decode_reader,
    decode_records,
)
from repro.batchsim.kernels import DLP, GLOBAL, UNPROTECTED, get_kernel, kernel_key

#: One lane: (scheme, policy kwargs) — the same pair ``repro sweep``
#: passes to :func:`repro.trace.replay.replay_trace`.
Lane = Tuple[Union[str, Any], Dict[str, Any]]

_COPY_INTS = (
    "_stamp", "_acc", "_ins", "samples_completed", "protected_bypasses",
    "_vta_hit_count", "_vta_insert_count", "_vta_probe_count", "_vta_stamp",
    "_g_tda", "_g_vta", "_gpd", "_gp_tda", "_gp_vta",
)
_COPY_LISTS = (
    "_st", "_blk", "_lru", "_iid", "_pli", "_pnd",
    "_pdt", "_pdv", "_pdl", "_pdu",
    "_vta_valid", "_vta_blk", "_vta_iid", "_vta_lru",
)
_COPY_DICTS = ("_bypassed", "closed_by", "pd_updates")


def _lane_key(cache: FastL1DCache) -> Tuple[Any, ...]:
    """Trajectory identity of one lane's blocking replay.

    Two lanes with equal keys take bit-identical paths through the
    stream: the key covers the geometry and every policy knob the
    blocking replay protocol reads.  ``insn_sample_limit`` is absent
    (replay never calls ``notify_instructions``) and ``baseline`` /
    ``stall_bypass`` collapse to one unprotected group (the only stall
    blocking replay can raise is one unprotected policies never hit).
    """
    geom = cache.geometry
    base: Tuple[Any, ...] = (geom.num_sets, geom.assoc, geom.index_fn)
    if not cache._protected:
        return base + (UNPROTECTED,)
    kind = DLP if cache._kind == KIND_DLP else GLOBAL
    return base + (kind, cache._bypass_enabled, cache._acc_limit,
                   cache._vta_assoc, cache._pl_max, cache._nasc)


def _copy_cache(src: FastL1DCache, dst: FastL1DCache) -> None:
    """Copy one cache's full observable end state onto a duplicate lane."""
    for name in _COPY_INTS:
        setattr(dst, name, getattr(src, name))
    for name in _COPY_LISTS:
        getattr(dst, name)[:] = getattr(src, name)
    for name in _COPY_DICTS:
        d = getattr(dst, name)
        d.clear()
        d.update(getattr(src, name))
    for field, value in vars(src.stats).items():
        setattr(dst.stats, field,
                dict(value) if isinstance(value, dict) else value)


def _run_lane(engine: FastReplayEngine, parts: TracePartitions) -> None:
    """Drive one lane's per-SM caches through the shared partitions."""
    for sm_id, cache in enumerate(engine.caches):
        columns = parts.columns[sm_id]
        part = parts.get(sm_id, cache._num_sets, cache.geometry.index_fn)
        kernel = get_kernel(kernel_key(cache, parts.max_insn))
        if cache._protected:
            windows, full = part.windows(cache._acc_limit)
        else:
            windows, full = part.whole_stream()
        kernel(cache, windows, full, part.n, sm_id)
        engine.replayed_per_sm[sm_id] += columns.n
        engine.replayed_records += columns.n


def _pad_columns(columns: List[SmColumns], num_sms: int) -> List[SmColumns]:
    while len(columns) < num_sms:
        columns.append(_columns_from_lists(len(columns), [], [], [], []))
    return columns


def replay_batch(
    source: Union[TraceReader, Sequence[TraceRecord]],
    lanes: Sequence[Lane],
    config: Optional[GPUConfig] = None,
) -> List[SimResult]:
    """Replay every lane over one decode of ``source``.

    ``source`` is a :class:`TraceReader` (decoded vectorized) or an
    in-memory record sequence; ``lanes`` are (scheme, policy_kwargs)
    pairs.  Returns one :class:`SimResult` per lane, in order, each
    bit-identical to a solo ``replay_trace(..., engine="fast")`` run of
    that lane.
    """
    if config is None:
        config = GPUConfig()
    if isinstance(source, TraceReader):
        reader = source
        if config.num_sms < reader.num_sms:
            raise ValueError(
                f"trace has {reader.num_sms} SM streams but config "
                f"provides only {config.num_sms} SMs"
            )
        if config.l1d.line_size != reader.line_size:
            raise ValueError(
                f"line-size mismatch: trace recorded at "
                f"{reader.line_size} B, config uses "
                f"{config.l1d.line_size} B"
            )
        columns = _pad_columns(decode_reader(reader), config.num_sms)
    else:
        columns = decode_records(list(source), config.num_sms)
    parts = TracePartitions(columns)

    engines: List[FastReplayEngine] = []
    for scheme, policy_kwargs in lanes:
        lane_config, factory = _resolve(scheme, config, **policy_kwargs)
        engines.append(FastReplayEngine(lane_config, factory))

    done: Dict[Tuple[Any, ...], FastReplayEngine] = {}
    nb_records: List[TraceRecord] = []
    for engine in engines:
        if engine.non_blocking:
            # No batch specialization: fills in flight break the window
            # decomposition.  Each NB lane gets its own engine pass over
            # the shared decoded records — lane isolation by construction.
            if not nb_records:
                for col in columns:
                    nb_records.extend(col.records())
            engine.run(iter(nb_records))
            continue
        key = _lane_key(engine.caches[0])
        prior = done.get(key)
        if prior is None:
            _run_lane(engine, parts)
            done[key] = engine
        else:
            for src, dst in zip(prior.caches, engine.caches):
                _copy_cache(src, dst)
            engine.replayed_per_sm = list(prior.replayed_per_sm)
            engine.replayed_records = prior.replayed_records
    return [engine.result() for engine in engines]


class BatchReplayEngine(FastReplayEngine):
    """Single-lane batch engine — the ``--engine batch`` adapter.

    Blocking streams run through the specialized kernels; non-blocking
    streams (and reruns over warmed caches, which the kernels refuse)
    fall back to the per-record :class:`FastReplayEngine` path, which is
    already bit-identical.
    """

    def run(self, records: Iterable[TraceRecord]) -> SimResult:
        if self.non_blocking or any(
            c._stamp or c.stats.loads or c.stats.stores for c in self.caches
        ):
            return FastReplayEngine.run(self, records)
        columns = decode_records(list(records), len(self.caches))
        _run_lane(self, TracePartitions(columns))
        return self.result()


__all__ = ["Lane", "BatchReplayEngine", "replay_batch"]
