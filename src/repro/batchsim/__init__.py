"""Batch replay: the whole ablation grid in one pass over one trace.

The package decodes and partitions a recorded trace once
(:mod:`repro.batchsim.decode`), then advances any number of
policy/ablation lanes through it with per-policy specialized kernels
(:mod:`repro.batchsim.kernels`), each lane bit-identical to a solo
``fastsim`` replay.  :mod:`repro.batchsim.engine` exposes the
single-lane ``--engine batch`` adapter and the multi-lane
:func:`~repro.batchsim.engine.replay_batch` front door;
:mod:`repro.batchsim.grid` expands ``--grid`` axes into lanes.
"""

from repro.batchsim.engine import BatchReplayEngine, Lane, replay_batch
from repro.batchsim.grid import GridAxis, cell_label, expand_grid, parse_grid_axis

__all__ = [
    "BatchReplayEngine",
    "Lane",
    "replay_batch",
    "GridAxis",
    "parse_grid_axis",
    "expand_grid",
    "cell_label",
]
