"""Specialized per-policy replay kernels for the batch engine.

Each kernel advances one lane's :class:`~repro.fastsim.engine.FastL1DCache`
through one SM's set-major partition (:mod:`repro.batchsim.decode`).
Kernels are generated per (policy kind, associativity, knob flags) with
the way loop unrolled into scalar locals, so the per-record cost is a
handful of integer compares instead of list walks.  They are proven
bit-identical to :func:`repro.fastsim.replay._replay_stream` by the
differential suite in ``tests/batchsim``; the transformations they rely
on are:

* **Set decomposition.**  Between sampling-window closes, accesses to
  different sets commute: PDPT/VTA credits are saturating increments,
  window counters are sums, and every LRU/PL comparison is intra-set.
  Kernels therefore run set by set inside each window and call
  ``cache._end_sample()`` at the window barrier, exactly once per
  ``sample_limit`` records of the original interleaving.
* **Lazy PL decay.**  Protected-line counters decay by one on every
  access (and stall retry) to the line's set, so a line assigned PL
  ``d`` at set-clock ``s`` holds effective PL ``max(0, d - (t - s))``
  at set-clock ``t``.  Kernels keep ``(d, s)`` per way and one clock
  per set, fold stall retries as a transient ``t + retries`` horizon
  (made persistent with ``s -= retries`` once a victim converges), and
  materialize exact ``pli`` values at the end.
* **Per-set LRU stamps.**  All replacement decisions compare stamps of
  ways within one set, so any per-set stamp sequence that preserves the
  reference's assignment order picks identical victims.  Kernels keep a
  per-set stamp counter (+1 on hit, +2 on fill, like the reference's
  global ``_stamp``) and restore the cache-global stamp as
  ``hits + 2 * misses``, its exact reference value.
* **Dict VTA.**  A per-set insertion-ordered dict {block: owner_iid}
  is observationally equivalent to the packed victim-tag array: probes
  consume (``pop``), re-inserting an existing block moves it to the
  tail, and evicting the first key is the LRU fallback, which the
  array only reaches once every slot is valid.
* **Derived counters.**  In blocking replay ``loads = hits + misses +
  bypasses``, ``fills = misses``, ``sent_fetches = misses + bypasses``,
  ``write_evicts = write_hits``, ``vta_probes = misses + bypasses +
  stalls`` and each window's ``g_tda``/``g_vta`` are the window's hit /
  VTA-hit deltas — each identity holds access by access, so only the
  independent counters are maintained in the hot loop.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Dict, List, Tuple, cast

from repro.core.policy import StallReason
from repro.fastsim.engine import INVALID, KIND_DLP, VALID, FastL1DCache
from repro.trace.replay import MAX_STALL_RETRIES, ReplayStallError

from repro.batchsim.decode import SetRun

_NO_LINE = StallReason.NO_RESERVABLE_LINE.value

#: ``kernel(cache, windows, full, n, sm_id)`` — advance ``cache``
#: through the partitioned stream ``windows`` (``full`` closing sampling
#: windows, ``n`` records total for SM ``sm_id``).
Kernel = Callable[[FastL1DCache, List[List[SetRun]], int, int, int], None]

#: Kind groups.  ``baseline`` and ``stall_bypass`` share the
#: ``unprotected`` kernel: in blocking replay the only stall is
#: NO_RESERVABLE_LINE, which unprotected policies never raise, so the
#: bypass path is unreachable and both reduce to plain LRU.
UNPROTECTED, GLOBAL, DLP = "unprotected", "global", "dlp"


def kernel_key(cache: FastL1DCache, max_insn: int) -> Tuple[Any, ...]:
    """The kernel specialization key for one lane's cache."""
    if not cache._protected:
        return (UNPROTECTED, cache._assoc)
    kind = DLP if cache._kind == KIND_DLP else GLOBAL
    # hash_pc folds PCs to 7 bits, so with the stock 128-entry PDPT the
    # ``% pdpt_n`` folds are identities and the kernel drops them.
    nomod = kind != DLP or max_insn < cache._pdpt_n
    return (kind, cache._assoc, cache._bypass_enabled, nomod)


def get_kernel(key: Tuple[Any, ...]) -> Kernel:
    return _build(*key)


@lru_cache(maxsize=None)
def _build(kind: str, assoc: int, bypass_enabled: bool = False,
           nomod: bool = True) -> Kernel:
    a = assoc
    prot = kind != UNPROTECTED
    dlp = kind == DLP
    ways = range(a)

    bs = [f"b{k}" for k in ways]
    is_ = [f"i{k}" for k in ways]
    ls = [f"l{k}" for k in ways]
    if prot:
        fields = (bs + is_ + [f"d{k}" for k in ways]
                  + [f"s{k}" for k in ways] + ls + ["stamp", "t"])
    else:
        fields = bs + is_ + ls + ["stamp"]
    unpack = ", ".join(fields)

    lines: List[str] = []

    def emit(level: int, *chunk: str) -> None:
        pad = "    " * level
        for ln in chunk:
            lines.append(pad + ln)

    # -- prologue ------------------------------------------------------
    emit(0, "def _kernel(cache, windows, full, n, sm_id):")
    emit(1,
         "if cache._stamp or cache.stats.loads or cache.stats.stores:",
         "    raise ValueError('batch kernels require a fresh cache')",
         "blk = cache._blk",
         "iid = cache._iid",
         "pli = cache._pli",
         "lru = cache._lru",
         "st = cache._st",
         "num_sets = cache._num_sets")
    if prot:
        emit(1,
             "pl_max = cache._pl_max",
             "vta_assoc = cache._vta_assoc",
             "acc_limit = cache._acc_limit",
             "vds = [{} for _ in range(num_sets)]",
             "vta_hits = 0",
             "vta_inserts = 0",
             "stalls = 0",
             "hw0 = 0",
             "vw0 = 0")
    if dlp:
        emit(1,
             "pdt = cache._pdt",
             "pdv = cache._pdv",
             "pdl = cache._pdl",
             "pdu = cache._pdu",
             "pdpt_n = cache._pdpt_n",
             "tda_max = cache._tda_hit_max",
             "vta_max = cache._vta_hit_max")
    elif prot:
        emit(1, "gpd = cache._gpd")
    emit(1,
         "hits = 0",
         "misses = 0",
         "bypasses = 0",
         "evictions = 0",
         "stores = 0",
         "write_hits = 0")

    # -- per-set state tuples ------------------------------------------
    emit(1,
         "state = [None] * num_sets",
         "for si in range(num_sets):",
         f"    base = si * {a}")
    pack = f"tuple(blk[base:base + {a}]) + tuple(iid[base:base + {a}])"
    if prot:
        pack += (f" + tuple(pli[base:base + {a}]) + (0,) * {a}"
                 f" + tuple(lru[base:base + {a}]) + (0, 0)")
    else:
        pack += f" + tuple(lru[base:base + {a}]) + (0,)"
    emit(2, f"state[si] = {pack}")

    # -- main loop -----------------------------------------------------
    emit(1, "for w in range(len(windows)):")
    emit(2, "for si, seg in windows[w]:")
    emit(3, f"{unpack} = state[si]")
    if prot:
        emit(3, "vd = vds[si]")
    emit(3, "for block, insn, isw in seg:")
    if prot:
        emit(4, "t += 1")

    # write path: write-through + write-evict, never stalls
    emit(4, "if isw:")
    emit(5, "stores += 1")
    for k in ways:
        emit(5, f"{'if' if k == 0 else 'elif'} b{k} == block:")
        body = [f"b{k} = -1", f"i{k} = 0"]
        if prot:
            body.append(f"d{k} = 0")
        body.append("write_hits += 1")
        emit(6, *body)
    emit(5, "continue")

    # hit chain
    for k in ways:
        emit(4, f"if b{k} == block:")
        emit(5, "hits += 1")
        if dlp:
            emit(5,
                 f"i = i{k}" if nomod else f"i = i{k} % pdpt_n",
                 "if pdt[i] < tda_max:",
                 "    pdt[i] += 1",
                 "pdu[i] = True",
                 f"i{k} = insn",
                 "pd = pdl[insn]" if nomod else "pd = pdl[insn % pdpt_n]",
                 f"d{k} = pd if pd < pl_max else pl_max",
                 f"s{k} = t")
        elif prot:
            emit(5, f"d{k} = gpd", f"s{k} = t")
        emit(5, "stamp += 1", f"l{k} = stamp", "continue")

    # victim selection (invalid way first, then eligible-LRU)
    for k in ways:
        emit(4, f"{'if' if k == 0 else 'elif'} b{k} < 0:")
        emit(5, f"victim = {k}")
    emit(4, "else:")
    if prot:
        emit(5, "victim = -1", "cs = 0")
        for k in ways:
            cond = f"d{k} <= t - s{k}"
            if k:
                cond += f" and (victim < 0 or l{k} < cs)"
            emit(5, f"if {cond}:")
            emit(6, f"victim = {k}", f"cs = l{k}")
    else:
        emit(5, "victim = 0", "cs = l0")
        for k in range(1, a):
            emit(5, f"if l{k} < cs:")
            emit(6, f"victim = {k}", f"cs = l{k}")

    if prot:
        emit(4, "retries = 0")
        emit(4, "while True:")
        emit(5, "ent = vd.pop(block, None)")
        emit(5, "if ent is not None:")
        emit(6, "vta_hits += 1")
        if dlp:
            emit(6,
                 "i = ent" if nomod else "i = ent % pdpt_n",
                 "if pdv[i] < vta_max:",
                 "    pdv[i] += 1",
                 "pdu[i] = True")
        emit(5, "if victim < 0:")
        if bypass_enabled:
            emit(6, "bypasses += 1", "break")
        else:
            emit(6,
                 "stalls += 1",
                 "retries += 1",
                 "if retries > MAX_STALL_RETRIES:",
                 "    raise ReplayStallError(",
                 "        f'SM{sm_id} access to block {block:#x} '",
                 "        f'stalled {retries} times '",
                 "        f'({StallReason.NO_RESERVABLE_LINE}) '",
                 "        f'without converging'",
                 "    )",
                 "r = t + retries",
                 "victim = -1",
                 "cs = 0")
            for k in ways:
                cond = f"d{k} <= r - s{k}"
                if k:
                    cond += f" and (victim < 0 or l{k} < cs)"
                emit(6, f"if {cond}:")
                emit(7, f"victim = {k}", f"cs = l{k}")
            emit(6, "continue")
        emit(5, "if retries:")
        emit(6, *(f"s{k} -= retries" for k in ways))
        if dlp:
            emit(5,
                 "pd = pdl[insn]" if nomod else "pd = pdl[insn % pdpt_n]",
                 "pl = pd if pd < pl_max else pl_max")
        else:
            emit(5, "pl = gpd")
        emit(5, "stamp += 2")
        for k in ways:
            emit(5, f"{'if' if k == 0 else 'elif'} victim == {k}:")
            emit(6, f"if b{k} >= 0:")
            emit(7,
                 "evictions += 1",
                 f"if b{k} in vd:",
                 f"    del vd[b{k}]",
                 "elif len(vd) >= vta_assoc:",
                 "    del vd[next(iter(vd))]",
                 f"vd[b{k}] = i{k}",
                 "vta_inserts += 1")
            emit(6,
                 f"b{k} = block",
                 f"i{k} = insn",
                 f"d{k} = pl",
                 f"s{k} = t",
                 f"l{k} = stamp")
        emit(5, "misses += 1", "break")
    else:
        emit(4, "stamp += 2")
        for k in ways:
            emit(4, f"{'if' if k == 0 else 'elif'} victim == {k}:")
            emit(5, f"if b{k} >= 0:")
            emit(6, "evictions += 1")
            emit(5, f"b{k} = block", f"i{k} = insn", f"l{k} = stamp")
        emit(4, "misses += 1")

    emit(3, f"state[si] = ({unpack})")

    # sampling-window barrier
    if prot:
        emit(2, "if w < full:")
        if dlp:
            emit(3,
                 "cache._g_tda = hits - hw0",
                 "cache._g_vta = vta_hits - vw0")
        else:
            emit(3,
                 "cache._gp_tda = hits - hw0",
                 "cache._gp_vta = vta_hits - vw0")
        emit(3, "cache._end_sample()", "hw0 = hits", "vw0 = vta_hits")
        if not dlp:
            emit(3, "gpd = cache._gpd")

    # -- writeback -----------------------------------------------------
    emit(1, "for si in range(num_sets):")
    emit(2, f"base = si * {a}", f"{unpack} = state[si]")
    emit(2, f"blk[base:base + {a}] = ({', '.join(bs)},)")
    emit(2, f"iid[base:base + {a}] = ({', '.join(is_)},)")
    emit(2, f"lru[base:base + {a}] = ({', '.join(ls)},)")
    emit(2, f"st[base:base + {a}] = "
            f"({', '.join(f'VALID if b{k} >= 0 else INVALID' for k in ways)},)")
    if prot:
        emit(2, *(f"r{k} = d{k} - (t - s{k})" for k in ways))
        emit(2, f"pli[base:base + {a}] = "
                f"({', '.join(f'r{k} if r{k} > 0 else 0' for k in ways)},)")
    emit(1,
         "s = cache.stats",
         "s.loads += hits + misses + bypasses",
         "s.hits += hits",
         "s.misses += misses",
         "s.bypasses += bypasses",
         "s.stores += stores",
         "s.write_hits += write_hits",
         "s.write_misses += stores - write_hits",
         "s.write_evicts += write_hits",
         "s.evictions += evictions",
         "s.fills += misses",
         "s.sent_fetches += misses + bypasses",
         "s.sent_writes += stores",
         "cache._stamp += hits + 2 * misses")
    if prot:
        emit(1,
             "if stalls:",
             "    s.stalls[_NO_LINE] = s.stalls.get(_NO_LINE, 0) + stalls",
             "cache.protected_bypasses += bypasses",
             "cache._vta_hit_count += vta_hits",
             "cache._vta_insert_count += vta_inserts",
             "cache._vta_stamp += vta_inserts",
             "cache._vta_probe_count += misses + bypasses + stalls",
             "cache.samples_completed += full",
             "cache.closed_by['accesses'] += full",
             "cache._acc = n - full * acc_limit")
        if dlp:
            emit(1,
                 "cache._g_tda = hits - hw0",
                 "cache._g_vta = vta_hits - vw0")
        else:
            emit(1,
                 "cache._gp_tda = hits - hw0",
                 "cache._gp_vta = vta_hits - vw0")

    source = "\n".join(lines) + "\n"
    namespace: Dict[str, Any] = {
        "VALID": VALID,
        "INVALID": INVALID,
        "MAX_STALL_RETRIES": MAX_STALL_RETRIES,
        "ReplayStallError": ReplayStallError,
        "StallReason": StallReason,
        "_NO_LINE": _NO_LINE,
    }
    code = compile(source, f"<batchsim kernel {kind}/a{a}>", "exec")
    exec(code, namespace)  # noqa: S102 — trusted, locally generated source
    return cast(Kernel, namespace["_kernel"])


__all__ = ["Kernel", "kernel_key", "get_kernel", "UNPROTECTED", "GLOBAL",
           "DLP"]
