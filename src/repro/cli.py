"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        simulate one application under one scheme and print a summary
compare    all five schemes on one application (a Figs. 10-13 column)
figure     regenerate one paper table/figure by name (fig2..fig13, table1,
           table2, overhead)
sweep      run an app x scheme grid through the parallel executor,
           optionally backed by an on-disk result store; ``--replay``
           switches to record-once / replay-per-scheme
store      inspect (``ls``) or wipe (``clear``) an on-disk result store
profile    reuse-distance analysis of one application (Fig. 3/7 style)
trace      record, inspect, replay and import memory traces
check      determinism linter + hardware-contract static checks (CI gate)
list       the Table 2 application registry

Examples
--------
::

    python -m repro run SS --policy dlp
    python -m repro compare KM --sms 4
    python -m repro figure fig3
    python -m repro sweep --apps BFS,KM --jobs 4 --store .repro-store
    python -m repro sweep --apps BFS,KM --replay --trace-dir .repro-traces
    python -m repro store ls
    python -m repro profile BFS
    python -m repro trace record BFS --out bfs.rptr --scale 0.5
    python -m repro trace info bfs.rptr
    python -m repro trace replay bfs.rptr --verify
    python -m repro trace import foreign.csv foreign.rptr
    python -m repro check
    python -m repro check --json src/repro/core
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import RD_LABELS, ascii_table, stacked_percent_rows
from repro.experiments.figures import (
    RENDERERS,
    fig10_data,
    fig11a_data,
    fig11b_data,
    fig12a_data,
    fig12b_data,
    fig13_data,
    render_policy_figure,
)
from repro.experiments.executor import SweepExecutor
from repro.experiments.runner import (
    FIG10_SCHEMES,
    SCHEME_LABELS,
    TRAFFIC_SCHEMES,
    harness_config,
    run_workload,
)
from repro.experiments.store import ResultStore, default_store_dir, open_store
from repro.trace.format import TraceFormatError
from repro.workloads import ALL_APPS, make_workload, table2_rows

_TIMING_FIGURES = {
    "fig10": (fig10_data, "Fig. 10: normalized IPC"),
    "fig11a": (fig11a_data, "Fig. 11a: normalized L1D traffic"),
    "fig11b": (fig11b_data, "Fig. 11b: normalized L1D evictions"),
    "fig12a": (fig12a_data, "Fig. 12a: L1D hit rate"),
    "fig12b": (fig12b_data, "Fig. 12b: normalized L1D hits"),
    "fig13": (fig13_data, "Fig. 13: normalized interconnect traffic"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DLP (ICPP 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one application")
    p_run.add_argument("app", help="Table 2 abbreviation (e.g. BFS)")
    p_run.add_argument("--policy", default="baseline",
                       choices=["baseline", "stall_bypass",
                                "global_protection", "dlp", "32kb", "64kb"])
    p_run.add_argument("--sms", type=int, default=4,
                       help="number of SMs (scaled machine; default 4)")
    p_run.add_argument("--scale", type=float, default=1.0,
                       help="workload input scale factor")

    p_cmp = sub.add_parser("compare", help="all five schemes on one app")
    p_cmp.add_argument("app")
    p_cmp.add_argument("--sms", type=int, default=4)
    p_cmp.add_argument("--scale", type=float, default=1.0)

    p_fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    p_fig.add_argument("name",
                       choices=sorted(set(RENDERERS) | set(_TIMING_FIGURES)))
    p_fig.add_argument("--sms", type=int, default=4)

    p_sweep = sub.add_parser(
        "sweep", help="run an app x scheme grid through the parallel executor"
    )
    p_sweep.add_argument("--apps", default="all",
                         help="comma-separated Table 2 abbrs (default: all)")
    p_sweep.add_argument("--schemes", default=",".join(TRAFFIC_SCHEMES),
                         help="comma-separated scheme names "
                              f"(default: {','.join(TRAFFIC_SCHEMES)})")
    p_sweep.add_argument("--sms", type=int, default=4)
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument("--seed", type=int, default=0,
                         help="per-cell RNG seed (0 = default streams)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes for uncached cells")
    p_sweep.add_argument("--store", default=None, metavar="DIR",
                         help="on-disk result store directory "
                              "(default: in-memory, this run only)")
    p_sweep.add_argument("--replay", action="store_true",
                         help="record each app's access stream once and "
                              "replay it per scheme (functional cache "
                              "counters; no timing)")
    p_sweep.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="with --replay: persist recorded traces here "
                              "(default: in-memory, this run only)")

    p_store = sub.add_parser("store", help="manage an on-disk result store")
    p_store.add_argument("action", choices=["ls", "clear"])
    p_store.add_argument("--store", default=None, metavar="DIR",
                         help="store directory (default: $REPRO_STORE "
                              "or .repro-store)")

    p_prof = sub.add_parser("profile", help="reuse-distance analysis")
    p_prof.add_argument("app")
    p_prof.add_argument("--sms", type=int, default=4)

    p_trace = sub.add_parser(
        "trace", help="record, inspect, replay and import memory traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    t_rec = trace_sub.add_parser(
        "record", help="capture an app's coalesced L1D access stream"
    )
    t_rec.add_argument("app", help="Table 2 abbreviation (e.g. BFS)")
    t_rec.add_argument("--out", required=True, metavar="FILE",
                       help="trace file to write (.rptr)")
    t_rec.add_argument("--sms", type=int, default=4)
    t_rec.add_argument("--scale", type=float, default=1.0)
    t_rec.add_argument("--seed", type=int, default=0)

    t_info = trace_sub.add_parser(
        "info", help="print a trace's header without decoding records"
    )
    t_info.add_argument("trace", metavar="FILE")

    t_rep = trace_sub.add_parser(
        "replay", help="drive cache policies from a recorded trace"
    )
    t_rep.add_argument("trace", metavar="FILE")
    t_rep.add_argument("--schemes", default=",".join(TRAFFIC_SCHEMES),
                       help="comma-separated scheme names "
                            f"(default: {','.join(TRAFFIC_SCHEMES)})")
    t_rep.add_argument("--sms", type=int, default=None,
                       help="SM count for the replayed machine "
                            "(default: the trace's own)")
    t_rep.add_argument("--verify", action="store_true",
                       help="re-run the functional path the trace was "
                            "recorded from and require identical counters")

    t_imp = trace_sub.add_parser(
        "import", help="convert a text/CSV access trace to the native format"
    )
    t_imp.add_argument("src", metavar="SRC",
                       help="text trace: sm_id block_addr pc is_write [warp_id]")
    t_imp.add_argument("dest", metavar="DEST", help="native trace to write")
    t_imp.add_argument("--sms", type=int, default=None,
                       help="SM count (default: max sm_id + 1 in SRC)")
    t_imp.add_argument("--line-size", type=int, default=128)

    p_check = sub.add_parser(
        "check",
        help="lint the package for nondeterminism and hardware-contract "
             "hazards (rules R001-R005)",
    )
    p_check.add_argument("paths", nargs="*", metavar="PATH",
                         help="files or directories to lint (default: the "
                              "installed repro package; repo-level rules "
                              "like the R005 semantics manifest only run "
                              "on the full-package default)")
    p_check.add_argument("--json", action="store_true", dest="json_output",
                         help="machine-readable findings on stdout")
    p_check.add_argument("--baseline", default=None, metavar="FILE",
                         help="suppress findings fingerprinted in FILE; "
                              "exit non-zero only on new ones")
    p_check.add_argument("--update-baseline", action="store_true",
                         help="rewrite --baseline FILE from the current "
                              "findings and exit 0")
    p_check.add_argument("--update-manifest", action="store_true",
                         help="regenerate the R005 semantics manifest "
                              "(after bumping SIM_VERSION)")

    sub.add_parser("list", help="list the Table 2 applications")
    return parser


def cmd_run(args) -> int:
    config = harness_config(args.sms)
    result = run_workload(args.app.upper(), args.policy, config, scale=args.scale)
    rows = [(k, f"{v:.4g}") for k, v in result.summary().items()]
    print(ascii_table(
        ["metric", "value"], rows,
        title=f"{args.app.upper()} under {SCHEME_LABELS.get(args.policy, args.policy)}",
    ))
    if result.policy:
        print("\npolicy internals:", result.policy)
    return 0


def cmd_compare(args) -> int:
    config = harness_config(args.sms)
    app = args.app.upper()
    results = {
        scheme: run_workload(app, scheme, config, scale=args.scale)
        for scheme in FIG10_SCHEMES
    }
    base = results["baseline"]
    rows = []
    for scheme in FIG10_SCHEMES:
        r = results[scheme]
        rows.append((
            SCHEME_LABELS[scheme],
            f"{r.ipc / base.ipc:.3f}",
            f"{r.l1d.hit_rate:.3f}",
            str(r.l1d.bypasses),
            f"{r.l1d.evictions_total / max(base.l1d.evictions_total, 1):.3f}",
        ))
    print(ascii_table(
        ["Scheme", "IPC (norm)", "Hit rate", "Bypasses", "Evictions (norm)"],
        rows,
        title=f"{app}: scheme comparison",
    ))
    return 0


def cmd_figure(args) -> int:
    if args.name in RENDERERS:
        print(RENDERERS[args.name]())
        return 0
    data_fn, title = _TIMING_FIGURES[args.name]
    print(render_policy_figure(data_fn(num_sms=args.sms), title))
    return 0


def cmd_sweep(args) -> int:
    apps = ALL_APPS if args.apps == "all" else [
        a.strip().upper() for a in args.apps.split(",") if a.strip()
    ]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    for scheme in schemes:
        if scheme not in SCHEME_LABELS:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of {sorted(SCHEME_LABELS)}"
            )
    if args.replay:
        return _replay_sweep(args, apps, schemes)
    executor = SweepExecutor(store=open_store(args.store), jobs=args.jobs)
    results = executor.run_sweep(
        apps, schemes, num_sms=args.sms, scale=args.scale, seed=args.seed
    )
    rows = [
        (
            app,
            SCHEME_LABELS[scheme],
            str(r.cycles),
            f"{r.ipc:.4g}",
            f"{r.l1d.hit_rate:.3f}",
            str(r.l1d.bypasses),
        )
        for app, per_scheme in results.items()
        for scheme, r in per_scheme.items()
    ]
    print(ascii_table(
        ["App", "Scheme", "Cycles", "IPC", "Hit rate", "Bypasses"],
        rows,
        title=f"sweep: {len(apps)} apps x {len(schemes)} schemes "
              f"({args.sms} SMs, scale {args.scale:g}, jobs {args.jobs})",
    ))
    ex, st = executor.stats, executor.store.stats
    print(
        f"\nexecutor: simulated {ex.simulated} cells, "
        f"{ex.store_hits} store hits, {ex.deduped} deduped"
    )
    print(f"store: {st.hits} hits, {st.misses} misses, {st.puts} puts")
    return 0


def _replay_sweep(args, apps, schemes) -> int:
    from repro.trace.sweep import ReplaySweepExecutor

    executor = ReplaySweepExecutor(
        store=open_store(args.store), trace_dir=args.trace_dir
    )
    results = executor.run_sweep(
        apps, schemes, num_sms=args.sms, scale=args.scale, seed=args.seed
    )
    rows = [
        (
            app,
            SCHEME_LABELS[scheme],
            f"{r.l1d.hit_rate:.3f}",
            str(r.l1d.bypasses),
            str(r.l1d.evictions_total),
            str(int(r.interconnect.get("total_requests", 0))),
        )
        for app, per_scheme in results.items()
        for scheme, r in per_scheme.items()
    ]
    print(ascii_table(
        ["App", "Scheme", "Hit rate", "Bypasses", "Evictions", "Interconnect"],
        rows,
        title=f"replay sweep: {len(apps)} apps x {len(schemes)} schemes "
              f"({args.sms} SMs, scale {args.scale:g})",
    ))
    tr, st = executor.stats, executor.store.stats
    print(
        f"\ntrace: recorded {tr.recorded} traces, {tr.trace_hits} trace hits; "
        f"replayed {tr.replayed} cells, {tr.store_hits} store hits"
    )
    print(f"store: {st.hits} hits, {st.misses} misses, {st.puts} puts")
    return 0


def cmd_store(args) -> int:
    store = ResultStore(args.store or default_store_dir())
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
        return 0
    entries = store.ls()
    rows = [
        (
            e["key"][:12],
            str(e.get("abbr", "?")),
            str(e.get("scheme", "?")),
            str(e.get("num_sms", "?")),
            f"{e.get('scale', 1.0):g}",
            str(e.get("seed", 0)),
        )
        for e in entries
    ]
    print(ascii_table(
        ["Key", "App", "Scheme", "SMs", "Scale", "Seed"],
        rows,
        title=f"{store.root}: {len(entries)} entries",
    ))
    return 0


def cmd_profile(args) -> int:
    from repro.experiments.cachesim import profile_reuse

    app = args.app.upper()
    config = harness_config(args.sms)
    profiler = profile_reuse(make_workload(app), config)
    print(stacked_percent_rows(
        [app], [profiler.overall_fractions()], RD_LABELS,
        title=f"{app}: reuse-distance distribution",
    ))
    per_pc = sorted(profiler.pc_fractions().items())
    print()
    print(stacked_percent_rows(
        [f"pc={pc:#x}" for pc, _ in per_pc],
        [fracs for _, fracs in per_pc],
        RD_LABELS,
        title="per-instruction RDDs",
    ))
    return 0


def cmd_trace(args) -> int:
    from repro.trace import (
        TraceReader,
        import_text_trace,
        record_app,
        replay_trace,
        replay_workload,
    )

    if args.trace_command == "record":
        config = harness_config(args.sms)
        path = record_app(args.app.upper(), args.out, config,
                          scale=args.scale, seed=args.seed)
        reader = TraceReader(path)
        print(f"recorded {reader.total_records} records "
              f"({reader.num_sms} SMs) -> {path}")
        return 0

    if args.trace_command == "info":
        reader = TraceReader(args.trace)
        info = reader.info()
        rows = [(k, str(v)) for k, v in info.items()]
        print(ascii_table(["field", "value"], rows, title=str(args.trace)))
        return 0

    if args.trace_command == "import":
        reader = import_text_trace(args.src, args.dest, num_sms=args.sms,
                                   line_size=args.line_size)
        print(f"imported {reader.total_records} records "
              f"({reader.num_sms} SMs) -> {args.dest}")
        return 0

    # replay
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    for scheme in schemes:
        if scheme not in SCHEME_LABELS:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of {sorted(SCHEME_LABELS)}"
            )
    reader = TraceReader(args.trace)
    config = harness_config(args.sms) if args.sms is not None else None
    results = {s: replay_trace(reader, s, config) for s in schemes}
    rows = [
        (
            SCHEME_LABELS[s],
            f"{r.l1d.hit_rate:.3f}",
            str(r.l1d.bypasses),
            str(r.l1d.evictions_total),
            str(int(r.interconnect.get("total_requests", 0))),
        )
        for s, r in results.items()
    ]
    print(ascii_table(
        ["Scheme", "Hit rate", "Bypasses", "Evictions", "Interconnect"],
        rows,
        title=f"replay of {args.trace} ({reader.total_records} records)",
    ))
    if args.verify:
        meta = reader.meta
        if meta.get("source") != "registry":
            raise ValueError(
                "--verify needs a registry-recorded trace "
                f"(this one has source={meta.get('source')!r})"
            )
        workload_config = config or harness_config(reader.num_sms)
        mismatches = 0
        for scheme in schemes:
            live = replay_workload(
                make_workload(meta["abbr"], meta.get("scale", 1.0),
                              seed=meta.get("seed", 0)),
                workload_config, scheme,
            )
            ok = live.to_dict() == results[scheme].to_dict()
            mismatches += 0 if ok else 1
            print(f"verify {scheme}: {'identical' if ok else 'MISMATCH'}")
        if mismatches:
            print(f"verify: {mismatches} scheme(s) diverged", file=sys.stderr)
            return 1
        print("verify: replay identical to functional path "
              f"for all {len(schemes)} schemes")
    return 0


def cmd_check(args) -> int:
    from repro.check.lint import run_check

    return run_check(
        paths=args.paths or None,
        baseline=args.baseline,
        json_output=args.json_output,
        update_baseline=args.update_baseline,
        update_manifest=args.update_manifest,
    )


def cmd_list(_args) -> int:
    print(ascii_table(
        ["Application", "Abbr.", "Suite", "Type", "Paper input", "Scaled input"],
        table2_rows(),
        title="Table 2 applications",
    ))
    return 0


_COMMANDS = {
    "run": cmd_run,
    "compare": cmd_compare,
    "figure": cmd_figure,
    "sweep": cmd_sweep,
    "store": cmd_store,
    "profile": cmd_profile,
    "trace": cmd_trace,
    "check": cmd_check,
    "list": cmd_list,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, TraceFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # output truncated by a shell pipe (| head)
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
