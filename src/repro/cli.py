"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        simulate one application under one scheme and print a summary
compare    all five schemes on one application (a Figs. 10-13 column)
figure     regenerate one paper table/figure by name (fig2..fig13, table1,
           table2, overhead)
sweep      run an app x scheme grid through the parallel executor,
           optionally backed by an on-disk result store; ``--replay``
           switches to record-once / replay-per-scheme
store      inspect (``ls``), wipe (``clear``) or age out (``prune``)
           an on-disk result store
serve      run the long-lived async simulation service (HTTP job API,
           request coalescing, /healthz + /metrics, SIGTERM drain)
submit     drive a running service: submit cell/sweep/replay jobs,
           poll status, cancel, inspect metrics; ``--predict`` asks for
           instant tier-0 analytical answers with background refinement
loadtest   drive hundreds/thousands of concurrent clients against a
           cluster with a zipfian hot/cold mix; measures p50/p99,
           throughput, coalescing and 429 rates; gates on SLOs
predict    analytical miss-rate/IPC estimates for an app x scheme grid —
           no cache is stepped; calibrated error bars included
profile    reuse-distance analysis of one application (Fig. 3/7 style)
trace      record, inspect, replay and import memory traces
check      static verification: determinism, bit-width proofs, engine
           parity, key purity, async hygiene (rules R001-R010, CI gate)
fuzz       differential fuzzer: seeded adversarial streams through both
           L1D engines across the scheme x MSHR-mode grid (CI gate)
list       the Table 2 application registry

Examples
--------
::

    python -m repro run SS --policy dlp
    python -m repro compare KM --sms 4
    python -m repro figure fig3
    python -m repro sweep --apps BFS,KM --jobs 4 --store .repro-store
    python -m repro sweep --apps BFS,KM --replay --trace-dir .repro-traces
    python -m repro store ls
    python -m repro store prune --max-age 7d --max-entries 500
    python -m repro serve --port 8642 --workers 4 --store .repro-store
    python -m repro submit cell BFS dlp --wait
    python -m repro submit sweep --apps BFS,KM --schemes baseline,dlp
    python -m repro submit cell BFS dlp --predict --wait
    python -m repro submit status job-000001
    python -m repro submit metrics
    python -m repro loadtest --clients 1000 --workers 4 --slo-p99 5
    python -m repro loadtest --clients 200 --workers 2 --kill-worker-after 40
    python -m repro predict --apps BFS,KM --schemes baseline,dlp
    python -m repro profile BFS
    python -m repro trace record BFS --out bfs.rptr --scale 0.5
    python -m repro trace info bfs.rptr
    python -m repro trace info bfs.rptr --rdd
    python -m repro trace replay bfs.rptr --verify
    python -m repro trace import foreign.csv foreign.rptr
    python -m repro check
    python -m repro check --strict --sarif check.sarif
    python -m repro check --json src/repro/core
    python -m repro fuzz --streams 200 --length 400
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import RD_LABELS, ascii_table, stacked_percent_rows
from repro.experiments.figures import (
    RENDERERS,
    fig10_data,
    fig11a_data,
    fig11b_data,
    fig12a_data,
    fig12b_data,
    fig13_data,
    render_policy_figure,
)
from repro.experiments.executor import SweepExecutor
from repro.experiments.runner import (
    FIG10_SCHEMES,
    SCHEME_LABELS,
    TRAFFIC_SCHEMES,
    harness_config,
    run_workload,
)
from repro.experiments.store import ResultStore, default_store_dir, open_store
from repro.trace.format import TraceFormatError
from repro.workloads import ALL_APPS, make_workload, table2_rows

_TIMING_FIGURES = {
    "fig10": (fig10_data, "Fig. 10: normalized IPC"),
    "fig11a": (fig11a_data, "Fig. 11a: normalized L1D traffic"),
    "fig11b": (fig11b_data, "Fig. 11b: normalized L1D evictions"),
    "fig12a": (fig12a_data, "Fig. 12a: L1D hit rate"),
    "fig12b": (fig12b_data, "Fig. 12b: normalized L1D hits"),
    "fig13": (fig13_data, "Fig. 13: normalized interconnect traffic"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DLP (ICPP 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one application")
    p_run.add_argument("app", help="Table 2 abbreviation (e.g. BFS)")
    p_run.add_argument("--policy", default="baseline",
                       choices=["baseline", "stall_bypass",
                                "global_protection", "dlp", "32kb", "64kb"])
    p_run.add_argument("--sms", type=int, default=4,
                       help="number of SMs (scaled machine; default 4)")
    p_run.add_argument("--scale", type=float, default=1.0,
                       help="workload input scale factor")
    p_run.add_argument("--engine", default="reference",
                       choices=["reference", "fast"],
                       help="L1D implementation (bit-identical results; "
                            "'fast' is the packed array engine)")
    p_run.add_argument("--non-blocking", action="store_true",
                       help="non-blocking L1D (hit-under-miss, word-"
                            "granular MSHR merging); enters store keys")

    p_cmp = sub.add_parser("compare", help="all five schemes on one app")
    p_cmp.add_argument("app")
    p_cmp.add_argument("--sms", type=int, default=4)
    p_cmp.add_argument("--scale", type=float, default=1.0)

    p_fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    p_fig.add_argument("name",
                       choices=sorted(set(RENDERERS) | set(_TIMING_FIGURES)))
    p_fig.add_argument("--sms", type=int, default=4)

    p_sweep = sub.add_parser(
        "sweep", help="run an app x scheme grid through the parallel executor"
    )
    p_sweep.add_argument("--apps", default="all",
                         help="comma-separated Table 2 abbrs (default: all)")
    p_sweep.add_argument("--schemes", default=",".join(TRAFFIC_SCHEMES),
                         help="comma-separated scheme names "
                              f"(default: {','.join(TRAFFIC_SCHEMES)})")
    p_sweep.add_argument("--sms", type=int, default=4)
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument("--seed", type=int, default=0,
                         help="per-cell RNG seed (0 = default streams)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes for uncached cells")
    p_sweep.add_argument("--store", default=None, metavar="DIR",
                         help="on-disk result store directory "
                              "(default: in-memory, this run only)")
    p_sweep.add_argument("--replay", action="store_true",
                         help="record each app's access stream once and "
                              "replay it per scheme (functional cache "
                              "counters; no timing)")
    p_sweep.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="with --replay: persist recorded traces here "
                              "(default: in-memory, this run only)")
    p_sweep.add_argument("--engine", default="reference",
                         choices=["reference", "fast", "batch"],
                         help="L1D implementation for uncached cells "
                              "(bit-identical results; store keys are "
                              "engine-independent; 'batch' replays all "
                              "of an app's schemes in one pass and "
                              "requires --replay)")
    p_sweep.add_argument("--non-blocking", action="store_true",
                         help="non-blocking L1D for every cell "
                              "(semantic switch: enters store keys)")
    p_sweep.add_argument("--grid", action="append", default=None,
                         metavar="AXIS",
                         help="replay an ablation grid instead of a scheme "
                              "matrix: repeatable policy-knob axis "
                              "(name=v1,v2,... or name=lo:hi[:step]) "
                              "crossed over a single --schemes entry; "
                              "requires --replay")
    p_sweep.add_argument("--grid-out", default=None, metavar="FILE",
                         help="with --grid: also write the frontier map "
                              "as JSON to FILE")

    p_store = sub.add_parser("store", help="manage an on-disk result store")
    p_store.add_argument("action", choices=["ls", "clear", "prune"])
    p_store.add_argument("--store", default=None, metavar="DIR",
                         help="store directory (default: $REPRO_STORE "
                              "or .repro-store)")
    p_store.add_argument("--max-age", default=None, metavar="AGE",
                         help="prune: drop entries older than AGE "
                              "(seconds, or suffixed: 90s, 30m, 12h, 7d)")
    p_store.add_argument("--max-entries", type=int, default=None, metavar="N",
                         help="prune: keep only the newest N entries")

    p_serve = sub.add_parser(
        "serve", help="run the long-lived async simulation service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (0 = ephemeral; default 8642)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="simulation worker processes (default 2)")
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="result store directory (default: "
                              "$REPRO_STORE or .repro-store)")
    p_serve.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="shared trace directory for replay jobs "
                              "(default: capture in-worker, no sharing)")
    p_serve.add_argument("--engine", default="reference",
                         choices=["reference", "fast"],
                         help="L1D implementation the workers run "
                              "(bit-identical results; store keys are "
                              "engine-independent)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="max wait for active jobs on SIGTERM "
                              "(default 30)")
    p_serve.add_argument("--max-queued", type=int, default=0, metavar="N",
                         help="bound on queued cells; a submission over "
                              "the bound gets 429 + Retry-After "
                              "(default 0 = unbounded)")
    p_serve.add_argument("--rate", type=float, default=None,
                         metavar="CELLS_PER_S",
                         help="per-client token-bucket rate limit "
                              "(default: off)")
    p_serve.add_argument("--burst", type=float, default=None, metavar="N",
                         help="token-bucket burst capacity "
                              "(default: max(1, rate))")

    p_submit = sub.add_parser(
        "submit", help="submit jobs to / inspect a running service"
    )
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8642)
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          help="max seconds to wait with --wait")
    submit_sub = p_submit.add_subparsers(dest="submit_command", required=True)

    s_cell = submit_sub.add_parser("cell", help="one timing simulation")
    s_cell.add_argument("app", help="Table 2 abbreviation (e.g. BFS)")
    s_cell.add_argument("scheme", help="policy scheme (e.g. dlp)")
    s_cell.add_argument("--sms", type=int, default=4)
    s_cell.add_argument("--scale", type=float, default=1.0)
    s_cell.add_argument("--seed", type=int, default=0)
    s_cell.add_argument("--max-cycles", type=int, default=None)

    s_sweep = submit_sub.add_parser("sweep", help="a bulk timing grid")
    s_sweep.add_argument("--apps", required=True,
                         help="comma-separated Table 2 abbrs")
    s_sweep.add_argument("--schemes", default=",".join(TRAFFIC_SCHEMES))
    s_sweep.add_argument("--sms", type=int, default=4)
    s_sweep.add_argument("--scale", type=float, default=1.0)
    s_sweep.add_argument("--seed", type=int, default=0)

    s_replay = submit_sub.add_parser(
        "replay", help="a trace-replay grid (functional counters)"
    )
    s_replay.add_argument("--apps", required=True)
    s_replay.add_argument("--schemes", default=",".join(TRAFFIC_SCHEMES))
    s_replay.add_argument("--sms", type=int, default=4)
    s_replay.add_argument("--scale", type=float, default=1.0)
    s_replay.add_argument("--seed", type=int, default=0)

    for p in (s_cell, s_sweep, s_replay):
        p.add_argument("--priority", choices=["interactive", "bulk"],
                       default=None,
                       help="admission priority (default: interactive "
                            "for single cells, bulk for grids)")
        p.add_argument("--wait", action="store_true",
                       help="poll until the job settles and print results")
        p.add_argument("--non-blocking", action="store_true",
                       help="non-blocking L1D (semantic switch: enters "
                            "store keys)")
        p.add_argument("--predict", action="store_true",
                       help="tier-0: answer cold cells analytically now "
                            "(with error bars) and refine to exact "
                            "results in the background")
        p.add_argument("--client", default=None, metavar="NAME",
                       help="client identity for fair scheduling and "
                            "rate limiting (default: anonymous)")

    s_status = submit_sub.add_parser("status", help="poll one job")
    s_status.add_argument("job_id")
    s_status.add_argument("--wait", action="store_true")

    s_cancel = submit_sub.add_parser("cancel", help="cancel one job")
    s_cancel.add_argument("job_id")

    s_metrics = submit_sub.add_parser("metrics", help="service metrics")
    s_metrics.add_argument("--prom", action="store_true",
                           help="raw Prometheus text instead of tables")

    submit_sub.add_parser("health", help="service liveness/drain state")

    p_load = sub.add_parser(
        "loadtest",
        help="drive concurrent clients against a cluster with a "
             "zipfian mix and gate on SLOs",
    )
    p_load.add_argument("--clients", type=int, default=200,
                        help="concurrent client coroutines (default 200)")
    p_load.add_argument("--requests", type=int, default=1, metavar="N",
                        help="requests per client (default 1)")
    p_load.add_argument("--population", type=int, default=24,
                        help="distinct cells in the mix (default 24)")
    p_load.add_argument("--zipf", type=float, default=1.1,
                        help="zipf popularity exponent (default 1.1)")
    p_load.add_argument("--predict-fraction", type=float, default=0.0,
                        help="fraction of requests on the tier-0 "
                             "predict path (default 0)")
    p_load.add_argument("--apps", default="MM,BFS",
                        help="comma-separated Table 2 abbrs the "
                             "population cycles through")
    p_load.add_argument("--schemes", default="baseline,dlp")
    p_load.add_argument("--sms", type=int, default=1)
    p_load.add_argument("--scale", type=float, default=0.1)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--workers", type=int, default=4,
                        help="worker processes for the self-hosted "
                             "cluster (default 4)")
    p_load.add_argument("--store", default=None, metavar="DIR",
                        help="result store for the self-hosted cluster "
                             "(default: in-memory)")
    p_load.add_argument("--engine", default="reference",
                        choices=["reference", "fast"])
    p_load.add_argument("--max-queued", type=int, default=0)
    p_load.add_argument("--rate", type=float, default=None)
    p_load.add_argument("--burst", type=float, default=None)
    p_load.add_argument("--host", default=None,
                        help="target an already-running service instead "
                             "of self-hosting (needs --port)")
    p_load.add_argument("--port", type=int, default=None)
    p_load.add_argument("--retries", type=int, default=8)
    p_load.add_argument("--ramp", type=float, default=0.5,
                        metavar="SECONDS",
                        help="client start ramp-up window (default 0.5)")
    p_load.add_argument("--max-connections", type=int, default=256)
    p_load.add_argument("--timeout", type=float, default=120.0,
                        help="per-request deadline in seconds")
    p_load.add_argument("--kill-worker-after", type=int, default=None,
                        metavar="N",
                        help="chaos: SIGKILL one worker after N "
                             "completed requests (self-hosted only)")
    p_load.add_argument("--slo-p99", type=float, default=None,
                        metavar="SECONDS",
                        help="fail unless p99 latency <= this")
    p_load.add_argument("--slo-coalescing", type=float, default=None,
                        metavar="RATE",
                        help="fail unless coalesced/requested >= this")
    p_load.add_argument("--slo-max-throttle", type=float, default=None,
                        metavar="RATE",
                        help="fail if 429s/request exceed this")
    p_load.add_argument("--slo-max-failures", type=int, default=0)
    p_load.add_argument("--json", action="store_true", dest="json_output",
                        help="print the full report as JSON")

    p_pred = sub.add_parser(
        "predict",
        help="analytical miss-rate/IPC estimates for an app x scheme "
             "grid (no simulation; calibrated error bars)",
    )
    p_pred.add_argument("--apps", default="all",
                        help="comma-separated Table 2 abbrs (default: all)")
    p_pred.add_argument("--schemes", default=",".join(TRAFFIC_SCHEMES),
                        help="comma-separated scheme names "
                             f"(default: {','.join(TRAFFIC_SCHEMES)})")
    p_pred.add_argument("--sms", type=int, default=4)
    p_pred.add_argument("--scale", type=float, default=1.0)
    p_pred.add_argument("--seed", type=int, default=0)
    p_pred.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="profile streams from recorded traces here "
                             "instead of re-capturing the workloads")
    p_pred.add_argument("--raw", action="store_true",
                        help="skip the packaged calibration (uncorrected "
                             "model, no error bars)")

    p_prof = sub.add_parser(
        "profile",
        help="reuse-distance analysis, or (--scheme) engine phase timing",
    )
    p_prof.add_argument("app")
    p_prof.add_argument("--sms", type=int, default=4)
    p_prof.add_argument("--scheme", default=None,
                        choices=sorted(SCHEME_LABELS),
                        help="profile the L1D engine under this scheme "
                             "instead: per-phase reference timings "
                             "(set query / victim select / policy hooks / "
                             "sampling) plus the fast-engine comparison")
    p_prof.add_argument("--scale", type=float, default=1.0,
                        help="workload input scale factor (--scheme mode)")

    p_trace = sub.add_parser(
        "trace", help="record, inspect, replay and import memory traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    t_rec = trace_sub.add_parser(
        "record", help="capture an app's coalesced L1D access stream"
    )
    t_rec.add_argument("app", help="Table 2 abbreviation (e.g. BFS)")
    t_rec.add_argument("--out", required=True, metavar="FILE",
                       help="trace file to write (.rptr)")
    t_rec.add_argument("--sms", type=int, default=4)
    t_rec.add_argument("--scale", type=float, default=1.0)
    t_rec.add_argument("--seed", type=int, default=0)

    t_info = trace_sub.add_parser(
        "info", help="print a trace's header without decoding records"
    )
    t_info.add_argument("trace", metavar="FILE")
    t_info.add_argument("--rdd", action="store_true",
                        help="also profile the records: overall and "
                             "per-instruction reuse-distance "
                             "distributions (no replay)")

    t_rep = trace_sub.add_parser(
        "replay", help="drive cache policies from a recorded trace"
    )
    t_rep.add_argument("trace", metavar="FILE")
    t_rep.add_argument("--schemes", default=",".join(TRAFFIC_SCHEMES),
                       help="comma-separated scheme names "
                            f"(default: {','.join(TRAFFIC_SCHEMES)})")
    t_rep.add_argument("--sms", type=int, default=None,
                       help="SM count for the replayed machine "
                            "(default: the trace's own)")
    t_rep.add_argument("--engine", default="reference",
                       choices=["reference", "fast", "batch"],
                       help="replay engine (bit-identical results)")
    t_rep.add_argument("--non-blocking", action="store_true",
                       help="replay against the non-blocking L1D "
                            "(windowed fills; RESERVED lines survive "
                            "between accesses)")
    t_rep.add_argument("--verify", action="store_true",
                       help="re-run the functional path the trace was "
                            "recorded from and require identical counters")

    t_imp = trace_sub.add_parser(
        "import", help="convert a text/CSV access trace to the native format"
    )
    t_imp.add_argument("src", metavar="SRC",
                       help="text trace: sm_id block_addr pc is_write [warp_id]")
    t_imp.add_argument("dest", metavar="DEST", help="native trace to write")
    t_imp.add_argument("--sms", type=int, default=None,
                       help="SM count (default: max sm_id + 1 in SRC)")
    t_imp.add_argument("--line-size", type=int, default=128)

    p_check = sub.add_parser(
        "check",
        help="static verification: determinism, bit-width proofs, engine "
             "parity, key purity and async hygiene (rules R001-R010)",
    )
    p_check.add_argument("paths", nargs="*", metavar="PATH",
                         help="files or directories to lint (default: the "
                              "installed repro package; repo-level rules "
                              "like the R005 semantics manifest only run "
                              "on the full-package default)")
    p_check.add_argument("--json", action="store_true", dest="json_output",
                         help="machine-readable findings on stdout")
    p_check.add_argument("--baseline", default=None, metavar="FILE",
                         help="suppress findings fingerprinted in FILE; "
                              "exit non-zero only on new ones")
    p_check.add_argument("--update-baseline", action="store_true",
                         help="rewrite --baseline FILE from the current "
                              "findings and exit 0")
    p_check.add_argument("--update-manifest", action="store_true",
                         help="regenerate the R005 semantics manifest "
                              "(after bumping SIM_VERSION)")
    p_check.add_argument("--update-parity", action="store_true",
                         help="regenerate the R007 engine-parity manifest "
                              "(after an intentional policy-surface change)")
    p_check.add_argument("--strict", action="store_true",
                         help="refuse a baseline and enforce allow-marker "
                              "hygiene (R010: unused or unjustified markers)")
    p_check.add_argument("--sarif", default=None, metavar="FILE",
                         help="also write findings as a SARIF 2.1.0 report")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzz: adversarial streams through both L1D "
             "engines across the scheme x MSHR-mode grid",
    )
    p_fuzz.add_argument("--streams", type=int, default=20,
                        help="seeded streams to generate (default 20)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed; stream i uses seed+i (default 0)")
    p_fuzz.add_argument("--length", type=int, default=None,
                        help="truncate each stream to this many records")
    p_fuzz.add_argument("--sms", type=int, default=2,
                        help="SMs in the fuzz machine (default 2)")
    p_fuzz.add_argument("--scale", type=float, default=1.0,
                        help="generator input scale factor")
    p_fuzz.add_argument("--generators", default=None,
                        help="comma list of generators "
                             "(default ATH,APC,APH,ABS)")
    p_fuzz.add_argument("--policies", default=None,
                        help="comma list of schemes (default all four)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report divergences without minimizing the "
                             "failing prefix")
    p_fuzz.add_argument("--json", action="store_true", dest="json_output",
                        help="machine-readable report on stdout")

    sub.add_parser("list", help="list the Table 2 applications")
    return parser


def cmd_run(args) -> int:
    config = harness_config(args.sms)
    if args.non_blocking:
        config = config.with_l1d(non_blocking=True)
    result = run_workload(args.app.upper(), args.policy, config,
                          scale=args.scale, engine=args.engine)
    rows = [(k, f"{v:.4g}") for k, v in result.summary().items()]
    print(ascii_table(
        ["metric", "value"], rows,
        title=f"{args.app.upper()} under {SCHEME_LABELS.get(args.policy, args.policy)}",
    ))
    if result.policy:
        print("\npolicy internals:", result.policy)
    return 0


def cmd_compare(args) -> int:
    config = harness_config(args.sms)
    app = args.app.upper()
    results = {
        scheme: run_workload(app, scheme, config, scale=args.scale)
        for scheme in FIG10_SCHEMES
    }
    base = results["baseline"]
    rows = []
    for scheme in FIG10_SCHEMES:
        r = results[scheme]
        rows.append((
            SCHEME_LABELS[scheme],
            f"{r.ipc / base.ipc:.3f}",
            f"{r.l1d.hit_rate:.3f}",
            str(r.l1d.bypasses),
            f"{r.l1d.evictions_total / max(base.l1d.evictions_total, 1):.3f}",
        ))
    print(ascii_table(
        ["Scheme", "IPC (norm)", "Hit rate", "Bypasses", "Evictions (norm)"],
        rows,
        title=f"{app}: scheme comparison",
    ))
    return 0


def cmd_figure(args) -> int:
    if args.name in RENDERERS:
        print(RENDERERS[args.name]())
        return 0
    data_fn, title = _TIMING_FIGURES[args.name]
    print(render_policy_figure(data_fn(num_sms=args.sms), title))
    return 0


def _cli_config(args):
    """Explicit sweep config, or ``None`` for the default harness machine.

    Returning ``None`` in the blocking case keeps the executors on their
    default :func:`Cell.resolved_config` path, so blocking-mode store
    keys stay byte-identical to every earlier release."""
    if not getattr(args, "non_blocking", False):
        return None
    return harness_config(args.sms).with_l1d(non_blocking=True)


def cmd_sweep(args) -> int:
    apps = ALL_APPS if args.apps == "all" else [
        a.strip().upper() for a in args.apps.split(",") if a.strip()
    ]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    for scheme in schemes:
        if scheme not in SCHEME_LABELS:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of {sorted(SCHEME_LABELS)}"
            )
    if args.engine == "batch" and not args.replay:
        raise ValueError(
            "--engine batch is a replay engine; add --replay"
        )
    if getattr(args, "grid", None) and not args.replay:
        raise ValueError("--grid is a replay mode; add --replay")
    if args.replay:
        if getattr(args, "grid", None):
            return _replay_grid(args, apps, schemes)
        return _replay_sweep(args, apps, schemes)
    executor = SweepExecutor(store=open_store(args.store), jobs=args.jobs)
    results = executor.run_sweep(
        apps, schemes, num_sms=args.sms, scale=args.scale, seed=args.seed,
        engine=args.engine, config=_cli_config(args),
    )
    rows = [
        (
            app,
            SCHEME_LABELS[scheme],
            str(r.cycles),
            f"{r.ipc:.4g}",
            f"{r.l1d.hit_rate:.3f}",
            str(r.l1d.bypasses),
        )
        for app, per_scheme in results.items()
        for scheme, r in per_scheme.items()
    ]
    print(ascii_table(
        ["App", "Scheme", "Cycles", "IPC", "Hit rate", "Bypasses"],
        rows,
        title=f"sweep: {len(apps)} apps x {len(schemes)} schemes "
              f"({args.sms} SMs, scale {args.scale:g}, jobs {args.jobs})",
    ))
    ex, st = executor.stats, executor.store.stats
    print(
        f"\nexecutor: simulated {ex.simulated} cells, "
        f"{ex.store_hits} store hits, {ex.deduped} deduped"
    )
    print(f"store: {st.hits} hits, {st.misses} misses, {st.puts} puts")
    return 0


def _replay_sweep(args, apps, schemes) -> int:
    from repro.trace.sweep import ReplaySweepExecutor

    executor = ReplaySweepExecutor(
        store=open_store(args.store), trace_dir=args.trace_dir,
        config=_cli_config(args), engine=args.engine,
    )
    results = executor.run_sweep(
        apps, schemes, num_sms=args.sms, scale=args.scale, seed=args.seed
    )
    rows = [
        (
            app,
            SCHEME_LABELS[scheme],
            f"{r.l1d.hit_rate:.3f}",
            str(r.l1d.bypasses),
            str(r.l1d.evictions_total),
            str(int(r.interconnect.get("total_requests", 0))),
        )
        for app, per_scheme in results.items()
        for scheme, r in per_scheme.items()
    ]
    print(ascii_table(
        ["App", "Scheme", "Hit rate", "Bypasses", "Evictions", "Interconnect"],
        rows,
        title=f"replay sweep: {len(apps)} apps x {len(schemes)} schemes "
              f"({args.sms} SMs, scale {args.scale:g})",
    ))
    tr, st = executor.stats, executor.store.stats
    print(
        f"\ntrace: recorded {tr.recorded} traces, {tr.trace_hits} trace hits; "
        f"replayed {tr.replayed} cells, {tr.store_hits} store hits"
    )
    print(f"store: {st.hits} hits, {st.misses} misses, {st.puts} puts")
    return 0


def _replay_grid(args, apps, schemes) -> int:
    """``repro sweep --replay --grid``: a frontier map over policy knobs."""
    import json as _json
    from pathlib import Path

    from repro.batchsim.grid import parse_grid_axis
    from repro.trace.sweep import ReplaySweepExecutor

    if len(schemes) != 1:
        raise ValueError(
            "--grid sweeps policy knobs of a single scheme; pass exactly "
            f"one --schemes entry (got {len(schemes)})"
        )
    scheme = schemes[0]
    axes = [parse_grid_axis(text) for text in args.grid]
    executor = ReplaySweepExecutor(
        store=open_store(args.store), trace_dir=args.trace_dir,
        config=_cli_config(args), engine=args.engine,
    )
    per_app = {
        app: executor.run_grid(
            app, scheme, axes, num_sms=args.sms, scale=args.scale,
            seed=args.seed,
        )
        for app in apps
    }
    rows = [
        (app, label, f"{r.l1d.hit_rate:.4f}", str(r.l1d.bypasses),
         str(r.l1d.evictions_total))
        for app, cells in per_app.items()
        for label, r in cells.items()
    ]
    n_cells = len(next(iter(per_app.values()))) if per_app else 0
    print(ascii_table(
        ["App", "Cell", "Hit rate", "Bypasses", "Evictions"],
        rows,
        title=f"replay grid: {scheme}, {len(apps)} apps x {n_cells} cells "
              f"({args.sms} SMs, scale {args.scale:g}, engine {args.engine})",
    ))
    tr, st = executor.stats, executor.store.stats
    print(
        f"\ntrace: recorded {tr.recorded} traces, {tr.trace_hits} trace hits; "
        f"replayed {tr.replayed} cells, {tr.store_hits} store hits"
    )
    print(f"store: {st.hits} hits, {st.misses} misses, {st.puts} puts")
    if args.grid_out:
        payload = {
            app: {
                label: {
                    "hit_rate": r.l1d.hit_rate,
                    "miss_rate": 1.0 - r.l1d.hit_rate,
                    "bypasses": r.l1d.bypasses,
                    "evictions": r.l1d.evictions_total,
                }
                for label, r in cells.items()
            }
            for app, cells in per_app.items()
        }
        Path(args.grid_out).write_text(
            _json.dumps({"scheme": scheme, "scale": args.scale,
                         "sms": args.sms, "grid": payload}, indent=2) + "\n"
        )
        print(f"frontier map written to {args.grid_out}")
    return 0


def _parse_age(text: str) -> float:
    """``"90"``/``"90s"``/``"30m"``/``"12h"``/``"7d"`` -> seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    scale = 1.0
    if text and text[-1].lower() in units:
        scale = units[text[-1].lower()]
        text = text[:-1]
    try:
        seconds = float(text) * scale
    except ValueError:
        raise ValueError(
            f"bad age {text!r}: expected seconds or a 90s/30m/12h/7d form"
        ) from None
    if seconds < 0:
        raise ValueError("age must be non-negative")
    return seconds


def cmd_store(args) -> int:
    store = ResultStore(args.store or default_store_dir())
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
        return 0
    if args.action == "prune":
        if args.max_age is None and args.max_entries is None:
            raise ValueError("prune needs --max-age and/or --max-entries")
        if args.max_entries is not None and args.max_entries < 0:
            raise ValueError("--max-entries must be >= 0")
        max_age = _parse_age(args.max_age) if args.max_age is not None else None
        removed = store.prune(max_age=max_age, max_entries=args.max_entries)
        print(f"pruned {removed} entries from {store.root} "
              f"({len(store)} remain)")
        return 0
    entries = store.ls()
    rows = [
        (
            e["key"][:12],
            str(e.get("abbr", "?")),
            str(e.get("scheme", "?")),
            str(e.get("num_sms", "?")),
            f"{e.get('scale', 1.0):g}",
            str(e.get("seed", 0)),
        )
        for e in entries
    ]
    print(ascii_table(
        ["Key", "App", "Scheme", "SMs", "Scale", "Seed"],
        rows,
        title=f"{store.root}: {len(entries)} entries",
    ))
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve.server import serve_async

    return asyncio.run(serve_async(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store=args.store or default_store_dir(),
        trace_dir=args.trace_dir,
        engine=args.engine,
        drain_timeout=args.drain_timeout,
        max_queued=args.max_queued,
        rate=args.rate,
        burst=args.burst,
    ))


def cmd_loadtest(args) -> int:
    from repro.loadtest import (
        LoadTestConfig,
        MixConfig,
        SloConfig,
        run_loadtest,
    )

    apps = tuple(a.strip().upper() for a in args.apps.split(",") if a.strip())
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    config = LoadTestConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        mix=MixConfig(
            population=args.population,
            zipf_exponent=args.zipf,
            predict_fraction=args.predict_fraction,
            apps=apps,
            schemes=schemes,
            sms=args.sms,
            scale=args.scale,
            seed=args.seed,
        ),
        slo=SloConfig(
            p99_s=args.slo_p99,
            min_coalescing_rate=args.slo_coalescing,
            max_throttled_rate=args.slo_max_throttle,
            max_failures=args.slo_max_failures,
        ),
        workers=args.workers,
        store=args.store,
        engine=args.engine,
        max_queued=args.max_queued,
        rate=args.rate,
        burst=args.burst,
        host=args.host,
        port=args.port,
        retries=args.retries,
        ramp_seconds=args.ramp,
        max_connections=args.max_connections,
        request_timeout=args.timeout,
        kill_worker_after=args.kill_worker_after,
    )
    report = run_loadtest(config)
    if args.json_output:
        import json as _json

        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.passed else 1

    doc = report.to_dict()
    lat = {k: ("n/a" if v is None else v)
           for k, v in doc["latency_s"].items()}
    rows = [
        ("clients x requests", f"{report.clients} x "
                               f"{args.requests} = {report.requests}"),
        ("workers", str(report.workers)),
        ("completed / failed", f"{report.completed} / {report.failed}"),
        ("wall / throughput", f"{doc['wall_s']}s / "
                              f"{doc['throughput_rps']} req/s"),
        ("latency p50/p95/p99", f"{lat['p50']} / {lat['p95']} / "
                                f"{lat['p99']} s"),
        ("latency max", f"{lat['max']} s"),
        ("coalescing rate", f"{doc['coalescing_rate']}"),
        ("store-hit rate", f"{doc['store_hit_rate']}"),
        ("429 responses", str(report.throttled_responses)),
        ("predict answers", str(report.predict_answers)),
        ("requeued / restarts", f"{report.cells_requeued} / "
                                f"{report.worker_restarts}"),
    ]
    if args.kill_worker_after is not None:
        rows.append(("worker killed", str(report.worker_killed)))
    print(ascii_table(["metric", "value"], rows, title="repro loadtest"))
    for failure in report.failures[:5]:
        print(f"failure: {failure}", file=sys.stderr)
    if report.violations:
        for violation in report.violations:
            print(f"SLO violation: {violation}", file=sys.stderr)
        print("loadtest: FAIL")
        return 1
    print("loadtest: PASS")
    return 0


def _render_job(doc) -> str:
    """One settled job's results as the familiar sweep-style table.

    Tier-0 answers (``tier: "analytical"``) have no cycle count; they
    render with a ``~`` marker and their calibrated error bars."""
    from repro.gpu.simulator import SimResult

    rows = []
    analytical = 0
    for entry in doc.get("results") or []:
        unit, payload = entry["unit"], entry["result"]
        scheme = SCHEME_LABELS.get(unit["scheme"], unit["scheme"])
        if payload.get("tier") == "analytical":
            analytical += 1
            err = payload.get("error") or {}
            ipc = payload.get("ipc")
            rows.append((
                unit["app"],
                scheme,
                "~",
                f"{ipc:.4g}" if ipc is not None else "-",
                f"{payload['hit_rate']:.3f}"
                + (f" ±{err['mean_abs']:.3f}" if "mean_abs" in err else ""),
                f"{payload['bypasses']:.0f}",
            ))
            continue
        r = SimResult.from_dict(
            {k: v for k, v in payload.items() if k != "tier"}
        )
        rows.append((
            unit["app"],
            scheme,
            str(r.cycles),
            f"{r.ipc:.4g}",
            f"{r.l1d.hit_rate:.3f}",
            str(r.l1d.bypasses),
        ))
    table = ascii_table(
        ["App", "Scheme", "Cycles", "IPC", "Hit rate", "Bypasses"],
        rows,
        title=f"{doc['id']}: {doc['kind']} {doc['state']} "
              f"({doc['units']} units)",
    )
    if analytical:
        table += (
            f"\n~ {analytical} analytical tier-0 answer(s); exact results "
            "are refining in the background and supersede in the store"
        )
    return table


def cmd_submit(args) -> int:
    from repro.analysis.telemetry import render_latency_histogram
    from repro.serve.client import JobFailedError, ServeClient
    from repro.serve.protocol import (
        cell_request,
        replay_request,
        sweep_request,
    )

    # transparent backoff on 429/transport errors (off in the library
    # default so tests observe raw responses; on for the human CLI)
    client = ServeClient(host=args.host, port=args.port, retries=3)
    cmd = args.submit_command

    if cmd == "health":
        doc = client.healthz()
        print(ascii_table(["field", "value"],
                          [(k, str(v)) for k, v in sorted(doc.items())],
                          title=f"{args.host}:{args.port}"))
        return 0 if doc.get("status") in ("ok", "draining") else 1

    if cmd == "metrics":
        if args.prom:
            print(client.metrics_prometheus(), end="")
            return 0
        doc = client.metrics()
        rows = [(f"{group}.{k}", str(v))
                for group in ("jobs", "cells", "predict", "store")
                for k, v in sorted(doc.get(group, {}).items())]
        rows.append(("draining", str(doc.get("draining"))))
        rows.append(("uptime_seconds", str(doc.get("uptime_seconds"))))
        print(ascii_table(["metric", "value"], rows, title="repro-serve"))
        print()
        print(render_latency_histogram("queue wait",
                                       doc["queue_wait_seconds"]))
        if doc.get("supersede_latency_seconds", {}).get("count"):
            print()
            print(render_latency_histogram(
                "supersede latency (analytical -> exact)",
                doc["supersede_latency_seconds"]))
        for scheme, hist in doc.get("sim_latency_seconds", {}).items():
            print()
            print(render_latency_histogram(f"sim latency [{scheme}]", hist))
        return 0

    if cmd == "cancel":
        doc = client.cancel(args.job_id)
        print(f"{doc['id']}: cancelled={doc['cancelled']} "
              f"state={doc['state']}")
        return 0 if doc["cancelled"] else 1

    if cmd == "status":
        doc = client.wait(args.job_id, timeout=args.timeout,
                          raise_on_failure=False) \
            if args.wait else client.status(args.job_id)
        if doc.get("results"):
            print(_render_job(doc))
        else:
            print(f"{doc['id']}: {doc['state']} "
                  f"({doc['units']} units, kind {doc['kind']})")
            if doc.get("error"):
                print(f"error: {doc['error'].get('error')}", file=sys.stderr)
        return 0 if doc["state"] in ("queued", "running", "done") else 1

    if cmd == "cell":
        body = cell_request(args.app.upper(), args.scheme, sms=args.sms,
                            scale=args.scale, seed=args.seed,
                            max_cycles=args.max_cycles,
                            priority=args.priority,
                            non_blocking=args.non_blocking,
                            predict=args.predict, client=args.client)
    elif cmd == "sweep":
        body = sweep_request(
            [a.strip() for a in args.apps.split(",") if a.strip()],
            [s.strip() for s in args.schemes.split(",") if s.strip()],
            sms=args.sms, scale=args.scale, seed=args.seed,
            priority=args.priority, non_blocking=args.non_blocking,
            predict=args.predict, client=args.client,
        )
    else:  # replay
        body = replay_request(
            [a.strip() for a in args.apps.split(",") if a.strip()],
            [s.strip() for s in args.schemes.split(",") if s.strip()],
            sms=args.sms, scale=args.scale, seed=args.seed,
            priority=args.priority, non_blocking=args.non_blocking,
            predict=args.predict, client=args.client,
        )
    job = client.submit(body)
    print(f"submitted {job['id']} ({job['kind']}, {job['units']} units, "
          f"priority {job['priority']})")
    if not args.wait:
        return 0
    try:
        doc = client.wait(job["id"], timeout=args.timeout)
    except JobFailedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        error = exc.job.get("error") or {}
        if error.get("fingerprint"):
            import json as _json

            print(_json.dumps(error["fingerprint"], indent=2, sort_keys=True),
                  file=sys.stderr)
        return 1
    print(_render_job(doc))
    return 0


def cmd_predict(args) -> int:
    from repro.predict import PredictSweepExecutor

    apps = ALL_APPS if args.apps == "all" else [
        a.strip().upper() for a in args.apps.split(",") if a.strip()
    ]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    for scheme in schemes:
        if scheme not in SCHEME_LABELS:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of {sorted(SCHEME_LABELS)}"
            )
    kwargs = {"trace_dir": args.trace_dir}
    if args.raw:
        kwargs["calibration"] = None
    executor = PredictSweepExecutor(**kwargs)
    results = executor.run_sweep(
        apps, schemes, num_sms=args.sms, scale=args.scale, seed=args.seed
    )
    rows = []
    for app, per_scheme in results.items():
        for scheme, p in per_scheme.items():
            err = p.error or {}
            rows.append((
                app,
                SCHEME_LABELS[scheme],
                f"{p.miss_rate:.4f}",
                (f"{err['mean_abs']:.4f}/{err['max_abs']:.4f}"
                 if "mean_abs" in err else "-"),
                f"{p.hit_rate:.3f}",
                f"{p.ipc:.4g}" if p.ipc is not None else "-",
            ))
    print(ascii_table(
        ["App", "Scheme", "Miss rate", "±err mean/max", "Hit rate", "IPC"],
        rows,
        title=f"analytical predictions: {len(apps)} apps x "
              f"{len(schemes)} schemes ({args.sms} SMs, "
              f"scale {args.scale:g}"
              + (", raw model" if args.raw else ", calibrated") + ")",
    ))
    st = executor.stats
    print(
        f"\npredict: profiled {st.profiled} streams "
        f"({st.profile_hits} profile cache hits), "
        f"{st.predicted} analytical answers — no cache was stepped"
    )
    return 0


def cmd_profile(args) -> int:
    app = args.app.upper()
    if args.scheme is not None:
        from repro.fastsim.profile import profile_cell

        profile = profile_cell(app, args.scheme, num_sms=args.sms,
                               scale=args.scale)
        print(profile.render())
        return 0

    from repro.experiments.cachesim import profile_reuse

    config = harness_config(args.sms)
    profiler = profile_reuse(make_workload(app), config)
    print(stacked_percent_rows(
        [app], [profiler.overall_fractions()], RD_LABELS,
        title=f"{app}: reuse-distance distribution",
    ))
    per_pc = sorted(profiler.pc_fractions().items())
    print()
    print(stacked_percent_rows(
        [f"pc={pc:#x}" for pc, _ in per_pc],
        [fracs for _, fracs in per_pc],
        RD_LABELS,
        title="per-instruction RDDs",
    ))
    return 0


def cmd_trace(args) -> int:
    from repro.trace import (
        TraceReader,
        import_text_trace,
        record_app,
        replay_trace,
        replay_workload,
    )

    if args.trace_command == "record":
        config = harness_config(args.sms)
        path = record_app(args.app.upper(), args.out, config,
                          scale=args.scale, seed=args.seed)
        reader = TraceReader(path)
        print(f"recorded {reader.total_records} records "
              f"({reader.num_sms} SMs) -> {path}")
        return 0

    if args.trace_command == "info":
        reader = TraceReader(args.trace)
        info = reader.info()
        rows = [(k, str(v)) for k, v in info.items()]
        print(ascii_table(["field", "value"], rows, title=str(args.trace)))
        if args.rdd:
            from repro.predict import profile_trace

            profile = profile_trace(reader)
            print()
            print(stacked_percent_rows(
                ["overall"], [profile.rdd.fractions()], RD_LABELS,
                title=f"reuse-distance distribution "
                      f"({profile.rdd.total} reuses, "
                      f"{profile.compulsory} compulsory)",
            ))
            per_insn = sorted(profile.insn_rdd.items())
            if per_insn:
                print()
                print(stacked_percent_rows(
                    [f"insn={insn:#04x} ({hist.total})"
                     for insn, hist in per_insn],
                    [hist.fractions() for _insn, hist in per_insn],
                    RD_LABELS,
                    title="per-instruction RDDs (hashed instruction IDs)",
                ))
        return 0

    if args.trace_command == "import":
        reader = import_text_trace(args.src, args.dest, num_sms=args.sms,
                                   line_size=args.line_size)
        print(f"imported {reader.total_records} records "
              f"({reader.num_sms} SMs) -> {args.dest}")
        return 0

    # replay
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    for scheme in schemes:
        if scheme not in SCHEME_LABELS:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of {sorted(SCHEME_LABELS)}"
            )
    reader = TraceReader(args.trace)
    config = harness_config(args.sms) if args.sms is not None else None
    if args.non_blocking:
        config = (config or harness_config(reader.num_sms)) \
            .with_l1d(non_blocking=True)
    results = {s: replay_trace(reader, s, config, engine=args.engine)
               for s in schemes}
    rows = [
        (
            SCHEME_LABELS[s],
            f"{r.l1d.hit_rate:.3f}",
            str(r.l1d.bypasses),
            str(r.l1d.evictions_total),
            str(int(r.interconnect.get("total_requests", 0))),
        )
        for s, r in results.items()
    ]
    print(ascii_table(
        ["Scheme", "Hit rate", "Bypasses", "Evictions", "Interconnect"],
        rows,
        title=f"replay of {args.trace} ({reader.total_records} records)",
    ))
    if args.verify:
        meta = reader.meta
        if meta.get("source") != "registry":
            raise ValueError(
                "--verify needs a registry-recorded trace "
                f"(this one has source={meta.get('source')!r})"
            )
        workload_config = config or harness_config(reader.num_sms)
        mismatches = 0
        for scheme in schemes:
            live = replay_workload(
                make_workload(meta["abbr"], meta.get("scale", 1.0),
                              seed=meta.get("seed", 0)),
                workload_config, scheme,
            )
            ok = live.to_dict() == results[scheme].to_dict()
            mismatches += 0 if ok else 1
            print(f"verify {scheme}: {'identical' if ok else 'MISMATCH'}")
        if mismatches:
            print(f"verify: {mismatches} scheme(s) diverged", file=sys.stderr)
            return 1
        print("verify: replay identical to functional path "
              f"for all {len(schemes)} schemes")
    return 0


def cmd_check(args) -> int:
    from repro.check.lint import run_check

    return run_check(
        paths=args.paths or None,
        baseline=args.baseline,
        json_output=args.json_output,
        update_baseline=args.update_baseline,
        update_manifest=args.update_manifest,
        update_parity=args.update_parity,
        strict=args.strict,
        sarif=args.sarif,
    )


def cmd_fuzz(args) -> int:
    from repro.experiments.fuzz import (
        ADVERSARIAL_APPS,
        FUZZ_SCHEMES,
        run_fuzz,
    )

    generators = (
        [g.strip().upper() for g in args.generators.split(",") if g.strip()]
        if args.generators else list(ADVERSARIAL_APPS)
    )
    for gen in generators:
        if gen not in ADVERSARIAL_APPS:
            raise ValueError(
                f"unknown generator {gen!r}; "
                f"expected one of {list(ADVERSARIAL_APPS)}"
            )
    schemes = (
        [s.strip() for s in args.policies.split(",") if s.strip()]
        if args.policies else list(FUZZ_SCHEMES)
    )
    for scheme in schemes:
        if scheme not in SCHEME_LABELS:
            raise ValueError(
                f"unknown scheme {scheme!r}; "
                f"expected one of {sorted(SCHEME_LABELS)}"
            )
    report = run_fuzz(
        streams=args.streams,
        base_seed=args.seed,
        generators=generators,
        schemes=schemes,
        scale=args.scale,
        num_sms=args.sms,
        length=args.length,
        shrink=not args.no_shrink,
    )
    if args.json_output:
        import json as _json

        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print(
        f"fuzz: {report.cases} streams ({report.records} records), "
        f"{report.checks} grid points x 2 engines"
    )
    if report.ok:
        print("fuzz: reference and fast engines bit-identical everywhere")
        return 0
    rows = [
        (
            d.case.generator,
            str(d.case.seed),
            d.scheme,
            "non-blocking" if d.non_blocking else "blocking",
            f"{d.prefix}/{d.records}",
            d.ref_fingerprint[:12],
            d.fast_fingerprint[:12],
        )
        for d in report.divergences
    ]
    print(ascii_table(
        ["Generator", "Seed", "Scheme", "MSHR mode", "Prefix", "ref", "fast"],
        rows,
        title=f"{len(report.divergences)} divergence(s)",
    ))
    for d in report.divergences:
        print("repro:", d.to_dict()["repro"], file=sys.stderr)
    return 1


def cmd_list(_args) -> int:
    print(ascii_table(
        ["Application", "Abbr.", "Suite", "Type", "Paper input", "Scaled input"],
        table2_rows(),
        title="Table 2 applications",
    ))
    return 0


_COMMANDS = {
    "run": cmd_run,
    "compare": cmd_compare,
    "figure": cmd_figure,
    "sweep": cmd_sweep,
    "store": cmd_store,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "loadtest": cmd_loadtest,
    "predict": cmd_predict,
    "profile": cmd_profile,
    "trace": cmd_trace,
    "check": cmd_check,
    "fuzz": cmd_fuzz,
    "list": cmd_list,
}


def main(argv: Optional[List[str]] = None) -> int:
    from repro.experiments.executor import CellExecutionError
    from repro.serve.client import ServeError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CellExecutionError as exc:
        # one cell's failure, labelled with its content-addressed
        # identity — never a bare worker-pool traceback
        import json as _json

        print(f"error: {exc}", file=sys.stderr)
        print(_json.dumps(exc.payload()["fingerprint"], indent=2,
                          sort_keys=True), file=sys.stderr)
        return 3
    except (ValueError, TraceFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # output truncated by a shell pipe (| head)
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
