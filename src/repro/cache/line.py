"""Cache line (TDA entry) model.

A DLP TDA entry (paper Fig. 8) extends the baseline tag entry with a 7-bit
instruction ID and a 4-bit Protected Life counter.  The fields exist on
every line; non-DLP policies simply never touch them, so one line class
serves every scheme and the hardware-overhead model in
:mod:`repro.core.overhead` can cost the extension bits separately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.check.contracts import BitField, hw_checked

#: DLP TDA-extension field widths (paper Fig. 8 / Section 4.1.1).
INSN_ID_BITS = 7
PL_BITS = 4


class LineState(enum.Enum):
    """Lifecycle of a line under allocate-on-miss.

    INVALID  -> RESERVED  (miss allocates the line, fill pending)
    RESERVED -> VALID     (fill returns from the interconnect)
    VALID    -> INVALID   (write-evict or explicit invalidate)
    VALID    -> RESERVED  (replacement: victim evicted, line re-reserved)
    """

    INVALID = 0
    RESERVED = 1
    VALID = 2


@hw_checked(
    insn_id=BitField(INSN_ID_BITS),
    pending_insn_id=BitField(INSN_ID_BITS),
    protected_life=BitField(PL_BITS),
)
@dataclass
class CacheLine:
    """One way of one set.

    ``lru_stamp`` is the access timestamp used for LRU victim selection.
    ``insn_id`` and ``protected_life`` are the DLP extension fields
    (Section 4.1.1); ``protected_life`` saturates at ``pl_max``
    (``2**4 - 1`` for the paper's 4-bit field).  Under ``REPRO_CHECK=1``
    the declared widths are enforced on every write; policies running a
    non-default PL width widen their lines via
    :func:`repro.check.contracts.set_field_width` at attach time.
    """

    way: int
    state: LineState = LineState.INVALID
    tag: int = -1
    block_addr: int = -1
    lru_stamp: int = 0
    # --- DLP extension fields -------------------------------------------
    insn_id: int = 0
    protected_life: int = 0
    # bookkeeping (not hardware): which insn allocated the pending fill
    pending_insn_id: int = field(default=0, repr=False)

    @property
    def is_valid(self) -> bool:
        return self.state is LineState.VALID

    @property
    def is_reserved(self) -> bool:
        return self.state is LineState.RESERVED

    @property
    def is_invalid(self) -> bool:
        return self.state is LineState.INVALID

    @property
    def is_protected(self) -> bool:
        """A line with positive Protected Life may not be replaced."""
        return self.protected_life > 0

    def decay_protection(self) -> None:
        """Decrement PL by one, flooring at zero (per-set-query decay)."""
        if self.protected_life > 0:
            self.protected_life -= 1

    def grant_protection(self, pd: int, pl_max: int) -> None:
        """Write a Protection Distance into the PL field (clamped)."""
        self.protected_life = min(max(pd, 0), pl_max)

    def reserve(self, tag: int, block_addr: int, insn_id: int, now: int) -> None:
        self.state = LineState.RESERVED
        self.tag = tag
        self.block_addr = block_addr
        self.pending_insn_id = insn_id
        self.lru_stamp = now

    def fill(self, now: int) -> None:
        if self.state is not LineState.RESERVED:
            raise RuntimeError(f"fill on non-reserved line (state={self.state})")
        self.state = LineState.VALID
        self.insn_id = self.pending_insn_id
        self.lru_stamp = now

    def invalidate(self) -> None:
        self.state = LineState.INVALID
        self.tag = -1
        self.block_addr = -1
        self.protected_life = 0
        self.insn_id = 0
