"""Miss Status Holding Registers and the outgoing miss queue.

Section 2 of the paper: a missing request first checks the MSHR table.  A
match appends the request's source information to the existing entry
(a *merge*); a new line needs a free MSHR entry.  When either the table or
the per-entry merge list is full, the request blocks the memory pipeline.
The bounded miss queue models the buffer between the L1D and the
interconnect injection port; a full queue is the third stall reason the
Stall-Bypass comparator (Section 5.3) reacts to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.cache.line import INSN_ID_BITS
from repro.check.contracts import BitField, hw_checked


@hw_checked(first_insn_id=BitField(INSN_ID_BITS))
@dataclass
class MshrEntry:
    """One in-flight miss: the target line plus merged waiters.

    ``first_insn_id`` carries the hashed 7-bit instruction ID of the
    request that allocated the entry (what the fill re-tags the line
    with); the width is contract-enforced under ``REPRO_CHECK=1``.
    """

    block_addr: int
    first_insn_id: int
    issued_at: int
    # Opaque per-request payloads (the timing simulator stores completion
    # callbacks / warp references here; the functional path stores None).
    waiters: List[Any] = field(default_factory=list)
    is_bypass: bool = False

    @property
    def num_requests(self) -> int:
        return len(self.waiters)


class MshrTable:
    """Fixed-size MSHR table with a per-entry merge limit."""

    def __init__(self, num_entries: int = 32, max_merged: int = 8):
        if num_entries < 1 or max_merged < 1:
            raise ValueError("MSHR table needs at least one entry and one merge slot")
        self.num_entries = num_entries
        self.max_merged = max_merged
        self._entries: Dict[int, MshrEntry] = {}
        # statistics
        self.peak_occupancy = 0
        self.total_allocations = 0
        self.total_merges = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def lookup(self, block_addr: int) -> Optional[MshrEntry]:
        return self._entries.get(block_addr)

    def can_merge(self, block_addr: int) -> bool:
        entry = self._entries.get(block_addr)
        return entry is not None and entry.num_requests < self.max_merged

    def merge(self, block_addr: int, waiter: Any) -> MshrEntry:
        entry = self._entries[block_addr]
        if entry.num_requests >= self.max_merged:
            raise RuntimeError(f"merge overflow on block {block_addr:#x}")
        entry.waiters.append(waiter)
        self.total_merges += 1
        return entry

    def allocate(
        self, block_addr: int, insn_id: int, now: int, waiter: Any
    ) -> MshrEntry:
        if self.is_full:
            raise RuntimeError("MSHR allocation while table full")
        if block_addr in self._entries:
            raise RuntimeError(f"duplicate MSHR allocation for {block_addr:#x}")
        entry = MshrEntry(block_addr, insn_id, now, [waiter])
        self._entries[block_addr] = entry
        self.total_allocations += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return entry

    def release(self, block_addr: int) -> MshrEntry:
        """Retire an entry when its fill arrives; returns it with waiters."""
        entry = self._entries.pop(block_addr, None)
        if entry is None:
            raise KeyError(f"fill for block {block_addr:#x} with no MSHR entry")
        return entry

    def outstanding_blocks(self) -> List[int]:
        return list(self._entries)


class MissQueue:
    """Bounded FIFO of requests awaiting injection into the interconnect."""

    def __init__(self, depth: int = 8):
        if depth < 1:
            raise ValueError("miss queue needs at least one slot")
        self.depth = depth
        self._queue: Deque[Any] = deque()
        self.total_enqueued = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def push(self, item: Any) -> None:
        if self.is_full:
            raise RuntimeError("push to full miss queue")
        self._queue.append(item)
        self.total_enqueued += 1

    def pop(self) -> Any:
        return self._queue.popleft()

    def peek(self) -> Any:
        return self._queue[0]
