"""Miss Status Holding Registers and the outgoing miss queue.

Section 2 of the paper: a missing request first checks the MSHR table.  A
match appends the request's source information to the existing entry
(a *merge*); a new line needs a free MSHR entry.  When either the table or
the per-entry merge list is full, the request blocks the memory pipeline.
The bounded miss queue models the buffer between the L1D and the
interconnect injection port; a full queue is the third stall reason the
Stall-Bypass comparator (Section 5.3) reacts to.

Two merge disciplines exist, selected per table:

* **blocking** (default) — the per-entry merge limit counts *waiters*,
  one slot per merged request, reproducing the GPGPU-Sim-style merge
  list the paper's baseline models.
* **word-granular** (``word_granular=True``, the non-blocking L1D mode)
  — each entry tracks the pending *words* of its line in a bitmap, per
  the synapse32 CAM-based MSHR design: a secondary miss to a word that
  is already pending coalesces for free (no new slot), and the merge
  limit bounds the number of *distinct* words an entry may track.  The
  waiter list still records every merged request in arrival order, so
  fill-time wakeups stay deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.cache.line import INSN_ID_BITS
from repro.check.contracts import BitField, hw_checked

#: Word size the word-granular bitmap tracks (the synapse32 design
#: tracks 4-byte words within the line).
WORD_BYTES = 4


@hw_checked(first_insn_id=BitField(INSN_ID_BITS))
@dataclass
class MshrEntry:
    """One in-flight miss: the target line plus merged waiters.

    ``first_insn_id`` carries the hashed 7-bit instruction ID of the
    request that allocated the entry (what the fill re-tags the line
    with); the width is contract-enforced under ``REPRO_CHECK=1``.

    ``word_mask`` is the pending-word bitmap of the word-granular
    discipline (bit *i* set = word *i* of the line has a waiter); the
    blocking discipline leaves it zero.  ``is_bypass`` marks an entry
    whose fetch travels the bypass path and therefore never fills a
    reserved line; cached requests must never merge into one.
    """

    block_addr: int
    first_insn_id: int
    issued_at: int
    # Opaque per-request payloads (the timing simulator stores completion
    # callbacks / warp references here; the functional path stores None).
    waiters: List[Any] = field(default_factory=list)
    is_bypass: bool = False
    word_mask: int = 0

    @property
    def num_requests(self) -> int:
        return len(self.waiters)

    @property
    def num_words(self) -> int:
        """Distinct pending words (word-granular merge accounting)."""
        return bin(self.word_mask).count("1")


class MshrTable:
    """Fixed-size MSHR table with a per-entry merge limit."""

    def __init__(
        self,
        num_entries: int = 32,
        max_merged: int = 8,
        word_granular: bool = False,
        words_per_line: int = 32,
    ):
        if num_entries < 1 or max_merged < 1:
            raise ValueError("MSHR table needs at least one entry and one merge slot")
        if word_granular and words_per_line < 1:
            raise ValueError("word-granular MSHR needs at least one word per line")
        self.num_entries = num_entries
        self.max_merged = max_merged
        self.word_granular = word_granular
        self.words_per_line = words_per_line
        self._entries: Dict[int, MshrEntry] = {}
        # statistics
        self.peak_occupancy = 0
        self.total_allocations = 0
        self.total_merges = 0
        #: Word-granular merges absorbed by an already-pending word
        #: (no new merge slot consumed).
        self.word_coalesced = 0
        #: Bypass-path requests absorbed by a pending cached fetch (the
        #: normalized form of the bypass-into-non-bypass merge edge).
        self.bypass_absorbed = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def lookup(self, block_addr: int) -> Optional[MshrEntry]:
        return self._entries.get(block_addr)

    def can_merge(self, block_addr: int, word: Optional[int] = None) -> bool:
        entry = self._entries.get(block_addr)
        if entry is None:
            return False
        if self.word_granular and word is not None:
            if entry.word_mask >> (word % self.words_per_line) & 1:
                return True  # already pending: coalesces for free
            return entry.num_words < self.max_merged
        return entry.num_requests < self.max_merged

    def merge(
        self,
        block_addr: int,
        waiter: Any,
        word: Optional[int] = None,
        is_bypass: bool = False,
    ) -> MshrEntry:
        """Append a secondary miss to an existing entry.

        ``word`` selects the word-granular discipline (required when the
        table was built ``word_granular=True``).  ``is_bypass`` carries
        the merging request's path: a bypass-intent request landing on a
        pending cached fetch is *absorbed* by it (the fill services the
        waiter; counted in :attr:`bypass_absorbed`, and the entry keeps
        ``is_bypass=False`` explicitly rather than by silent default).
        The converse — a cached request merging into a bypass entry —
        is a protocol violation, since bypass fetches never fill the
        reserved line the waiter would wake on.
        """
        entry = self._entries[block_addr]
        if entry.is_bypass and not is_bypass:
            raise RuntimeError(
                f"cached request cannot merge into bypass MSHR entry for "
                f"block {block_addr:#x}: a bypass fetch never fills the line"
            )
        if self.word_granular and word is not None:
            bit = 1 << (word % self.words_per_line)
            if entry.word_mask & bit:
                self.word_coalesced += 1
            elif entry.num_words >= self.max_merged:
                raise RuntimeError(f"merge overflow on block {block_addr:#x}")
            entry.word_mask |= bit
        elif entry.num_requests >= self.max_merged:
            raise RuntimeError(f"merge overflow on block {block_addr:#x}")
        if is_bypass and not entry.is_bypass:
            # Normalize: the entry stays a cached fetch; the bypass
            # request rides its fill instead of issuing its own.
            self.bypass_absorbed += 1
        entry.waiters.append(waiter)
        self.total_merges += 1
        return entry

    def allocate(
        self,
        block_addr: int,
        insn_id: int,
        now: int,
        waiter: Any,
        word: Optional[int] = None,
        is_bypass: bool = False,
    ) -> MshrEntry:
        if self.is_full:
            raise RuntimeError("MSHR allocation while table full")
        if block_addr in self._entries:
            raise RuntimeError(f"duplicate MSHR allocation for {block_addr:#x}")
        entry = MshrEntry(block_addr, insn_id, now, [waiter], is_bypass=is_bypass)
        if self.word_granular and word is not None:
            entry.word_mask = 1 << (word % self.words_per_line)
        self._entries[block_addr] = entry
        self.total_allocations += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return entry

    def release(self, block_addr: int) -> MshrEntry:
        """Retire an entry when its fill arrives; returns it with waiters."""
        entry = self._entries.pop(block_addr, None)
        if entry is None:
            raise KeyError(f"fill for block {block_addr:#x} with no MSHR entry")
        return entry

    def outstanding_blocks(self) -> List[int]:
        return list(self._entries)


class MissQueue:
    """Bounded FIFO of requests awaiting injection into the interconnect."""

    def __init__(self, depth: int = 8):
        if depth < 1:
            raise ValueError("miss queue needs at least one slot")
        self.depth = depth
        self._queue: Deque[Any] = deque()
        self.total_enqueued = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def push(self, item: Any) -> None:
        if self.is_full:
            raise RuntimeError("push to full miss queue")
        self._queue.append(item)
        self.total_enqueued += 1

    def pop(self) -> Any:
        return self._queue.popleft()

    def peek(self) -> Any:
        return self._queue[0]
