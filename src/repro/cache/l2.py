"""L2 cache slice (one per memory partition).

Table 1: 768 KB total, 64 sets, 8 ways, linear index — i.e. one
64 KB slice (64 sets x 8 ways x 128 B) in each of the 12 memory
partitions.  The slice is modelled functionally (LRU, write-through to
DRAM for stores) with an unbounded merge table for outstanding DRAM
fetches; the partition model in :mod:`repro.memory.partition` adds the
timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cache.tagarray import CacheGeometry, TagArray
from repro.cache.line import LineState


@dataclass
class L2Stats:
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    merged: int = 0
    evictions: int = 0
    dram_reads: int = 0
    dram_writes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.reads if self.reads else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "hits": self.hits,
            "misses": self.misses,
            "merged": self.merged,
            "evictions": self.evictions,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "hit_rate": self.hit_rate,
        }


class L2Cache:
    """One L2 slice: LRU tag array plus a pending-fetch merge table."""

    def __init__(self, geometry: Optional[CacheGeometry] = None):
        self.geometry = geometry or CacheGeometry(
            num_sets=64, assoc=8, line_size=128, index_fn="linear"
        )
        self.tags = TagArray(self.geometry)
        self.stats = L2Stats()
        # block_addr -> waiters for the in-flight DRAM fetch
        self._pending: Dict[int, List[Any]] = {}

    # ------------------------------------------------------------------

    def read(self, block_addr: int, waiter: Any = None) -> str:
        """Look up a read. Returns one of:

        ``"hit"``     — data present, respond at L2 latency;
        ``"miss"``    — DRAM fetch needed (caller schedules it);
        ``"merged"``  — an identical fetch is already in flight; the
                        waiter rides along and no new DRAM read is issued.
        """
        self.stats.reads += 1
        line = self.tags.probe(block_addr)
        if line is not None and line.state is LineState.VALID:
            self.stats.hits += 1
            self.tags.touch(line)
            return "hit"
        if block_addr in self._pending:
            self.stats.merged += 1
            self._pending[block_addr].append(waiter)
            return "merged"
        self.stats.misses += 1
        self.stats.dram_reads += 1
        self._pending[block_addr] = [waiter]
        return "miss"

    def fill(self, block_addr: int) -> List[Any]:
        """DRAM data returned: install the line, return merged waiters."""
        waiters = self._pending.pop(block_addr, [None])
        cache_set = self.tags.set_for(block_addr)
        tag = self.geometry.tag(block_addr)
        if cache_set.find(tag) is None:
            victim = cache_set.find_invalid()
            if victim is None:
                candidates = cache_set.replaceable()
                victim = min(candidates, key=lambda l: l.lru_stamp)
                self.stats.evictions += 1
            victim.invalidate()
            victim.reserve(tag, block_addr, 0, self.tags.next_stamp())
            victim.fill(self.tags.next_stamp())
        return waiters

    def write(self, block_addr: int) -> None:
        """Write-through: update the line if present, forward to DRAM."""
        self.stats.writes += 1
        self.stats.dram_writes += 1
        line = self.tags.probe(block_addr)
        if line is not None and line.state is LineState.VALID:
            self.tags.touch(line)

    def pending_count(self) -> int:
        return len(self._pending)
