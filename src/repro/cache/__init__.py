"""Generic set-associative cache substrate.

This package implements the machinery the paper's Section 2 describes for
the baseline L1D: a tag-and-data array with line reservation
(allocate-on-miss), Miss Status Holding Registers with merge limits, a
bounded miss queue, and the stall semantics that block the whole memory
pipeline when a miss cannot be absorbed.  Replacement/bypass decisions are
delegated to a :class:`repro.core.policy.CachePolicy` so the four schemes
the paper evaluates share one cache model.
"""

from repro.cache.line import CacheLine, LineState
from repro.cache.mshr import MshrTable, MissQueue
from repro.cache.tagarray import TagArray
from repro.cache.l1d import L1DCache, AccessOutcome, AccessResult, StallReason
from repro.cache.l2 import L2Cache

__all__ = [
    "CacheLine",
    "LineState",
    "MshrTable",
    "MissQueue",
    "TagArray",
    "L1DCache",
    "AccessOutcome",
    "AccessResult",
    "StallReason",
    "L2Cache",
]
