"""L1 data cache model with MSHRs, line reservation, stall and bypass.

This reproduces the request-handling flow of the paper's Section 2 /
Figure 1 (baseline) and Figure 8 (DLP): hit check, MSHR merge, line
allocation with reservation, bounded miss queue, and the blocking-retry
behaviour when a miss cannot be absorbed.  All policy-specific behaviour
is delegated to a :class:`repro.core.policy.CachePolicy`.

Write handling follows GPGPU-Sim's Fermi L1D: global stores are
write-through and no-allocate, and a store hit evicts the line
(write-evict).  Stores therefore never wait for a response.

The model is *tag-functional*: no data payloads are stored, since every
experiment in the paper is defined over hit/miss/bypass/eviction events
and their timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cache.line import CacheLine, LineState
from repro.cache.mshr import WORD_BYTES, MissQueue, MshrTable
from repro.cache.tagarray import CacheGeometry, TagArray
from repro.core.policy import CachePolicy, StallReason


class AccessOutcome(enum.Enum):
    HIT = "hit"                       # valid line, data returned
    HIT_RESERVED = "hit_reserved"     # pending line, merged into MSHR
    MISS = "miss"                     # allocated, fetch sent
    BYPASS = "bypass"                 # sent to interconnect uncached
    WRITE_HIT = "write_hit"           # write-through + evict
    WRITE_MISS = "write_miss"         # write-through, no allocate
    STALL = "stall"                   # not processed; caller must retry


@dataclass
class MemAccess:
    """One coalesced memory request arriving at the L1D."""

    block_addr: int
    pc: int = 0
    insn_id: int = 0
    is_write: bool = False
    warp_id: int = 0
    sm_id: int = 0
    now: int = 0
    waiter: Any = None


@dataclass
class AccessResult:
    outcome: AccessOutcome
    stall_reason: Optional[StallReason] = None
    evicted_block: Optional[int] = None

    @property
    def is_stall(self) -> bool:
        return self.outcome is AccessOutcome.STALL


@dataclass
class FetchRequest:
    """A read fetch travelling from the L1D toward the interconnect."""

    block_addr: int
    insn_id: int
    sm_id: int
    is_bypass: bool
    is_write: bool = False
    issued_at: int = 0
    waiter: Any = None


#: The raw (non-derived) counter fields of :class:`L1DStats`, in
#: declaration order.  Serialization round-trips exactly these plus the
#: ``stalls`` map; every derived metric recomputes from them.
L1D_RAW_FIELDS = (
    "loads", "stores", "hits", "hit_reserved", "misses", "bypasses",
    "write_hits", "write_misses", "evictions", "write_evicts", "fills",
    "sent_fetches", "sent_writes",
)


@dataclass
class L1DStats:
    """Raw event counters; figure-level metrics derive from these."""

    loads: int = 0
    stores: int = 0
    hits: int = 0
    hit_reserved: int = 0
    misses: int = 0
    bypasses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    write_evicts: int = 0
    fills: int = 0
    sent_fetches: int = 0
    sent_writes: int = 0
    stalls: Dict[str, int] = field(default_factory=dict)

    def record_stall(self, reason: StallReason) -> None:
        self.stalls[reason.value] = self.stalls.get(reason.value, 0) + 1

    # -- derived metrics used by the paper's figures ----------------------

    @property
    def accesses(self) -> int:
        return self.loads + self.stores

    @property
    def hits_total(self) -> int:
        """Hits including pending hits (GPGPU-Sim counts both)."""
        return self.hits + self.hit_reserved

    @property
    def serviced_accesses(self) -> int:
        """Accesses the cache handled itself (Fig. 11a's 'L1D traffic')."""
        return self.accesses - self.bypasses

    @property
    def hit_rate(self) -> float:
        """Hit rate over non-bypassed loads (Fig. 12a: bypassed accesses
        do not count toward the rate)."""
        serviced_loads = self.loads - self.bypasses
        if serviced_loads <= 0:
            return 0.0
        return self.hits_total / serviced_loads

    @property
    def evictions_total(self) -> int:
        """Replacement evictions plus write-evicts (Fig. 11b)."""
        return self.evictions + self.write_evicts

    @property
    def total_stalls(self) -> int:
        return sum(self.stalls.values())

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "loads": self.loads,
            "stores": self.stores,
            "hits": self.hits,
            "hit_reserved": self.hit_reserved,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "evictions": self.evictions,
            "write_evicts": self.write_evicts,
            "fills": self.fills,
            "sent_fetches": self.sent_fetches,
            "sent_writes": self.sent_writes,
            "hit_rate": self.hit_rate,
            "serviced_accesses": self.serviced_accesses,
            "evictions_total": self.evictions_total,
            "total_stalls": self.total_stalls,
        }
        for reason, count in self.stalls.items():
            out[f"stall_{reason}"] = count
        return out

    # -- lossless serialization (result store / differential oracle) ------

    def to_raw_dict(self) -> Dict[str, Any]:
        """Raw counters only — the exact inverse of :meth:`from_raw_dict`.

        Unlike :meth:`as_dict` this excludes derived metrics, so a
        round-trip reconstructs a bit-identical :class:`L1DStats`.
        """
        out: Dict[str, Any] = {f: getattr(self, f) for f in L1D_RAW_FIELDS}
        out["stalls"] = dict(self.stalls)
        return out

    @classmethod
    def from_raw_dict(cls, data: Dict[str, Any]) -> "L1DStats":
        return cls(
            **{f: int(data.get(f, 0)) for f in L1D_RAW_FIELDS},
            stalls={k: int(v) for k, v in data.get("stalls", {}).items()},
        )


class L1DCache:
    """The per-SM L1 data cache.

    Parameters
    ----------
    geometry:
        Set/way/line-size layout (Table 1 baseline: 32 sets x 4 ways x 128 B).
    policy:
        Management scheme; owns replacement, protection and bypass choices.
    send_fn:
        Callback invoked for every request leaving toward the interconnect
        (fetches, bypasses and write-throughs).  The timing simulator wires
        this to the crossbar; the functional path wires it to a counter.
    mshr_entries / mshr_merge / miss_queue_depth:
        Resource limits that produce the Section 2 stall conditions.
    non_blocking:
        Off (default) keeps the blocking-retry model above byte-for-byte.
        On, the MSHR merges at word granularity (synapse32-style CAM): a
        secondary miss whose word is already pending coalesces without
        consuming a merge slot, and ``mshr_merge`` bounds *distinct*
        words per entry instead of waiters — hit-under-miss and
        miss-under-miss then come from the LD/ST unit issuing past a
        stalled request while misses stay outstanding.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: CachePolicy,
        send_fn: Optional[Callable[[FetchRequest], None]] = None,
        mshr_entries: int = 32,
        mshr_merge: int = 8,
        miss_queue_depth: int = 8,
        sm_id: int = 0,
        non_blocking: bool = False,
    ):
        self.geometry = geometry
        self.tags = TagArray(geometry)
        self.policy = policy
        self.non_blocking = non_blocking
        self.words_per_line = max(1, geometry.line_size // WORD_BYTES)
        self.mshr = MshrTable(
            mshr_entries,
            mshr_merge,
            word_granular=non_blocking,
            words_per_line=self.words_per_line,
        )
        self.miss_queue = MissQueue(miss_queue_depth)
        self.send_fn = send_fn or (lambda req: None)
        self.sm_id = sm_id
        self.stats = L1DStats()
        #: Optional observer called once per *completed* access as
        #: ``tap(access, outcome)`` — stalled retries collapse to their
        #: completion.  The trace recorder (repro.trace.record) hooks
        #: here; None costs one falsy check per access.
        self.access_tap: Optional[Callable[[MemAccess, AccessOutcome], None]] = None
        policy.attach(self)

    # ------------------------------------------------------------------
    # main protocol
    # ------------------------------------------------------------------

    def access(self, access: MemAccess) -> AccessResult:
        """Process one request; returns STALL without side effects when the
        request cannot be absorbed (the caller retries, blocking the
        pipeline behind it, exactly as Section 2 describes)."""
        if access.is_write:
            return self._access_write(access)
        return self._access_load(access)

    def _access_load(self, access: MemAccess) -> AccessResult:
        cache_set = self.tags.set_for(access.block_addr)
        tag = self.geometry.tag(access.block_addr)
        line = cache_set.find(tag)

        if line is not None and line.state is LineState.VALID:
            return self._complete_hit(cache_set, line, access)

        if line is not None and line.state is LineState.RESERVED:
            return self._merge_pending(cache_set, line, access)

        return self._handle_miss(cache_set, access)

    def _complete_hit(self, cache_set, line: CacheLine, access: MemAccess) -> AccessResult:
        self._query(cache_set, access)
        self.stats.loads += 1
        self.stats.hits += 1
        self.policy.on_hit(line, access, reserved=False)
        self.tags.touch(line)
        self._done(access, AccessOutcome.HIT)
        return AccessResult(AccessOutcome.HIT)

    def _merge_pending(self, cache_set, line: CacheLine, access: MemAccess) -> AccessResult:
        entry = self.mshr.lookup(access.block_addr)
        if entry is None:
            raise RuntimeError(
                f"reserved line {access.block_addr:#x} without MSHR entry"
            )
        word = self._word_of(access) if self.non_blocking else None
        if self.non_blocking:
            merge_full = not self.mshr.can_merge(access.block_addr, word)
        else:
            merge_full = entry.num_requests >= self.mshr.max_merged
        if merge_full:
            if self.policy.bypass_on_stall(StallReason.MERGE_FULL, access):
                return self._do_bypass(cache_set, access, count_query=True)
            self.stats.record_stall(StallReason.MERGE_FULL)
            return AccessResult(AccessOutcome.STALL, StallReason.MERGE_FULL)
        self._query(cache_set, access)
        self.stats.loads += 1
        self.stats.hit_reserved += 1
        self.mshr.merge(access.block_addr, access.waiter, word=word)
        self.policy.on_hit(line, access, reserved=True)
        self._done(access, AccessOutcome.HIT_RESERVED)
        return AccessResult(AccessOutcome.HIT_RESERVED)

    def _handle_miss(self, cache_set, access: MemAccess) -> AccessResult:
        # Resource checks happen before side effects so a stalled request
        # can retry without double-counting.
        if self.mshr.is_full:
            if self.policy.bypass_on_stall(StallReason.MSHR_FULL, access):
                return self._do_bypass(cache_set, access, count_query=True, missed=True)
            self.stats.record_stall(StallReason.MSHR_FULL)
            return AccessResult(AccessOutcome.STALL, StallReason.MSHR_FULL)
        if self.miss_queue.is_full:
            if self.policy.bypass_on_stall(StallReason.MISS_QUEUE_FULL, access):
                return self._do_bypass(cache_set, access, count_query=True, missed=True)
            self.stats.record_stall(StallReason.MISS_QUEUE_FULL)
            return AccessResult(AccessOutcome.STALL, StallReason.MISS_QUEUE_FULL)

        # The set query (and the PL decay it implies) precedes victim
        # selection: "a bypassed request also queries and consumes PL
        # values of all entries in this set" (Section 4.1.1).
        self._query(cache_set, access)
        self.policy.on_miss(access)

        victim = self.policy.select_victim(cache_set, access)
        if victim is None:
            if self.policy.bypass_on_no_victim(access):
                return self._do_bypass(
                    cache_set, access, count_query=False, missed=False
                )
            # Roll back nothing: the query already happened, but a stalled
            # baseline request re-queries on retry in hardware too; we
            # count the access once at completion instead.
            self.stats.record_stall(StallReason.NO_RESERVABLE_LINE)
            return AccessResult(AccessOutcome.STALL, StallReason.NO_RESERVABLE_LINE)

        evicted_block: Optional[int] = None
        if victim.state is LineState.VALID:
            evicted_block = victim.block_addr
            self.policy.on_evict(victim)
            self.stats.evictions += 1
        victim.invalidate()
        victim.reserve(
            self.geometry.tag(access.block_addr),
            access.block_addr,
            access.insn_id,
            self.tags.next_stamp(),
        )
        self.policy.on_allocate(victim, access)

        self.mshr.allocate(
            access.block_addr, access.insn_id, access.now, access.waiter,
            word=self._word_of(access) if self.non_blocking else None,
        )
        fetch = FetchRequest(
            block_addr=access.block_addr,
            insn_id=access.insn_id,
            sm_id=self.sm_id,
            is_bypass=False,
            issued_at=access.now,
        )
        self.miss_queue.push(fetch)
        self.stats.loads += 1
        self.stats.misses += 1
        self._done(access, AccessOutcome.MISS)
        return AccessResult(AccessOutcome.MISS, evicted_block=evicted_block)

    def _do_bypass(
        self,
        cache_set,
        access: MemAccess,
        count_query: bool,
        missed: bool = True,
    ) -> AccessResult:
        """Send the request to the interconnect without caching it.

        Bypassed requests use the dedicated bypass path of Fig. 1/8, so
        they need neither an MSHR entry nor a miss-queue slot.
        """
        if count_query:
            self._query(cache_set, access)
        if missed:
            self.policy.on_miss(access)
        self.stats.loads += 1
        self.stats.bypasses += 1
        self.policy.on_bypass(access)
        fetch = FetchRequest(
            block_addr=access.block_addr,
            insn_id=access.insn_id,
            sm_id=self.sm_id,
            is_bypass=True,
            issued_at=access.now,
            waiter=access.waiter,
        )
        self.stats.sent_fetches += 1
        self.send_fn(fetch)
        self._done(access, AccessOutcome.BYPASS)
        return AccessResult(AccessOutcome.BYPASS)

    def _access_write(self, access: MemAccess) -> AccessResult:
        cache_set = self.tags.set_for(access.block_addr)
        tag = self.geometry.tag(access.block_addr)
        line = cache_set.find(tag)
        # Write-through traffic rides the miss queue toward the
        # interconnect; a full queue blocks the pipeline.
        if self.miss_queue.is_full:
            if not self.policy.bypass_on_stall(StallReason.MISS_QUEUE_FULL, access):
                self.stats.record_stall(StallReason.MISS_QUEUE_FULL)
                return AccessResult(AccessOutcome.STALL, StallReason.MISS_QUEUE_FULL)
            # Stall-Bypass routes the write down the bypass path instead.
            self._query(cache_set, access)
            self.stats.stores += 1
            self.stats.write_misses += 1
            self.stats.sent_writes += 1
            self.send_fn(
                FetchRequest(
                    access.block_addr, access.insn_id, self.sm_id,
                    is_bypass=True, is_write=True, issued_at=access.now,
                )
            )
            self._done(access, AccessOutcome.WRITE_MISS)
            return AccessResult(AccessOutcome.WRITE_MISS)

        self._query(cache_set, access)
        self.stats.stores += 1
        outcome = AccessOutcome.WRITE_MISS
        if line is not None and line.state is LineState.VALID:
            # write-evict: invalidate the local copy, data goes to L2
            line.invalidate()
            self.stats.write_hits += 1
            self.stats.write_evicts += 1
            outcome = AccessOutcome.WRITE_HIT
        else:
            self.stats.write_misses += 1
        write = FetchRequest(
            block_addr=access.block_addr,
            insn_id=access.insn_id,
            sm_id=self.sm_id,
            is_bypass=False,
            is_write=True,
            issued_at=access.now,
        )
        self.miss_queue.push(write)
        self._done(access, outcome)
        return AccessResult(outcome)

    # ------------------------------------------------------------------
    # interconnect side
    # ------------------------------------------------------------------

    def drain_miss_queue(self, max_requests: int = 1) -> int:
        """Inject up to ``max_requests`` queued requests into the
        interconnect (one per cycle at the paper's clocks).  Returns the
        number injected."""
        injected = 0
        while injected < max_requests and not self.miss_queue.is_empty:
            fetch: FetchRequest = self.miss_queue.pop()
            if fetch.is_write:
                self.stats.sent_writes += 1
            else:
                self.stats.sent_fetches += 1
            self.send_fn(fetch)
            injected += 1
        return injected

    def fill(self, block_addr: int, now: int) -> List[Any]:
        """A fetch response arrived: fill the reserved line and return the
        waiters (merged requests) to wake."""
        entry = self.mshr.release(block_addr)
        line = self.tags.probe(block_addr)
        if line is None or line.state is not LineState.RESERVED:
            raise RuntimeError(f"fill for {block_addr:#x} without reserved line")
        line.fill(self.tags.next_stamp())
        self.stats.fills += 1
        return entry.waiters

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _word_of(self, access: MemAccess) -> int:
        """Pending-word index of a request within its line.

        Traces are line-granular (no byte offsets survive coalescing), so
        the issuing warp's lane position stands in for the word the
        request targets — a deterministic modeling proxy that makes
        same-warp re-references coalesce for free while distinct warps
        claim distinct words, matching the CAM design's intent.
        """
        return access.warp_id % self.words_per_line

    def _query(self, cache_set, access: MemAccess) -> None:
        cache_set.queries += 1
        self.policy.on_set_query(cache_set, access)

    def _done(self, access: MemAccess, outcome: AccessOutcome) -> None:
        self.policy.on_access_done(access, outcome)
        if self.access_tap is not None:
            self.access_tap(access, outcome)

    def reset_stats(self) -> None:
        self.stats = L1DStats()
