"""Set-index functions for the tag arrays.

Table 1 of the paper configures the L1D with a *hash* index and the L2
with a *linear* index; both functions live in :mod:`repro.utils.hashing`
and are re-exported here with a small registry so cache geometry can name
its index function in configuration.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.utils.hashing import linear_set_index, xor_set_index

IndexFn = Callable[[int, int], int]

INDEX_FUNCTIONS: Dict[str, IndexFn] = {
    "linear": linear_set_index,
    "hash": xor_set_index,
}


def get_index_fn(name: str) -> IndexFn:
    try:
        return INDEX_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown set-index function {name!r}; expected one of "
            f"{sorted(INDEX_FUNCTIONS)}"
        ) from None
