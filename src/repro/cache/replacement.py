"""Victim-selection helpers shared by the policies.

The paper keeps LRU ordering everywhere; protection only *filters* the
candidate list (a line with positive Protected Life, or a reserved line,
cannot be replaced — Section 4.1.1).  Keeping the selectors here lets the
baseline, Global-Protection and DLP policies share one tested code path.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.line import CacheLine, LineState
from repro.cache.tagarray import CacheSet


def lru_victim(cache_set: CacheSet) -> Optional[CacheLine]:
    """Baseline choice: an invalid way if any, else the LRU valid line.

    Returns ``None`` when every way is reserved (the Section 2
    no-reservable-slot stall).
    """
    invalid = cache_set.find_invalid()
    if invalid is not None:
        return invalid
    best: Optional[CacheLine] = None
    for line in cache_set.lines:
        if line.state is LineState.VALID:
            if best is None or line.lru_stamp < best.lru_stamp:
                best = line
    return best


def protected_lru_victim(cache_set: CacheSet) -> Optional[CacheLine]:
    """Protection-aware choice: LRU among valid *unprotected* lines.

    Returns ``None`` when every way is reserved or protected — the
    condition under which DLP / Global-Protection bypass the request.
    """
    invalid = cache_set.find_invalid()
    if invalid is not None:
        return invalid
    best: Optional[CacheLine] = None
    for line in cache_set.lines:
        if line.state is LineState.VALID and not line.is_protected:
            if best is None or line.lru_stamp < best.lru_stamp:
                best = line
    return best
