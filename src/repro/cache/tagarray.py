"""Set-indexed tag (and data) array.

The tag array owns geometry (sets x ways x line size), address slicing and
the per-set line storage; it knows nothing about MSHRs, stalls or
policies.  The L1D cache model composes it with :class:`MshrTable`, and
the DLP Victim Tag Array reuses the same geometry helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.cache.hashing import get_index_fn
from repro.cache.line import CacheLine, LineState


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a set-associative array.

    The paper's baseline L1D (Table 1) is ``CacheGeometry(num_sets=32,
    assoc=4, line_size=128)`` = 16 KB with a hash index.
    """

    num_sets: int
    assoc: int
    line_size: int = 128
    index_fn: str = "hash"

    def __post_init__(self) -> None:
        for name in ("num_sets", "assoc", "line_size"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"num_sets must be a power of two, got {self.num_sets}")
        if self.line_size & (self.line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")

    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.assoc * self.line_size

    @property
    def offset_bits(self) -> int:
        return self.line_size.bit_length() - 1

    def block_addr(self, byte_addr: int) -> int:
        """Line-granular address (byte address with the offset stripped)."""
        return byte_addr >> self.offset_bits

    def set_index(self, block_addr: int) -> int:
        return get_index_fn(self.index_fn)(block_addr, self.num_sets)

    def tag(self, block_addr: int) -> int:
        # The full block address doubles as the tag; hardware would store
        # only the non-index bits, but with a hashed index the whole block
        # address is needed to disambiguate, as GPGPU-Sim does.
        return block_addr

    def with_assoc(self, assoc: int) -> "CacheGeometry":
        """Same sets/line size at a different associativity (Figs. 4-5)."""
        return CacheGeometry(self.num_sets, assoc, self.line_size, self.index_fn)


class CacheSet:
    """One set: a list of ways plus per-set statistics.

    Slotted on purpose (hot path); the hardware bit-width contracts of
    the DLP extension fields live on :class:`~repro.cache.line.CacheLine`
    itself, not here.
    """

    __slots__ = ("index", "lines", "queries")

    def __init__(self, index: int, assoc: int):
        self.index = index
        self.lines: List[CacheLine] = [CacheLine(way=w) for w in range(assoc)]
        self.queries = 0

    def find(self, tag: int) -> Optional[CacheLine]:
        for line in self.lines:
            if line.tag == tag and not line.is_invalid:
                return line
        return None

    def find_invalid(self) -> Optional[CacheLine]:
        for line in self.lines:
            if line.is_invalid:
                return line
        return None

    def replaceable(self) -> List[CacheLine]:
        """Lines a baseline LRU policy may evict (valid, not reserved)."""
        return [line for line in self.lines if line.state is LineState.VALID]

    def all_reserved_or_protected(self) -> bool:
        return all(
            line.is_reserved or (line.is_valid and line.is_protected)
            for line in self.lines
        )


class TagArray:
    """The full array of sets."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.sets: List[CacheSet] = [
            CacheSet(i, geometry.assoc) for i in range(geometry.num_sets)
        ]
        self._stamp = 0

    def next_stamp(self) -> int:
        self._stamp += 1
        return self._stamp

    def set_for(self, block_addr: int) -> CacheSet:
        return self.sets[self.geometry.set_index(block_addr)]

    def probe(self, block_addr: int) -> Optional[CacheLine]:
        """Tag match without side effects (no LRU update)."""
        return self.set_for(block_addr).find(self.geometry.tag(block_addr))

    def touch(self, line: CacheLine) -> None:
        line.lru_stamp = self.next_stamp()

    def lines(self) -> Iterator[CacheLine]:
        for cache_set in self.sets:
            yield from cache_set.lines

    def valid_blocks(self) -> List[int]:
        return [line.block_addr for line in self.lines() if line.is_valid]

    def flush(self) -> None:
        for line in self.lines():
            line.invalidate()
