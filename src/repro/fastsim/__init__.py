"""Packed fast-path simulation engine (``--engine fast``).

Two interchangeable L1D engines exist:

* ``reference`` — the per-object model (:mod:`repro.cache.l1d` +
  :mod:`repro.core`), with hardware bit-width contracts and per-hook
  policy dispatch.  The semantic source of truth.
* ``fast`` — :class:`repro.fastsim.engine.FastL1DCache`, a packed
  struct-of-arrays engine with the four policies inlined.  Bit-identical
  to the reference (proven by ``tests/fastsim``), several times faster.

Because results are identical, the engine choice is an *execution*
detail, never part of a result's identity: store keys and cell
fingerprints exclude it, and results computed by either engine resolve
each other in every store.

This package module stays import-light (engine only) so
``repro.gpu.sm`` can import it without cycles; the replay fast path
(:mod:`repro.fastsim.replay`) and the profiler
(:mod:`repro.fastsim.profile`) import the simulator layers and are
loaded lazily by their callers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.l1d import FetchRequest, L1DCache
from repro.cache.tagarray import CacheGeometry
from repro.core.policy import CachePolicy
from repro.fastsim.engine import FastL1DCache, PolicySpec

#: The selectable engines, in default-first order.
ENGINES = ("reference", "fast")
DEFAULT_ENGINE = ENGINES[0]


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine


def make_l1d(
    engine: str,
    geometry: CacheGeometry,
    policy: CachePolicy,
    send_fn: Optional[Callable[[FetchRequest], None]] = None,
    mshr_entries: int = 32,
    mshr_merge: int = 8,
    miss_queue_depth: int = 8,
    sm_id: int = 0,
    non_blocking: bool = False,
):
    """Build the selected engine's L1D; both share one protocol surface."""
    cls = L1DCache if validate_engine(engine) == "reference" else FastL1DCache
    return cls(
        geometry,
        policy,
        send_fn=send_fn,
        mshr_entries=mshr_entries,
        mshr_merge=mshr_merge,
        miss_queue_depth=miss_queue_depth,
        sm_id=sm_id,
        non_blocking=non_blocking,
    )


__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "FastL1DCache",
    "PolicySpec",
    "make_l1d",
    "validate_engine",
]
