"""Packed struct-of-arrays L1D engine (the ``fast`` engine).

:class:`FastL1DCache` is a drop-in replacement for
:class:`repro.cache.l1d.L1DCache` that stores every per-line field
(state, block address, LRU stamp, instruction IDs, Protected Life), the
Victim Tag Array and the Protection Distance Prediction Table in flat
integer lists indexed by ``set_index * assoc + way``, with the set-index
function hoisted out of the per-access path.  All four policies
(baseline LRU, Stall-Bypass, Global-Protection, DLP) are inlined into
the protocol flow and selected by an integer kind, replacing the
reference model's per-object traversal, virtual policy dispatch and
``min(..., key=)`` victim scans with index arithmetic.

The engine is **bit-identical** to the reference model by construction
and by test: every counter, stall record, policy statistic and PD value
matches the reference for the same access stream (``tests/fastsim``
proves this differentially across policies, ablation knobs, golden
streams and fuzzed streams).  Anything observable therefore follows the
reference's exact orderings — stamp allocation, PL decay before victim
selection, VTA consume-on-probe, first-wins LRU tie-breaks, and the
sampling-window close conditions.

Public protocol mirrors ``L1DCache``: ``access`` / ``fill`` /
``drain_miss_queue`` / ``reset_stats`` / ``stats`` / ``access_tap`` /
``mshr`` / ``miss_queue``, plus a ``policy`` facade exposing the
policy-side surface the simulator and reports use
(``notify_instructions``, ``stats``, ``reset``, ``pd_snapshot``,
``global_pd``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from repro.cache.hashing import get_index_fn
from repro.cache.l1d import (
    AccessOutcome,
    AccessResult,
    FetchRequest,
    L1DStats,
    MemAccess,
)
from repro.cache.mshr import WORD_BYTES, MissQueue, MshrTable
from repro.cache.tagarray import CacheGeometry
from repro.core.policy import CachePolicy, StallReason
from repro.core.pdpt import (
    PDPT_ENTRIES,
    PD_BITS,
    TDA_HIT_BITS,
    VTA_HIT_BITS,
)

#: Line states, numeric for the packed arrays (mirrors
#: :class:`repro.cache.line.LineState` semantics).
INVALID, RESERVED, VALID = 0, 1, 2

#: Policy kinds, numeric for branch dispatch in the hot path.
KIND_BASELINE, KIND_STALL_BYPASS, KIND_GLOBAL, KIND_DLP = 0, 1, 2, 3

_KIND_BY_NAME = {
    "baseline": KIND_BASELINE,
    "stall_bypass": KIND_STALL_BYPASS,
    "global_protection": KIND_GLOBAL,
    "dlp": KIND_DLP,
}

#: Sampling-window defaults (paper Section 4.2), matching
#: :class:`repro.core.sampler.SampleWindow`.
_DEFAULT_SAMPLE_LIMIT = 200
_DEFAULT_INSN_LIMIT = 100_000


@dataclass(frozen=True)
class PolicySpec:
    """Everything the packed engine needs to know about a policy.

    Extracted from a reference policy instance (so ``make_policy`` and
    every existing ``policy_factory`` keep working unchanged) or built
    directly for the replay fast path.
    """

    kind: int = KIND_BASELINE
    sample_limit: int = _DEFAULT_SAMPLE_LIMIT
    insn_sample_limit: int = _DEFAULT_INSN_LIMIT
    vta_assoc: Optional[int] = None
    pd_bits: int = PD_BITS
    nasc: Optional[int] = None
    bypass_enabled: bool = True

    @classmethod
    def from_policy(cls, policy: CachePolicy) -> "PolicySpec":
        kind = _KIND_BY_NAME.get(policy.name)
        if kind is None:
            raise ValueError(
                f"fast engine does not support custom policy {policy.name!r}; "
                f"use engine='reference'"
            )
        if kind < KIND_GLOBAL:
            return cls(kind=kind)
        return cls(
            kind=kind,
            sample_limit=policy.sampler.access_limit,
            insn_sample_limit=policy.sampler.insn_limit,
            vta_assoc=policy._vta_assoc,
            pd_bits=policy.pd_bits,
            nasc=policy._nasc_override,
            bypass_enabled=policy.bypass_enabled,
        )


class _FastPolicyFacade:
    """The policy-side surface of a :class:`FastL1DCache`.

    The simulator, the CLI and the golden/report harnesses talk to
    ``sm.policy`` — for the fast engine that is this object, which
    forwards to the packed state inside the cache.
    """

    def __init__(self, cache: "FastL1DCache") -> None:
        self._cache = cache

    @property
    def name(self) -> str:
        return self._cache.policy_name

    def notify_instructions(self, count: int) -> None:
        self._cache.notify_instructions(count)

    def stats(self) -> Dict[str, float]:
        return self._cache.policy_stats()

    def reset(self) -> None:
        self._cache.policy_reset()

    def pd_snapshot(self) -> Dict[int, Dict[str, int]]:
        return self._cache.pd_snapshot()

    @property
    def global_pd(self) -> int:
        return self._cache._gpd


class FastL1DCache:
    """Packed-array L1D cache: same protocol, flat state, inlined policy."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: Union[CachePolicy, PolicySpec],
        send_fn: Optional[Callable[[FetchRequest], None]] = None,
        mshr_entries: int = 32,
        mshr_merge: int = 8,
        miss_queue_depth: int = 8,
        sm_id: int = 0,
        non_blocking: bool = False,
    ) -> None:
        spec = (
            policy
            if isinstance(policy, PolicySpec)
            else PolicySpec.from_policy(policy)
        )
        self.spec = spec
        self.geometry = geometry
        self.non_blocking = non_blocking
        self.words_per_line = max(1, geometry.line_size // WORD_BYTES)
        self.mshr = MshrTable(
            mshr_entries,
            mshr_merge,
            word_granular=non_blocking,
            words_per_line=self.words_per_line,
        )
        self.miss_queue = MissQueue(miss_queue_depth)
        self.send_fn = send_fn or (lambda req: None)
        self.sm_id = sm_id
        self.stats = L1DStats()
        self.access_tap: Optional[
            Callable[[MemAccess, AccessOutcome], None]
        ] = None

        self._kind = spec.kind
        num_sets, assoc = geometry.num_sets, geometry.assoc
        self._num_sets = num_sets
        self._assoc = assoc
        # Hoisted once; the reference re-resolves the registry per access.
        self._index_fn = get_index_fn(geometry.index_fn)

        n = num_sets * assoc
        # Per-line packed fields.  Names deliberately avoid the raw
        # hardware field names — the flat arrays are an *encoding* of the
        # contract-checked reference fields, proven equivalent by the
        # differential suite, not a second set of hardware registers.
        self._st = [INVALID] * n      # line state
        self._blk = [-1] * n          # block address (== tag)
        self._lru = [0] * n           # LRU stamp
        self._iid = [0] * n           # owning instruction ID
        self._pli = [0] * n           # Protected Life
        self._pnd = [0] * n           # pending instruction ID (RESERVED)
        self._stamp = 0               # shared stamp counter (TagArray._stamp)

        protected = spec.kind >= KIND_GLOBAL
        self._protected = protected
        self._bypass_enabled = spec.bypass_enabled if protected else False
        self._pl_max = (1 << spec.pd_bits) - 1 if protected else 0

        # Stall-Bypass per-reason counters, in StallReason declaration
        # order (matches StallBypassPolicy.bypassed_by_reason).
        self._bypassed = {reason.value: 0 for reason in StallReason}

        # VTA (packed), DLP/GP only.
        vta_assoc = spec.vta_assoc if spec.vta_assoc is not None else assoc
        if protected and vta_assoc < 1:
            # Same contract as VictimTagArray.
            raise ValueError("VTA associativity must be >= 1")
        self._vta_assoc = vta_assoc
        vn = num_sets * vta_assoc if protected else 0
        self._vta_valid = [False] * vn
        self._vta_blk = [-1] * vn
        self._vta_iid = [0] * vn
        self._vta_lru = [0] * vn
        self._vta_stamp = 0
        self._vta_hit_count = 0
        self._vta_insert_count = 0
        self._vta_probe_count = 0

        # Sampling window (SampleWindow semantics, inlined).
        if protected and (spec.sample_limit <= 0 or spec.insn_sample_limit <= 0):
            raise ValueError("sampling limits must be positive")
        self._acc_limit = spec.sample_limit
        self._ins_limit = spec.insn_sample_limit
        self._acc = 0
        self._ins = 0
        self.samples_completed = 0
        self.closed_by = {"accesses": 0, "instructions": 0}

        # Nasc: explicit override wins, including 0; else VTA assoc.
        self._nasc = spec.nasc if spec.nasc is not None else vta_assoc

        # PDPT (packed), DLP only.
        pn = PDPT_ENTRIES if spec.kind == KIND_DLP else 0
        self._pdpt_n = pn
        self._pdt = [0] * pn          # per-entry TDA-hit counters
        self._pdv = [0] * pn          # per-entry VTA-hit counters
        self._pdl = [0] * pn          # per-entry Protection Distances
        self._pdu = [False] * pn      # lifetime activity markers
        self._tda_hit_max = (1 << TDA_HIT_BITS) - 1
        self._vta_hit_max = (1 << VTA_HIT_BITS) - 1
        self._pd_max = self._pl_max
        self._g_tda = 0               # global (non-saturating) accumulators
        self._g_vta = 0

        # Global-Protection scalar state.
        self._gpd = 0
        self._gp_tda = 0
        self._gp_vta = 0

        self.protected_bypasses = 0
        self.pd_updates = {"increase": 0, "decrease": 0, "hold": 0}

        self.policy_name = next(
            name for name, k in _KIND_BY_NAME.items() if k == spec.kind
        )
        self.policy = _FastPolicyFacade(self)

    # ------------------------------------------------------------------
    # main protocol
    # ------------------------------------------------------------------

    def access(self, access: MemAccess) -> AccessResult:
        if access.is_write:
            return self._access_write(access)
        return self._access_load(access)

    def _set_base(self, block_addr: int) -> int:
        return self._index_fn(block_addr, self._num_sets) * self._assoc

    def _access_load(self, access: MemAccess) -> AccessResult:
        block = access.block_addr
        base = self._set_base(block)
        end = base + self._assoc
        st, blk = self._st, self._blk

        way = -1
        for w in range(base, end):
            if blk[w] == block and st[w] != INVALID:
                way = w
                break

        if way >= 0 and st[way] == VALID:
            return self._complete_hit(base, end, way, access)
        if way >= 0:
            return self._merge_pending(base, end, way, access)
        return self._handle_miss(base, end, access)

    def _complete_hit(
        self, base: int, end: int, way: int, access: MemAccess
    ) -> AccessResult:
        self._query(base, end)
        self.stats.loads += 1
        self.stats.hits += 1
        kind = self._kind
        if kind == KIND_DLP:
            # Credit the previous owning instruction, re-tag, re-protect
            # from the accessing instruction's current PD.
            self._pdpt_tda(self._iid[way])
            iid = access.insn_id
            self._iid[way] = iid
            pd = self._pdl[iid % self._pdpt_n]
            self._pli[way] = pd if pd < self._pl_max else self._pl_max
        elif kind == KIND_GLOBAL:
            self._gp_tda += 1
            gpd = self._gpd
            self._pli[way] = gpd if gpd < self._pl_max else self._pl_max
        self._stamp += 1
        self._lru[way] = self._stamp
        self._done(access, AccessOutcome.HIT)
        return AccessResult(AccessOutcome.HIT)

    def _merge_pending(
        self, base: int, end: int, way: int, access: MemAccess
    ) -> AccessResult:
        block = access.block_addr
        entry = self.mshr.lookup(block)
        if entry is None:
            raise RuntimeError(f"reserved line {block:#x} without MSHR entry")
        if self.non_blocking:
            word: Optional[int] = access.warp_id % self.words_per_line
            merge_full = not self.mshr.can_merge(block, word)
        else:
            word = None
            merge_full = entry.num_requests >= self.mshr.max_merged
        if merge_full:
            if self._kind == KIND_STALL_BYPASS:
                self._bypassed[StallReason.MERGE_FULL.value] += 1
                return self._do_bypass(
                    base, end, access, count_query=True, missed=True
                )
            self.stats.record_stall(StallReason.MERGE_FULL)
            return AccessResult(AccessOutcome.STALL, StallReason.MERGE_FULL)
        self._query(base, end)
        self.stats.loads += 1
        self.stats.hit_reserved += 1
        self.mshr.merge(block, access.waiter, word=word)
        if self._kind == KIND_DLP:
            self._pdpt_tda(self._pnd[way])
            self._pnd[way] = access.insn_id
        elif self._kind == KIND_GLOBAL:
            self._gp_tda += 1
        self._done(access, AccessOutcome.HIT_RESERVED)
        return AccessResult(AccessOutcome.HIT_RESERVED)

    def _handle_miss(self, base: int, end: int, access: MemAccess) -> AccessResult:
        kind = self._kind
        if self.mshr.is_full:
            if kind == KIND_STALL_BYPASS:
                self._bypassed[StallReason.MSHR_FULL.value] += 1
                return self._do_bypass(
                    base, end, access, count_query=True, missed=True
                )
            self.stats.record_stall(StallReason.MSHR_FULL)
            return AccessResult(AccessOutcome.STALL, StallReason.MSHR_FULL)
        if self.miss_queue.is_full:
            if kind == KIND_STALL_BYPASS:
                self._bypassed[StallReason.MISS_QUEUE_FULL.value] += 1
                return self._do_bypass(
                    base, end, access, count_query=True, missed=True
                )
            self.stats.record_stall(StallReason.MISS_QUEUE_FULL)
            return AccessResult(AccessOutcome.STALL, StallReason.MISS_QUEUE_FULL)

        # Query (PL decay) precedes victim selection, as in the paper.
        self._query(base, end)
        if self._protected:
            self._vta_probe_credit(base // self._assoc, access.block_addr)

        way = self._select_victim(base, end)
        if way < 0:
            if kind == KIND_STALL_BYPASS:
                self._bypassed[StallReason.NO_RESERVABLE_LINE.value] += 1
                return self._do_bypass(
                    base, end, access, count_query=False, missed=False
                )
            if self._bypass_enabled:
                self.protected_bypasses += 1
                return self._do_bypass(
                    base, end, access, count_query=False, missed=False
                )
            self.stats.record_stall(StallReason.NO_RESERVABLE_LINE)
            return AccessResult(
                AccessOutcome.STALL, StallReason.NO_RESERVABLE_LINE
            )

        st, blk = self._st, self._blk
        evicted_block: Optional[int] = None
        if st[way] == VALID:
            evicted_block = blk[way]
            if self._protected:
                self._vta_insert(blk[way], self._iid[way])
            self.stats.evictions += 1
        # invalidate + reserve
        block = access.block_addr
        st[way] = RESERVED
        blk[way] = block
        self._pli[way] = 0
        self._iid[way] = 0
        self._pnd[way] = access.insn_id
        self._stamp += 1
        self._lru[way] = self._stamp
        if kind == KIND_DLP:
            pd = self._pdl[access.insn_id % self._pdpt_n]
            self._pli[way] = pd if pd < self._pl_max else self._pl_max
        elif kind == KIND_GLOBAL:
            gpd = self._gpd
            self._pli[way] = gpd if gpd < self._pl_max else self._pl_max

        self.mshr.allocate(
            block, access.insn_id, access.now, access.waiter,
            word=(access.warp_id % self.words_per_line)
            if self.non_blocking else None,
        )
        self.miss_queue.push(
            FetchRequest(
                block_addr=block,
                insn_id=access.insn_id,
                sm_id=self.sm_id,
                is_bypass=False,
                issued_at=access.now,
            )
        )
        self.stats.loads += 1
        self.stats.misses += 1
        self._done(access, AccessOutcome.MISS)
        return AccessResult(AccessOutcome.MISS, evicted_block=evicted_block)

    def _do_bypass(
        self,
        base: int,
        end: int,
        access: MemAccess,
        count_query: bool,
        missed: bool = True,
    ) -> AccessResult:
        if count_query:
            self._query(base, end)
        if missed and self._protected:
            self._vta_probe_credit(base // self._assoc, access.block_addr)
        self.stats.loads += 1
        self.stats.bypasses += 1
        fetch = FetchRequest(
            block_addr=access.block_addr,
            insn_id=access.insn_id,
            sm_id=self.sm_id,
            is_bypass=True,
            issued_at=access.now,
            waiter=access.waiter,
        )
        self.stats.sent_fetches += 1
        self.send_fn(fetch)
        self._done(access, AccessOutcome.BYPASS)
        return AccessResult(AccessOutcome.BYPASS)

    def _access_write(self, access: MemAccess) -> AccessResult:
        block = access.block_addr
        base = self._set_base(block)
        end = base + self._assoc
        st, blk = self._st, self._blk

        if self.miss_queue.is_full:
            if self._kind != KIND_STALL_BYPASS:
                self.stats.record_stall(StallReason.MISS_QUEUE_FULL)
                return AccessResult(
                    AccessOutcome.STALL, StallReason.MISS_QUEUE_FULL
                )
            self._bypassed[StallReason.MISS_QUEUE_FULL.value] += 1
            self._query(base, end)
            self.stats.stores += 1
            self.stats.write_misses += 1
            self.stats.sent_writes += 1
            self.send_fn(
                FetchRequest(
                    block, access.insn_id, self.sm_id,
                    is_bypass=True, is_write=True, issued_at=access.now,
                )
            )
            self._done(access, AccessOutcome.WRITE_MISS)
            return AccessResult(AccessOutcome.WRITE_MISS)

        self._query(base, end)
        self.stats.stores += 1
        outcome = AccessOutcome.WRITE_MISS
        for w in range(base, end):
            if blk[w] == block and st[w] == VALID:
                # write-evict: invalidate the local copy
                st[w] = INVALID
                blk[w] = -1
                self._pli[w] = 0
                self._iid[w] = 0
                self.stats.write_hits += 1
                self.stats.write_evicts += 1
                outcome = AccessOutcome.WRITE_HIT
                break
        else:
            self.stats.write_misses += 1
        self.miss_queue.push(
            FetchRequest(
                block_addr=block,
                insn_id=access.insn_id,
                sm_id=self.sm_id,
                is_bypass=False,
                is_write=True,
                issued_at=access.now,
            )
        )
        self._done(access, outcome)
        return AccessResult(outcome)

    # ------------------------------------------------------------------
    # interconnect side
    # ------------------------------------------------------------------

    def drain_miss_queue(self, max_requests: int = 1) -> int:
        injected = 0
        while injected < max_requests and not self.miss_queue.is_empty:
            fetch: FetchRequest = self.miss_queue.pop()
            if fetch.is_write:
                self.stats.sent_writes += 1
            else:
                self.stats.sent_fetches += 1
            self.send_fn(fetch)
            injected += 1
        return injected

    def fill(self, block_addr: int, now: int) -> List[Any]:
        entry = self.mshr.release(block_addr)
        base = self._set_base(block_addr)
        st, blk = self._st, self._blk
        way = -1
        for w in range(base, base + self._assoc):
            if blk[w] == block_addr and st[w] != INVALID:
                way = w
                break
        if way < 0 or st[way] != RESERVED:
            raise RuntimeError(f"fill for {block_addr:#x} without reserved line")
        st[way] = VALID
        self._iid[way] = self._pnd[way]
        self._stamp += 1
        self._lru[way] = self._stamp
        self.stats.fills += 1
        return entry.waiters

    def reset_stats(self) -> None:
        self.stats = L1DStats()

    # ------------------------------------------------------------------
    # inlined policy internals
    # ------------------------------------------------------------------

    def _query(self, base: int, end: int) -> None:
        if self._protected:
            pli = self._pli
            for w in range(base, end):
                if pli[w] > 0:
                    pli[w] -= 1

    def _select_victim(self, base: int, end: int) -> int:
        """First invalid way, else LRU over replaceable valid lines
        (first-wins on stamp ties, like the reference scans)."""
        st, lru = self._st, self._lru
        protected = self._protected
        pli = self._pli
        best = -1
        best_stamp = 0
        for w in range(base, end):
            s = st[w]
            if s == INVALID:
                return w
            if s == VALID and (not protected or pli[w] == 0):
                stamp = lru[w]
                if best < 0 or stamp < best_stamp:
                    best = w
                    best_stamp = stamp
        return best

    def _pdpt_tda(self, insn_id: int) -> None:
        i = insn_id % self._pdpt_n
        if self._pdt[i] < self._tda_hit_max:
            self._pdt[i] += 1
        self._pdu[i] = True
        self._g_tda += 1

    def _vta_probe_credit(self, set_index: int, block_addr: int) -> None:
        """``on_miss``: probe the VTA; a hit consumes the entry and
        credits the owning instruction (DLP) or the global counter (GP)."""
        self._vta_probe_count += 1
        vb = set_index * self._vta_assoc
        valid, tags = self._vta_valid, self._vta_blk
        for j in range(vb, vb + self._vta_assoc):
            if valid[j] and tags[j] == block_addr:
                valid[j] = False
                self._vta_hit_count += 1
                if self._kind == KIND_DLP:
                    owner = self._vta_iid[j]
                    i = owner % self._pdpt_n
                    if self._pdv[i] < self._vta_hit_max:
                        self._pdv[i] += 1
                    self._pdu[i] = True
                    self._g_vta += 1
                else:
                    self._gp_vta += 1
                return

    def _vta_insert(self, block_addr: int, insn_id: int) -> None:
        self._vta_stamp += 1
        vb = self._index_fn(block_addr, self._num_sets) * self._vta_assoc
        vend = vb + self._vta_assoc
        valid, tags, lru = self._vta_valid, self._vta_blk, self._vta_lru
        victim = -1
        first_invalid = -1
        for j in range(vb, vend):
            if valid[j] and tags[j] == block_addr:
                victim = j
                break
            if first_invalid < 0 and not valid[j]:
                first_invalid = j
        if victim < 0:
            victim = first_invalid
        if victim < 0:
            # LRU fallback, first-wins ties (min over insertion order).
            best_stamp = lru[vb]
            victim = vb
            for j in range(vb + 1, vend):
                if lru[j] < best_stamp:
                    best_stamp = lru[j]
                    victim = j
        valid[victim] = True
        tags[victim] = block_addr
        self._vta_iid[victim] = insn_id
        lru[victim] = self._vta_stamp
        self._vta_insert_count += 1

    # -- sampling ------------------------------------------------------

    def _done(self, access: MemAccess, outcome: AccessOutcome) -> None:
        if self._protected:
            self._acc += 1
            if self._acc > self._acc_limit:
                raise RuntimeError(
                    f"sampling window overshot: {self._acc} accesses "
                    f"counted against a limit of {self._acc_limit}"
                )
            if self._acc >= self._acc_limit:
                self._close_sample("accesses")
        tap = self.access_tap
        if tap is not None:
            tap(access, outcome)

    def notify_instructions(self, count: int) -> None:
        if not self._protected:
            return
        self._ins += count
        if self._ins >= self._ins_limit and self._acc > 0:
            self._close_sample("instructions")

    def _close_sample(self, reason: str) -> None:
        self.samples_completed += 1
        self.closed_by[reason] += 1
        self._acc = 0
        self._ins = 0
        self._end_sample()

    def _end_sample(self) -> None:
        nasc = self._nasc
        if nasc < 0:
            # Hoisted above the path split (mirrors run_pd_update /
            # run_global_pd_update): a negative Nasc on the decrease path
            # would silently *raise* PDs past the 4-bit field.
            raise ValueError(f"Nasc must be non-negative, got {nasc}")
        if self._kind == KIND_DLP:
            g_tda, g_vta = self._g_tda, self._g_vta
            pdt, pdv, pdl = self._pdt, self._pdv, self._pdl
            if g_vta > g_tda:
                path = "increase"
                pd_max = self._pd_max
                for i in range(self._pdpt_n):
                    t, v = pdt[i], pdv[i]
                    if t or v:
                        delta = _pd_increment(nasc, v, t)
                        if delta:
                            npd = pdl[i] + delta
                            pdl[i] = npd if npd < pd_max else pd_max
            elif 2 * g_vta < g_tda:
                path = "decrease"
                for i in range(self._pdpt_n):
                    if pdl[i]:
                        npd = pdl[i] - nasc
                        pdl[i] = npd if npd > 0 else 0
            else:
                path = "hold"
            for i in range(self._pdpt_n):
                pdt[i] = 0
                pdv[i] = 0
            self._g_tda = 0
            self._g_vta = 0
        else:  # KIND_GLOBAL
            g_tda, g_vta = self._gp_tda, self._gp_vta
            if g_vta > g_tda:
                path = "increase"
                npd = self._gpd + _pd_increment(nasc, g_vta, g_tda)
                self._gpd = npd if npd < self._pd_max else self._pd_max
            elif 2 * g_vta < g_tda:
                path = "decrease"
                npd = self._gpd - nasc
                self._gpd = npd if npd > 0 else 0
            else:
                path = "hold"
            self._gp_tda = 0
            self._gp_vta = 0
        self.pd_updates[path] += 1

    # ------------------------------------------------------------------
    # policy-side reporting / lifecycle (facade targets)
    # ------------------------------------------------------------------

    def policy_stats(self) -> Dict[str, float]:
        kind = self._kind
        if kind == KIND_BASELINE:
            return {}
        if kind == KIND_STALL_BYPASS:
            return {f"bypass_{k}": v for k, v in self._bypassed.items()}
        out: Dict[str, float] = {
            "protected_bypasses": self.protected_bypasses,
            "samples_completed": self.samples_completed,
        }
        if kind == KIND_GLOBAL:
            out["global_pd"] = self._gpd
            out["vta_hits"] = self._vta_hit_count
        else:
            out["vta_hits"] = self._vta_hit_count
            out["vta_inserts"] = self._vta_insert_count
        for path, count in self.pd_updates.items():
            out[f"pd_{path}"] = count
        return out

    def pd_snapshot(self) -> Dict[int, Dict[str, int]]:
        return {
            i: {"tda_hits": self._pdt[i], "vta_hits": self._pdv[i],
                "pd": self._pdl[i]}
            for i in range(self._pdpt_n)
            if self._pdu[i]
        }

    def policy_reset(self) -> None:
        """Between-kernel reset, matching the (fixed) reference contract:
        learned state clears, statistics survive."""
        if not self._protected:
            return
        self._acc = 0
        self._ins = 0
        for j in range(len(self._vta_valid)):
            self._vta_valid[j] = False
            self._vta_blk[j] = -1
            self._vta_iid[j] = 0
            self._vta_lru[j] = 0
        self._vta_stamp = 0
        if self._kind == KIND_DLP:
            for i in range(self._pdpt_n):
                self._pdt[i] = 0
                self._pdv[i] = 0
                self._pdl[i] = 0
            self._g_tda = 0
            self._g_vta = 0
        else:
            self._gpd = 0
            self._gp_tda = 0
            self._gp_vta = 0


def _pd_increment(nasc: int, hit_vta: int, hit_tda: int) -> int:
    """Figure 9 step ladder (mirrors
    :func:`repro.core.protection.pd_increment`, minus the per-call
    negative-nasc guard, which the caller hoists)."""
    if hit_vta <= 0:
        return 0
    if hit_tda <= 0 or hit_vta >= 4 * hit_tda:
        return 4 * nasc
    if hit_vta >= 2 * hit_tda:
        return 2 * nasc
    if hit_vta >= hit_tda:
        return nasc
    if 2 * hit_vta >= hit_tda:
        return nasc >> 1
    return 0
