"""Phase profiler for the L1D engines (``repro profile APP --scheme``).

Answers two questions about one (app, scheme) cell:

1. *Where does the reference engine spend its time?*  The cell's access
   stream is captured once and replayed through the reference
   :class:`~repro.trace.replay.ReplayEngine` with every policy hook
   wrapped in a wall-clock timer, bucketed into the phases of the
   Figure 1/8 access flow: set query (PL decay), victim selection,
   the remaining policy hooks (hit/miss/evict/allocate/bypass), and
   sampling (access-done ticks + instruction notifications).  The
   residue — tag scans, MSHR bookkeeping, dispatch — reports as
   ``other``.
2. *What does the packed engine buy?*  The same stream runs through
   :class:`~repro.fastsim.replay.FastReplayEngine` end to end; the
   profile reports both engines' per-access cost and the speedup, and
   raises if the results are not bit-identical (profiling a divergent
   engine would time a different computation).

Timer overhead inflates the reference's hook phases slightly, so the
phase split is a map of *where the model's time goes*, not a promise of
recoverable microseconds; the engine-vs-engine totals are measured
without any instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.gpu.config import GPUConfig
from repro.utils import wallclock

#: policy hook -> reported phase (the Figure 1/8 flow stations).
PHASE_OF_HOOK: Dict[str, str] = {
    "on_set_query": "set_query",
    "select_victim": "victim_select",
    "on_hit": "policy_hooks",
    "on_miss": "policy_hooks",
    "on_evict": "policy_hooks",
    "on_allocate": "policy_hooks",
    "on_bypass": "policy_hooks",
    "bypass_on_no_victim": "policy_hooks",
    "bypass_on_stall": "policy_hooks",
    "on_access_done": "sampling",
    "notify_instructions": "sampling",
}

#: report order.
PHASES = ("set_query", "victim_select", "policy_hooks", "sampling", "other")


class _TimedPolicy:
    """Transparent policy proxy: every hook call adds its wall-clock
    cost to the shared phase bucket; everything else passes through."""

    def __init__(self, inner, buckets: Dict[str, float]) -> None:
        self._inner = inner
        for hook, phase in PHASE_OF_HOOK.items():
            setattr(self, hook, _timed(getattr(inner, hook), buckets, phase))

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def _timed(fn: Callable, buckets: Dict[str, float], phase: str) -> Callable:
    def wrapper(*args, **kwargs):
        t0 = wallclock.perf()
        try:
            return fn(*args, **kwargs)
        finally:
            buckets[phase] += wallclock.perf() - t0

    return wrapper


@dataclass
class PhaseProfile:
    """One profiled cell: phase split + engine comparison."""

    abbr: str
    scheme: str
    records: int
    phases: Dict[str, float]        # seconds, keys = PHASES
    reference_seconds: float
    fast_seconds: float

    @property
    def speedup(self) -> float:
        return self.reference_seconds / self.fast_seconds \
            if self.fast_seconds else 0.0

    def per_access_us(self, seconds: float) -> float:
        return seconds / self.records * 1e6 if self.records else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "abbr": self.abbr,
            "scheme": self.scheme,
            "records": self.records,
            "phases_seconds": dict(self.phases),
            "reference_seconds": self.reference_seconds,
            "fast_seconds": self.fast_seconds,
            "reference_us_per_access": self.per_access_us(
                self.reference_seconds),
            "fast_us_per_access": self.per_access_us(self.fast_seconds),
            "speedup": self.speedup,
        }

    def render(self) -> str:
        from repro.analysis import ascii_table

        total = self.reference_seconds or 1.0
        rows = [
            (
                phase,
                f"{self.phases[phase] * 1e3:.2f}",
                f"{self.phases[phase] / total * 100:.1f}%",
                f"{self.per_access_us(self.phases[phase]):.3f}",
            )
            for phase in PHASES
        ]
        table = ascii_table(
            ["Phase", "ms", "share", "us/access"],
            rows,
            title=f"{self.abbr} under {self.scheme}: reference engine, "
                  f"{self.records} accesses",
        )
        summary = (
            f"\nreference: {self.per_access_us(self.reference_seconds):.3f} "
            f"us/access ({self.reference_seconds * 1e3:.1f} ms)"
            f"\nfast:      {self.per_access_us(self.fast_seconds):.3f} "
            f"us/access ({self.fast_seconds * 1e3:.1f} ms)"
            f"\nspeedup:   {self.speedup:.1f}x (bit-identical results)"
        )
        return table + summary


def profile_cell(
    abbr: str,
    scheme: str = "dlp",
    num_sms: int = 4,
    scale: float = 1.0,
    seed: int = 0,
    **policy_kwargs,
) -> PhaseProfile:
    """Capture one cell's stream, time the reference engine per phase,
    and race the fast engine over the same records.

    Raises ``RuntimeError`` if the engines disagree — a phase profile of
    a divergent engine would be timing the wrong computation.
    """
    from repro.fastsim.replay import FastReplayEngine
    from repro.trace.record import capture_records
    from repro.trace.replay import ReplayEngine, _resolve
    from repro.workloads import make_workload

    base_config = GPUConfig().scaled(num_sms)
    workload = make_workload(abbr, scale, seed=seed)
    records = capture_records(workload, base_config)
    config, factory = _resolve(scheme, base_config, **policy_kwargs)

    buckets = {phase: 0.0 for phase in PHASES}
    t0 = wallclock.perf()
    reference = ReplayEngine(
        config, lambda: _TimedPolicy(factory(), buckets)
    ).run(iter(records))
    reference_seconds = wallclock.perf() - t0

    t0 = wallclock.perf()
    fast = FastReplayEngine(config, factory).run(iter(records))
    fast_seconds = wallclock.perf() - t0

    if reference.to_dict() != fast.to_dict():
        raise RuntimeError(
            f"engine mismatch profiling {abbr}/{scheme}: the fast engine "
            f"diverged from the reference — fix that before profiling"
        )

    timed = sum(buckets.values())
    buckets["other"] = max(reference_seconds - timed, 0.0)
    return PhaseProfile(
        abbr=abbr,
        scheme=scheme,
        records=len(records),
        phases=buckets,
        reference_seconds=reference_seconds,
        fast_seconds=fast_seconds,
    )
