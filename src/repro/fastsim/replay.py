"""Fast trace replay over the packed engine.

:class:`FastReplayEngine` is the drop-in counterpart of
:class:`repro.trace.replay.ReplayEngine` for ``--engine fast``: same
record streams in, bit-identical :class:`~repro.gpu.simulator.SimResult`
out.  It exploits the replay invariants the reference engine documents —
fills are immediate, so no RESERVED line survives between accesses,
pending-hit merges never occur, and the MSHR/miss queue never fill — to
run one tight loop per SM with every counter and per-line array held in
local variables, instead of building a ``MemAccess`` and walking the
object-based protocol per record.

The only stall that can occur under these invariants is
``NO_RESERVABLE_LINE`` (a protection policy with bypass disabled and a
fully protected set); it is retried in place with the same per-retry PL
decay, VTA probe accounting and stall recording as the reference,
bounded by :data:`repro.trace.replay.MAX_STALL_RETRIES`.

Records for different SMs touch disjoint caches and policy state, so the
engine buckets the stream per SM and replays each bucket monolithically;
per-SM and aggregate results are unaffected by the interleaving.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List

from repro.core.policy import StallReason
from repro.fastsim.engine import (
    INVALID,
    KIND_DLP,
    KIND_GLOBAL,
    FastL1DCache,
    PolicySpec,
    VALID,
)
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimResult
from repro.trace.format import TraceRecord
from repro.trace.replay import MAX_STALL_RETRIES, ReplayEngine, ReplayStallError
from repro.utils.hashing import hash_pc

_NO_LINE = StallReason.NO_RESERVABLE_LINE.value


class FastReplayEngine:
    """Per-SM packed caches consuming a record stream.

    Constructor-compatible with :class:`ReplayEngine` (``config`` plus a
    policy factory); the factory is invoked once to extract the
    :class:`PolicySpec` every per-SM cache shares.
    """

    def __init__(self, config: GPUConfig, policy_factory) -> None:
        self.config = config
        spec = PolicySpec.from_policy(policy_factory())
        self._insn_ids: Dict[int, int] = {}
        self.sent_fetches = 0
        self.sent_writes = 0
        l1 = config.l1d
        self.non_blocking = l1.non_blocking
        self.caches: List[FastL1DCache] = [
            FastL1DCache(
                l1.geometry(),
                spec,
                mshr_entries=l1.mshr_entries,
                mshr_merge=l1.mshr_merge,
                miss_queue_depth=l1.miss_queue_depth,
                sm_id=sm_id,
                non_blocking=l1.non_blocking,
            )
            for sm_id in range(config.num_sms)
        ]
        self.replayed_records = 0
        self.replayed_per_sm: List[int] = [0] * config.num_sms
        self._nb_outstanding = [deque() for _ in range(config.num_sms)]
        self._nb_seq: List[int] = [0] * config.num_sms

    # Non-blocking replay reuses the reference engine's generic drivers
    # verbatim (duck-typed: FastL1DCache exposes access/fill/miss_queue/
    # stats) — the windowed-fill discipline then touches the packed
    # protocol path exactly as it touches the reference one.
    access = ReplayEngine.access
    _access_blocking = ReplayEngine._access_blocking
    _access_non_blocking = ReplayEngine._access_non_blocking
    _insn_id = ReplayEngine._insn_id
    _count_send = ReplayEngine._count_send
    flush = ReplayEngine.flush

    def run(self, records: Iterable[TraceRecord]) -> SimResult:
        if self.non_blocking:
            # The fused per-SM loop below is a specialisation under the
            # immediate-fill invariants (no RESERVED survivors, no
            # merges, no resource stalls); those do not hold with fills
            # in flight, so drive the packed caches record by record.
            return ReplayEngine.run(self, records)  # type: ignore[arg-type]
        buckets: List[List[TraceRecord]] = [[] for _ in self.caches]
        for record in records:
            buckets[record[0]].append(record)
        for sm_id, bucket in enumerate(buckets):
            if bucket:
                _replay_stream(self.caches[sm_id], bucket, self._insn_ids)
            self.replayed_per_sm[sm_id] += len(bucket)
            self.replayed_records += len(bucket)
        return self.result()

    def result(self) -> SimResult:
        # Every send in replay lands in its cache's counters (bypasses at
        # issue, queued requests at drain), so the engine-level totals the
        # reference accumulates are exactly the per-cache sums.
        self.sent_fetches = sum(c.stats.sent_fetches for c in self.caches)
        self.sent_writes = sum(c.stats.sent_writes for c in self.caches)
        # Duck-typed reuse of the reference aggregation: self.caches
        # expose .stats and .policy.stats(), which is all it reads —
        # guaranteeing the assembled SimResult matches field for field.
        return ReplayEngine.result(self)  # type: ignore[arg-type]


def _replay_stream(
    cache: FastL1DCache,
    records: List[TraceRecord],
    insn_ids: Dict[int, int],
) -> None:
    """Replay one SM's record bucket through its packed cache.

    The whole cache/policy state is aliased into locals for the duration
    of the loop and written back at the end; the flow is the reference
    protocol specialised under the immediate-fill invariants (no
    RESERVED survivors, no merges, no resource stalls).
    """
    # -- per-line arrays and geometry ----------------------------------
    st, blk, lru = cache._st, cache._blk, cache._lru
    iid_arr, pli = cache._iid, cache._pli
    assoc = cache._assoc
    num_sets = cache._num_sets
    mask = num_sets - 1
    bits = mask.bit_length()
    linear = cache.geometry.index_fn == "linear" or bits == 0
    stamp = cache._stamp
    # Reusable per-set way ranges (avoids one range() allocation per scan).
    set_ways = [range(s * assoc, (s + 1) * assoc) for s in range(num_sets)]

    kind = cache._kind
    protected = cache._protected
    bypass_enabled = cache._bypass_enabled
    pl_max = cache._pl_max
    sm_id = cache.sm_id

    # -- VTA -----------------------------------------------------------
    vta_assoc = cache._vta_assoc
    vvalid, vblk, viid, vlru = (
        cache._vta_valid, cache._vta_blk, cache._vta_iid, cache._vta_lru,
    )
    vta_ways = (
        [range(s * vta_assoc, (s + 1) * vta_assoc) for s in range(num_sets)]
        if protected else []
    )
    vstamp = cache._vta_stamp
    vta_hits = cache._vta_hit_count
    vta_inserts = cache._vta_insert_count
    vta_probes = cache._vta_probe_count

    # -- PDPT / Global-Protection / sampler ----------------------------
    pdpt_n = cache._pdpt_n
    pdt, pdv, pdl, pdu = cache._pdt, cache._pdv, cache._pdl, cache._pdu
    tda_max, vta_max = cache._tda_hit_max, cache._vta_hit_max
    g_tda, g_vta = cache._g_tda, cache._g_vta
    gpd = cache._gpd
    gp_tda, gp_vta = cache._gp_tda, cache._gp_vta
    s_acc, acc_limit = cache._acc, cache._acc_limit
    samples_completed = cache.samples_completed
    closed_accesses = cache.closed_by["accesses"]
    protected_bypasses = cache.protected_bypasses

    # -- L1D counters --------------------------------------------------
    s = cache.stats
    loads, hits, misses, bypasses = s.loads, s.hits, s.misses, s.bypasses
    stores, write_hits, write_misses = s.stores, s.write_hits, s.write_misses
    write_evicts, evictions, fills = s.write_evicts, s.evictions, s.fills
    sent_fetches, sent_writes = s.sent_fetches, s.sent_writes
    stall_no_line = s.stalls.get(_NO_LINE, 0)

    hash_pc_local = hash_pc

    for record in records:
        block = record[1]
        pc = record[2]
        insn = insn_ids.get(pc)
        if insn is None:
            insn = insn_ids[pc] = hash_pc_local(pc)

        if linear:
            si = block & mask
        else:
            addr = block
            si = 0
            while addr:
                si ^= addr & mask
                addr >>= bits
        ways = set_ways[si]

        if record[3]:
            # -- write: write-through + write-evict, never stalls ------
            # One fused pass: PL decay (the set query) + VALID-match scan
            # (at most one way can match, so no early break is needed).
            stores += 1
            hitw = -1
            if protected:
                for w in ways:
                    if pli[w]:
                        pli[w] -= 1
                    if blk[w] == block and st[w] == VALID:
                        hitw = w
            else:
                for w in ways:
                    if blk[w] == block and st[w] == VALID:
                        hitw = w
                        break
            if hitw >= 0:
                st[hitw] = INVALID
                blk[hitw] = -1
                pli[hitw] = 0
                iid_arr[hitw] = 0
                write_hits += 1
                write_evicts += 1
            else:
                write_misses += 1
            sent_writes += 1  # queued and drained immediately
        else:
            # -- load: fused find + PL decay (+ victim candidates) -----
            # The reference decays every line in the set exactly once per
            # attempt on both the hit and miss paths, before any grant or
            # victim selection, so find/decay/candidate-scan fuse into a
            # single pass; victim eligibility uses post-decay PLs.  Lines
            # are never RESERVED between accesses, so any match is a hit.
            way = -1
            if protected:
                inv = -1
                cand = -1
                cstamp = 0
                for w in ways:
                    p = pli[w]
                    if p:
                        p -= 1
                        pli[w] = p
                    if st[w] == INVALID:
                        if inv < 0:
                            inv = w
                    else:
                        if blk[w] == block:
                            way = w
                        if p == 0 and (cand < 0 or lru[w] < cstamp):
                            cand = w
                            cstamp = lru[w]
            else:
                for w in ways:
                    if blk[w] == block and st[w] != INVALID:
                        way = w
                        break
            if way >= 0:
                loads += 1
                hits += 1
                if kind == KIND_DLP:
                    i = iid_arr[way] % pdpt_n
                    if pdt[i] < tda_max:
                        pdt[i] += 1
                    pdu[i] = True
                    g_tda += 1
                    # repro-check: allow(R006) insn comes from the insn_ids
                    # memo, every value of which was produced by hash_pc and
                    # is therefore already folded to 7 bits
                    iid_arr[way] = insn
                    pd = pdl[insn % pdpt_n]
                    pli[way] = pd if pd < pl_max else pl_max
                elif kind == KIND_GLOBAL:
                    gp_tda += 1
                    pli[way] = gpd
                stamp += 1
                lru[way] = stamp
            else:
                # -- miss: probe the VTA, pick a victim; retry on stall
                retries = 0
                if protected:
                    victim = inv if inv >= 0 else cand
                else:
                    victim = -1
                    for w in ways:
                        if st[w] == INVALID:
                            victim = w
                            break
                    if victim < 0:
                        bstamp = 0
                        for w in ways:
                            if victim < 0 or lru[w] < bstamp:
                                victim = w
                                bstamp = lru[w]
                while True:
                    if protected:
                        vta_probes += 1
                        for j in vta_ways[si]:
                            if vvalid[j] and vblk[j] == block:
                                vvalid[j] = False
                                vta_hits += 1
                                if kind == KIND_DLP:
                                    i = viid[j] % pdpt_n
                                    if pdv[i] < vta_max:
                                        pdv[i] += 1
                                    pdu[i] = True
                                    g_vta += 1
                                else:
                                    gp_vta += 1
                                break
                    if victim < 0:
                        if bypass_enabled:
                            # protected bypass: no re-query, no re-probe
                            protected_bypasses += 1
                            loads += 1
                            bypasses += 1
                            sent_fetches += 1
                            break
                        stall_no_line += 1
                        retries += 1
                        if retries > MAX_STALL_RETRIES:
                            raise ReplayStallError(
                                f"SM{sm_id} access to block {block:#x} "
                                f"stalled {retries} times "
                                f"({StallReason.NO_RESERVABLE_LINE}) "
                                f"without converging"
                            )
                        # The blocked request re-queries the set: decay
                        # again, then re-select (loop top re-probes, in
                        # the reference's query -> probe -> select order).
                        cand = -1
                        cstamp = 0
                        for w in ways:
                            p = pli[w]
                            if p:
                                p -= 1
                                pli[w] = p
                            if p == 0 and (cand < 0 or lru[w] < cstamp):
                                cand = w
                                cstamp = lru[w]
                        victim = cand
                        continue
                    # evict, reserve, then the immediate drain + fill
                    if st[victim] == VALID:
                        evictions += 1
                        if protected:
                            vstamp += 1
                            evb = blk[victim]
                            if linear:
                                vsi = evb & mask
                            else:
                                addr = evb
                                vsi = 0
                                while addr:
                                    vsi ^= addr & mask
                                    addr >>= bits
                            vways = vta_ways[vsi]
                            slot = -1
                            first_invalid = -1
                            for j in vways:
                                if vvalid[j] and vblk[j] == evb:
                                    slot = j
                                    break
                                if first_invalid < 0 and not vvalid[j]:
                                    first_invalid = j
                            if slot < 0:
                                slot = first_invalid
                            if slot < 0:
                                # LRU fallback, first-wins stamp ties
                                bstamp = -1
                                for j in vways:
                                    if bstamp < 0 or vlru[j] < bstamp:
                                        bstamp = vlru[j]
                                        slot = j
                            vvalid[slot] = True
                            vblk[slot] = evb
                            viid[slot] = iid_arr[victim]
                            vlru[slot] = vstamp
                            vta_inserts += 1
                    blk[victim] = block
                    # the fill copies pending->owner
                    # repro-check: allow(R006) insn is a hash_pc-folded memo
                    # value, already 7 bits (same invariant as the hit path)
                    iid_arr[victim] = insn
                    if kind == KIND_DLP:
                        pd = pdl[insn % pdpt_n]
                        pli[victim] = pd if pd < pl_max else pl_max
                    elif kind == KIND_GLOBAL:
                        pli[victim] = gpd
                    else:
                        pli[victim] = 0
                    st[victim] = VALID
                    stamp += 2  # one stamp at reserve, one at fill
                    lru[victim] = stamp
                    loads += 1
                    misses += 1
                    sent_fetches += 1
                    fills += 1
                    break

        # -- on_access_done: sampling window (protection policies) -----
        if protected:
            s_acc += 1
            if s_acc >= acc_limit:
                samples_completed += 1
                closed_accesses += 1
                s_acc = 0
                # Run the Figure 9 update through the engine's own
                # end-of-sample path (cheap: once per 200 accesses).
                cache._g_tda, cache._g_vta = g_tda, g_vta
                cache._gp_tda, cache._gp_vta = gp_tda, gp_vta
                cache._gpd = gpd
                cache._end_sample()
                g_tda = g_vta = gp_tda = gp_vta = 0
                gpd = cache._gpd

    # -- write the locals back -----------------------------------------
    cache._stamp = stamp
    cache._vta_stamp = vstamp
    cache._vta_hit_count = vta_hits
    cache._vta_insert_count = vta_inserts
    cache._vta_probe_count = vta_probes
    cache._g_tda, cache._g_vta = g_tda, g_vta
    cache._gpd = gpd
    cache._gp_tda, cache._gp_vta = gp_tda, gp_vta
    cache._acc = s_acc
    cache.samples_completed = samples_completed
    cache.closed_by["accesses"] = closed_accesses
    cache.protected_bypasses = protected_bypasses
    s.loads, s.hits, s.misses, s.bypasses = loads, hits, misses, bypasses
    s.stores, s.write_hits, s.write_misses = stores, write_hits, write_misses
    s.write_evicts, s.evictions, s.fills = write_evicts, evictions, fills
    s.sent_fetches, s.sent_writes = sent_fetches, sent_writes
    if stall_no_line:
        s.stalls[_NO_LINE] = stall_no_line
