"""Semantics manifest: the R005 ``SIM_VERSION``-bump guard.

The result store (:mod:`repro.experiments.store`) isolates semantic
changes to the simulator behind :data:`~repro.experiments.store.SIM_VERSION`:
any change that alters what a simulation *produces* must bump it, or
stale store entries will replay silently wrong results.  Nothing used to
enforce that rule.

This module records a content hash of every ``core/`` and ``cache/``
source file together with the ``SIM_VERSION`` the hash was taken at, in
``semantics_manifest.json`` next to this file.  ``repro check`` (rule
R005) recomputes the hashes and flags:

* a changed/added/removed semantics file while ``SIM_VERSION`` is
  unchanged — the guarded mistake; bump the version, then re-baseline;
* a bumped ``SIM_VERSION`` with a stale manifest — re-baseline with
  ``repro check --update-manifest`` so the *next* change is guarded.

Pure refactors that keep results bit-identical intentionally still
require a manifest refresh (not a version bump): the differential
oracle in ``tests/oracle.py`` is the tool that proves bit-identity, and
the explicit ``--update-manifest`` step is the reviewer-visible claim
that it was run.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

#: Packages whose sources define simulation semantics for the purposes
#: of the SIM_VERSION rule: the policy/cache protocol plus the packed
#: fast engine, which re-implements that protocol and must change in
#: lockstep with it.
SEMANTIC_PACKAGES = ("core", "cache", "fastsim", "batchsim")

MANIFEST_NAME = "semantics_manifest.json"


def package_root() -> Path:
    """The installed ``repro`` package directory (``.../src/repro``)."""
    return Path(__file__).resolve().parent.parent


def manifest_path(root: Optional[Path] = None) -> Path:
    return (root or package_root()) / "check" / MANIFEST_NAME


def semantic_files(root: Optional[Path] = None) -> List[Path]:
    root = root or package_root()
    files: List[Path] = []
    for package in SEMANTIC_PACKAGES:
        files.extend(sorted((root / package).glob("*.py")))
    return files


def read_sim_version(root: Optional[Path] = None) -> str:
    """Extract ``SIM_VERSION`` from ``experiments/store.py`` via AST.

    Parsed rather than imported so ``repro check`` can inspect a broken
    tree (an import error in the store module must not hide the
    finding that caused it).
    """
    store_py = (root or package_root()) / "experiments" / "store.py"
    tree = ast.parse(store_py.read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "SIM_VERSION":
                    if isinstance(node.value, ast.Constant):
                        return str(node.value.value)
    raise RuntimeError(f"SIM_VERSION assignment not found in {store_py}")


def compute_manifest(root: Optional[Path] = None) -> Dict[str, object]:
    root = root or package_root()
    files: Dict[str, str] = {}
    for path in semantic_files(root):
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        files[path.relative_to(root).as_posix()] = digest
    return {"sim_version": read_sim_version(root), "files": files}


def load_manifest(root: Optional[Path] = None) -> Optional[Dict[str, object]]:
    path = manifest_path(root)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    if not isinstance(data, dict) or "files" not in data:
        return None
    return data


def write_manifest(root: Optional[Path] = None) -> Path:
    path = manifest_path(root)
    path.write_text(
        json.dumps(compute_manifest(root), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def diff_manifest(root: Optional[Path] = None) -> List[str]:
    """Human-readable description of every drift from the manifest.

    Empty list == manifest is current.  Used by rule R005.
    """
    root = root or package_root()
    recorded = load_manifest(root)
    if recorded is None:
        return [
            f"semantics manifest {manifest_path(root).name} is missing or "
            f"unreadable — run `repro check --update-manifest` to create it"
        ]
    current = compute_manifest(root)
    messages: List[str] = []

    old_files: Dict[str, str] = dict(recorded.get("files", {}))  # type: ignore[arg-type]
    new_files: Dict[str, str] = dict(current["files"])  # type: ignore[arg-type]
    changed = sorted(
        name
        for name in old_files.keys() | new_files.keys()
        if old_files.get(name) != new_files.get(name)
    )

    old_version = str(recorded.get("sim_version", "?"))
    new_version = str(current["sim_version"])

    if changed and old_version == new_version:
        listing = ", ".join(changed)
        messages.append(
            f"semantics changed in {listing} but SIM_VERSION is still "
            f"{new_version!r} — bump SIM_VERSION in "
            f"repro/experiments/store.py (behaviour change) or prove "
            f"bit-identity with the differential oracle, then run "
            f"`repro check --update-manifest`"
        )
    elif old_version != new_version:
        messages.append(
            f"SIM_VERSION is {new_version!r} but the semantics manifest "
            f"was recorded at {old_version!r} — run "
            f"`repro check --update-manifest` to re-baseline"
        )
    return messages
