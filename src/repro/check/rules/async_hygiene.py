"""R009 — async hygiene in the serving layer.

The service (:mod:`repro.serve`) runs one asyncio event loop; a single
blocking call inside a coroutine stalls every connected client, the
scheduler pumps, and the drain path.  Simulations stay off the loop via
``run_in_executor`` — this rule keeps it that way by flagging, inside
any ``async def`` (nested synchronous helpers excluded):

* ``time.sleep`` / ``wallclock.sleep`` — sleep the loop, not the task
  (use ``asyncio.sleep``);
* ``Future.result()`` — a ProcessPool future joined synchronously
  (await the ``run_in_executor`` wrapper instead);
* ``Executor.shutdown(...)`` without ``wait=False`` — joins every
  worker from inside the loop;
* synchronous file I/O (``open``, ``Path.read_text``/``write_text``/
  ``read_bytes``/``write_bytes``) and ``subprocess``/``os.system`` —
  unbounded disk/process latency on the loop.

Deliberate blocking (e.g. the final pool join during shutdown, where
the loop has nothing left to serve) carries an allow-marker with its
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.check.rules.base import Finding, ModuleSource, Rule, attr_chain

_SCOPED_PACKAGES = ("repro/serve/", "repro/loadtest/")

#: Dotted-call suffixes that block the loop outright.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep() sleeps the event loop — use asyncio.sleep()",
    "wallclock.sleep": (
        "wallclock.sleep() sleeps the event loop — use asyncio.sleep()"
    ),
    "os.system": "os.system() blocks the loop on a child process",
    "subprocess.run": "subprocess.run() blocks the loop on a child process",
    "subprocess.call": "subprocess.call() blocks the loop on a child process",
    "subprocess.check_output": (
        "subprocess.check_output() blocks the loop on a child process"
    ),
}

#: Method names that are synchronous file I/O wherever they appear.
_BLOCKING_METHODS = {
    "read_text": "synchronous file read blocks the loop",
    "write_text": "synchronous file write blocks the loop",
    "read_bytes": "synchronous file read blocks the loop",
    "write_bytes": "synchronous file write blocks the loop",
}


class AsyncHygieneRule(Rule):
    rule_id = "R009"
    title = "blocking call inside a coroutine"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.relpath.startswith(_SCOPED_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(module, node)

    def _check_coroutine(
        self, module: ModuleSource, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # manual walk: skip nested *synchronous* defs (they run wherever
        # they are called, commonly handed to run_in_executor); nested
        # async defs are found by the outer ast.walk
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield from self._check_call(module, func.name, node)
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(
        self, module: ModuleSource, coroutine: str, call: ast.Call
    ) -> Iterator[Finding]:
        chain = attr_chain(call.func)
        if chain is not None:
            for suffix, why in _BLOCKING_CALLS.items():
                if chain == suffix or chain.endswith("." + suffix):
                    yield self.finding(
                        module,
                        call,
                        f"coroutine {coroutine!r}: {why}",
                    )
                    return
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            yield self.finding(
                module,
                call,
                f"coroutine {coroutine!r}: open() is synchronous file I/O "
                f"on the event loop — do it in the executor",
            )
            return
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr == "result" and not call.args:
                yield self.finding(
                    module,
                    call,
                    f"coroutine {coroutine!r}: .result() joins a future "
                    f"synchronously — await the run_in_executor wrapper",
                )
                return
            if attr == "shutdown" and not _waits_false(call):
                yield self.finding(
                    module,
                    call,
                    f"coroutine {coroutine!r}: .shutdown() joins worker "
                    f"processes on the event loop — pass wait=False or "
                    f"move the join off the loop",
                )
                return
            why = _BLOCKING_METHODS.get(attr)
            if why is not None:
                yield self.finding(
                    module, call, f"coroutine {coroutine!r}: {why}"
                )


def _waits_false(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "wait":
            return isinstance(keyword.value, ast.Constant) and (
                keyword.value.value is False
            )
    return False
