"""R004 — mutable-default-arg and cross-process shared-state hazards.

The sweep executor ships cells to worker processes; the trace subsystem
records and replays across invocations.  Two Python idioms silently
break both:

* **Mutable default arguments** — one shared object across every call
  in a process, and a *different* shared object in every worker: the
  classic source of results that depend on submission order.
* **Module-global mutation** (a ``global`` statement) in the packages
  whose functions run inside workers (``experiments/``, ``trace/``) —
  each worker holds its own copy of module state, so updates made in
  the parent are invisible to workers and vice versa.

Deliberate, process-local designs (the runner's swappable executor
backend) mark the line with ``# repro-check: allow(R004)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules.base import Finding, ModuleSource, Rule

#: Packages whose module state crosses the ProcessPool boundary.
_WORKER_PACKAGES = ("repro/experiments/", "repro/trace/")

_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque", "defaultdict"}


class ProcessHazardRule(Rule):
    rule_id = "R004"
    title = "mutable defaults / cross-process shared state"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        in_worker_package = any(p in module.relpath for p in _WORKER_PACKAGES)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                yield from self._check_defaults(module, node)
            elif isinstance(node, ast.Global) and in_worker_package:
                names = ", ".join(node.names)
                yield self.finding(
                    module,
                    node,
                    f"`global {names}` in a module that runs inside sweep "
                    f"workers — per-process state diverges across the "
                    f"pool; pass state explicitly or mark a deliberate "
                    f"process-local design with "
                    f"`# repro-check: allow(R004)`",
                )

    def _check_defaults(
        self, module: ModuleSource, node: ast.AST
    ) -> Iterator[Finding]:
        args = node.args  # type: ignore[attr-defined]
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable(default):
                name = getattr(node, "name", "<lambda>")
                yield self.finding(
                    module,
                    default,
                    f"mutable default argument in {name!r} is shared "
                    f"across calls (and duplicated per worker process) — "
                    f"default to None and construct inside the body",
                )


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )
