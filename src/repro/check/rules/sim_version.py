"""R005 — SIM_VERSION bump guard (semantics manifest check).

A repo-level rule, not an AST rule: compares the recorded semantics
manifest (per-file SHA-256 of everything under ``core/`` and ``cache/``
plus the ``SIM_VERSION`` it was taken at) against the working tree.
See :mod:`repro.check.manifest` for the drift taxonomy and the
``--update-manifest`` workflow.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional

from repro.check import manifest
from repro.check.rules.base import Finding, RepoRule


class SimVersionRule(RepoRule):
    rule_id = "R005"
    title = "core/cache semantics changed without a SIM_VERSION bump"

    def check_repo(self, root: Optional[Path] = None) -> Iterator[Finding]:
        pkg_root = root or manifest.package_root()
        for message in manifest.diff_manifest(pkg_root):
            yield Finding(
                rule=self.rule_id,
                path=manifest.manifest_path(pkg_root)
                .relative_to(pkg_root.parent)
                .as_posix(),
                line=1,
                col=0,
                message=message,
                snippet="",
            )
