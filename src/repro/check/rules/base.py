"""Shared plumbing for ``repro check`` lint rules."""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix path relative to the package parent (``repro/...``)
    line: int
    col: int
    message: str
    snippet: str = ""

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression.

        Deliberately excludes the line number so a baseline survives
        unrelated edits above the finding; two identical snippets in one
        file share a fingerprint (suppressing one suppresses both).
        """
        text = "\0".join((self.rule, self.path, " ".join(self.snippet.split())))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


class ModuleSource:
    """One parsed source file handed to every AST rule."""

    def __init__(self, relpath: str, text: str, path: Optional[Path] = None) -> None:
        self.relpath = relpath
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=relpath)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class: one rule id, one ``check`` generator over a module."""

    rule_id = "R000"
    title = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=lineno,
            col=col,
            message=message,
            snippet=module.line_at(lineno),
        )


class RepoRule:
    """Base class for repo-level rules: one ``check_repo`` over the
    package tree instead of a per-file ``check``."""

    rule_id = "R000"
    title = ""

    def check_repo(self, root: Optional[Path] = None) -> Iterator[Finding]:
        raise NotImplementedError


def walk_with_ancestors(tree: ast.AST) -> Iterator[tuple[ast.AST, List[ast.AST]]]:
    """Depth-first walk yielding ``(node, ancestors)`` pairs."""
    stack: List[tuple[ast.AST, List[ast.AST]]] = [(tree, [])]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestors = ancestors + [node]
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_ancestors))


def attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain (``np.random.seed``) or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Attribute names of modeled hardware bit-fields — the write targets
#: rules R002/R003 protect.  Global (program-level) hit accumulators are
#: deliberately absent: they are kept unbounded so per-entry saturation
#: cannot distort the Figure 9 global comparison.
HW_FIELD_NAMES = frozenset(
    {
        "pd",  # PdptEntry.pd (4-bit Protection Distance)
        "protected_life",  # CacheLine.protected_life (4-bit PL)
        "tda_hits",  # PdptEntry.tda_hits (8-bit saturating)
        "vta_hits",  # PdptEntry.vta_hits (10-bit saturating)
        "insn_id",  # CacheLine/VictimEntry/PdptEntry (7-bit hashed iid)
        "pending_insn_id",  # CacheLine (7-bit)
        "first_insn_id",  # MshrEntry (7-bit)
        "global_pd",  # GlobalProtectionPolicy (4-bit)
    }
)
