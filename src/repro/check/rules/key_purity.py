"""R008 — store-key purity.

Every content address in the system (cell fingerprints, trace keys,
replay keys, job addresses) must be a pure, canonical function of the
*semantics* of the work.  Two laws came out of PRs 5-7 and live in this
rule rather than in test convention:

* ``engine`` never contributes to a key — the packed engine is proven
  bit-identical to the reference, so either engine must warm the
  other's store; and
* ``non_blocking`` contributes **only when on** — every blocking-mode
  key predating PR 6 must stay byte-identical, so the field is added
  under a guard and dropped when false.

The rule walks every key-builder function (``key``, ``fingerprint``,
``*_key``, ``*_fingerprint``, ``canonical_json``) in the store-facing
packages and rejects:

* any read of ``engine`` (name or attribute) — engine-dependent keys;
* an unconditional ``"non_blocking"`` dict entry — breaks the
  byte-compatibility law above;
* ``json.dumps`` without ``sort_keys=True`` — non-canonical
  serialization (dict order leaks into the address);
* ``id(...)`` / ``os.getpid()`` — process-lifetime values
  (``hash()`` randomization is already R001's finding).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.check.rules.base import (
    Finding,
    ModuleSource,
    Rule,
    attr_chain,
)

_SCOPED_PACKAGES = (
    "repro/experiments/",
    "repro/serve/",
    "repro/trace/",
    "repro/predict/",
)

_KEY_BUILDER_NAMES = ("key", "fingerprint", "canonical_json")
_KEY_BUILDER_SUFFIXES = ("_key", "_fingerprint")

_PROCESS_LIFETIME_CALLS = {"id": "id()", "os.getpid": "os.getpid()"}


def is_key_builder(name: str) -> bool:
    if name.startswith("__"):
        return False
    return name in _KEY_BUILDER_NAMES or name.endswith(_KEY_BUILDER_SUFFIXES)


class KeyPurityRule(Rule):
    rule_id = "R008"
    title = "impure or non-canonical store-key contributor"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.relpath.startswith(_SCOPED_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_key_builder(node.name):
                    yield from self._check_builder(module, node)

    def _check_builder(
        self, module: ModuleSource, func: ast.AST
    ) -> Iterator[Finding]:
        name = func.name  # type: ignore[attr-defined]
        # manual walk so nested defs keep the builder attribution and
        # guard ancestry stays available for the non_blocking check
        stack: List[tuple] = [(child, []) for child in ast.iter_child_nodes(func)]
        while stack:
            node, ancestors = stack.pop()
            yield from self._check_node(module, name, node, ancestors)
            stack.extend(
                (child, ancestors + [node])
                for child in ast.iter_child_nodes(node)
            )

    def _check_node(
        self,
        module: ModuleSource,
        builder: str,
        node: ast.AST,
        ancestors: List[ast.AST],
    ) -> Iterator[Finding]:
        # (a) engine-dependent keys
        if isinstance(node, ast.Name) and node.id == "engine" and isinstance(
            node.ctx, ast.Load
        ):
            yield self.finding(
                module,
                node,
                f"key builder {builder!r} reads `engine` — engines are "
                f"bit-identical and must share store entries; keys must "
                f"not depend on the engine",
            )
        elif isinstance(node, ast.Attribute) and node.attr == "engine" and (
            isinstance(node.ctx, ast.Load)
        ):
            yield self.finding(
                module,
                node,
                f"key builder {builder!r} reads `.engine` — engines are "
                f"bit-identical and must share store entries; keys must "
                f"not depend on the engine",
            )
        # (b) unconditional non_blocking key entry
        if _stores_non_blocking(node) and not _guarded_by_non_blocking(ancestors):
            yield self.finding(
                module,
                node,
                f"key builder {builder!r} adds 'non_blocking' "
                f"unconditionally — blocking-mode keys must stay "
                f"byte-identical; add it only when the mode is on",
            )
        # (c) non-canonical serialization
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain is not None and chain.endswith("json.dumps"):
                if not _has_true_keyword(node, "sort_keys"):
                    yield self.finding(
                        module,
                        node,
                        f"key builder {builder!r} serializes with "
                        f"json.dumps(...) without sort_keys=True — dict "
                        f"order would leak into the content address",
                    )
            # (d) process-lifetime values
            if chain in _PROCESS_LIFETIME_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"key builder {builder!r} calls "
                    f"{_PROCESS_LIFETIME_CALLS[chain]} — process-lifetime "
                    f"values must never reach a content address",
                )


def _stores_non_blocking(node: ast.AST) -> bool:
    """A ``"non_blocking"`` dict-literal key, or a store through
    ``x["non_blocking"]``."""
    if isinstance(node, ast.Dict):
        for key in node.keys:
            if isinstance(key, ast.Constant) and key.value == "non_blocking":
                return True
        return False
    if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
        sl = node.slice
        return isinstance(sl, ast.Constant) and sl.value == "non_blocking"
    return False


def _guarded_by_non_blocking(ancestors: List[ast.AST]) -> bool:
    """Is the store under an ``if``/conditional whose test mentions the
    mode?  (``if self.non_blocking:``, ``if cfg.get("non_blocking"):``)"""
    for ancestor in ancestors:
        test = getattr(ancestor, "test", None)
        if isinstance(ancestor, (ast.If, ast.IfExp)) and test is not None:
            if "non_blocking" in ast.unparse(test):
                return True
    return False


def _has_true_keyword(call: ast.Call, name: str) -> bool:
    for keyword in call.keywords:
        if keyword.arg == name:
            return isinstance(keyword.value, ast.Constant) and (
                keyword.value.value is True
            )
    return False
