"""Rule registry for ``repro check``.

AST rules implement ``check(module)`` over one parsed file; repo rules
implement ``check_repo(root)`` over the package tree.  Both produce
:class:`~repro.check.rules.base.Finding` streams the linter engine
deduplicates, baseline-filters and renders.
"""

from __future__ import annotations

from typing import List

from repro.check.rules.base import (
    HW_FIELD_NAMES,
    Finding,
    ModuleSource,
    RepoRule,
    Rule,
)
from repro.check.rules.async_hygiene import AsyncHygieneRule
from repro.check.rules.bit_widths import BitWidthProofRule
from repro.check.rules.bitfield_masking import BitfieldMaskingRule
from repro.check.rules.engine_parity import EngineParityRule, OverrideGuardRule
from repro.check.rules.float_contamination import FloatContaminationRule
from repro.check.rules.key_purity import KeyPurityRule
from repro.check.rules.nondeterminism import NondeterminismRule
from repro.check.rules.process_hazards import ProcessHazardRule
from repro.check.rules.sim_version import SimVersionRule


def ast_rules() -> List[Rule]:
    """Fresh instances of every per-file AST rule, in rule-id order."""
    return [
        NondeterminismRule(),
        FloatContaminationRule(),
        BitfieldMaskingRule(),
        ProcessHazardRule(),
        BitWidthProofRule(),
        OverrideGuardRule(),
        KeyPurityRule(),
        AsyncHygieneRule(),
    ]


def repo_rules() -> List[RepoRule]:
    """Fresh instances of every repo-level rule."""
    return [SimVersionRule(), EngineParityRule()]


__all__ = [
    "Finding",
    "ModuleSource",
    "Rule",
    "RepoRule",
    "HW_FIELD_NAMES",
    "ast_rules",
    "repo_rules",
    "NondeterminismRule",
    "FloatContaminationRule",
    "BitfieldMaskingRule",
    "ProcessHazardRule",
    "BitWidthProofRule",
    "OverrideGuardRule",
    "KeyPurityRule",
    "AsyncHygieneRule",
    "SimVersionRule",
    "EngineParityRule",
]
