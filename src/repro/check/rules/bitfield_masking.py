"""R003 — unmasked arithmetic on declared bit-fields.

The paper's fields are narrow: 4-bit PL/PD, 7-bit instruction IDs,
8/10-bit saturating hit counters.  Any arithmetic written into one of
them must be clamped (``min``/``max``), masked (``& mask``, ``%``), or
guarded by a comparison on the same field (the hardware saturation
idiom ``if x < max: x += 1``).  An unguarded ``entry.pd += delta``
models a register that silently grows past its width — exactly the bug
class the runtime contract layer (:mod:`repro.check.contracts`)
catches dynamically; this rule catches it statically.

Accepted as clamped/guarded:

* RHS is a top-level ``min(...)``/``max(...)`` call;
* RHS is masked at top level with ``&`` or ``%``;
* RHS is not arithmetic at all (a name, constant, attribute or call);
* the write sits under an ``if``/``while`` whose test mentions the same
  field (saturation/decay guards).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.check.rules.base import (
    HW_FIELD_NAMES,
    Finding,
    ModuleSource,
    Rule,
    walk_with_ancestors,
)

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.LShift, ast.RShift, ast.Pow)


class BitfieldMaskingRule(Rule):
    rule_id = "R003"
    title = "unmasked arithmetic on a declared bit-field"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node, ancestors in walk_with_ancestors(module.tree):
            if isinstance(node, ast.AugAssign):
                attr = _hw_attr(node.target)
                if attr is None:
                    continue
                if not isinstance(node.op, _ARITH_OPS):
                    continue  # &=, |=, %= are masking by construction
                if _guarded_by(ancestors, attr):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"unguarded `{attr} {_op_symbol(node.op)}= ...` on a "
                    f"declared bit-field — clamp with min/max, mask, or "
                    f"guard on {attr!r} before writing",
                )
            elif isinstance(node, ast.Assign):
                attrs = [a for a in map(_hw_attr, node.targets) if a]
                if not attrs:
                    continue
                attr = attrs[0]
                if _is_clamped(node.value, attr):
                    continue
                if _guarded_by(ancestors, attr):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"arithmetic assigned to bit-field {attr!r} without "
                    f"clamping — wrap in min/max, mask with & or %, or "
                    f"guard on the field's current value",
                )


def _hw_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and node.attr in HW_FIELD_NAMES:
        return node.attr
    return None


def _is_clamped(value: ast.expr, attr: str) -> bool:
    """True when the RHS cannot exceed the field by construction (for
    this rule's purposes): clamp calls, masks, or no arithmetic."""
    if isinstance(value, ast.Call):
        if isinstance(value.func, ast.Name) and value.func.id in ("min", "max"):
            return True
        return True  # opaque call: the callee owns the clamp
    if isinstance(value, ast.BinOp):
        if isinstance(value.op, (ast.BitAnd, ast.Mod)):
            return True  # masked at top level
        if isinstance(value.op, _ARITH_OPS):
            return False
        return True  # |, ^, //, @ — not width-growing idioms we police
    if isinstance(value, ast.IfExp):
        return _is_clamped(value.body, attr) and _is_clamped(value.orelse, attr)
    return True  # names, constants, attributes: no arithmetic happened


def _guarded_by(ancestors: List[ast.AST], attr: str) -> bool:
    """An enclosing if/while test that reads the same field counts as a
    saturation/decay guard (``if entry.pd: entry.pd -= 1``)."""
    for ancestor in ancestors:
        if isinstance(ancestor, (ast.If, ast.While)):
            for node in ast.walk(ancestor.test):
                if isinstance(node, ast.Attribute) and node.attr == attr:
                    return True
    return False


def _op_symbol(op: ast.operator) -> str:
    return {
        ast.Add: "+",
        ast.Sub: "-",
        ast.Mult: "*",
        ast.LShift: "<<",
        ast.RShift: ">>",
        ast.Pow: "**",
    }.get(type(op), "?")
