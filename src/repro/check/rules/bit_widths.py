"""Rule R006: statically prove bit-field writes fit their widths.

R003 pattern-matches individual arithmetic expressions; this rule runs
the abstract-interpretation value-range analyzer
(:mod:`repro.check.analysis.intervals`) over every function in the
simulation packages and reports each store into a declared hardware
field whose value interval may leave ``[0, 2**bits - 1]``.  The runtime
``REPRO_CHECK=1`` contracts remain as a backstop for code paths the
analysis cannot see (constructor calls, ablation-widened fields), but
the widths themselves are proven here, at lint time, on every path.

The field tables mirror the ``@hw_checked`` declarations (R007 keeps
them honest against the extracted parity manifest):

* scalar fields — reference-model object fields and the fast engine's
  scalar global-PD;
* packed fields — the fast engine's struct-of-arrays encodings, tracked
  through local aliases (``pdl = self._pdl``);
* bound tokens — ``*_max`` attributes that hold a field's declared
  maximum, evaluated as exact constants so clamps prove.

Sites that are correct only because of a *data* invariant the analyzer
cannot see (e.g. dict values that were all produced by ``hash_pc``)
carry ``# repro-check: allow(R006)`` markers with a justification.
"""

from __future__ import annotations

from typing import Iterator

from repro.check.analysis.intervals import FieldTable, ValueRangeAnalyzer
from repro.check.manifest import package_root
from repro.check.rules.base import Finding, ModuleSource, Rule

#: Widths of the reference model's object fields (paper Figure 8) plus
#: the fast engine's scalar global PD.  Must agree with the
#: ``@hw_checked`` declarations — R007 cross-checks.
SCALAR_FIELDS = {
    "pd": 4,
    "protected_life": 4,
    "tda_hits": 8,
    "vta_hits": 10,
    "insn_id": 7,
    "pending_insn_id": 7,
    "first_insn_id": 7,
    "global_pd": 4,
    "_gpd": 4,
}

#: Widths of the fast engine's packed arrays (element-wise).
PACKED_FIELDS = {
    "_pli": 4,
    "_iid": 7,
    "_pnd": 7,
    "_pdt": 8,
    "_pdv": 10,
    "_pdl": 4,
    "_vta_iid": 7,
}

#: Attributes/parameters that hold a field's declared maximum value.
BOUND_TOKENS = {
    "pd_max": 15,
    "pl_max": 15,
    "_pd_max": 15,
    "_pl_max": 15,
    "tda_hit_max": 255,
    "_tda_hit_max": 255,
    "vta_hit_max": 1023,
    "_vta_hit_max": 1023,
}

#: Module-level width constants resolvable by bare name.
CONST_NAMES = {
    "INSN_ID_BITS": 7,
    "TDA_HIT_BITS": 8,
    "VTA_HIT_BITS": 10,
    "PD_BITS": 4,
    "PL_BITS": 4,
    "PDPT_ENTRIES": 128,
}

#: Path fragments of the packages whose writes the rule proves.
_SCOPED_PACKAGES = ("repro/core/", "repro/cache/", "repro/fastsim/")


def default_field_table() -> FieldTable:
    return FieldTable(
        scalar_fields=dict(SCALAR_FIELDS),
        packed_fields=dict(PACKED_FIELDS),
        bound_tokens=dict(BOUND_TOKENS),
        const_names=dict(CONST_NAMES),
    )


class BitWidthProofRule(Rule):
    rule_id = "R006"
    title = "bit-field write may exceed its hardware width"

    def __init__(self) -> None:
        self._table = default_field_table()

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.relpath.startswith(_SCOPED_PACKAGES):
            return
        try:
            root = package_root()
        except Exception:  # pragma: no cover - package layout is fixed
            root = None
        analyzer = ValueRangeAnalyzer(self._table, package_root=root)
        for violation in analyzer.analyze_module(module.tree):
            yield self.finding(module, violation.node, violation.describe())
