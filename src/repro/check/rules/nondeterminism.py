"""R001 — nondeterminism outside ``repro.utils.rng``.

Sweep-oracle and trace-replay guarantees rest on one invariant: given
the same cell key, every simulation produces bit-identical results in
any process, on any worker, in any order.  Anything that samples
entropy, wall-clock time or interpreter hash state breaks that
silently, so every randomness source must flow through the seeded
streams of :mod:`repro.utils.rng`.

Flagged:

* importing ``random`` or ``secrets`` at all;
* any use of ``numpy.random`` through any import alias;
* wall-clock / entropy calls: ``time.time``, ``time.time_ns``,
  ``time.monotonic``, ``time.perf_counter``, ``os.urandom``,
  ``uuid.uuid1``/``uuid4``, ``datetime.now``/``utcnow``/``today``;
* the builtin ``hash()`` — salted per process via ``PYTHONHASHSEED``;
* iterating a ``set`` directly (``for x in set(...)``, ``list(set(...))``)
  — iteration order is hash order; wrap in ``sorted(...)`` instead.

``repro/utils/rng.py`` itself is exempt: it is the one place allowed to
touch ``numpy.random``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.check.rules.base import Finding, ModuleSource, Rule, attr_chain

_BANNED_MODULES = {"random", "secrets"}

#: ``module.attr`` calls/uses that inject entropy or wall-clock time.
_BANNED_ATTRS: Dict[Tuple[str, str], str] = {
    ("time", "time"): "wall-clock time",
    ("time", "time_ns"): "wall-clock time",
    ("time", "monotonic"): "wall-clock time",
    ("time", "monotonic_ns"): "wall-clock time",
    ("time", "perf_counter"): "wall-clock time",
    ("time", "perf_counter_ns"): "wall-clock time",
    ("os", "urandom"): "OS entropy",
    ("uuid", "uuid1"): "host/time-derived UUID",
    ("uuid", "uuid4"): "random UUID",
    ("datetime", "now"): "wall-clock time",
    ("datetime", "utcnow"): "wall-clock time",
    ("datetime", "today"): "wall-clock time",
}

#: Builtins whose call materialises a set's hash-order as a sequence.
_ORDER_SENSITIVE_CONSUMERS = {"list", "tuple", "iter", "enumerate"}

_EXEMPT_SUFFIXES = ("repro/utils/rng.py",)


class NondeterminismRule(Rule):
    rule_id = "R001"
    title = "nondeterminism outside repro.utils.rng"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.relpath.endswith(_EXEMPT_SUFFIXES):
            return
        aliases = _module_aliases(module.tree)
        for node in ast.walk(module.tree):
            yield from self._check_node(module, node, aliases)

    # -- helpers -------------------------------------------------------

    def _check_node(
        self, module: ModuleSource, node: ast.AST, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_MODULES:
                    yield self.finding(
                        module,
                        node,
                        f"import of {alias.name!r}: unseeded entropy — "
                        f"route randomness through repro.utils.rng",
                    )
        elif isinstance(node, ast.ImportFrom):
            yield from self._check_import_from(module, node)
        elif isinstance(node, ast.Attribute):
            yield from self._check_attribute(module, node, aliases)
        elif isinstance(node, ast.Call):
            yield from self._check_call(module, node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                yield self._set_order_finding(module, node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    yield self._set_order_finding(module, gen.iter)

    def _check_import_from(
        self, module: ModuleSource, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        base = (node.module or "").split(".")[0]
        if base in _BANNED_MODULES:
            yield self.finding(
                module,
                node,
                f"import from {node.module!r}: unseeded entropy — route "
                f"randomness through repro.utils.rng",
            )
            return
        for alias in node.names:
            reason = _BANNED_ATTRS.get((base, alias.name))
            if reason is not None:
                yield self.finding(
                    module,
                    node,
                    f"import of {base}.{alias.name}: {reason} is "
                    f"nondeterministic across runs",
                )
        if base == "numpy" and node.module and "random" in node.module.split("."):
            yield self.finding(
                module,
                node,
                "import from numpy.random: use repro.utils.rng."
                "DeterministicRng for seeded streams",
            )

    def _check_attribute(
        self, module: ModuleSource, node: ast.Attribute, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        chain = attr_chain(node)
        if chain is None:
            return
        parts = chain.split(".")
        root = aliases.get(parts[0], parts[0])
        # numpy.random.* through any alias (np.random.default_rng, ...)
        if root == "numpy" and len(parts) >= 2 and parts[1] == "random":
            yield self.finding(
                module,
                node,
                f"use of {chain}: global numpy RNG — use "
                f"repro.utils.rng.DeterministicRng instead",
            )
            return
        if len(parts) == 2:
            reason = _BANNED_ATTRS.get((root, parts[1]))
            if reason is not None:
                yield self.finding(
                    module,
                    node,
                    f"use of {chain}: {reason} is nondeterministic "
                    f"across runs",
                )

    def _check_call(
        self, module: ModuleSource, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "hash":
                yield self.finding(
                    module,
                    node,
                    "builtin hash(): salted per process via PYTHONHASHSEED"
                    " — use repro.utils.hashing (fnv1a_32/hash_pc)",
                )
            elif func.id in _ORDER_SENSITIVE_CONSUMERS and node.args:
                if _is_set_expr(node.args[0]):
                    yield self._set_order_finding(module, node.args[0])

    def _set_order_finding(self, module: ModuleSource, node: ast.AST) -> Finding:
        return self.finding(
            module,
            node,
            "iteration over a set materialises hash order — wrap in "
            "sorted(...) for a stable order",
        )


def _module_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map import aliases to their root module (``np`` -> ``numpy``)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                aliases[(alias.asname or alias.name).split(".")[0]] = root
    return aliases


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
    )
