"""R007 — reference/fastsim engine parity.

Two pieces, one rule id:

* :class:`OverrideGuardRule` (AST, per-file) — fires on any Optional-knob
  fallback selected by truthiness instead of ``is not None``.  This is
  the exact shape of the historical nasc bug: ``nasc or vta_assoc``
  silently turns the valid ablation value ``nasc=0`` into
  ``vta_assoc``, freezing nothing.  The rule is scoped to the policy
  packages (``core/``, ``fastsim/``) where these knobs live.

* :class:`EngineParityRule` (repo-level) — extracts knob defaults,
  override-guard styles, width-constant usage and ``@hw_checked``
  declarations from both engines (:mod:`repro.check.analysis.parity`),
  enforces the cross-engine laws (defaults equal on all three surfaces,
  constants imported not redefined, one width per hardware field, every
  packed array backed by a declared field), verifies the packed-array
  width table used by R006 against the extracted declarations, and
  finally diffs the extraction against the committed
  ``parity_manifest.json`` so any intentional change is a
  reviewer-visible ``repro check --update-parity`` refresh.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from repro.check.analysis import parity
from repro.check.manifest import package_root
from repro.check.rules.base import Finding, ModuleSource, RepoRule, Rule

_SCOPED_PACKAGES = ("repro/core/", "repro/fastsim/")

_STYLE_HINTS = {
    "or_truthiness": (
        "uses `or` truthiness — an explicit 0 override is dropped "
        "(the historical nasc bug); use `x if x is not None else fallback`"
    ),
    "truthiness": (
        "uses bare truthiness — an explicit 0 override is dropped "
        "(the historical nasc bug); test `is not None` instead"
    ),
}


class OverrideGuardRule(Rule):
    rule_id = "R007"
    title = "Optional-knob fallback guard drops explicit zero overrides"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.relpath.startswith(_SCOPED_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.IfExp, ast.BoolOp)):
                continue
            hit = parity.classify_guard(node)
            if hit is None:
                continue
            knob, style = hit
            hint = _STYLE_HINTS.get(style)
            if hint is None:
                continue
            yield self.finding(
                module, node, f"override fallback for {knob!r} {hint}"
            )


class EngineParityRule(RepoRule):
    rule_id = "R007"
    title = "reference/fastsim policy surface drift"

    def check_repo(self, root: Optional[Path] = None) -> Iterator[Finding]:
        pkg_root = root or package_root()
        current = parity.compute_parity(pkg_root)
        manifest_rel = (
            parity.parity_path(pkg_root).relative_to(pkg_root.parent).as_posix()
        )
        messages = parity.check_consistency(current)
        messages.extend(self._width_table_problems(current))
        messages.extend(
            parity.diff_parity(parity.load_parity(pkg_root), current)
        )
        for message in messages:
            yield Finding(
                rule=self.rule_id,
                path=manifest_rel,
                line=1,
                col=0,
                message=message,
                snippet="",
            )

    @staticmethod
    def _width_table_problems(current: dict) -> Iterator[str]:
        """R006's packed/scalar width tables must match the extracted
        ``@hw_checked`` declarations — a width changed in the contracts
        but not in the static tables would silently weaken the proof."""
        # imported here: bit_widths imports the analysis package too and
        # rule modules load before the registry ties them together
        from repro.check.rules.bit_widths import PACKED_FIELDS, SCALAR_FIELDS

        declared: dict = {}
        hw_widths = current.get("hw_widths", {})
        if isinstance(hw_widths, dict):
            for fields in hw_widths.values():
                if isinstance(fields, dict):
                    declared.update(fields)
        correspondence = current.get("packed_correspondence", {})
        if isinstance(correspondence, dict):
            for packed, ref_field in sorted(correspondence.items()):
                if packed == "_gpd":
                    table_bits = SCALAR_FIELDS.get(packed)
                else:
                    table_bits = PACKED_FIELDS.get(packed)
                hw_bits = declared.get(ref_field)
                if table_bits is None:
                    yield (
                        f"packed array {packed!r} has no width in the R006 "
                        f"field table — add it so its writes are proven"
                    )
                elif hw_bits is not None and table_bits != hw_bits:
                    yield (
                        f"R006 width table says {packed!r} is "
                        f"{table_bits}-bit but its reference field "
                        f"{ref_field!r} is declared @hw_checked "
                        f"{hw_bits}-bit — update rules/bit_widths.py"
                    )
        for field_name, hw_bits in sorted(declared.items()):
            table_bits = SCALAR_FIELDS.get(field_name)
            if table_bits is not None and table_bits != hw_bits:
                yield (
                    f"R006 width table says field {field_name!r} is "
                    f"{table_bits}-bit but @hw_checked declares "
                    f"{hw_bits}-bit — update rules/bit_widths.py"
                )
