"""R002 — float contamination of integer hardware counters.

Every modeled hardware field (see
:data:`repro.check.rules.base.HW_FIELD_NAMES`) is an unsigned integer
register.  A single true division or float literal reaching one of them
turns exact counter comparisons into epsilon comparisons and breaks
bit-identical replay.  The Figure 9 flow exists precisely to avoid a
divider — shift-based step comparison (``nasc >> 1``) instead of
``nasc / 2``.

Flagged: any assignment (plain or augmented) to a hardware field whose
right-hand side contains a float literal, a true division ``/``, or a
``float(...)`` call.  ``//``, ``>>`` and ``&`` are the hardware-honest
spellings and pass.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.check.rules.base import (
    HW_FIELD_NAMES,
    Finding,
    ModuleSource,
    Rule,
)


class FloatContaminationRule(Rule):
    rule_id = "R002"
    title = "float contamination of integer hardware counters"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            target_attr: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if _hw_attr(target):
                        target_attr = _hw_attr(target)
                value = node.value
            elif isinstance(node, ast.AugAssign):
                target_attr = _hw_attr(node.target)
                value = node.value
                if target_attr and isinstance(node.op, ast.Div):
                    yield self.finding(
                        module,
                        node,
                        f"true division written into integer field "
                        f"{target_attr!r} — use a shift or //",
                    )
                    continue
            if target_attr is None or value is None:
                continue
            reason = _float_taint(value)
            if reason is not None:
                yield self.finding(
                    module,
                    node,
                    f"{reason} written into integer hardware field "
                    f"{target_attr!r} — hardware counters hold ints; "
                    f"use shifts, // or explicit masking",
                )


def _hw_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and node.attr in HW_FIELD_NAMES:
        return node.attr
    return None


def _float_taint(value: ast.expr) -> Optional[str]:
    for node in ast.walk(value):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"float literal {node.value!r}"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return "true division (/)"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            return "float(...) conversion"
    return None
