"""Runtime hardware bit-width contracts.

The paper fixes the width of every structure it adds to the L1D (Fig. 8):
a 7-bit hashed instruction ID, a 4-bit Protected Life / Protection
Distance, an 8-bit TDA-hit counter and a 10-bit VTA-hit counter.  A
Python model that quietly lets a 4-bit field hold the value 37
reproduces nothing, so the modeled structures declare their widths with
:func:`hw_checked` and this module enforces them:

* disabled (the default, ``REPRO_CHECK`` unset): ``hw_checked`` returns
  the class unchanged — **zero** runtime overhead, not even a branch;
* enabled (``REPRO_CHECK=1``): every declared field becomes a data
  descriptor that rejects non-integer values and any write outside
  ``[0, 2**width - 1]`` with :class:`HardwareContractViolation`.

Structures with configurable widths (the ablation knobs ``pd_bits``,
``tda_hit_bits``, ...) widen individual instances with
:func:`set_field_width`; the declared width stays the paper's default.

Because enablement is decided at class-decoration (import) time, tests
use :func:`instrument` to build a force-checked subclass on demand
instead of mutating the environment.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Iterator, Mapping, Type, TypeVar

_T = TypeVar("_T")

#: Environment variable gating enforcement.  Unset, empty or ``"0"``
#: disables contracts entirely; any other value enables them.
CHECK_ENV_VAR = "REPRO_CHECK"


class HardwareContractViolation(Exception):
    """A modeled hardware field was written outside its declared contract."""


def contracts_enabled() -> bool:
    """True when ``REPRO_CHECK`` requests runtime contract enforcement."""
    return os.environ.get(CHECK_ENV_VAR, "") not in ("", "0")


class FieldContract:
    """Base declaration: an unsigned field of ``width`` bits."""

    kind = "bit-field"

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError(f"field width must be positive, got {width}")
        self.width = width

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.width})"


class BitField(FieldContract):
    """A plain unsigned field: writes must already be clamped/masked to
    ``width`` bits (PL, PD, instruction IDs)."""

    kind = "bit-field"


class SaturatingCounter(FieldContract):
    """A counter that hardware saturates at ``2**width - 1``.  The model
    must perform the saturation *before* writing — an overflowing write
    is a missing saturation guard, not a wrap."""

    kind = "saturating counter"


class CheckedField:
    """Data descriptor enforcing one :class:`FieldContract` on writes.

    Values are stored in the instance ``__dict__`` under the field name;
    a per-instance width override (see :func:`set_field_width`) is
    stored under ``width_key``.
    """

    __slots__ = ("name", "width_key", "contract")

    def __init__(self, name: str, contract: FieldContract) -> None:
        self.name = name
        self.width_key = f"__hw_width_{name}"
        self.contract = contract

    def __get__(self, obj: Any, owner: Any = None) -> Any:
        if obj is None:
            return self
        try:
            return obj.__dict__[self.name]
        except KeyError:
            raise AttributeError(self.name) from None

    def __set__(self, obj: Any, value: Any) -> None:
        contract = self.contract
        if isinstance(value, bool):
            raise HardwareContractViolation(
                f"{type(obj).__name__}.{self.name}: boolean written to a "
                f"{contract.width}-bit {contract.kind}"
            )
        try:
            as_int = value.__index__()
        except AttributeError:
            raise HardwareContractViolation(
                f"{type(obj).__name__}.{self.name}: non-integer "
                f"{type(value).__name__} value {value!r} written to a "
                f"{contract.width}-bit {contract.kind} (float contamination?)"
            ) from None
        width = obj.__dict__.get(self.width_key, contract.width)
        if as_int < 0 or as_int >> width:
            raise HardwareContractViolation(
                f"{type(obj).__name__}.{self.name}: value {as_int} outside "
                f"the {width}-bit {contract.kind} range "
                f"[0, {(1 << width) - 1}] — a write bypassed "
                f"clamping/saturation"
            )
        obj.__dict__[self.name] = value


def _validate_spec(spec: Mapping[str, FieldContract]) -> None:
    for name, contract in spec.items():
        if not isinstance(contract, FieldContract):
            raise TypeError(
                f"hw_checked field {name!r} needs a BitField/"
                f"SaturatingCounter, got {contract!r}"
            )


def _install(cls: type, spec: Mapping[str, FieldContract]) -> None:
    _validate_spec(spec)
    for name, contract in spec.items():
        setattr(cls, name, CheckedField(name, contract))


def hw_checked(**spec: FieldContract) -> Callable[[Type[_T]], Type[_T]]:
    """Class decorator declaring hardware field contracts.

    Always records the declaration on ``cls.__hw_spec__`` (so tests and
    the overhead model can introspect widths); installs the enforcing
    descriptors only when :func:`contracts_enabled` at decoration time.
    Apply *above* ``@dataclass`` so the generated ``__init__`` routes
    its assignments through the descriptors.
    """

    _validate_spec(spec)

    def decorate(cls: Type[_T]) -> Type[_T]:
        merged: Dict[str, FieldContract] = dict(getattr(cls, "__hw_spec__", {}))
        merged.update(spec)
        cls.__hw_spec__ = merged  # type: ignore[attr-defined]
        if contracts_enabled():
            _install(cls, spec)
        return cls

    return decorate


def instrument(cls: Type[_T], **overrides: FieldContract) -> Type[_T]:
    """Force-checked subclass of a ``hw_checked`` class, for tests.

    Ignores ``REPRO_CHECK``: the returned subclass always enforces the
    declared spec (plus any ``overrides``), so contract tests run in a
    default environment without reloading modules.
    """
    spec: Dict[str, FieldContract] = dict(getattr(cls, "__hw_spec__", {}))
    spec.update(overrides)
    if not spec:
        raise ValueError(
            f"{cls.__name__} declares no hardware contracts to instrument"
        )
    checked: Type[_T] = type(f"Checked{cls.__name__}", (cls,), {})
    _install(checked, spec)
    return checked


def set_field_width(obj: Any, name: str, width: int) -> None:
    """Override one field's contract width on one instance.

    Used by structures with ablation knobs (``pd_bits`` and friends)
    whose configured width differs from the paper default.  A cheap
    no-op when the class is not instrumented, so call sites need no
    ``REPRO_CHECK`` branching of their own.
    """
    if width < 1:
        raise ValueError(f"field width must be positive, got {width}")
    descriptor = getattr(type(obj), name, None)
    if isinstance(descriptor, CheckedField):
        obj.__dict__[descriptor.width_key] = width


def declared_contracts(cls: type) -> Iterator[tuple[str, FieldContract]]:
    """Iterate a class's declared ``(field, contract)`` pairs."""
    yield from getattr(cls, "__hw_spec__", {}).items()
