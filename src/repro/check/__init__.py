"""Static analysis and runtime hardware contracts (``repro check``).

The reproduction's two pillars — bit-identical trace replay and the
parallel sweep oracle — silently depend on properties nothing else
enforces: every source of nondeterminism must flow through
:mod:`repro.utils.rng`, and every modeled hardware field must respect
the paper's declared widths (7-bit hashed instruction ID, 4-bit
Protected Life, clamped PD, saturating PDPT hit counters).  This
package makes both checkable:

* :mod:`repro.check.contracts` — declarative :class:`BitField` /
  :class:`SaturatingCounter` descriptors plus the ``@hw_checked`` class
  decorator.  Zero overhead when ``REPRO_CHECK`` is unset; raises
  :class:`HardwareContractViolation` on any out-of-range or non-integer
  write when enabled.
* :mod:`repro.check.lint` — an AST linter with repo-specific rules
  (R001 nondeterminism, R002 float contamination, R003 unmasked
  bit-field arithmetic, R004 cross-process hazards, R005 missing
  ``SIM_VERSION`` bump, R006 abstract-interpretation bit-width proofs,
  R007 reference/fastsim engine parity, R008 store-key purity, R009
  async hygiene, R010 strict-mode marker hygiene), statement-scoped
  allow-markers, a baseline-suppression file, ``--strict`` mode and
  JSON/SARIF output.
* :mod:`repro.check.analysis` — the static engines behind R006/R007:
  an integer-interval abstract interpreter over the AST and the
  engine-parity extractor with its committed ``parity_manifest.json``.
* :mod:`repro.check.manifest` — the semantics manifest backing R005: a
  content hash of every ``core/`` and ``cache/`` source file, bound to
  the :data:`~repro.experiments.store.SIM_VERSION` it was recorded at.

``python -m repro check`` is the CLI front door; CI runs it with
``--strict`` plus the full test suite under ``REPRO_CHECK=1``.  The
runtime contracts are the *backstop*; the widths themselves are proven
statically by R006 at lint time.
"""

from repro.check.contracts import (
    BitField,
    HardwareContractViolation,
    SaturatingCounter,
    contracts_enabled,
    hw_checked,
    instrument,
    set_field_width,
)
from repro.check.lint import Finding, Linter, run_check

__all__ = [
    "BitField",
    "SaturatingCounter",
    "HardwareContractViolation",
    "contracts_enabled",
    "hw_checked",
    "instrument",
    "set_field_width",
    "Finding",
    "Linter",
    "run_check",
]
