"""The ``repro check`` linter engine.

Drives the rule set of :mod:`repro.check.rules` over the package
sources, applies inline ``# repro-check: allow(RXXX)`` suppressions and
an optional baseline file, and renders findings as text or JSON.

Baseline workflow
-----------------
A baseline is a JSON file of finding *fingerprints* (stable across
unrelated edits — see :meth:`~repro.check.rules.base.Finding.fingerprint`).
``repro check --baseline FILE`` suppresses every baselined finding and
fails only on new ones; ``--update-baseline`` rewrites the file from
the current findings.  The repo itself carries **no** baseline: the
tree lints clean, and the file exists for downstream forks digesting
the rules incrementally.

Inline suppression
------------------
Append ``# repro-check: allow(R004)`` (or ``allow(R001,R003)``, or
``allow(*)``) to a line to accept a deliberate design the rule cannot
see.  Use sparingly; every marker is an assertion that a human checked
the hazard.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.check import manifest
from repro.check.rules import Finding, ModuleSource, ast_rules, repo_rules

_ALLOW_RE = re.compile(r"#\s*repro-check:\s*allow\(([^)]*)\)")


class Linter:
    """Lint a source tree (default: the installed ``repro`` package)."""

    def __init__(self, package_root: Optional[Path] = None) -> None:
        self.package_root = (package_root or manifest.package_root()).resolve()
        self.ast_rules = ast_rules()
        self.repo_rules = repo_rules()

    # -- collection ----------------------------------------------------

    def python_files(self, paths: Optional[Sequence[Path]] = None) -> List[Path]:
        roots = [Path(p) for p in paths] if paths else [self.package_root]
        files: List[Path] = []
        for root in roots:
            if root.is_file():
                files.append(root)
            else:
                files.extend(sorted(root.rglob("*.py")))
        return files

    def _relpath(self, path: Path) -> str:
        resolved = path.resolve()
        base = self.package_root.parent
        try:
            return resolved.relative_to(base).as_posix()
        except ValueError:
            return resolved.as_posix()

    # -- linting -------------------------------------------------------

    def lint_source(self, text: str, relpath: str = "<source>") -> List[Finding]:
        """Lint one source string (the unit tests' entry point)."""
        try:
            module = ModuleSource(relpath, text)
        except SyntaxError as exc:
            return [
                Finding(
                    rule="R000",
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    snippet=(exc.text or "").strip(),
                )
            ]
        findings: List[Finding] = []
        for rule in self.ast_rules:
            findings.extend(rule.check(module))
        return _postprocess(findings, module)

    def lint_file(self, path: Path) -> List[Finding]:
        text = path.read_text(encoding="utf-8")
        return self.lint_source(text, self._relpath(path))

    def lint(self, paths: Optional[Sequence[Path]] = None,
             with_repo_rules: bool = True) -> List[Finding]:
        findings: List[Finding] = []
        for path in self.python_files(paths):
            findings.extend(self.lint_file(path))
        if with_repo_rules and paths is None:
            for rule in self.repo_rules:
                findings.extend(rule.check_repo(self.package_root))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings


def _postprocess(findings: Iterable[Finding], module: ModuleSource) -> List[Finding]:
    """Apply inline allow-markers and collapse duplicate locations.

    Nested attribute chains report the same ``(line, col)`` more than
    once (``np.random.default_rng`` contains ``np.random``); the first
    — outermost — finding wins.
    """
    allows = _allow_markers(module)
    seen: Set[tuple] = set()
    out: List[Finding] = []
    for finding in findings:
        allowed = allows.get(finding.line, frozenset())
        if finding.rule in allowed or "*" in allowed:
            continue
        key = (finding.rule, finding.line, finding.col)
        if key in seen:
            continue
        seen.add(key)
        out.append(finding)
    return out


def _allow_markers(module: ModuleSource) -> Dict[int, frozenset]:
    markers: Dict[int, frozenset] = {}
    for lineno, line in enumerate(module.lines, start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = frozenset(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            markers[lineno] = rules
    return markers


# ----------------------------------------------------------------------
# baseline files
# ----------------------------------------------------------------------

def load_baseline(path: Optional[Path]) -> Set[str]:
    if path is None:
        return set()
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return set()
    entries = data.get("findings", []) if isinstance(data, dict) else []
    return {
        str(e["fingerprint"]) for e in entries
        if isinstance(e, dict) and "fingerprint" in e
    }


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    payload = {
        "comment": "repro check baseline — suppressed pre-existing findings",
        "findings": [
            {
                "fingerprint": f.fingerprint(),
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet,
            }
            for f in findings
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# ----------------------------------------------------------------------
# the CLI entry point's engine
# ----------------------------------------------------------------------

def run_check(
    paths: Optional[Sequence[str]] = None,
    baseline: Optional[str] = None,
    json_output: bool = False,
    update_baseline: bool = False,
    update_manifest: bool = False,
    out: Callable[[str], None] = print,
) -> int:
    """Run the full check; returns the process exit code (0 = clean)."""
    linter = Linter()

    if update_manifest:
        path = manifest.write_manifest(linter.package_root)
        out(f"semantics manifest updated: {path}")

    target_paths = [Path(p) for p in paths] if paths else None
    findings = linter.lint(target_paths)

    if update_baseline:
        if baseline is None:
            out("error: --update-baseline needs --baseline FILE", )
            return 2
        write_baseline(Path(baseline), findings)
        out(f"baseline updated: {baseline} ({len(findings)} findings recorded)")
        return 0

    known = load_baseline(Path(baseline) if baseline else None)
    new = [f for f in findings if f.fingerprint() not in known]
    suppressed = len(findings) - len(new)

    if json_output:
        out(json.dumps(
            {
                "findings": [f.to_dict() for f in new],
                "suppressed": suppressed,
                "checked_rules": sorted(
                    {r.rule_id for r in linter.ast_rules}
                    | {r.rule_id for r in linter.repo_rules}
                ),
            },
            indent=2,
            sort_keys=True,
        ))
    else:
        for finding in new:
            out(finding.format())
        summary = f"repro check: {len(new)} finding(s)"
        if suppressed:
            summary += f", {suppressed} baseline-suppressed"
        out(summary)

    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - debugging aid
    sys.exit(run_check())
