"""The ``repro check`` linter engine.

Drives the rule set of :mod:`repro.check.rules` over the package
sources, applies inline ``# repro-check: allow(RXXX)`` suppressions and
an optional baseline file, and renders findings as text, JSON or SARIF.

Baseline workflow
-----------------
A baseline is a JSON file of finding *fingerprints* (stable across
unrelated edits — see :meth:`~repro.check.rules.base.Finding.fingerprint`).
``repro check --baseline FILE`` suppresses every baselined finding and
fails only on new ones; ``--update-baseline`` rewrites the file from
the current findings.  The repo itself carries **no** baseline: the
tree lints clean, and the file exists for downstream forks digesting
the rules incrementally.

Inline suppression
------------------
Append ``# repro-check: allow(R004)`` (or ``allow(R001,R003)``, or
``allow(*)``) to accept a deliberate design the rule cannot see, with a
one-line justification after the closing paren.  A marker applies to
the whole statement it annotates: trailing on any physical line of a
multi-line statement, on a decorator line of the ``def``/``class`` it
decorates, or on a standalone comment line directly above the
statement.  Markers are recognized only in real comments (a docstring
that *mentions* the syntax is not a suppression), and several markers
may share a line.

Strict mode
-----------
``repro check --strict`` refuses a baseline (nothing may hide behind
one) and turns marker hygiene into findings (rule R010): a marker that
suppressed nothing is dead and must be removed; a marker without a
justification is an unreviewable assertion.
"""

from __future__ import annotations

import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.check import manifest
from repro.check.analysis import parity
from repro.check.rules import Finding, ModuleSource, ast_rules, repo_rules

_ALLOW_RE = re.compile(r"#\s*repro-check:\s*allow\(([^)]*)\)")


@dataclass
class AllowMarker:
    """One inline suppression, tracked for strict-mode hygiene."""

    path: str
    line: int  # line the marker text is on
    anchor: int  # anchor line of the statement it applies to
    rules: frozenset
    justification: str
    snippet: str
    used: bool = field(default=False, compare=False)

    def covers(self, rule: str) -> bool:
        return rule in self.rules or "*" in self.rules


class Linter:
    """Lint a source tree (default: the installed ``repro`` package)."""

    def __init__(self, package_root: Optional[Path] = None) -> None:
        self.package_root = (package_root or manifest.package_root()).resolve()
        self.ast_rules = ast_rules()
        self.repo_rules = repo_rules()
        #: Every allow-marker seen by this instance's lint_* calls, with
        #: usage recorded — the strict mode's R010 input.
        self.markers: List[AllowMarker] = []

    # -- collection ----------------------------------------------------

    def python_files(self, paths: Optional[Sequence[Path]] = None) -> List[Path]:
        roots = [Path(p) for p in paths] if paths else [self.package_root]
        files: List[Path] = []
        for root in roots:
            if root.is_file():
                files.append(root)
            else:
                files.extend(sorted(root.rglob("*.py")))
        return files

    def _relpath(self, path: Path) -> str:
        resolved = path.resolve()
        base = self.package_root.parent
        try:
            return resolved.relative_to(base).as_posix()
        except ValueError:
            return resolved.as_posix()

    # -- linting -------------------------------------------------------

    def lint_source(self, text: str, relpath: str = "<source>") -> List[Finding]:
        """Lint one source string (the unit tests' entry point)."""
        try:
            module = ModuleSource(relpath, text)
        except SyntaxError as exc:
            return [
                Finding(
                    rule="R000",
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    snippet=(exc.text or "").strip(),
                )
            ]
        findings: List[Finding] = []
        for rule in self.ast_rules:
            findings.extend(rule.check(module))
        return self._postprocess(findings, module)

    def lint_file(self, path: Path) -> List[Finding]:
        text = path.read_text(encoding="utf-8")
        return self.lint_source(text, self._relpath(path))

    def lint(self, paths: Optional[Sequence[Path]] = None,
             with_repo_rules: bool = True) -> List[Finding]:
        self.markers = []
        findings: List[Finding] = []
        for path in self.python_files(paths):
            findings.extend(self.lint_file(path))
        if with_repo_rules and paths is None:
            for rule in self.repo_rules:
                findings.extend(rule.check_repo(self.package_root))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    # -- suppression ----------------------------------------------------

    def _postprocess(
        self, findings: Iterable[Finding], module: ModuleSource
    ) -> List[Finding]:
        """Apply inline allow-markers and collapse duplicate locations.

        Nested attribute chains report the same ``(line, col)`` more
        than once (``np.random.default_rng`` contains ``np.random``);
        the first — outermost — finding wins.
        """
        groups = _statement_groups(module)
        markers = _collect_markers(module, groups)
        self.markers.extend(markers)
        by_anchor: Dict[int, List[AllowMarker]] = {}
        for marker in markers:
            by_anchor.setdefault(marker.anchor, []).append(marker)

        seen: Set[tuple] = set()
        out: List[Finding] = []
        for finding in findings:
            anchor = groups.get(finding.line, finding.line)
            suppressed = False
            for marker in by_anchor.get(anchor, ()):
                if marker.covers(finding.rule):
                    marker.used = True
                    suppressed = True
            if suppressed:
                continue
            key = (finding.rule, finding.line, finding.col)
            if key in seen:
                continue
            seen.add(key)
            out.append(finding)
        return out

    # -- strict-mode marker hygiene (R010) ------------------------------

    def marker_findings(self) -> List[Finding]:
        """R010 findings for the markers seen by the last lint run."""
        out: List[Finding] = []
        for marker in self.markers:
            rules = ",".join(sorted(marker.rules))
            if not marker.used:
                out.append(
                    Finding(
                        rule="R010",
                        path=marker.path,
                        line=marker.line,
                        col=0,
                        message=(
                            f"allow({rules}) marker suppresses nothing — "
                            f"remove it (dead markers hide future findings)"
                        ),
                        snippet=marker.snippet,
                    )
                )
            if not marker.justification:
                out.append(
                    Finding(
                        rule="R010",
                        path=marker.path,
                        line=marker.line,
                        col=0,
                        message=(
                            f"allow({rules}) marker has no justification — "
                            f"state why the hazard is accepted, after the "
                            f"closing paren"
                        ),
                        snippet=marker.snippet,
                    )
                )
        out.sort(key=lambda f: (f.path, f.line, f.col, f.message))
        return out


# ----------------------------------------------------------------------
# marker collection
# ----------------------------------------------------------------------

def _statement_groups(module: ModuleSource) -> Dict[int, int]:
    """Physical line -> anchor line of the statement that owns it.

    Simple statements own their whole ``lineno..end_lineno`` span;
    compound statements own only their header (up to the first body
    statement); ``def``/``class`` additionally own their decorator
    lines.  A marker anywhere in a span suppresses findings anywhere in
    the same span.
    """
    groups: Dict[int, int] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.stmt):
            continue
        body = getattr(node, "body", None)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            start = min(
                [d.lineno for d in node.decorator_list] + [node.lineno]
            )
            end = node.body[0].lineno - 1
        elif isinstance(body, list) and body:
            start = node.lineno
            end = body[0].lineno - 1
        else:
            start = node.lineno
            end = node.end_lineno or node.lineno
        for line in range(start, max(start, end) + 1):
            groups.setdefault(line, node.lineno)
    return groups


def _collect_markers(
    module: ModuleSource, groups: Dict[int, int]
) -> List[AllowMarker]:
    """Allow-markers from *comment tokens* only — a docstring quoting
    the syntax is documentation, not suppression."""
    markers: List[AllowMarker] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(module.text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return markers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        lineno = token.start[0]
        comment = token.string
        standalone = module.lines[lineno - 1].lstrip().startswith("#")
        matches = list(_ALLOW_RE.finditer(comment))
        for i, match in enumerate(matches):
            rules = frozenset(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
            if not rules:
                continue
            tail_end = (
                matches[i + 1].start() if i + 1 < len(matches)
                else len(comment)
            )
            justification = comment[match.end():tail_end].strip(" \t-—:#")
            if standalone:
                anchor = _next_statement_anchor(module, groups, lineno)
            else:
                anchor = groups.get(lineno, lineno)
            markers.append(
                AllowMarker(
                    path=module.relpath,
                    line=lineno,
                    anchor=anchor,
                    rules=rules,
                    justification=justification,
                    snippet=module.line_at(lineno),
                )
            )
    return markers


def _next_statement_anchor(
    module: ModuleSource, groups: Dict[int, int], lineno: int
) -> int:
    """A standalone-comment marker applies to the next statement."""
    for line in range(lineno + 1, len(module.lines) + 1):
        stripped = module.lines[line - 1].strip()
        if not stripped or stripped.startswith("#"):
            continue
        return groups.get(line, line)
    return lineno


# ----------------------------------------------------------------------
# baseline files
# ----------------------------------------------------------------------

def load_baseline(path: Optional[Path]) -> Set[str]:
    if path is None:
        return set()
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return set()
    entries = data.get("findings", []) if isinstance(data, dict) else []
    return {
        str(e["fingerprint"]) for e in entries
        if isinstance(e, dict) and "fingerprint" in e
    }


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    payload = {
        "comment": "repro check baseline — suppressed pre-existing findings",
        "findings": [
            {
                "fingerprint": f.fingerprint(),
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet,
            }
            for f in findings
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------

def sarif_payload(
    findings: Sequence[Finding], rule_ids: Iterable[str]
) -> Dict[str, object]:
    """Minimal SARIF 2.1.0 document for CI artifact upload."""
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": (
                            "https://example.invalid/repro/check"
                        ),
                        "rules": [
                            {"id": rule_id} for rule_id in sorted(rule_ids)
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.rule,
                        "level": "error",
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": f.path},
                                    "region": {
                                        "startLine": f.line,
                                        "startColumn": f.col + 1,
                                    },
                                }
                            }
                        ],
                        "partialFingerprints": {
                            "reproCheck/v1": f.fingerprint()
                        },
                    }
                    for f in findings
                ],
            }
        ],
    }


def write_sarif(
    path: Path, findings: Sequence[Finding], rule_ids: Iterable[str]
) -> None:
    Path(path).write_text(
        json.dumps(sarif_payload(findings, rule_ids), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )


# ----------------------------------------------------------------------
# the CLI entry point's engine
# ----------------------------------------------------------------------

def run_check(
    paths: Optional[Sequence[str]] = None,
    baseline: Optional[str] = None,
    json_output: bool = False,
    update_baseline: bool = False,
    update_manifest: bool = False,
    update_parity: bool = False,
    strict: bool = False,
    sarif: Optional[str] = None,
    out: Callable[[str], None] = print,
) -> int:
    """Run the full check; returns the process exit code (0 = clean)."""
    linter = Linter()

    if update_manifest:
        path = manifest.write_manifest(linter.package_root)
        out(f"semantics manifest updated: {path}")
    if update_parity:
        path = parity.write_parity(linter.package_root)
        out(f"parity manifest updated: {path}")

    if strict and baseline is not None:
        out("error: --strict refuses a baseline — fix or allow-mark instead")
        return 2

    target_paths = [Path(p) for p in paths] if paths else None
    findings = linter.lint(target_paths)

    if update_baseline:
        if baseline is None:
            out("error: --update-baseline needs --baseline FILE")
            return 2
        write_baseline(Path(baseline), findings)
        out(f"baseline updated: {baseline} ({len(findings)} findings recorded)")
        return 0

    known = load_baseline(Path(baseline) if baseline else None)
    new = [f for f in findings if f.fingerprint() not in known]
    suppressed = len(findings) - len(new)

    if strict:
        new.extend(linter.marker_findings())
        new.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    checked_rules = sorted(
        {r.rule_id for r in linter.ast_rules}
        | {r.rule_id for r in linter.repo_rules}
        | ({"R010"} if strict else set())
    )

    if sarif is not None:
        write_sarif(Path(sarif), new, checked_rules)

    if json_output:
        out(json.dumps(
            {
                "findings": [f.to_dict() for f in new],
                "suppressed": suppressed,
                "strict": strict,
                "checked_rules": checked_rules,
            },
            indent=2,
            sort_keys=True,
        ))
    else:
        for finding in new:
            out(finding.format())
        summary = f"repro check: {len(new)} finding(s)"
        if strict:
            summary += " [strict]"
        if suppressed:
            summary += f", {suppressed} baseline-suppressed"
        out(summary)
        if sarif is not None:
            out(f"sarif report written: {sarif}")

    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - debugging aid
    sys.exit(run_check())
