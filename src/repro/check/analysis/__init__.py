"""Static analysis engines behind the ``repro check`` verification rules.

Two engines live here, both pure-AST (no imports of the analyzed code):

* :mod:`repro.check.analysis.intervals` — an abstract-interpretation
  value-range analyzer over integer intervals.  Rule R006 drives it over
  ``repro.core``/``repro.cache``/``repro.fastsim`` to prove that every
  write into a declared hardware bit-field fits its width.
* :mod:`repro.check.analysis.parity` — AST extraction of policy knob
  defaults, override-guard styles, width constants and ``@hw_checked``
  declarations from the reference policies and the packed fast engine.
  Rule R007 compares the two sides (and a committed manifest) to catch
  reference/fastsim drift of the class that caused the historical
  ``nasc=0`` override bug.
"""

from repro.check.analysis.intervals import (
    FieldTable,
    Interval,
    ValueRangeAnalyzer,
    WidthViolation,
)
from repro.check.analysis.parity import (
    PARITY_MANIFEST_NAME,
    check_consistency,
    compute_parity,
    diff_parity,
    load_parity,
    parity_path,
    write_parity,
)

__all__ = [
    "FieldTable",
    "Interval",
    "ValueRangeAnalyzer",
    "WidthViolation",
    "PARITY_MANIFEST_NAME",
    "check_consistency",
    "compute_parity",
    "diff_parity",
    "load_parity",
    "parity_path",
    "write_parity",
]
