"""Engine-parity extraction: reference policies vs the packed fast engine.

The fast engine (:mod:`repro.fastsim`) re-implements the reference
policies (:mod:`repro.core`) with every knob, constant and override
guard *copied inline*.  The copies must track the originals exactly —
the historical ``nasc=0`` bug was precisely this class of drift: the
reference grew an ``is not None`` override guard while a truthiness
``or`` survived elsewhere, silently turning the ``nasc=0`` freeze
ablation into ``nasc=vta_assoc``.

This module extracts, by AST only (the analyzed code is never
imported):

* **knob defaults** — ``DlpPolicy.__init__`` / ``GlobalProtectionPolicy.
  __init__`` keyword defaults vs the ``PolicySpec`` dataclass field
  defaults, with ``Name`` defaults resolved through module constants and
  one level of ``repro`` imports (``pd_bits=PD_BITS`` → 4);
* **override-guard styles** — every conditional that selects between an
  Optional knob and its fallback, classified ``is_not_none`` (correct),
  ``truthiness`` (an ``A if A else B`` conditional) or ``or_truthiness``
  (``A or B``, the historical bug shape);
* **width constants** — the declared field-width constants, plus proof
  that the fast engine *imports* them from ``repro.core.pdpt`` rather
  than redefining its own copies;
* **hardware widths** — every ``@hw_checked`` declaration's resolved
  bit width, keyed by class, against which the packed arrays' declared
  correspondence is checked.

:func:`check_consistency` enforces the cross-engine laws on one
extraction; :func:`diff_parity` compares an extraction against the
committed ``parity_manifest.json`` so *any* change to this surface is a
reviewer-visible manifest refresh, exactly like the R005 semantics
manifest.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.check.manifest import package_root

PARITY_MANIFEST_NAME = "parity_manifest.json"

#: The knobs shared verbatim between the reference policies and
#: ``PolicySpec`` — defaults must be equal on all three surfaces.
SHARED_KNOBS = (
    "sample_limit",
    "insn_sample_limit",
    "vta_assoc",
    "pd_bits",
    "nasc",
    "bypass_enabled",
)

#: Optional-knob terminal names whose fallback selection must use an
#: ``is not None`` guard.  Matching is on the trailing identifier of the
#: guarded expression with leading underscores stripped and an
#: ``_override`` suffix dropped (``self._nasc_override`` → ``nasc``).
OVERRIDE_KNOBS = ("nasc", "vta_assoc")

#: Width constants the fast engine must import from the reference model,
#: never shadow with its own literals.
SHARED_CONSTANTS = ("PDPT_ENTRIES", "PD_BITS", "TDA_HIT_BITS", "VTA_HIT_BITS")

#: Packed array -> the reference ``@hw_checked`` field it encodes.  The
#: packed engine has no contract descriptors of its own; its widths are
#: *defined* to be these fields' widths.
PACKED_CORRESPONDENCE = {
    "_pli": "protected_life",
    "_iid": "insn_id",
    "_pnd": "pending_insn_id",
    "_vta_iid": "insn_id",
    "_pdt": "tda_hits",
    "_pdv": "vta_hits",
    "_pdl": "pd",
    "_gpd": "global_pd",
}

#: (relpath, class) pairs whose ``__init__`` keyword defaults form the
#: reference side of the knob table.
_REFERENCE_POLICIES = (
    ("core/dlp.py", "DlpPolicy", "reference.dlp"),
    ("core/global_protection.py", "GlobalProtectionPolicy",
     "reference.global_protection"),
)

_SPEC_FILE = "fastsim/engine.py"
_SPEC_CLASS = "PolicySpec"

#: Files scanned for ``@hw_checked`` declarations and override guards.
_SCANNED_FILES = (
    "core/pdpt.py",
    "core/vta.py",
    "core/dlp.py",
    "core/global_protection.py",
    "cache/line.py",
    "cache/mshr.py",
    "fastsim/engine.py",
    "fastsim/replay.py",
)


def parity_path(root: Optional[Path] = None) -> Path:
    return (root or package_root()) / "check" / PARITY_MANIFEST_NAME


# ----------------------------------------------------------------------
# constant resolution
# ----------------------------------------------------------------------

class _ConstantResolver:
    """Integer/bool/None constants visible in one module, including
    tuple-unpacked assignments and one level of ``repro`` imports."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self._local: Dict[Path, Dict[str, object]] = {}
        self._imports: Dict[Path, Dict[str, Tuple[str, str]]] = {}
        self._trees: Dict[Path, Optional[ast.Module]] = {}

    def tree(self, path: Path) -> Optional[ast.Module]:
        if path not in self._trees:
            try:
                self._trees[path] = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                self._trees[path] = None
        return self._trees[path]

    def _scan(self, path: Path) -> None:
        if path in self._local:
            return
        consts: Dict[str, object] = {}
        imports: Dict[str, Tuple[str, str]] = {}
        tree = self.tree(path)
        if tree is not None:
            for node in tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and isinstance(
                        node.value, ast.Constant
                    ):
                        consts[target.id] = node.value.value
                    elif isinstance(target, ast.Tuple) and isinstance(
                        node.value, ast.Tuple
                    ) and len(target.elts) == len(node.value.elts):
                        for t, v in zip(target.elts, node.value.elts):
                            if isinstance(t, ast.Name) and isinstance(
                                v, ast.Constant
                            ):
                                consts[t.id] = v.value
                elif isinstance(node, ast.ImportFrom) and node.module:
                    if node.module.split(".")[0] == "repro" and not node.level:
                        for alias in node.names:
                            imports[alias.asname or alias.name] = (
                                node.module, alias.name,
                            )
        self._local[path] = consts
        self._imports[path] = imports

    def _module_file(self, dotted: str) -> Optional[Path]:
        parts = dotted.split(".")
        if parts[0] != "repro":
            return None
        candidate = self.root.joinpath(*parts[1:]).with_suffix(".py")
        return candidate if candidate.is_file() else None

    def lookup(self, path: Path, name: str, _depth: int = 2) -> object:
        """Value of ``name`` in ``path``'s module, or the sentinel
        string ``"<unresolved:name>"``."""
        self._scan(path)
        if name in self._local[path]:
            return self._local[path][name]
        origin = self._imports[path].get(name)
        if origin is not None and _depth > 0:
            target = self._module_file(origin[0])
            if target is not None:
                return self.lookup(target, origin[1], _depth - 1)
        return f"<unresolved:{name}>"

    def literal(self, path: Path, node: ast.expr) -> object:
        """JSON-able value of a default expression."""
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self.lookup(path, node.id)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self.literal(path, node.operand)
            if isinstance(inner, (int, float)) and not isinstance(inner, bool):
                return -inner
        return f"<expr:{ast.unparse(node)}>"


# ----------------------------------------------------------------------
# extraction passes
# ----------------------------------------------------------------------

def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _init_defaults(
    resolver: _ConstantResolver, path: Path, cls: ast.ClassDef
) -> Dict[str, object]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == "__init__":
            args = node.args
            params = (args.posonlyargs + args.args)[1:]  # drop self
            defaults = list(args.defaults)
            out: Dict[str, object] = {}
            # defaults align with the tail of the parameter list
            for param, default in zip(params[len(params) - len(defaults):],
                                      defaults):
                out[param.arg] = resolver.literal(path, default)
            for kwarg, kwdefault in zip(args.kwonlyargs, args.kw_defaults):
                if kwdefault is not None:
                    out[kwarg.arg] = resolver.literal(path, kwdefault)
            return out
    return {}


def _dataclass_defaults(
    resolver: _ConstantResolver, path: Path, cls: ast.ClassDef
) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                out[node.target.id] = resolver.literal(path, node.value)
    return out


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def knob_of(terminal: str) -> Optional[str]:
    """Override knob named by a guarded expression's trailing
    identifier, or None."""
    name = terminal.lstrip("_")
    if name.endswith("_override"):
        name = name[: -len("_override")]
    return name if name in OVERRIDE_KNOBS else None


def classify_guard(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``(knob, style)`` when ``node`` selects between an Optional
    override knob and a fallback; None for unrelated expressions.

    Styles: ``is_not_none`` for ``A if A is not None else B`` (and the
    inverted ``B if A is None else A``), ``truthiness`` for a bare
    ``A if A else B``, ``or_truthiness`` for ``A or B``.
    """
    if isinstance(node, ast.IfExp):
        test = node.test
        if isinstance(test, ast.Compare) and len(test.ops) == 1 and isinstance(
            test.comparators[0], ast.Constant
        ) and test.comparators[0].value is None:
            terminal = _terminal_name(test.left)
            if terminal is not None:
                knob = knob_of(terminal)
                if knob is not None and isinstance(
                    test.ops[0], (ast.IsNot, ast.Is)
                ):
                    return knob, "is_not_none"
        terminal = _terminal_name(test)
        if terminal is not None:
            knob = knob_of(terminal)
            if knob is not None:
                return knob, "truthiness"
        return None
    if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
        for value in node.values[:-1]:
            terminal = _terminal_name(value)
            if terminal is None:
                continue
            knob = knob_of(terminal)
            if knob is not None:
                return knob, "or_truthiness"
    return None


def _override_guards(tree: ast.Module) -> Dict[str, List[str]]:
    """knob -> sorted unique guard styles found anywhere in the module."""
    styles: Dict[str, set] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.IfExp, ast.BoolOp)):
            hit = classify_guard(node)
            if hit is not None:
                styles.setdefault(hit[0], set()).add(hit[1])
    return {knob: sorted(found) for knob, found in sorted(styles.items())}


def _hw_widths(
    resolver: _ConstantResolver, path: Path, tree: ast.Module
) -> Dict[str, Dict[str, object]]:
    """class name -> {field: resolved bits} for every ``@hw_checked``."""
    out: Dict[str, Dict[str, object]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            if _terminal_name(decorator.func) != "hw_checked":
                continue
            fields: Dict[str, object] = {}
            for keyword in decorator.keywords:
                if keyword.arg is None:
                    continue
                value = keyword.value
                if isinstance(value, ast.Call) and value.args:
                    fields[keyword.arg] = resolver.literal(path, value.args[0])
                else:
                    fields[keyword.arg] = f"<expr:{ast.unparse(value)}>"
            if fields:
                out[node.name] = fields
    return out


def _fastsim_constant_usage(
    tree: ast.Module,
) -> Tuple[List[str], List[str]]:
    """(imported-from-core names, locally-redefined names) for the
    shared width constants in the fast engine module."""
    imported: List[str] = []
    redefined: List[str] = []
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == "repro.core.pdpt":
            for alias in node.names:
                if alias.name in SHARED_CONSTANTS:
                    imported.append(alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names = (
                    [target] if isinstance(target, ast.Name)
                    else list(target.elts) if isinstance(target, ast.Tuple)
                    else []
                )
                for name in names:
                    if isinstance(name, ast.Name) and (
                        name.id in SHARED_CONSTANTS
                    ):
                        redefined.append(name.id)
    return sorted(set(imported)), sorted(set(redefined))


# ----------------------------------------------------------------------
# the manifest
# ----------------------------------------------------------------------

def compute_parity(root: Optional[Path] = None) -> Dict[str, object]:
    root = root or package_root()
    resolver = _ConstantResolver(root)

    knob_defaults: Dict[str, object] = {}
    for relpath, class_name, key in _REFERENCE_POLICIES:
        path = root / relpath
        tree = resolver.tree(path)
        cls = _find_class(tree, class_name) if tree is not None else None
        knob_defaults[key] = (
            _init_defaults(resolver, path, cls) if cls is not None
            else f"<missing:{class_name}>"
        )
    spec_path = root / _SPEC_FILE
    spec_tree = resolver.tree(spec_path)
    spec_cls = _find_class(spec_tree, _SPEC_CLASS) if spec_tree else None
    knob_defaults["fastsim.spec"] = (
        _dataclass_defaults(resolver, spec_path, spec_cls)
        if spec_cls is not None else f"<missing:{_SPEC_CLASS}>"
    )

    override_guards: Dict[str, object] = {}
    hw_widths: Dict[str, object] = {}
    for relpath in _SCANNED_FILES:
        path = root / relpath
        tree = resolver.tree(path)
        if tree is None:
            continue
        guards = _override_guards(tree)
        if guards:
            override_guards[f"repro/{relpath}"] = guards
        for class_name, fields in _hw_widths(resolver, path, tree).items():
            hw_widths[f"repro/{relpath}:{class_name}"] = fields

    width_constants = {
        name: resolver.lookup(root / "core" / "pdpt.py", name)
        for name in ("PDPT_ENTRIES", "INSN_ID_BITS", "PD_BITS",
                     "TDA_HIT_BITS", "VTA_HIT_BITS")
    }
    width_constants["PL_BITS"] = resolver.lookup(
        root / "cache" / "line.py", "PL_BITS"
    )

    imported, redefined = ([], [])
    if spec_tree is not None:
        imported, redefined = _fastsim_constant_usage(spec_tree)

    return {
        "version": 1,
        "knob_defaults": knob_defaults,
        "override_guards": override_guards,
        "width_constants": width_constants,
        "fastsim_constant_imports": imported,
        "fastsim_constant_redefinitions": redefined,
        "hw_widths": hw_widths,
        "packed_correspondence": dict(sorted(PACKED_CORRESPONDENCE.items())),
    }


def load_parity(root: Optional[Path] = None) -> Optional[Dict[str, object]]:
    try:
        data = json.loads(parity_path(root).read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or "knob_defaults" not in data:
        return None
    return data


def write_parity(root: Optional[Path] = None) -> Path:
    path = parity_path(root)
    path.write_text(
        json.dumps(compute_parity(root), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


# ----------------------------------------------------------------------
# checking
# ----------------------------------------------------------------------

def check_consistency(parity: Dict[str, object]) -> List[str]:
    """Cross-engine laws that must hold for *any* extraction — these are
    not manifest-relative, so regenerating the manifest cannot launder a
    violation."""
    problems: List[str] = []

    defaults = parity.get("knob_defaults", {})
    surfaces = ("reference.dlp", "reference.global_protection", "fastsim.spec")
    tables = {}
    for surface in surfaces:
        table = defaults.get(surface) if isinstance(defaults, dict) else None
        if not isinstance(table, dict):
            problems.append(f"knob defaults missing for {surface}: {table!r}")
            continue
        tables[surface] = table
    if len(tables) == len(surfaces):
        for knob in SHARED_KNOBS:
            values = {s: t.get(knob, "<absent>") for s, t in tables.items()}
            distinct = {json.dumps(v, sort_keys=True) for v in values.values()}
            if len(distinct) != 1:
                listing = ", ".join(
                    f"{s}={values[s]!r}" for s in surfaces
                )
                problems.append(
                    f"knob default drift for {knob!r}: {listing} — the "
                    f"reference policies and PolicySpec must agree"
                )

    guards = parity.get("override_guards", {})
    if isinstance(guards, dict):
        for relpath, knobs in sorted(guards.items()):
            if not isinstance(knobs, dict):
                continue
            for knob, styles in sorted(knobs.items()):
                bad = [s for s in styles if s != "is_not_none"]
                if bad:
                    problems.append(
                        f"{relpath}: override fallback for {knob!r} uses "
                        f"{'/'.join(bad)} — an explicit 0 would be dropped "
                        f"(the historical nasc bug); guard with "
                        f"`is not None`"
                    )

    redefined = parity.get("fastsim_constant_redefinitions", [])
    if redefined:
        problems.append(
            f"fastsim/engine.py redefines width constants "
            f"{sorted(redefined)} — import them from repro.core.pdpt so "
            f"the engines cannot diverge"
        )
    imported = set(parity.get("fastsim_constant_imports", []))
    missing = [c for c in SHARED_CONSTANTS if c not in imported]
    if missing:
        problems.append(
            f"fastsim/engine.py does not import {missing} from "
            f"repro.core.pdpt — the packed engine must share the "
            f"reference width constants"
        )

    hw_widths = parity.get("hw_widths", {})
    by_field: Dict[str, Dict[str, object]] = {}
    if isinstance(hw_widths, dict):
        for where, fields in hw_widths.items():
            if not isinstance(fields, dict):
                continue
            for field_name, bits in fields.items():
                by_field.setdefault(field_name, {})[where] = bits
    # the same hardware field must have the same width everywhere it is
    # declared (insn_id appears on lines, VTA entries and PDPT rows)
    for field_name, sites in sorted(by_field.items()):
        widths = {json.dumps(b) for b in sites.values()}
        if len(widths) > 1:
            listing = ", ".join(f"{w}={b!r}" for w, b in sorted(sites.items()))
            problems.append(
                f"hardware field {field_name!r} declared with conflicting "
                f"widths: {listing}"
            )
    # every packed array must encode a declared hardware field
    correspondence = parity.get("packed_correspondence", {})
    if isinstance(correspondence, dict):
        for packed, ref_field in sorted(correspondence.items()):
            if ref_field not in by_field:
                problems.append(
                    f"packed array {packed!r} claims to encode hardware "
                    f"field {ref_field!r}, which has no @hw_checked "
                    f"declaration"
                )
    # Protected Life mirrors the PD width (paper Fig. 8: PL is written
    # from PD, so the fields must be the same size)
    constants = parity.get("width_constants", {})
    if isinstance(constants, dict):
        pd_bits, pl_bits = constants.get("PD_BITS"), constants.get("PL_BITS")
        if pd_bits != pl_bits:
            problems.append(
                f"PD_BITS={pd_bits!r} but PL_BITS={pl_bits!r} — Protected "
                f"Life is written from PD and must share its width"
            )
    return problems


def _flatten(prefix: str, value: object, out: Dict[str, str]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), sub, out)
    else:
        out[prefix] = json.dumps(value, sort_keys=True)


def diff_parity(
    recorded: Optional[Dict[str, object]],
    current: Dict[str, object],
) -> List[str]:
    """Human-readable drift between the committed manifest and the
    current extraction.  Empty list == in sync."""
    if recorded is None:
        return [
            f"parity manifest {PARITY_MANIFEST_NAME} is missing or "
            f"unreadable — run `repro check --update-parity` to create it"
        ]
    old: Dict[str, str] = {}
    new: Dict[str, str] = {}
    _flatten("", recorded, old)
    _flatten("", current, new)
    messages: List[str] = []
    for key in sorted(old.keys() | new.keys()):
        if old.get(key) == new.get(key):
            continue
        messages.append(
            f"parity drift at {key}: manifest {old.get(key, '<absent>')} "
            f"!= current {new.get(key, '<absent>')} — if intentional, "
            f"re-baseline with `repro check --update-parity`"
        )
    return messages
