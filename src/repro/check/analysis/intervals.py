"""Abstract-interpretation value-range analysis for hardware bit-fields.

The paper's structures are defined by exact widths (7-bit instruction
IDs, 4-bit PD/PL, 8/10-bit saturating hit counters).  The runtime
contract layer (:mod:`repro.check.contracts`) catches a bad write only
when a test happens to execute it under ``REPRO_CHECK=1``; this module
proves the property statically, over every path the AST admits.

The analysis is a classic integer-interval abstract interpretation,
intra-procedural with depth-limited cross-module call summaries:

* every expression evaluates to an :class:`Interval` ``[lo, hi]``
  (``±inf`` for unknown bounds);
* reads of a *declared field* (``entry.pd``, ``self._pdl[i]``) yield the
  field's full range — any value legally stored there;
* reads of a *bound token* (``pd_max``, ``self._tda_hit_max``) yield the
  exact declared maximum, so ``min(x, pd_max)`` clamps precisely;
* branch tests refine intervals along each arm (``if x < pd_max``,
  truthiness, ``if nasc < 0: raise`` refining the fall-through), the
  clamp idiom ``x if x < m else m`` is evaluated per-arm, and loops run
  a two-pass join so facts established inside the body survive;
* local aliases of the packed engine's arrays (``pdl = self._pdl``;
  tuple unpacking included) are tracked, so the fast engine's fused
  loops are analyzed against the same widths as the reference model;
* calls to functions defined in the same module or imported from a
  sibling ``repro`` module are summarized (their return interval is
  computed from the callee's body, depth-limited); everything else is
  conservatively unknown.

A *violation* is any store into a declared field whose interval may
leave ``[0, 2**bits - 1]``.  The analysis is deliberately unsound in
the small ways a linter can afford (``break``/``continue`` are
pass-through, ``try`` bodies are joined conservatively, method calls do
not invalidate the whole heap) and conservative everywhere it matters:
an unknown value written to a field is a finding, not a pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

INF = float("inf")

#: Cross-module call summaries stop at this depth; deeper calls are TOP.
MAX_SUMMARY_DEPTH = 3


# ----------------------------------------------------------------------
# the interval domain
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; ``±inf`` for no bound.

    ``lo > hi`` never occurs — the empty interval is represented by
    :data:`BOTTOM` (checked with :meth:`is_bottom`), produced only by
    infeasible refinements (``if x < 0`` on ``x in [0, 15]``).
    """

    lo: float
    hi: float

    # -- constructors --------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return TOP

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def of_bits(bits: int) -> "Interval":
        """The legal range of an unsigned ``bits``-wide field."""
        return Interval(0, (1 << bits) - 1)

    # -- predicates ----------------------------------------------------

    def is_bottom(self) -> bool:
        return self.lo > self.hi

    def is_const(self) -> bool:
        return self.lo == self.hi and self.lo not in (INF, -INF)

    def within(self, lo: int, hi: int) -> bool:
        return self.lo >= lo and self.hi <= hi

    # -- lattice -------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    # -- arithmetic ----------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        if self.is_bottom():
            return BOTTOM
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        corners = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if 0 in (a, b):  # avoid 0 * inf -> nan
                    corners.append(0)
                else:
                    corners.append(a * b)
        return Interval(min(corners), max(corners))

    def rshift(self, other: "Interval") -> "Interval":
        """``x >> k``; precise only for non-negative x and constant k."""
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        if other.is_const() and other.lo >= 0 and self.lo >= 0:
            k = int(other.lo)
            hi = self.hi if self.hi == INF else int(self.hi) >> k
            return Interval(int(self.lo) >> k, hi)
        return TOP

    def lshift(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        if other.is_const() and other.lo >= 0 and self.lo >= 0:
            k = int(other.lo)
            hi = INF if self.hi == INF else int(self.hi) << k
            return Interval(int(self.lo) << k, hi)
        return TOP

    def bitand(self, other: "Interval") -> "Interval":
        """``x & m``: for a constant non-negative mask, ``[0, m]`` when
        x may be anything non-negative (the fold-to-width idiom)."""
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        if other.is_const() and other.lo >= 0:
            mask = int(other.lo)
            if self.lo >= 0:
                hi = min(self.hi, mask)
                return Interval(0, hi)
            return Interval(0, mask)  # CPython & of neg int with mask >= 0
        if self.is_const() and self.lo >= 0:
            return other.bitand(self)
        return TOP

    def mod(self, other: "Interval") -> "Interval":
        """``x % m`` for a known-positive modulus is ``[0, m-1]``."""
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        if other.lo > 0:
            return Interval(0, other.hi - 1)
        return TOP

    def floordiv(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        if other.is_const() and other.lo > 0 and self.lo >= 0:
            d = int(other.lo)
            hi = INF if self.hi == INF else int(self.hi) // d
            return Interval(int(self.lo) // d, hi)
        return TOP

    def min_(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return BOTTOM
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def __str__(self) -> str:
        def fmt(v: float) -> str:
            return "inf" if v == INF else "-inf" if v == -INF else str(int(v))
        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"


TOP = Interval(-INF, INF)
BOTTOM = Interval(1, 0)


# ----------------------------------------------------------------------
# field / token tables
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FieldTable:
    """What the analyzer knows about the modeled hardware.

    ``scalar_fields``
        attribute name -> width in bits, for object-style fields
        (``entry.pd``, ``line.protected_life``, ``self._gpd``).
    ``packed_fields``
        array attribute name -> width in bits, for the fast engine's
        struct-of-arrays encoding (``self._pdl[i]``); reads and writes
        through local aliases of these arrays are tracked too.
    ``bound_tokens``
        name -> exact maximum value; reads evaluate to that constant so
        ``min(x, pd_max)`` proves the clamp.  Ablation runs that widen a
        field widen its runtime contract with it — the static proof is
        against the paper's declared widths.
    ``const_names``
        module-level width constants resolved by name.
    """

    scalar_fields: Dict[str, int]
    packed_fields: Dict[str, int]
    bound_tokens: Dict[str, int]
    const_names: Dict[str, int]

    def scalar_range(self, attr: str) -> Optional[Interval]:
        bits = self.scalar_fields.get(attr)
        return None if bits is None else Interval.of_bits(bits)

    def packed_range(self, name: str) -> Optional[Interval]:
        bits = self.packed_fields.get(name)
        return None if bits is None else Interval.of_bits(bits)


@dataclass(frozen=True)
class WidthViolation:
    """One store whose value interval may leave the field's width."""

    node: ast.AST
    field_name: str
    bits: int
    interval: Interval

    def describe(self) -> str:
        legal = Interval.of_bits(self.bits)
        return (
            f"write to {self.bits}-bit field {self.field_name!r} has "
            f"value range {self.interval}, outside {legal} — clamp, "
            f"mask, or guard the value before storing"
        )


# environments map canonical expression strings (``ast.unparse``) to
# intervals; ``None`` marks an unreachable program point.
Env = Optional[Dict[str, Interval]]

#: Functions whose calls never mutate analyzer-visible state.
_PURE_CALLEES = frozenset({"min", "max", "abs", "len", "range", "int",
                           "bool", "sorted", "sum", "isinstance"})

#: Known return ranges for calls the summarizer cannot (or should not)
#: follow.  ``hash_pc`` folds a PC to the PDPT index width.
_KNOWN_RETURNS: Dict[str, Interval] = {
    "repro.utils.hashing.hash_pc": Interval(0, 127),
    "hash_pc": Interval(0, 127),
}


# ----------------------------------------------------------------------
# module-level resolution (imports, constants, function defs)
# ----------------------------------------------------------------------

class ModuleContext:
    """Per-module name resolution: local defs, ``repro`` imports,
    function aliases and module constants."""

    def __init__(self, tree: ast.Module, package_root: Optional[Path]) -> None:
        self.tree = tree
        self.package_root = package_root
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.imports: Dict[str, Tuple[str, str]] = {}  # name -> (module, orig)
        self.constants: Dict[str, int] = {}
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] == "repro" and node.level == 0:
                    for alias in node.names:
                        self.imports[alias.asname or alias.name] = (
                            node.module, alias.name,
                        )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if isinstance(node.value, ast.Constant) and isinstance(
                        node.value.value, int
                    ) and not isinstance(node.value.value, bool):
                        self.constants[target.id] = node.value.value

    def qualified(self, name: str) -> Optional[str]:
        """Dotted origin of an imported name, or None for locals."""
        origin = self.imports.get(name)
        if origin is None:
            return None
        return f"{origin[0]}.{origin[1]}"

    def module_file(self, dotted: str) -> Optional[Path]:
        if self.package_root is None:
            return None
        parts = dotted.split(".")
        if parts[0] != "repro":
            return None
        candidate = self.package_root.joinpath(*parts[1:]).with_suffix(".py")
        return candidate if candidate.is_file() else None


class ValueRangeAnalyzer:
    """Drives the per-function analysis over one module's AST."""

    def __init__(
        self,
        table: FieldTable,
        package_root: Optional[Path] = None,
    ) -> None:
        self.table = table
        self.package_root = package_root
        self._module_cache: Dict[Path, ModuleContext] = {}

    # -- public entry points -------------------------------------------

    def analyze_module(self, tree: ast.Module) -> List[WidthViolation]:
        """Every width violation in every function (and class body) of
        one parsed module."""
        ctx = ModuleContext(tree, self.package_root)
        violations: List[WidthViolation] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                violations.extend(self._analyze_function(node, ctx))
            elif isinstance(node, ast.ClassDef):
                violations.extend(self._check_class_defaults(node))
        return violations

    # -- class-body field defaults -------------------------------------

    def _check_class_defaults(self, cls: ast.ClassDef) -> List[WidthViolation]:
        """Dataclass-style defaults: ``pd: int = 0`` in a class body is
        a store into the field; constant defaults are checked, factory
        calls are left to the runtime contracts."""
        out: List[WidthViolation] = []
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            bits = self.table.scalar_fields.get(stmt.target.id)
            if bits is None:
                continue
            if isinstance(stmt.value, ast.Constant) and isinstance(
                stmt.value.value, int
            ):
                iv = Interval.const(int(stmt.value.value))
                if not iv.within(0, (1 << bits) - 1):
                    out.append(
                        WidthViolation(stmt, stmt.target.id, bits, iv)
                    )
        return out

    # -- per-function driver -------------------------------------------

    def _analyze_function(
        self,
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        ctx: ModuleContext,
    ) -> List[WidthViolation]:
        runner = _FunctionRunner(self, ctx, collect=True)
        env = runner.seed_params(func)
        runner.run_block(func.body, env)
        return runner.violations

    # -- call summaries ------------------------------------------------

    def summarize(
        self,
        func: ast.FunctionDef,
        ctx: ModuleContext,
        args: Sequence[object],
        depth: int,
        stack: Tuple[int, ...],
    ) -> object:
        """Return-value interval (or tuple of intervals) of ``func``
        called with ``args`` interval values.  Depth-limited;
        recursion returns TOP."""
        if depth <= 0 or id(func) in stack:
            return TOP
        runner = _FunctionRunner(
            self, ctx, collect=False, depth=depth - 1,
            stack=stack + (id(func),),
        )
        env = runner.seed_params(func, args)
        runner.run_block(func.body, env)
        result: object = BOTTOM
        for value in runner.returns:
            result = _join_values(result, value)
        if isinstance(result, Interval) and result.is_bottom():
            return TOP  # no return statement seen -> unknown (None)
        return result

    def module_context(self, path: Path) -> Optional[ModuleContext]:
        cached = self._module_cache.get(path)
        if cached is not None:
            return cached
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            return None
        ctx = ModuleContext(tree, self.package_root)
        self._module_cache[path] = ctx
        return ctx


def _join_values(a: object, b: object) -> object:
    """Join of summary values: intervals elementwise, tuples by arity."""
    if isinstance(a, Interval) and a.is_bottom():
        return b
    if isinstance(b, Interval) and b.is_bottom():
        return a
    if isinstance(a, Interval) and isinstance(b, Interval):
        return a.join(b)
    if isinstance(a, tuple) and isinstance(b, tuple) and len(a) == len(b):
        return tuple(_join_values(x, y) for x, y in zip(a, b))
    return TOP


# ----------------------------------------------------------------------
# the abstract machine
# ----------------------------------------------------------------------

@dataclass
class _FunctionRunner:
    """Abstract execution of one function body."""

    analyzer: ValueRangeAnalyzer
    ctx: ModuleContext
    collect: bool
    depth: int = MAX_SUMMARY_DEPTH
    stack: Tuple[int, ...] = ()
    violations: List[WidthViolation] = dataclass_field(default_factory=list)
    returns: List[object] = dataclass_field(default_factory=list)
    # local name -> packed array field it aliases (``pdl`` -> ``_pdl``)
    array_aliases: Dict[str, str] = dataclass_field(default_factory=dict)
    # local name -> dotted origin for function aliases (hash_pc_local)
    func_aliases: Dict[str, str] = dataclass_field(default_factory=dict)
    _reporting: bool = True

    # -- environment seeding -------------------------------------------

    def seed_params(
        self,
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        args: Optional[Sequence[object]] = None,
    ) -> Env:
        """Parameter conventions: a parameter *named like* a declared
        field or bound token carries that range (``insn_id`` arrives
        already folded to 7 bits; ``pl_max`` is the declared maximum).
        Explicit argument intervals from a call site take precedence."""
        env: Dict[str, Interval] = {}
        table = self.analyzer.table
        params = func.args.posonlyargs + func.args.args
        for i, arg in enumerate(params):
            value: object = None
            if args is not None and i < len(args):
                value = args[i]
            if isinstance(value, Interval) and value is not TOP:
                env[arg.arg] = value
                continue
            rng = table.scalar_range(arg.arg)
            if rng is not None:
                env[arg.arg] = rng
                continue
            bound = table.bound_tokens.get(arg.arg)
            if bound is not None:
                env[arg.arg] = Interval.const(bound)
        return env

    # -- block / statement execution -----------------------------------

    def run_block(self, body: Sequence[ast.stmt], env: Env) -> Env:
        for stmt in body:
            if env is None:
                break
            env = self.run_stmt(stmt, env)
        return env

    def run_stmt(self, stmt: ast.stmt, env: Env) -> Env:
        if env is None:
            return None
        if isinstance(stmt, ast.Assign):
            return self._do_assign(stmt, env)
        if isinstance(stmt, ast.AnnAssign):
            return self._do_ann_assign(stmt, env)
        if isinstance(stmt, ast.AugAssign):
            return self._do_aug_assign(stmt, env)
        if isinstance(stmt, ast.If):
            return self._do_if(stmt, env)
        if isinstance(stmt, (ast.While, ast.For)):
            return self._do_loop(stmt, env)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns.append(self.eval(stmt.value, env))
            else:
                self.returns.append(TOP)
            return None
        if isinstance(stmt, ast.Raise):
            return None
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
            self._invalidate_call_effects(stmt.value, env)
            return env
        if isinstance(stmt, ast.Try):
            return self._do_try(stmt, env)
        if isinstance(stmt, ast.With):
            return self.run_block(stmt.body, env)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env  # nested defs analyzed on their own walk
        if isinstance(stmt, ast.Assert):
            return _refine(self, stmt.test, env, assume=True)
        # break/continue/pass/import/global/delete: pass-through
        return env

    # -- assignment forms ----------------------------------------------

    def _do_assign(self, stmt: ast.Assign, env: Dict[str, Interval]) -> Env:
        value = self.eval(stmt.value, env)
        for target in stmt.targets:
            self._assign_target(target, stmt.value, value, env, stmt)
        return env

    def _do_ann_assign(self, stmt: ast.AnnAssign, env: Dict[str, Interval]) -> Env:
        if stmt.value is None:
            return env
        value = self.eval(stmt.value, env)
        self._assign_target(stmt.target, stmt.value, value, env, stmt)
        return env

    def _do_aug_assign(self, stmt: ast.AugAssign, env: Dict[str, Interval]) -> Env:
        current = self.eval(stmt.target, env)
        delta = self.eval(stmt.value, env)
        value = _apply_binop(stmt.op, _as_interval(current), _as_interval(delta))
        self._assign_target(stmt.target, None, value, env, stmt)
        return env

    def _assign_target(
        self,
        target: ast.expr,
        value_node: Optional[ast.expr],
        value: object,
        env: Dict[str, Interval],
        stmt: ast.stmt,
    ) -> None:
        table = self.analyzer.table
        if isinstance(target, ast.Name):
            self._drop_derived(env, target.id)
            self.array_aliases.pop(target.id, None)
            self.func_aliases.pop(target.id, None)
            # alias tracking: ``pli = self._pli`` / ``f = hash_pc``
            if isinstance(value_node, ast.Attribute):
                if value_node.attr in table.packed_fields:
                    self.array_aliases[target.id] = value_node.attr
            elif isinstance(value_node, ast.Name):
                origin = self._callable_origin(value_node.id)
                if origin is not None:
                    self.func_aliases[target.id] = origin
                if value_node.id in self.array_aliases:
                    self.array_aliases[target.id] = (
                        self.array_aliases[value_node.id]
                    )
            env[target.id] = _as_interval(value)
        elif isinstance(target, ast.Attribute):
            bits = table.scalar_fields.get(target.attr)
            packed_bits = table.packed_fields.get(target.attr)
            if bits is not None:
                iv = self._value_for_store(value_node, value, env)
                self._check_store(stmt, target.attr, bits, iv)
                env[_key(target)] = iv.meet(Interval.of_bits(bits))
            elif packed_bits is not None:
                # whole-array rebind of a packed field: check the literal
                # elements, but keep no element fact for the array itself
                iv = self._value_for_store(value_node, value, env)
                self._check_store(stmt, target.attr, packed_bits, iv)
                env[_key(target)] = _as_interval(value)
            else:
                env[_key(target)] = _as_interval(value)
        elif isinstance(target, ast.Subscript):
            packed = self._packed_field_of(target.value)
            key = _key(target)
            if packed is not None:
                bits = table.packed_fields[packed]
                iv = _as_interval(value)
                self._check_store(stmt, packed, bits, iv)
                self._drop_subscripts(env, target)
                env[key] = iv.meet(Interval.of_bits(bits))
            else:
                self._drop_subscripts(env, target)
                env[key] = _as_interval(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts: Sequence[object]
            if isinstance(value, tuple) and len(value) == len(target.elts):
                parts = value
            elif isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                parts = [self.eval(e, env) for e in value_node.elts]
            else:
                parts = [TOP] * len(target.elts)
            value_elts = (
                value_node.elts
                if isinstance(value_node, (ast.Tuple, ast.List))
                and len(value_node.elts) == len(target.elts)
                else [None] * len(target.elts)
            )
            for sub, sub_node, sub_value in zip(target.elts, value_elts, parts):
                self._assign_target(sub, sub_node, sub_value, env, stmt)

    def _value_for_store(
        self,
        value_node: Optional[ast.expr],
        value: object,
        env: Dict[str, Interval],
    ) -> Interval:
        """Whole-array rebinds of packed fields (``self._pdl = [0] * n``)
        are checked against the join of the literal elements."""
        iv = _as_interval(value)
        if iv != TOP or value_node is None:
            return iv
        elements = _array_literal_elements(value_node)
        if elements is not None:
            joined = BOTTOM
            for element in elements:
                joined = joined.join(_as_interval(self.eval(element, env)))
            return TOP if joined.is_bottom() else joined
        return iv

    def _check_store(
        self, stmt: ast.stmt, field_name: str, bits: int, iv: Interval
    ) -> None:
        if not self.collect or not self._reporting:
            return
        if iv.is_bottom():  # unreachable store
            return
        if not iv.within(0, (1 << bits) - 1):
            self.violations.append(WidthViolation(stmt, field_name, bits, iv))

    # -- packed-array whole-assign check needs literal elements --------

    def _packed_field_of(self, base: ast.expr) -> Optional[str]:
        """The packed-field name an array expression refers to, if any:
        ``self._pdl`` directly, or a tracked local alias ``pdl``."""
        table = self.analyzer.table
        if isinstance(base, ast.Attribute) and base.attr in table.packed_fields:
            return base.attr
        if isinstance(base, ast.Name):
            if base.id in self.array_aliases:
                return self.array_aliases[base.id]
            if base.id in table.packed_fields:
                return base.id
        return None

    # -- control flow --------------------------------------------------

    def _do_if(self, stmt: ast.If, env: Dict[str, Interval]) -> Env:
        then_env = self.run_block(
            stmt.body, _refine(self, stmt.test, dict(env), assume=True)
        )
        else_env = _refine(self, stmt.test, dict(env), assume=False)
        if stmt.orelse:
            else_env = self.run_block(stmt.orelse, else_env)
        return _join_envs(then_env, else_env)

    def _do_loop(self, stmt: Union[ast.While, ast.For], env: Dict[str, Interval]) -> Env:
        """Two-pass loop analysis: pass 1 discovers what the body may
        change, the join with the entry state feeds pass 2, and only
        pass 2 reports — so facts that survive iteration (guarded
        decrements, clamped updates) are proven rather than widened to
        unknown."""
        joined: Env = dict(env)
        reporting = self._reporting
        for final in (False, True):
            self._reporting = reporting and final
            body_env: Env = dict(joined) if joined is not None else None
            if isinstance(stmt, ast.While):
                body_env = _refine(self, stmt.test, body_env, assume=True)
            else:
                if body_env is not None:
                    self._bind_loop_target(stmt, body_env)
            body_env = self.run_block(stmt.body, body_env)
            joined = _join_envs(dict(env), body_env)
        self._reporting = reporting
        if joined is None:
            joined = dict(env)
        if isinstance(stmt, ast.While):
            # normal exit refines with the negated test; break exits are
            # joined in conservatively by keeping the pre-test state too
            exit_env = _refine(self, stmt.test, dict(joined), assume=False)
            joined = _join_envs(exit_env, joined if _has_break(stmt) else None)
        if joined is not None and stmt.orelse:
            joined = self.run_block(stmt.orelse, joined)
        return joined

    def _bind_loop_target(self, stmt: ast.For, env: Dict[str, Interval]) -> None:
        iv = TOP
        it = stmt.iter
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) and (
            it.func.id == "range"
        ):
            args = [_as_interval(self.eval(a, env)) for a in it.args]
            if len(args) == 1:
                iv = Interval(0, args[0].hi - 1)
            elif len(args) >= 2:
                iv = Interval(args[0].lo, args[1].hi - 1)
            if iv.is_bottom():
                iv = TOP
        self._assign_target(stmt.target, None, iv, env, stmt)

    def _do_try(self, stmt: ast.Try, env: Dict[str, Interval]) -> Env:
        body_env = self.run_block(stmt.body, dict(env))
        out = _join_envs(body_env, dict(env))
        for handler in stmt.handlers:
            out = _join_envs(out, self.run_block(handler.body, dict(env)))
        if out is None:
            out = dict(env)
        if stmt.finalbody:
            out = self.run_block(stmt.finalbody, out)
        return out

    # -- expression evaluation -----------------------------------------

    def eval(self, node: ast.expr, env: Dict[str, Interval]) -> object:
        table = self.analyzer.table
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Interval.const(int(node.value))
            if isinstance(node.value, int):
                return Interval.const(node.value)
            return TOP
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.ctx.constants:
                return Interval.const(self.ctx.constants[node.id])
            if node.id in table.const_names:
                return Interval.const(table.const_names[node.id])
            bound = table.bound_tokens.get(node.id)
            if bound is not None:
                return Interval.const(bound)
            return TOP
        if isinstance(node, ast.Attribute):
            key = _key(node)
            if key in env:
                return env[key]
            bound = table.bound_tokens.get(node.attr)
            if bound is not None:
                return Interval.const(bound)
            rng = table.scalar_range(node.attr)
            if rng is not None:
                return rng
            if node.attr in self.ctx.constants:
                return Interval.const(self.ctx.constants[node.attr])
            if node.attr in table.const_names:
                return Interval.const(table.const_names[node.attr])
            return TOP
        if isinstance(node, ast.Subscript):
            key = _key(node)
            if key in env:
                return env[key]
            packed = self._packed_field_of(node.value)
            if packed is not None:
                return Interval.of_bits(table.packed_fields[packed])
            return TOP
        if isinstance(node, ast.BinOp):
            left = _as_interval(self.eval(node.left, env))
            right = _as_interval(self.eval(node.right, env))
            return _apply_binop(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = _as_interval(self.eval(node.operand, env))
            if isinstance(node.op, ast.USub):
                return operand.neg()
            if isinstance(node.op, ast.UAdd):
                return operand
            if isinstance(node.op, ast.Not):
                return Interval(0, 1)
            return TOP
        if isinstance(node, ast.IfExp):
            then = self.eval(
                node.body, _refine_copy(self, node.test, env, assume=True)
            )
            other = self.eval(
                node.orelse, _refine_copy(self, node.test, env, assume=False)
            )
            return _join_values(then, other)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Tuple):
            return tuple(self.eval(e, env) for e in node.elts)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return Interval(0, 1)
        return TOP

    # -- calls ----------------------------------------------------------

    def _callable_origin(self, name: str) -> Optional[str]:
        """Dotted origin for a name that refers to a known function."""
        if name in self.func_aliases:
            return self.func_aliases[name]
        qualified = self.ctx.qualified(name)
        if qualified is not None:
            return qualified
        if name in self.ctx.functions:
            return f"<local>.{name}"
        return None

    def _eval_call(self, node: ast.Call, env: Dict[str, Interval]) -> object:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            args = [self.eval(a, env) for a in node.args]
            ivs = [_as_interval(a) for a in args]
            if name == "min" and ivs:
                out = ivs[0]
                for iv in ivs[1:]:
                    out = out.min_(iv)
                return out
            if name == "max" and ivs:
                out = ivs[0]
                for iv in ivs[1:]:
                    out = out.max_(iv)
                return out
            if name == "abs" and len(ivs) == 1:
                iv = ivs[0]
                if iv.lo >= 0:
                    return iv
                return Interval(0, max(abs(iv.lo), abs(iv.hi)))
            if name == "len":
                return Interval(0, INF)
            if name == "bool":
                return Interval(0, 1)
            return self._summarize_named(name, args)
        # method calls and other callables: unknown value
        for arg in node.args:
            self.eval(arg, env)
        return TOP

    def _summarize_named(self, name: str, args: Sequence[object]) -> object:
        origin = self._callable_origin(name)
        if origin is None:
            known = _KNOWN_RETURNS.get(name)
            return known if known is not None else TOP
        if origin in _KNOWN_RETURNS:
            return _KNOWN_RETURNS[origin]
        tail = origin.rsplit(".", 1)[-1]
        if tail in _KNOWN_RETURNS and not origin.startswith("<local>"):
            return _KNOWN_RETURNS[tail]
        if origin.startswith("<local>."):
            func = self.ctx.functions.get(tail)
            if func is None:
                return TOP
            return self.analyzer.summarize(
                func, self.ctx, args, self.depth, self.stack
            )
        # imported from a sibling repro module: load and summarize there
        module_dotted, func_name = origin.rsplit(".", 1)
        path = self.ctx.module_file(module_dotted)
        if path is None:
            return TOP
        other = self.analyzer.module_context(path)
        if other is None:
            return TOP
        func = other.functions.get(func_name)
        if func is None:
            return TOP
        return self.analyzer.summarize(
            func, other, args, self.depth, self.stack
        )

    # -- invalidation ---------------------------------------------------

    def _drop_derived(self, env: Dict[str, Interval], name: str) -> None:
        """Rebinding ``entry`` invalidates every ``entry.*`` fact."""
        prefix_dot = name + "."
        prefix_sub = name + "["
        for key in [k for k in env
                    if k.startswith(prefix_dot) or k.startswith(prefix_sub)]:
            del env[key]
        env.pop(name, None)

    def _drop_subscripts(self, env: Dict[str, Interval], target: ast.Subscript) -> None:
        """A store through ``arr[i]`` invalidates facts about every
        other subscript of the same array (``arr[j]`` may alias)."""
        base = _key(target.value)
        prefix = base + "["
        for key in [k for k in env if k.startswith(prefix)]:
            del env[key]

    def _invalidate_call_effects(self, node: ast.expr, env: Dict[str, Interval]) -> None:
        """A method call may mutate its receiver and arguments: drop
        attribute/subscript facts rooted at those names."""
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if isinstance(func, ast.Name) and func.id in _PURE_CALLEES:
                continue
            roots: List[str] = []
            if isinstance(func, ast.Attribute):
                base = func.value
                while isinstance(base, ast.Attribute):
                    base = base.value
                if isinstance(base, ast.Name):
                    roots.append(base.id)
            for arg in call.args:
                if isinstance(arg, ast.Name):
                    roots.append(arg.id)
            for root in roots:
                prefix_dot = root + "."
                prefix_sub = root + "["
                for key in [
                    k for k in env
                    if k.startswith(prefix_dot) or k.startswith(prefix_sub)
                ]:
                    del env[key]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _key(node: ast.expr) -> str:
    """Canonical environment key for a storable expression."""
    return ast.unparse(node)


def _as_interval(value: object) -> Interval:
    return value if isinstance(value, Interval) else TOP


def _apply_binop(op: ast.operator, left: Interval, right: Interval) -> Interval:
    if isinstance(op, ast.Add):
        return left.add(right)
    if isinstance(op, ast.Sub):
        return left.sub(right)
    if isinstance(op, ast.Mult):
        return left.mul(right)
    if isinstance(op, ast.RShift):
        return left.rshift(right)
    if isinstance(op, ast.LShift):
        return left.lshift(right)
    if isinstance(op, ast.BitAnd):
        return left.bitand(right)
    if isinstance(op, ast.Mod):
        return left.mod(right)
    if isinstance(op, ast.FloorDiv):
        return left.floordiv(right)
    return TOP


def _join_envs(a: Env, b: Env) -> Env:
    """Pointwise join; keys absent from either side are dropped (their
    value is unknown on that path).  ``None`` marks an unreachable arm
    and is the join identity."""
    if a is None:
        return b
    if b is None:
        return a
    out: Dict[str, Interval] = {}
    for key in a.keys() & b.keys():
        joined = a[key].join(b[key])
        if joined is not TOP:
            out[key] = joined
    return out


def _has_break(stmt: Union[ast.While, ast.For]) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Break):
            return True
    return False


def _array_literal_elements(node: ast.expr) -> Optional[List[ast.expr]]:
    """Elements of ``[c] * n`` / ``[a, b]`` array literals, or None."""
    if isinstance(node, ast.List):
        return list(node.elts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        for side in (node.left, node.right):
            if isinstance(side, ast.List):
                return list(side.elts)
    return None


# ----------------------------------------------------------------------
# condition refinement
# ----------------------------------------------------------------------

def _refine_copy(
    runner: _FunctionRunner, test: ast.expr, env: Dict[str, Interval],
    assume: bool,
) -> Dict[str, Interval]:
    refined = _refine(runner, test, dict(env), assume)
    return refined if refined is not None else dict(env)


def _refine(
    runner: _FunctionRunner, test: ast.expr, env: Env, assume: bool
) -> Env:
    """Narrow ``env`` under the assumption that ``test`` is ``assume``.

    Handles comparisons against evaluable bounds, truthiness of tracked
    expressions, ``not``, and ``and``/``or`` in their refinable
    polarity.  Unknown forms refine nothing (sound)."""
    if env is None:
        return None
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _refine(runner, test.operand, env, not assume)
    if isinstance(test, ast.BoolOp):
        if isinstance(test.op, ast.And) and assume:
            for value in test.values:
                env = _refine(runner, value, env, True)
                if env is None:
                    return None
            return env
        if isinstance(test.op, ast.Or) and not assume:
            for value in test.values:
                env = _refine(runner, value, env, False)
                if env is None:
                    return None
            return env
        return env
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        return _refine_compare(
            runner, test.left, test.ops[0], test.comparators[0], env, assume
        )
    # truthiness of a tracked integer expression
    key, current = _tracked(runner, test, env)
    if key is not None and current is not None:
        if assume:
            if current.lo == 0 and current.hi >= 0:
                refined = Interval(1, current.hi)
                if refined.is_bottom():
                    return None
                env[key] = refined
        else:
            refined = current.meet(Interval.const(0))
            if refined.is_bottom():
                return None
            env[key] = refined
    return env


def _refine_compare(
    runner: _FunctionRunner,
    left: ast.expr,
    op: ast.cmpop,
    right: ast.expr,
    env: Dict[str, Interval],
    assume: bool,
) -> Env:
    # normalise to ``tracked OP value`` — flip when the tracked side is
    # on the right (``0 < x``)
    flips = {
        ast.Lt: ast.Gt, ast.Gt: ast.Lt, ast.LtE: ast.GtE, ast.GtE: ast.LtE,
        ast.Eq: ast.Eq, ast.NotEq: ast.NotEq,
    }
    negations = {
        ast.Lt: ast.GtE, ast.GtE: ast.Lt, ast.Gt: ast.LtE, ast.LtE: ast.Gt,
        ast.Eq: ast.NotEq, ast.NotEq: ast.Eq,
    }
    if not assume:
        negated = negations.get(type(op))
        if negated is None:
            return env  # is/in: no interval content
        return _refine_compare(runner, left, negated(), right, env, True)

    for tracked_side, other_side, flip in ((left, right, False), (right, left, True)):
        key, current = _tracked(runner, tracked_side, env)
        if key is None or current is None:
            continue
        bound = _as_interval(runner.eval(other_side, env))
        if bound is TOP:
            continue
        eff_op: type = type(op)
        if flip:
            eff = flips.get(eff_op)
            if eff is None:
                continue
            eff_op = eff
        if eff_op is ast.Lt:
            refined = current.meet(Interval(-INF, bound.hi - 1))
        elif eff_op is ast.LtE:
            refined = current.meet(Interval(-INF, bound.hi))
        elif eff_op is ast.Gt:
            refined = current.meet(Interval(bound.lo + 1, INF))
        elif eff_op is ast.GtE:
            refined = current.meet(Interval(bound.lo, INF))
        elif eff_op is ast.Eq:
            refined = current.meet(bound)
        elif eff_op is ast.NotEq:
            if bound.is_const() and current.lo == bound.lo:
                refined = Interval(current.lo + 1, current.hi)
            elif bound.is_const() and current.hi == bound.hi:
                refined = Interval(current.lo, current.hi - 1)
            else:
                refined = current
        else:
            continue
        if refined.is_bottom():
            return None
        env[key] = refined
    return env


def _tracked(
    runner: _FunctionRunner, node: ast.expr, env: Dict[str, Interval]
) -> Tuple[Optional[str], Optional[Interval]]:
    """(env key, current interval) for refinable expressions: names,
    attributes and subscripts.  The current interval falls back to the
    table-declared range so guards on fresh field reads refine too."""
    if not isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
        return None, None
    key = _key(node)
    value = runner.eval(node, env)
    iv = _as_interval(value)
    return key, iv
