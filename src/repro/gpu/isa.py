"""Warp-level instruction model.

Workload traces are sequences of two op kinds:

* :class:`ComputeOp` — a run of ``count`` back-to-back non-memory warp
  instructions.  The SIMT front end issues them at one per cycle from the
  owning scheduler (the GTO scheduler stays greedy on a ready warp), so a
  run occupies the scheduler for ``count`` cycles and contributes
  ``count * active_lanes`` thread instructions.  Batching runs keeps the
  Python event loop off the (hot but uninteresting) ALU path — the
  profile-first guidance of the HPC coding guides applied to a simulator.

* :class:`MemOp` — one global-memory warp instruction at program counter
  ``pc`` with the per-lane byte addresses.  The coalescer in
  :mod:`repro.gpu.coalescer` folds the lanes into 128-byte line requests.

A ``pc`` identifies a static memory instruction; DLP folds it to the
7-bit instruction ID with :func:`repro.utils.hashing.hash_pc`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Union

from repro.utils.hashing import hash_pc


class ComputeOp:
    """``count`` consecutive non-memory warp instructions."""

    __slots__ = ("count",)

    def __init__(self, count: int):
        if count < 1:
            raise ValueError(f"compute run must be positive, got {count}")
        self.count = count

    def __repr__(self) -> str:
        return f"ComputeOp({self.count})"

    def __eq__(self, other) -> bool:
        return isinstance(other, ComputeOp) and other.count == self.count


class MemOp:
    """One warp-level global load or store.

    ``addrs`` holds per-lane byte addresses (up to warp_size of them;
    fewer models a partially-active warp).  ``insn_id`` is precomputed at
    construction so the cache hot path never re-hashes the PC.
    """

    __slots__ = ("is_write", "pc", "addrs", "insn_id", "active_lanes")

    def __init__(self, is_write: bool, pc: int, addrs: Sequence[int]):
        if len(addrs) == 0:
            raise ValueError("memory op needs at least one active lane")
        self.is_write = bool(is_write)
        self.pc = pc
        self.addrs = addrs
        self.insn_id = hash_pc(pc)
        self.active_lanes = len(addrs)

    def __repr__(self) -> str:
        kind = "ST" if self.is_write else "LD"
        return f"MemOp({kind}, pc={self.pc:#x}, lanes={self.active_lanes})"


WarpOp = Union[ComputeOp, MemOp]
WarpTrace = Iterator[WarpOp]


def load(pc: int, addrs: Sequence[int]) -> MemOp:
    return MemOp(False, pc, addrs)


def store(pc: int, addrs: Sequence[int]) -> MemOp:
    return MemOp(True, pc, addrs)


def compute(count: int) -> ComputeOp:
    return ComputeOp(count)


def trace_stats(ops: Iterable[WarpOp], warp_size: int = 32) -> dict:
    """Static summary of a trace (used by tests and the classifier):
    thread instructions, memory requests, distinct PCs."""
    thread_insns = 0
    mem_ops = 0
    lanes = 0
    pcs = set()
    for op in ops:
        if isinstance(op, ComputeOp):
            thread_insns += op.count * warp_size
        else:
            thread_insns += op.active_lanes
            mem_ops += 1
            lanes += op.active_lanes
            pcs.add(op.pc)
    return {
        "thread_instructions": thread_insns,
        "mem_ops": mem_ops,
        "mem_lanes": lanes,
        "distinct_pcs": len(pcs),
    }
