"""Memory access coalescing (paper Section 2: the LD/ST unit generates
one or more memory data requests for each memory instruction).

Fermi-style coalescing: the per-lane byte addresses of a warp memory
instruction are folded into the minimal set of 128-byte line segments.
A fully coalesced access (32 consecutive 4-byte words) produces one
request; a fully divergent one produces up to 32.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def coalesce(addrs: Sequence[int], line_size: int = 128) -> List[int]:
    """Fold per-lane byte addresses into unique line (block) addresses.

    Returns block addresses (byte address >> log2(line_size)) in first-
    touch lane order, matching the order the LD/ST unit emits requests.
    """
    if line_size <= 0 or line_size & (line_size - 1):
        raise ValueError(f"line size must be a power of two, got {line_size}")
    shift = line_size.bit_length() - 1
    if isinstance(addrs, np.ndarray):
        blocks = addrs.astype(np.int64, copy=False) >> shift
        # np.unique sorts; recover first-touch order via the index of the
        # first occurrence of each unique value.
        _, first_idx = np.unique(blocks, return_index=True)
        return [int(blocks[i]) for i in np.sort(first_idx)]
    seen = set()
    out: List[int] = []
    for addr in addrs:
        block = addr >> shift
        if block not in seen:
            seen.add(block)
            out.append(block)
    return out


def coalesce_count(addrs: Sequence[int], line_size: int = 128) -> int:
    """Number of requests a warp access generates (no list allocation)."""
    shift = line_size.bit_length() - 1
    if isinstance(addrs, np.ndarray):
        return int(np.unique(addrs.astype(np.int64, copy=False) >> shift).size)
    return len({addr >> shift for addr in addrs})
