"""Warp schedulers.

Table 1: two schedulers per SM with the GTO (greedy-then-oldest) policy.
GTO keeps issuing from the most recently issued warp while it stays
ready, otherwise it falls back to the oldest (lowest dispatch age) ready
warp.  A loose-round-robin (LRR) scheduler is provided for comparison
runs.

The ready set is a lazy-deletion min-heap keyed by warp age: a warp is
pushed whenever it becomes ready, and ``push_count`` invalidates stale
entries, keeping every scheduler operation O(log n) per the
profiling-first performance guidance (the scheduler runs every cycle).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.gpu.warp import Warp


class GtoScheduler:
    """Greedy-then-oldest issue selection for one scheduler slot."""

    name = "gto"

    def __init__(self, scheduler_id: int = 0):
        self.scheduler_id = scheduler_id
        self.warps: List[Warp] = []
        self._ready_heap: list = []
        self.busy_until: int = 0
        self.last_warp: Optional[Warp] = None
        self.issued_ops = 0

    def add_warp(self, warp: Warp) -> None:
        self.warps.append(warp)
        self.notify_ready(warp)

    def remove_warp(self, warp: Warp) -> None:
        self.warps.remove(warp)
        warp.ready = False
        if self.last_warp is warp:
            self.last_warp = None

    def notify_ready(self, warp: Warp) -> None:
        """A warp became issuable (wake from memory/compute latency)."""
        if warp.done:
            return
        warp.ready = True
        warp.push_count += 1
        heapq.heappush(self._ready_heap, (warp.age, warp.push_count, warp))

    def can_issue(self, now: int) -> bool:
        return now >= self.busy_until

    def pick(self, now: int) -> Optional[Warp]:
        """Select the warp to issue from this cycle (does not consume it;
        the SM calls :meth:`consume` once the op actually issues)."""
        if not self.can_issue(now):
            return None
        last = self.last_warp
        if last is not None and last.ready and last.is_ready(now):
            return last
        heap = self._ready_heap
        while heap:
            age, count, warp = heap[0]
            if count != warp.push_count or not warp.ready or warp.done:
                heapq.heappop(heap)  # stale entry
                continue
            if warp.is_ready(now):
                return warp
            # Ready flag set but gated by ready_time (future wake); the
            # wake event will re-push it, so drop this entry.
            heapq.heappop(heap)
            warp.ready = False
            return None
        return None

    def consume(self, warp: Warp, busy_cycles: int, now: int) -> None:
        """Commit the issue: occupy the scheduler and clear readiness."""
        warp.ready = False
        self.busy_until = now + busy_cycles
        self.last_warp = warp
        self.issued_ops += 1


class LrrScheduler(GtoScheduler):
    """Loose round robin: rotate through ready warps in warp order."""

    name = "lrr"

    def __init__(self, scheduler_id: int = 0):
        super().__init__(scheduler_id)
        self._next_index = 0

    def notify_ready(self, warp: Warp) -> None:
        # LRR scans the warp list directly; no ready heap to maintain.
        if not warp.done:
            warp.ready = True

    def pick(self, now: int) -> Optional[Warp]:
        if not self.can_issue(now):
            return None
        n = len(self.warps)
        for offset in range(n):
            warp = self.warps[(self._next_index + offset) % n]
            if warp.is_ready(now) and not warp.done:
                self._next_index = (self._next_index + offset + 1) % n
                return warp
        return None


SCHEDULERS = {"gto": GtoScheduler, "lrr": LrrScheduler}


def make_scheduler(name: str, scheduler_id: int = 0) -> GtoScheduler:
    try:
        return SCHEDULERS[name](scheduler_id)
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of {sorted(SCHEDULERS)}"
        ) from None
