"""GPU configuration (paper Table 1).

Defaults match the Tesla M2090 / Fermi setup the paper simulates with
GPGPU-Sim.  Latencies are expressed in core-clock cycles; the paper's
650 MHz core / 650 MHz interconnect / 924 MHz memory clocks are folded
into the defaults below (DRAM service interval derives from the
177.4 GB/s aggregate bandwidth: 177.4e9 / 12 partitions / 128 B per line
≈ 115 M lines/s ≈ one line every 5.6 core cycles at 650 MHz).

``GPUConfig.scaled()`` produces the wall-clock-friendly variant the
benchmark harness uses (fewer SMs, proportionally fewer partitions);
per-SM behaviour is unchanged because L1Ds are private and CTAs are
distributed round-robin (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.cache.tagarray import CacheGeometry


@dataclass(frozen=True)
class L1DConfig:
    """Geometry and resource limits of each SM's L1 data cache."""

    num_sets: int = 32
    assoc: int = 4
    line_size: int = 128
    index_fn: str = "hash"
    mshr_entries: int = 32
    mshr_merge: int = 8
    miss_queue_depth: int = 8
    hit_latency: int = 28  # Fermi L1 load-to-use is ~18-30 core cycles
    #: Non-blocking L1D: hit-under-miss / miss-under-miss with
    #: word-granular MSHR coalescing.  Part of the cache *semantics*
    #: (unlike ``--engine``), so it enters store keys when enabled; off
    #: keeps the blocking-retry model bit-identical to the baselines.
    non_blocking: bool = False

    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.assoc * self.line_size

    def geometry(self) -> CacheGeometry:
        return CacheGeometry(self.num_sets, self.assoc, self.line_size, self.index_fn)

    def with_assoc(self, assoc: int) -> "L1DConfig":
        """Paper's capacity sweep keeps sets fixed and scales ways
        (16 KB/4-way -> 32 KB/8-way -> 64 KB/16-way, Section 3.2)."""
        return dataclasses.replace(self, assoc=assoc)


@dataclass(frozen=True)
class GPUConfig:
    """Table 1 of the paper, plus simulator-level latency parameters."""

    num_sms: int = 16
    warp_size: int = 32
    max_warps_per_sm: int = 48
    schedulers_per_sm: int = 2
    scheduler: str = "gto"
    max_ctas_per_sm: int = 8
    registers_per_sm: int = 32768
    shared_mem_per_sm: int = 48 * 1024

    l1d: L1DConfig = field(default_factory=L1DConfig)

    # memory system
    num_partitions: int = 12
    l2_sets: int = 64
    l2_assoc: int = 8
    icnt_latency: int = 16        # one-way L1<->L2 crossbar latency
    l2_latency: int = 32          # L2 slice access latency
    l2_service_interval: int = 2  # cycles between accesses one slice can accept
    icnt_response_interval: int = 4  # cycles per 128B response packet per
    # partition (a 32 B/cycle crossbar link: 4-5 flits per data packet)
    dram_latency: int = 160       # DRAM access latency (GDDR5-class)
    dram_service_interval: int = 6  # core cycles per 128B line per partition

    # LD/ST unit
    ldst_queue_depth: int = 4     # warp memory ops buffered per SM

    # clocks, recorded for completeness / reports (all latencies are
    # already expressed in core cycles)
    core_clock_mhz: int = 650
    icnt_clock_mhz: int = 650
    mem_clock_mhz: int = 924
    mem_bandwidth_gbps: float = 177.4
    dram_chip: str = "32-bit bus/partition, 6 banks/partition, GDDR5 timing"

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ValueError("need at least one SM")
        if self.num_partitions < 1:
            raise ValueError("need at least one memory partition")
        if self.schedulers_per_sm < 1:
            raise ValueError("need at least one warp scheduler")
        if self.scheduler not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")

    # -- derived -----------------------------------------------------------

    @property
    def l2_size_bytes(self) -> int:
        return self.num_partitions * self.l2_sets * self.l2_assoc * self.l1d.line_size

    def l2_geometry(self) -> CacheGeometry:
        return CacheGeometry(self.l2_sets, self.l2_assoc, self.l1d.line_size, "linear")

    # -- variants ------------------------------------------------------------

    def with_l1d(self, **kwargs) -> "GPUConfig":
        """Replace L1D parameters (e.g. ``with_l1d(assoc=8)`` = 32 KB)."""
        return dataclasses.replace(self, l1d=dataclasses.replace(self.l1d, **kwargs))

    def with_l1d_size_kb(self, kb: int) -> "GPUConfig":
        """The paper's three capacities: 16, 32, 64 KB (4/8/16-way)."""
        assoc_by_kb = {16: 4, 32: 8, 64: 16}
        if kb not in assoc_by_kb:
            raise ValueError(f"paper evaluates 16/32/64 KB L1Ds, not {kb} KB")
        return self.with_l1d(assoc=assoc_by_kb[kb])

    def scaled(self, num_sms: int = 4) -> "GPUConfig":
        """Wall-clock-friendly configuration for the bench harness: fewer
        SMs and proportionally fewer memory partitions so per-SM memory
        bandwidth matches the full machine."""
        partitions = max(1, round(self.num_partitions * num_sms / self.num_sms))
        return dataclasses.replace(
            self, num_sms=num_sms, num_partitions=partitions
        )

    def table1_rows(self):
        """(parameter, value) rows mirroring the paper's Table 1."""
        l1 = self.l1d
        return [
            ("Number of Cores", str(self.num_sms)),
            ("Warp Size", str(self.warp_size)),
            ("Max # of warps per core", str(self.max_warps_per_sm)),
            (
                "Warp schedulers per core",
                f"{self.schedulers_per_sm}, {self.scheduler.upper()} scheduling policy",
            ),
            ("# of registers per core", str(self.registers_per_sm)),
            ("Shared Memory", f"{self.shared_mem_per_sm // 1024}KB"),
            (
                "L1D cache",
                f"{l1.size_bytes // 1024}KB, {l1.num_sets}sets, "
                f"{l1.assoc}-ways, {'Hash' if l1.index_fn == 'hash' else 'Linear'} index",
            ),
            (
                "Core/ICNT/Memory Clock",
                f"{self.core_clock_mhz}MHz/{self.icnt_clock_mhz}MHz/{self.mem_clock_mhz}MHz",
            ),
            ("# of memory partition", str(self.num_partitions)),
            (
                "L2 cache",
                f"{self.l2_size_bytes // 1024}KB, {self.l2_sets}sets, "
                f"{self.l2_assoc}-ways, Linear index",
            ),
            ("DRAM Chip Model", self.dram_chip),
            ("Memory Bandwidth", f"{self.mem_bandwidth_gbps} GB/s"),
        ]


#: The exact Table 1 machine.
BASELINE_CONFIG = GPUConfig()

#: Harness default: same per-SM machine, four SMs (see EXPERIMENTS.md).
SCALED_CONFIG = BASELINE_CONFIG.scaled(4)
