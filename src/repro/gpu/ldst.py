"""Load/Store unit.

The LD/ST unit buffers issued warp memory instructions and feeds their
coalesced requests into the L1D at one request per cycle.  When the L1D
cannot absorb a request (MSHR full, no reservable slot, full miss
queue under the baseline policy), the request stays at the head of the
queue and retries — "the miss request will be blocked in the pipeline
register and continue to retry in the following cycles ... all future
accesses to the L1D cache will be stalled" (paper Section 2).  The FIFO
head-of-line blocking here reproduces exactly that behaviour, and its
cost is what Stall-Bypass / DLP's bypass paths remove.

With ``non_blocking=True`` the unit models a non-blocking L1D front
end instead: a stalled head still burns its stall cycle (the retry
occupies the pipeline register), but the unit then offers the L1D the
next queued instruction's request in FIFO order and issues the first
one the cache accepts — hit-under-miss and miss-under-miss service
while the head's miss resources recover.  Probing is side-effect-free
because a STALL result mutates nothing, so scan order alone determines
which request goes first and the schedule stays deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.cache.l1d import AccessOutcome, L1DCache, MemAccess
from repro.gpu.warp import Warp


@dataclass
class MemWork:
    """One warp memory instruction broken into line requests."""

    warp: Optional[Warp]
    blocks: List[int]
    is_write: bool
    pc: int
    insn_id: int
    next_index: int = 0

    @property
    def remaining(self) -> int:
        return len(self.blocks) - self.next_index


@dataclass
class LdStStats:
    issued_loads: int = 0
    issued_stores: int = 0
    requests_sent: int = 0
    stall_cycles: int = 0
    queue_full_rejects: int = 0
    #: Requests issued past a stalled head (non-blocking mode only):
    #: hit-under-miss / miss-under-miss services.
    under_miss_issues: int = 0


class LdStUnit:
    """Per-SM memory pipeline front end."""

    def __init__(
        self,
        l1d: L1DCache,
        hit_latency: int,
        queue_depth: int,
        schedule: Callable[[int, Callable[[], None]], None],
        complete_request: Callable[[Optional[Warp]], None],
        sm_id: int = 0,
        non_blocking: bool = False,
    ):
        self.l1d = l1d
        self.hit_latency = hit_latency
        self.queue_depth = queue_depth
        self.schedule = schedule
        self.complete_request = complete_request
        self.sm_id = sm_id
        self.non_blocking = non_blocking
        self.queue: Deque[MemWork] = deque()
        self.stats = LdStStats()

    # ------------------------------------------------------------------

    @property
    def is_full(self) -> bool:
        return len(self.queue) >= self.queue_depth

    def enqueue(self, work: MemWork) -> None:
        if self.is_full:
            raise RuntimeError("enqueue on full LD/ST queue")
        if work.is_write:
            self.stats.issued_stores += 1
        else:
            self.stats.issued_loads += 1
            work.warp.begin_memory_wait(len(work.blocks))
        self.queue.append(work)

    def _access_for(self, work: MemWork, now: int) -> MemAccess:
        return MemAccess(
            block_addr=work.blocks[work.next_index],
            pc=work.pc,
            insn_id=work.insn_id,
            is_write=work.is_write,
            warp_id=work.warp.gid if work.warp else -1,
            sm_id=self.sm_id,
            now=now,
            waiter=None if work.is_write else work.warp,
        )

    def step(self, now: int) -> bool:
        """Process (at most) one request this cycle; True on progress."""
        if not self.queue:
            return False
        work = self.queue[0]
        result = self.l1d.access(self._access_for(work, now))
        if result.is_stall:
            self.stats.stall_cycles += 1
            if not self.non_blocking:
                return False
            return self._issue_under_miss(now)

        self._finish_issue(work, result.outcome, index=0)
        return True

    def _issue_under_miss(self, now: int) -> bool:
        """Head stalled: offer later queued instructions to the L1D in
        FIFO order and issue the first accepted one (non-blocking mode)."""
        for i in range(1, len(self.queue)):
            work = self.queue[i]
            result = self.l1d.access(self._access_for(work, now))
            if result.is_stall:
                continue
            self.stats.under_miss_issues += 1
            self._finish_issue(work, result.outcome, index=i)
            return True
        return False

    def _finish_issue(self, work: MemWork, outcome: AccessOutcome, index: int) -> None:
        self.stats.requests_sent += 1
        if outcome is AccessOutcome.HIT:
            warp = work.warp
            self.schedule(
                self.hit_latency, lambda w=warp: self.complete_request(w)
            )
        # MISS / HIT_RESERVED waiters complete on fill; BYPASS waiters
        # complete when the interconnect response arrives; writes are
        # fire-and-forget.

        work.next_index += 1
        if work.next_index >= len(work.blocks):
            if index == 0:
                self.queue.popleft()
            else:
                del self.queue[index]

    def pending_requests(self) -> int:
        return sum(w.remaining for w in self.queue)
