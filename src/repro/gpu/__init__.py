"""SIMT execution substrate: the GPU the paper's cache policies run in.

Public surface: :class:`GPUConfig` (Table 1), the kernel/ISA model used
by workloads, and :class:`GpuSimulator`.
"""

from repro.gpu.config import BASELINE_CONFIG, SCALED_CONFIG, GPUConfig, L1DConfig
from repro.gpu.coalescer import coalesce, coalesce_count
from repro.gpu.isa import ComputeOp, MemOp, compute, load, store, trace_stats
from repro.gpu.kernel import Kernel, KernelSequence, as_kernel_list
from repro.gpu.scheduler import GtoScheduler, LrrScheduler, make_scheduler
from repro.gpu.simulator import DeadlockError, GpuSimulator, SimResult
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.warp import Warp

__all__ = [
    "GPUConfig",
    "L1DConfig",
    "BASELINE_CONFIG",
    "SCALED_CONFIG",
    "coalesce",
    "coalesce_count",
    "ComputeOp",
    "MemOp",
    "compute",
    "load",
    "store",
    "trace_stats",
    "Kernel",
    "KernelSequence",
    "as_kernel_list",
    "GtoScheduler",
    "LrrScheduler",
    "make_scheduler",
    "GpuSimulator",
    "SimResult",
    "DeadlockError",
    "StreamingMultiprocessor",
    "Warp",
]
