"""Kernel / grid / CTA abstractions.

A :class:`Kernel` is what a workload model produces: a grid of CTAs
(thread blocks), each composed of ``warps_per_cta`` warps, plus a trace
function that lazily generates each warp's instruction stream.  Traces
are generated lazily per warp so a large grid never materialises in
memory at once (the streaming-friendly idiom from the HPC guides).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional

from repro.gpu.isa import WarpOp

TraceFn = Callable[[int, int], Iterable[WarpOp]]


@dataclass
class Kernel:
    """One GPU kernel launch.

    Parameters
    ----------
    name:
        Kernel identifier (used in reports; a workload may launch several).
    num_ctas:
        Grid size in thread blocks.
    warps_per_cta:
        CTA size in warps (CTA threads / 32).
    trace_fn:
        ``trace_fn(cta_id, warp_id)`` yields the warp's
        :class:`~repro.gpu.isa.WarpOp` stream. ``warp_id`` is CTA-local.
    """

    name: str
    num_ctas: int
    warps_per_cta: int
    trace_fn: TraceFn = field(repr=False)

    def __post_init__(self) -> None:
        if self.num_ctas < 1:
            raise ValueError(f"kernel {self.name!r} needs at least one CTA")
        if self.warps_per_cta < 1:
            raise ValueError(f"kernel {self.name!r} needs at least one warp per CTA")

    @property
    def total_warps(self) -> int:
        return self.num_ctas * self.warps_per_cta

    def warp_trace(self, cta_id: int, warp_id: int) -> Iterator[WarpOp]:
        if not 0 <= cta_id < self.num_ctas:
            raise IndexError(f"cta_id {cta_id} out of range for {self.name!r}")
        if not 0 <= warp_id < self.warps_per_cta:
            raise IndexError(f"warp_id {warp_id} out of range for {self.name!r}")
        return iter(self.trace_fn(cta_id, warp_id))

    def all_traces(self) -> Iterator[Iterator[WarpOp]]:
        """Every warp trace in dispatch order (functional-simulation path)."""
        for cta in range(self.num_ctas):
            for warp in range(self.warps_per_cta):
                yield self.warp_trace(cta, warp)


@dataclass
class KernelSequence:
    """A workload may launch multiple dependent kernels back to back
    (e.g. BFS runs one kernel per frontier level); they execute in order
    with a full drain between launches, as CUDA's default stream does."""

    name: str
    kernels: List[Kernel]

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError(f"kernel sequence {self.name!r} is empty")

    @property
    def total_warps(self) -> int:
        return sum(k.total_warps for k in self.kernels)


def as_kernel_list(obj) -> List[Kernel]:
    """Normalize Kernel | KernelSequence | list into a kernel list."""
    if isinstance(obj, Kernel):
        return [obj]
    if isinstance(obj, KernelSequence):
        return list(obj.kernels)
    return list(obj)
