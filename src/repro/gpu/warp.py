"""Warp execution state.

A warp walks its instruction trace in order.  It is *ready* when the
scheduler may issue its next op: not done, not waiting on outstanding
memory requests, and past any compute-latency window.  ``age`` is the
global dispatch sequence number the GTO scheduler uses for its
oldest-first tiebreak.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.gpu.isa import WarpOp

_NEVER = float("inf")


class Warp:
    __slots__ = (
        "gid",
        "cta_slot",
        "age",
        "_trace",
        "current_op",
        "ready_time",
        "outstanding",
        "done",
        "ready",
        "push_count",
        "insns_issued",
        "thread_insns",
        "sm",         # owning SM (set at CTA dispatch)
        "scheduler",  # owning scheduler slot (set at CTA dispatch)
    )

    def __init__(self, gid: int, cta_slot: int, age: int, trace: Iterator[WarpOp]):
        self.gid = gid
        self.cta_slot = cta_slot
        self.age = age
        self._trace = trace
        self.current_op: Optional[WarpOp] = None
        self.ready_time: float = 0
        self.outstanding = 0
        self.done = False
        self.ready = False  # scheduler bookkeeping flag
        self.push_count = 0  # invalidates stale ready-heap entries
        self.insns_issued = 0
        self.thread_insns = 0
        self.sm = None
        self.scheduler = None
        self._advance()

    def _advance(self) -> None:
        self.current_op = next(self._trace, None)
        if self.current_op is None:
            self.done = True

    def peek(self) -> Optional[WarpOp]:
        return self.current_op

    def advance(self) -> None:
        """Move past the current op (called by the scheduler at issue)."""
        if self.done:
            raise RuntimeError(f"advance on finished warp {self.gid}")
        self._advance()

    def begin_memory_wait(self, num_requests: int) -> None:
        if num_requests < 1:
            raise ValueError("memory wait needs at least one request")
        self.outstanding = num_requests
        self.ready_time = _NEVER

    def complete_request(self, now: int) -> bool:
        """One memory request finished; True when the warp woke up."""
        if self.outstanding <= 0:
            raise RuntimeError(f"spurious completion for warp {self.gid}")
        self.outstanding -= 1
        if self.outstanding == 0:
            self.ready_time = now
            return True
        return False

    def is_ready(self, now: int) -> bool:
        return not self.done and self.outstanding == 0 and self.ready_time <= now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "done"
            if self.done
            else f"out={self.outstanding} rt={self.ready_time}"
        )
        return f"<Warp {self.gid} age={self.age} {state}>"
