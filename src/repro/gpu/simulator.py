"""Top-level GPU timing simulator.

A discrete-event model of the paper's Table 1 machine: SMs step cycle by
cycle while memory-side progress (interconnect delivery, L2 access,
DRAM service, fills) rides a global event heap.  When no SM can make
progress in a cycle, time skips directly to the next event, so
memory-bound phases cost O(events), not O(cycles).

One policy *instance* is created per SM: the L1D, its VTA and its PDPT
are private per-core structures in the paper.

Typical use::

    from repro.gpu import GpuSimulator, GPUConfig
    from repro.core import make_policy

    sim = GpuSimulator(kernels, GPUConfig().scaled(4),
                       policy_factory=lambda: make_policy("dlp"))
    result = sim.run()
    print(result.ipc, result.l1d.hit_rate)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cache.l1d import FetchRequest, L1DStats
from repro.core.policy import CachePolicy
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Kernel, as_kernel_list
from repro.gpu.sm import StreamingMultiprocessor
from repro.memory.dram import DramChannel
from repro.memory.interconnect import Interconnect
from repro.memory.partition import MemoryPartition, partition_for


class DeadlockError(RuntimeError):
    """No SM can progress and no events are pending - a model bug."""


@dataclass
class SimResult:
    """Aggregated outcome of one simulation run."""

    cycles: int
    thread_insns: int
    warp_insns: int
    l1d: L1DStats
    interconnect: Dict[str, float]
    l2: Dict[str, float]
    dram: Dict[str, float]
    policy: Dict[str, float]
    per_sm_l1d: List[Dict[str, float]] = field(default_factory=list)
    ldst_stall_cycles: int = 0
    hit_completions: int = 0
    truncated: bool = False

    @property
    def ipc(self) -> float:
        return self.thread_insns / self.cycles if self.cycles else 0.0

    @property
    def mem_access_ratio(self) -> float:
        """Coalesced L1D data requests per thread instruction (the
        paper's Section 3.2 classification metric)."""
        if self.thread_insns == 0:
            return 0.0
        return self.l1d.accesses / self.thread_insns

    def to_dict(self) -> Dict:
        """JSON-serializable form; :meth:`from_dict` is the exact inverse.

        Used by the on-disk result store and the differential oracle, so
        it must be lossless: only raw counters are stored and every field
        round-trips bit-identically through ``json.dumps``/``loads``.
        """
        return {
            "cycles": self.cycles,
            "thread_insns": self.thread_insns,
            "warp_insns": self.warp_insns,
            "l1d": self.l1d.to_raw_dict(),
            "interconnect": dict(self.interconnect),
            "l2": dict(self.l2),
            "dram": dict(self.dram),
            "policy": dict(self.policy),
            "per_sm_l1d": [dict(d) for d in self.per_sm_l1d],
            "ldst_stall_cycles": self.ldst_stall_cycles,
            "hit_completions": self.hit_completions,
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimResult":
        return cls(
            cycles=int(data["cycles"]),
            thread_insns=int(data["thread_insns"]),
            warp_insns=int(data["warp_insns"]),
            l1d=L1DStats.from_raw_dict(data["l1d"]),
            interconnect=dict(data["interconnect"]),
            l2=dict(data["l2"]),
            dram=dict(data["dram"]),
            policy=dict(data["policy"]),
            per_sm_l1d=[dict(d) for d in data.get("per_sm_l1d", [])],
            ldst_stall_cycles=int(data.get("ldst_stall_cycles", 0)),
            hit_completions=int(data.get("hit_completions", 0)),
            truncated=bool(data.get("truncated", False)),
        )

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "ipc": self.ipc,
            "thread_insns": self.thread_insns,
            "mem_access_ratio": self.mem_access_ratio,
            "l1d_hit_rate": self.l1d.hit_rate,
            "l1d_accesses": self.l1d.accesses,
            "l1d_hits": self.l1d.hits_total,
            "l1d_bypasses": self.l1d.bypasses,
            "l1d_evictions": self.l1d.evictions_total,
            "l1d_serviced": self.l1d.serviced_accesses,
            "icnt_bytes": self.interconnect.get("total_bytes", 0),
        }


class GpuSimulator:
    """Execute a kernel (or sequence of kernels) on the modelled GPU."""

    def __init__(
        self,
        kernels,
        config: GPUConfig,
        policy_factory: Callable[[], CachePolicy],
        max_cycles: Optional[int] = None,
        engine: str = "reference",
    ):
        self.kernels: List[Kernel] = as_kernel_list(kernels)
        if not self.kernels:
            raise ValueError("no kernels to execute")
        self.config = config
        self.max_cycles = max_cycles
        self.now = 0
        self._heap: list = []
        self._seq = 0

        self.interconnect = Interconnect(
            self.schedule, config.icnt_latency, clock=lambda: self.now
        )
        self.partitions = [
            MemoryPartition(
                pid,
                config.l2_geometry(),
                DramChannel(config.dram_service_interval, config.dram_latency),
                self.schedule,
                self._respond,
                config.l2_latency,
                l2_service_interval=config.l2_service_interval,
                response_interval=config.icnt_response_interval,
            )
            for pid in range(config.num_partitions)
        ]
        self.sms = [
            StreamingMultiprocessor(
                sm_id,
                config,
                policy_factory(),
                self.schedule,
                self._make_send(sm_id),
                self._on_cta_done,
                engine=engine,
            )
            for sm_id in range(config.num_sms)
        ]

        # kernel dispatch state
        self._kernel_index = 0
        self._next_cta = 0
        self._ctas_done = 0
        self._dispatch_age = 0
        self._finished = False

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def attach_l1d_tap(self, tap) -> None:
        """Install ``tap(access, outcome)`` on every SM's L1D.

        The trace recorder uses this to capture the timing run's
        L1D-visible access stream; pass ``None`` to detach."""
        for sm in self.sms:
            sm.l1d.access_tap = tap

    def _make_send(self, sm_id: int) -> Callable[[FetchRequest], None]:
        def send(fetch: FetchRequest) -> None:
            partition = self.partitions[
                partition_for(fetch.block_addr, self.config.num_partitions)
            ]
            self.interconnect.send_request(
                sm_id,
                fetch.is_write,
                lambda f=fetch, p=partition: p.receive(f, self.now),
            )

        return send

    def _respond(self, fetch: FetchRequest) -> None:
        """A partition produced read data; route it back to the SM."""
        self.interconnect.send_response(lambda f=fetch: self._deliver(f))

    def _deliver(self, fetch: FetchRequest) -> None:
        sm = self.sms[fetch.sm_id]
        if fetch.is_bypass:
            sm.complete_request(fetch.waiter)
            return
        for waiter in sm.l1d.fill(fetch.block_addr, self.now):
            sm.complete_request(waiter)

    # ------------------------------------------------------------------
    # kernel dispatch
    # ------------------------------------------------------------------

    @property
    def current_kernel(self) -> Optional[Kernel]:
        if self._kernel_index >= len(self.kernels):
            return None
        return self.kernels[self._kernel_index]

    def _dispatch(self) -> None:
        """Fill free CTA slots from the current kernel (round-robin)."""
        kernel = self.current_kernel
        if kernel is None:
            return
        while self._next_cta < kernel.num_ctas:
            placed = False
            for sm in self.sms:
                if self._next_cta >= kernel.num_ctas:
                    break
                if sm.free_slots(kernel.warps_per_cta) > 0:
                    warps = sm.add_cta(kernel, self._next_cta, self._dispatch_age)
                    self._dispatch_age += max(warps, 1)
                    self._next_cta += 1
                    placed = True
            if not placed:
                break

    def _on_cta_done(self, sm: StreamingMultiprocessor) -> None:
        self._ctas_done += 1
        kernel = self.current_kernel
        if kernel is None:
            return
        if self._ctas_done >= kernel.num_ctas:
            # kernel drained (all CTAs complete); next launch starts once
            # the dispatcher runs again in the main loop
            self._kernel_index += 1
            self._next_cta = 0
            self._ctas_done = 0
        self._dispatch()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _work_remaining(self) -> bool:
        if self.current_kernel is not None:
            return True
        if self._heap:
            return True
        return any(not sm.is_idle for sm in self.sms)

    def run(self) -> SimResult:
        self._dispatch()
        heap = self._heap
        truncated = False
        while self._work_remaining():
            while heap and heap[0][0] <= self.now:
                _, _, fn = heapq.heappop(heap)
                fn()
            progress = False
            for sm in self.sms:
                if sm.step(self.now):
                    progress = True
            if not self._work_remaining():
                break
            if self.max_cycles is not None and self.now >= self.max_cycles:
                truncated = True
                break
            if progress:
                self.now += 1
            elif heap:
                self.now = max(self.now + 1, heap[0][0])
            else:
                self._raise_deadlock()
        return self._collect(truncated)

    def _raise_deadlock(self) -> None:  # pragma: no cover - model bug path
        details = []
        for sm in self.sms:
            details.append(
                f"SM{sm.sm_id}: warps={sm.active_warps} "
                f"ldst={len(sm.ldst.queue)} mshr={len(sm.l1d.mshr)}"
            )
        raise DeadlockError(
            f"simulation deadlocked at cycle {self.now}: " + "; ".join(details)
        )

    # ------------------------------------------------------------------

    def _collect(self, truncated: bool) -> SimResult:
        total = L1DStats()
        per_sm = []
        ldst_stalls = 0
        for sm in self.sms:
            s = sm.l1d.stats
            per_sm.append(s.as_dict())
            total.loads += s.loads
            total.stores += s.stores
            total.hits += s.hits
            total.hit_reserved += s.hit_reserved
            total.misses += s.misses
            total.bypasses += s.bypasses
            total.write_hits += s.write_hits
            total.write_misses += s.write_misses
            total.evictions += s.evictions
            total.write_evicts += s.write_evicts
            total.fills += s.fills
            total.sent_fetches += s.sent_fetches
            total.sent_writes += s.sent_writes
            for reason, count in s.stalls.items():
                total.stalls[reason] = total.stalls.get(reason, 0) + count
            ldst_stalls += sm.ldst.stats.stall_cycles

        l2_total: Dict[str, float] = {}
        dram_total: Dict[str, float] = {}
        for partition in self.partitions:
            for key, value in partition.l2.stats.as_dict().items():
                l2_total[key] = l2_total.get(key, 0) + value
            for key, value in partition.dram.stats.as_dict().items():
                dram_total[key] = dram_total.get(key, 0) + value
        if self.partitions:
            reads = l2_total.get("reads", 0)
            l2_total["hit_rate"] = (l2_total.get("hits", 0) / reads) if reads else 0.0

        policy_total: Dict[str, float] = {}
        for sm in self.sms:
            for key, value in sm.policy.stats().items():
                policy_total[key] = policy_total.get(key, 0) + value

        return SimResult(
            cycles=self.now,
            thread_insns=sum(sm.thread_insns for sm in self.sms),
            warp_insns=sum(sm.warp_insns for sm in self.sms),
            l1d=total,
            interconnect=self.interconnect.stats.as_dict(),
            l2=l2_total,
            dram=dram_total,
            policy=policy_total,
            per_sm_l1d=per_sm,
            ldst_stall_cycles=ldst_stalls,
            truncated=truncated,
        )
