"""Streaming Multiprocessor model.

One SM owns: a private L1D (with its policy instance — DLP state is
per-core, as in the paper), two warp schedulers (Table 1), an LD/ST
unit, and up to ``max_ctas_per_sm`` resident CTAs whose warps are
interleaved by the schedulers.

``step(now)`` advances one core cycle: each free scheduler issues one
warp op (compute runs occupy the scheduler for their whole length, the
GTO greedy behaviour), the LD/ST unit feeds one request into the L1D,
and the L1D's miss queue injects one packet into the interconnect.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cache.l1d import FetchRequest
from repro.core.policy import CachePolicy
from repro.fastsim import make_l1d
from repro.gpu.coalescer import coalesce
from repro.gpu.config import GPUConfig
from repro.gpu.isa import ComputeOp, MemOp
from repro.gpu.kernel import Kernel
from repro.gpu.ldst import LdStUnit, MemWork
from repro.gpu.scheduler import make_scheduler
from repro.gpu.warp import Warp


def _noop() -> None:
    """Event-heap nudge: forces a loop visit at its timestamp."""


class CtaSlot:
    __slots__ = ("slot_id", "busy", "warps_left")

    def __init__(self, slot_id: int):
        self.slot_id = slot_id
        self.busy = False
        self.warps_left = 0


class StreamingMultiprocessor:
    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        policy: CachePolicy,
        schedule: Callable[[int, Callable[[], None]], None],
        send_fetch: Callable[[FetchRequest], None],
        on_cta_done: Callable[["StreamingMultiprocessor"], None],
        engine: str = "reference",
    ):
        self.sm_id = sm_id
        self.config = config
        self.schedule = schedule
        self.on_cta_done = on_cta_done
        self.l1d = make_l1d(
            engine,
            config.l1d.geometry(),
            policy,
            send_fn=send_fetch,
            mshr_entries=config.l1d.mshr_entries,
            mshr_merge=config.l1d.mshr_merge,
            miss_queue_depth=config.l1d.miss_queue_depth,
            sm_id=sm_id,
            non_blocking=config.l1d.non_blocking,
        )
        # The policy-side surface the simulator talks to: the policy
        # instance itself (reference) or the packed-state facade (fast).
        self.policy = self.l1d.policy
        self.schedulers = [
            make_scheduler(config.scheduler, i) for i in range(config.schedulers_per_sm)
        ]
        self.ldst = LdStUnit(
            self.l1d,
            hit_latency=config.l1d.hit_latency,
            queue_depth=config.ldst_queue_depth,
            schedule=schedule,
            complete_request=self.complete_request,
            sm_id=sm_id,
            non_blocking=config.l1d.non_blocking,
        )
        self.cta_slots = [CtaSlot(i) for i in range(config.max_ctas_per_sm)]
        self.active_warps = 0
        self.thread_insns = 0
        self.warp_insns = 0
        self._age_counter = 0

    # ------------------------------------------------------------------
    # CTA management
    # ------------------------------------------------------------------

    def free_slots(self, warps_per_cta: int) -> int:
        """How many more CTAs of the given size fit right now."""
        if warps_per_cta > self.config.max_warps_per_sm:
            raise ValueError(
                f"CTA of {warps_per_cta} warps exceeds the SM limit "
                f"({self.config.max_warps_per_sm})"
            )
        free = sum(1 for slot in self.cta_slots if not slot.busy)
        warp_room = (self.config.max_warps_per_sm - self.active_warps) // warps_per_cta
        return min(free, warp_room)

    def add_cta(self, kernel: Kernel, cta_id: int, base_age: int) -> int:
        """Place a CTA; returns the number of warps created."""
        slot = next((s for s in self.cta_slots if not s.busy), None)
        if slot is None:
            raise RuntimeError(f"SM{self.sm_id}: no free CTA slot")
        warps = []
        for w in range(kernel.warps_per_cta):
            trace = kernel.warp_trace(cta_id, w)
            warp = Warp(
                gid=(cta_id << 8) | w,
                cta_slot=slot.slot_id,
                age=base_age + w,
                trace=trace,
            )
            if warp.done:  # empty trace: completes instantly
                continue
            warps.append(warp)
        slot.busy = True
        slot.warps_left = len(warps)
        if not warps:
            self._release_slot(slot)
            return 0
        for i, warp in enumerate(warps):
            scheduler = self.schedulers[i % len(self.schedulers)]
            warp.sm = self
            warp.scheduler = scheduler
            scheduler.add_warp(warp)
        self.active_warps += len(warps)
        self._age_counter = max(self._age_counter, base_age + len(warps))
        return len(warps)

    def _release_slot(self, slot: CtaSlot) -> None:
        slot.busy = False
        slot.warps_left = 0
        self.on_cta_done(self)

    def _warp_finished(self, warp: Warp) -> None:
        warp.scheduler.remove_warp(warp)
        self.active_warps -= 1
        slot = self.cta_slots[warp.cta_slot]
        slot.warps_left -= 1
        if slot.warps_left == 0:
            self._release_slot(slot)

    # ------------------------------------------------------------------
    # per-cycle step
    # ------------------------------------------------------------------

    def step(self, now: int) -> bool:
        progress = False
        for scheduler in self.schedulers:
            if self._issue(scheduler, now):
                progress = True
        if self.ldst.step(now):
            progress = True
        if self.l1d.drain_miss_queue(1):
            progress = True
        return progress

    def _issue(self, scheduler, now: int) -> bool:
        warp = scheduler.pick(now)
        if warp is None:
            return False
        op = warp.peek()
        if isinstance(op, ComputeOp):
            n = op.count
            scheduler.consume(warp, n, now)
            warp.insns_issued += n
            count = n * self.config.warp_size
            warp.thread_insns += count
            self.thread_insns += count
            self.warp_insns += n
            self.policy.notify_instructions(count)
            warp.advance()
            if warp.done:
                if warp.outstanding == 0:
                    self._warp_finished(warp)
                # else: the LD/ST completion path finishes it.
                # Still nudge the event loop at busy-end so the scheduler
                # is revisited even if the event heap would drain first.
                self.schedule(n, _noop)
            else:
                warp.ready_time = now + n
                self.schedule(n, lambda w=warp: self._wake(w))
            return True

        # memory op
        if self.ldst.is_full:
            self.ldst.stats.queue_full_rejects += 1
            return False
        assert isinstance(op, MemOp)
        blocks = coalesce(op.addrs, self.config.l1d.line_size)
        scheduler.consume(warp, 1, now)
        warp.insns_issued += 1
        warp.thread_insns += op.active_lanes
        self.thread_insns += op.active_lanes
        self.warp_insns += 1
        self.policy.notify_instructions(op.active_lanes)
        warp.advance()
        work = MemWork(
            warp=warp,
            blocks=blocks,
            is_write=op.is_write,
            pc=op.pc,
            insn_id=op.insn_id,
        )
        self.ldst.enqueue(work)
        if op.is_write:
            # stores are fire-and-forget for the warp
            if warp.done:
                self._warp_finished(warp)
            else:
                warp.ready_time = now + 1
                self.schedule(1, lambda w=warp: self._wake(w))
        # loads: begin_memory_wait ran inside enqueue; the warp wakes (or
        # finishes) via complete_request
        return True

    def _wake(self, warp: Warp) -> None:
        if not warp.done and warp.outstanding == 0:
            warp.scheduler.notify_ready(warp)

    def complete_request(self, warp: Optional[Warp]) -> None:
        """One memory request of a warp finished (hit latency elapsed,
        MSHR fill, or bypass response)."""
        if warp is None:
            return
        woke = warp.complete_request(0)
        if not woke:
            return
        if warp.done:
            self._warp_finished(warp)
        else:
            warp.scheduler.notify_ready(warp)

    # ------------------------------------------------------------------

    @property
    def is_idle(self) -> bool:
        return self.active_warps == 0 and not self.ldst.queue
