"""Wall-clock access for *operational* code paths.

The determinism linter (rule R001) bans ``time.time``/``time.monotonic``
throughout the package because nothing inside a simulation may observe
wall-clock time — results must be bit-identical run to run.  But the
repo also contains operational layers that legitimately need a clock:
the serving subsystem (:mod:`repro.serve`) measures queue wait and
simulation latency for its ``/metrics`` endpoint, and
``ResultStore.prune`` ages out old entries by file mtime.

This module is the single sanctioned gateway.  Importing it is an
explicit statement that the caller is operational telemetry, never
simulation semantics: nothing returned from here may influence what a
simulation *produces*, only how its execution is observed or stored.
The allow-markers below are the human-checked assertion required by
``repro check``.
"""

from __future__ import annotations

import time


def now() -> float:
    """Seconds since the epoch (for mtime comparisons and timestamps)."""
    return time.time()  # repro-check: allow(R001) sanctioned gateway, see module docstring


def monotonic() -> float:
    """Monotonic seconds (for latency/duration measurement)."""
    return time.monotonic()  # repro-check: allow(R001) sanctioned gateway, see module docstring


def perf() -> float:
    """High-resolution monotonic seconds (for phase profiling —
    ``repro profile --scheme`` timing the engine hot path)."""
    return time.perf_counter()  # repro-check: allow(R001) sanctioned gateway, see module docstring
