"""Small shared utilities: saturating counters, hashing, deterministic RNG.

These mirror the bit-accurate hardware structures the paper costs out in
Section 4.3 (saturating hit counters, the 7-bit hashed instruction ID, the
4-bit Protected Life field).
"""

from repro.utils.counters import SaturatingCounter, saturating_add, saturating_sub
from repro.utils.hashing import fnv1a_32, hash_pc
from repro.utils.rng import DeterministicRng

__all__ = [
    "SaturatingCounter",
    "saturating_add",
    "saturating_sub",
    "fnv1a_32",
    "hash_pc",
    "DeterministicRng",
]
