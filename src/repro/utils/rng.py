"""Deterministic random number generation for workload models.

All synthetic workloads must be reproducible run-to-run so that the
benchmark harness's normalized figures are stable.  Every workload derives
its stream from a :class:`DeterministicRng` seeded from the workload name,
so adding a new workload never perturbs the streams of existing ones.
"""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import fnv1a_32


class DeterministicRng:
    """A numpy Generator seeded deterministically from a string key."""

    def __init__(self, key: str, salt: int = 0):
        self.key = key
        self.salt = salt
        seed = (fnv1a_32(salt) ^ _string_hash(key)) & 0xFFFFFFFF
        self._gen = np.random.default_rng(seed)

    @property
    def generator(self) -> np.random.Generator:
        return self._gen

    def integers(self, low: int, high: int, size=None):
        return self._gen.integers(low, high, size=size)

    def random(self, size=None):
        return self._gen.random(size=size)

    def permutation(self, n: int) -> np.ndarray:
        return self._gen.permutation(n)

    def choice(self, a, size=None, replace: bool = True, p=None):
        return self._gen.choice(a, size=size, replace=replace, p=p)

    def zipf_indices(self, n_items: int, count: int, exponent: float = 1.2) -> np.ndarray:
        """Zipf-distributed indices in ``[0, n_items)``.

        Used by workloads with skewed access popularity (histogram bins,
        string-match dictionary words).  Implemented by inverse-CDF over a
        truncated Zipf so no rejection loop is needed.
        """
        ranks = np.arange(1, n_items + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        u = self._gen.random(count)
        return np.searchsorted(cdf, u).astype(np.int64)


def derive_seed(key: str, salt: int = 0) -> int:
    """Stable 32-bit seed for a string key + integer salt.

    The sweep executor derives one seed per experiment cell from the
    cell's store key, so every (workload, scheme, seed) cell gets an
    independent but reproducible stream regardless of which worker
    process runs it.
    """
    return (fnv1a_32(salt) ^ _string_hash(key)) & 0xFFFFFFFF


def _string_hash(s: str) -> int:
    h = 0x811C9DC5
    for ch in s.encode("utf-8"):
        h ^= ch
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h
