"""Saturating counters with explicit bit widths.

The PDPT of the paper stores 8-bit TDA-hit counters, 10-bit VTA-hit
counters and a 4-bit Protection Distance per entry (Section 4.3); the TDA
stores a 4-bit Protected Life per line.  All of them saturate rather than
wrap, which matters for the PD computation: a wrapped counter would make
the shift-based step comparison of Figure 9 nonsense.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def saturating_add(value: int, delta: int, max_value: int) -> int:
    """Add ``delta`` to ``value``, clamping the result to ``[0, max_value]``."""
    result = value + delta
    if result > max_value:
        return max_value
    if result < 0:
        return 0
    return result


def saturating_sub(value: int, delta: int, min_value: int = 0) -> int:
    """Subtract ``delta`` from ``value``, clamping the result to ``min_value``."""
    result = value - delta
    return result if result > min_value else min_value


@dataclass
class SaturatingCounter:
    """An unsigned saturating counter of ``bits`` width.

    >>> c = SaturatingCounter(bits=2)
    >>> for _ in range(10):
    ...     c.increment()
    >>> c.value
    3
    """

    bits: int
    value: int = 0
    _max: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"counter needs at least 1 bit, got {self.bits}")
        self._max = (1 << self.bits) - 1
        if not 0 <= self.value <= self._max:
            raise ValueError(
                f"initial value {self.value} out of range for {self.bits} bits"
            )

    @property
    def max_value(self) -> int:
        return self._max

    def increment(self, delta: int = 1) -> int:
        self.value = saturating_add(self.value, delta, self._max)
        return self.value

    def decrement(self, delta: int = 1) -> int:
        self.value = saturating_sub(self.value, delta)
        return self.value

    def set(self, value: int) -> int:
        """Assign, clamping into range (hardware write of a wider value)."""
        self.value = min(max(0, value), self._max)
        return self.value

    def reset(self) -> None:
        self.value = 0

    def is_saturated(self) -> bool:
        return self.value == self._max

    def __int__(self) -> int:
        return self.value
