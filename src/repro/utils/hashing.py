"""Hash functions used by the cache substrate.

Two uses in the reproduced design:

* The baseline L1D uses a *hash* set-index function (Table 1: "Hash index")
  rather than simple bit-slicing; GPGPU-Sim's Fermi config XORs higher
  address bits into the set index to spread power-of-two strides.
* DLP tags every cache line with a 7-bit *hashed PC* instruction ID
  (Section 4.1.1); we reproduce that with an FNV-1a hash folded to 7 bits.
"""

from __future__ import annotations

_FNV_OFFSET_32 = 0x811C9DC5
_FNV_PRIME_32 = 0x01000193


def fnv1a_32(value: int) -> int:
    """FNV-1a hash of an integer's little-endian bytes, 32-bit."""
    h = _FNV_OFFSET_32
    v = value & 0xFFFFFFFFFFFFFFFF
    while True:
        h ^= v & 0xFF
        h = (h * _FNV_PRIME_32) & 0xFFFFFFFF
        v >>= 8
        if v == 0:
            break
    return h


def _fmix32(h: int) -> int:
    """Murmur3 finaliser: full avalanche so low output bits depend on
    every input bit (plain FNV low bits are weak for small inputs)."""
    h &= 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 16
    return h


def hash_pc(pc: int, bits: int = 7) -> int:
    """Fold a program counter into an instruction ID of ``bits`` width.

    The paper's PDPT has 128 entries indexed by this 7-bit ID, so two PCs
    can collide; the reproduction keeps that behaviour rather than hiding
    it behind a dict keyed by full PC.
    """
    if bits < 1:
        raise ValueError("instruction ID needs at least 1 bit")
    return _fmix32(fnv1a_32(pc)) & ((1 << bits) - 1)


def xor_set_index(block_addr: int, num_sets: int) -> int:
    """XOR-hash set index: fold higher block-address bits into the index.

    ``block_addr`` is the line address (byte address >> log2(line size)).
    Folding the address in ``log2(num_sets)``-wide slices breaks up
    power-of-two strides that would otherwise all map to one set.
    """
    if num_sets <= 0 or num_sets & (num_sets - 1):
        raise ValueError(f"num_sets must be a power of two, got {num_sets}")
    bits = num_sets.bit_length() - 1
    if bits == 0:
        return 0
    index = 0
    addr = block_addr
    while addr:
        index ^= addr & (num_sets - 1)
        addr >>= bits
    return index


def linear_set_index(block_addr: int, num_sets: int) -> int:
    """Plain modulo set index (the paper's L2 uses "Linear index")."""
    if num_sets <= 0 or num_sets & (num_sets - 1):
        raise ValueError(f"num_sets must be a power of two, got {num_sets}")
    return block_addr & (num_sets - 1)
